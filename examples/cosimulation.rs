//! Mixed-signal co-simulation: the analogue dual-slope loop in the MNA
//! transient engine, clocked by the gate-level control FSM.
//!
//! This is the full macro with *both halves live*: the integrator,
//! comparator and input switching run as an `anasim` netlist stepped by
//! a resumable [`anasim::transient::TransientSession`], while the
//! control logic is the flip-flop-and-gate realisation from
//! `digisim::structural`. Each conversion clock tick, the controller's
//! phase steers the analogue drive source and the comparator's analogue
//! output is sampled back into the FSM — exactly the loop the fabricated
//! macro closes on silicon.
//!
//! Run with: `cargo run --release --example cosimulation`

use macrolib::process::{ProcessParams, VariationModel};
use msbist::adc::{AdcConverter, CosimAdc, DualSlopeAdc};

fn main() {
    // A 50-count version of the macro (same integrator design, faster
    // clock) keeps each conversion to ~150 analogue-digital ticks.
    let counts = 50u64;
    let cosim = CosimAdc::new(ProcessParams::nominal()).with_resolution(counts);
    let behavioural = DualSlopeAdc::ideal();
    let scale = behavioural.full_count() as f64 / counts as f64;

    println!("co-simulated dual-slope conversion ({counts} counts, LSB = {:.0} mV)", cosim.lsb() * 1e3);
    println!();
    println!("  vin (V)   cosim code   ticks   behavioural model (scaled)");
    for vin in [0.25, 0.75, 1.25, 1.75, 2.25] {
        let conv = cosim.convert(vin).expect("conversion converges");
        let model = behavioural.convert(vin) as f64 / scale;
        println!(
            "   {vin:.2}        {:>3}        {:>3}          {model:.1}",
            conv.code, conv.ticks
        );
    }

    // The same loop on a process-skewed die: the integrator RC shifts,
    // but dual-slope conversion is ratiometric — the code barely moves.
    // This is the architectural insight the paper's macro relies on.
    let mut skewed = ProcessParams::nominal();
    skewed.resistor_scale = 1.15;
    skewed.capacitor_scale = 0.90;
    let cosim_skewed = CosimAdc::new(skewed).with_resolution(counts);
    println!();
    println!("process-skewed die (R +15 %, C -10 %): ratiometric immunity");
    println!("  vin (V)   nominal   skewed");
    for vin in [0.75, 1.75] {
        let a = cosim.convert(vin).expect("nominal converges").code;
        let b = cosim_skewed.convert(vin).expect("skewed converges").code;
        println!("   {vin:.2}       {a:>3}       {b:>3}");
    }

    let _ = VariationModel::typical(); // see device::DieBatch for population runs
}
