//! Production-test flow: "fabricate" a batch of dies, screen every die
//! with the on-chip quick tests, fully characterise a sample, and
//! diagnose a deliberately faulty device down to its sub-macro.
//!
//! This is the paper's part (a)+(b) workflow end to end.
//!
//! Run with: `cargo run --release --example production_test`

use mixsig::macrolib::process::VariationModel;
use mixsig::msbist::adc::diagnose::{diagnose, Symptoms};
use mixsig::msbist::adc::spec::AdcSpecification;
use mixsig::msbist::adc::{AdcErrorModel, DualSlopeAdc};
use mixsig::msbist::bist::quick_test::{run_quick_tests, QuickTestLimits};
use mixsig::msbist::charac::characterise;
use mixsig::msbist::device::DieBatch;

fn main() {
    // --- 1. Fabricate -------------------------------------------------
    let batch = DieBatch::fabricate(10, &VariationModel::typical(), 1996);
    println!("fabricated a batch of {} dies (5 um CMOS gate array)", batch.len());

    // --- 2. Screen with the quick on-chip tests ------------------------
    let golden = run_quick_tests(&DualSlopeAdc::paper_measured(), &QuickTestLimits::paper());
    let limits = QuickTestLimits::paper().with_reference(golden.compressed.digital_signature);

    let mut passed = 0;
    for die in &batch {
        let report = run_quick_tests(&die.adc, &limits);
        let verdict = if report.passed() {
            passed += 1;
            "pass"
        } else {
            "FAIL"
        };
        println!(
            "  die {:>2}: quick tests {} (signature {:#06x})",
            die.index, verdict, report.compressed.digital_signature
        );
    }
    println!("{passed}/{} dies passed screening (paper: 10/10)\n", batch.len());

    // --- 3. Full characterisation of one sampled die -------------------
    let sample = &batch.dies()[3];
    let c = characterise(&sample.adc, 100);
    let spec = AdcSpecification::paper().check(&c);
    println!("full characterisation of die {}:", sample.index);
    println!(
        "  offset {:+.2} LSB, gain {:+.2} LSB, INL {:.2} LSB, DNL {:.2} LSB",
        c.offset_lsb,
        c.gain_error_lsb,
        c.max_inl_lsb(),
        c.max_dnl_lsb()
    );
    println!(
        "  against spec: {}",
        if spec.passed() {
            "meets all limits".to_string()
        } else {
            format!("exceeds {:?} (as the paper's macro did)", spec.failures())
        }
    );

    // --- 4. Diagnose a returned faulty device --------------------------
    // A field return whose integrator capacitor has become leaky — the
    // dominant defect is pure leakage, which bows the transfer curve.
    let returned = DualSlopeAdc::with_errors(AdcErrorModel {
        leak_per_s: 90.0,
        offset_v: 0.001,
        ..AdcErrorModel::none()
    });
    let c_bad = characterise(&returned, 100);
    let spec_bad = AdcSpecification::paper().check(&c_bad);
    let symptoms = Symptoms::from_characterisation(&spec_bad, &c_bad);
    println!("\nfaulty device symptoms: {symptoms:?}");
    println!("sub-macro diagnosis (most likely first):");
    for (sub_macro, score) in diagnose(&symptoms) {
        println!("  {sub_macro:?} (score {score})");
    }
}
