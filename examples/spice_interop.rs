//! SPICE interop: export the paper's OP1 macro as a SPICE deck, read it
//! back, and prove the re-imported circuit behaves identically — the
//! workflow for moving circuits between this toolchain and external
//! simulators.
//!
//! Run with: `cargo run --release --example spice_interop`

use mixsig::anasim::dc::dc_operating_point;
use mixsig::anasim::netlist::Netlist;
use mixsig::anasim::source::SourceWaveform;
use mixsig::anasim::spice::{from_spice, to_spice};
use mixsig::macrolib::op1::Op1;
use mixsig::macrolib::process::ProcessParams;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Build OP1 in comparator configuration.
    let mut nl = Netlist::new();
    let op1 = Op1::build(&mut nl, "op1", &ProcessParams::nominal());
    nl.vsource("VP", op1.in_p(), Netlist::GROUND, SourceWaveform::dc(2.7));
    nl.vsource("VN", op1.in_n(), Netlist::GROUND, SourceWaveform::dc(2.5));

    // Export.
    let deck = to_spice(&nl, "OP1 13-transistor op-amp (Cobley 1996, fig. 3)");
    println!("exported SPICE deck ({} lines):", deck.lines().count());
    for line in deck.lines().take(8) {
        println!("  {line}");
    }
    println!("  ...\n");

    // Re-import and compare every paper-numbered node's operating point.
    let nl2 = from_spice(&deck)?;
    println!(
        "re-imported: {} devices, {} nodes (original: {} / {})",
        nl2.device_count(),
        nl2.node_count(),
        nl.device_count(),
        nl.node_count()
    );

    let op_a = dc_operating_point(&nl)?;
    let op_b = dc_operating_point(&nl2)?;
    println!("\nnode   original (V)   re-imported (V)");
    let mut worst: f64 = 0.0;
    for (num, node) in op1.node_map() {
        let va = op_a.voltage(node);
        // Node names survive the export with ':' mapped to '_'.
        let name = nl.node_name(node).replace(':', "_");
        let vb = op_b
            .voltage(nl2.find_node(&name).expect("node survives roundtrip"));
        worst = worst.max((va - vb).abs());
        println!("  n{num}    {va:>9.4}      {vb:>9.4}");
    }
    println!("\nworst node-voltage difference: {worst:.2e} V");
    assert!(worst < 1e-9, "roundtrip must be behaviour-preserving");
    println!("roundtrip is behaviour-preserving.");
    Ok(())
}
