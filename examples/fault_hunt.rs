//! Transient-response fault hunting: stimulate the paper's OP1 op-amp
//! with a PRBS, inject stuck-at and bridging faults at its internal
//! nodes, and rank every fault by how detectable its correlation
//! signature makes it — the paper's part (c) workflow.
//!
//! Run with: `cargo run --release --example fault_hunt`

use std::sync::Arc;

use mixsig::anasim::flight::FlightRecorder;
use mixsig::faultsim::campaign::{CampaignConfig, JournalConfig};
use mixsig::faultsim::journal;
use mixsig::macrolib::process::ProcessParams;
use mixsig::msbist::transtest::circuits::circuit1;
use mixsig::obs::{self, AggregatingRecorder};

fn main() {
    // Circuit 1: the 13-transistor OP1 in a comparator configuration,
    // PRBS of 15 bits at 250 us steps, 0-5 V amplitude.
    let circuit = circuit1(&ProcessParams::nominal());
    println!(
        "circuit 1: {} transistors, {} faults in the universe",
        circuit.bench.netlist().transistor_count(),
        circuit.faults.len()
    );

    // Golden signature: the correlation of the fault-free response with
    // the stimulus-derived correlation signal.
    let golden = circuit
        .bench
        .correlation_signature(circuit.bench.netlist())
        .expect("golden circuit simulates");
    let peak = golden.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
    println!("golden signature: {} lags, peak |R| = {peak:.3}\n", golden.len());

    // Campaign on the resilient engine: every fault simulated in
    // parallel under the escalation ladder, scored by detection
    // instances. The report is identical for any worker count, and the
    // recorder sees the telemetry in universe order.
    // The flight recorder is armed so any fault that exhausts the whole
    // escalation ladder freezes a postmortem naming the worst node, and
    // a checkpoint journal makes the campaign kill-safe: every completed
    // fault is fsync'd to an append-only JSONL file as it finishes.
    let journal_path = std::env::temp_dir().join("fault_hunt.journal.jsonl");
    let recorder = Arc::new(AggregatingRecorder::new());
    let config = CampaignConfig::new(0.02 * peak)
        .workers(4)
        .flight(FlightRecorder::DEFAULT_CAPACITY)
        .journal(JournalConfig::fresh(&journal_path, "fault-hunt"))
        .recorder(recorder.clone());
    let report = circuit
        .bench
        .run_correlation_campaign_with(&circuit.faults, &config)
        .expect("campaign runs");

    let mut ranked: Vec<(String, f64, &'static str)> = report
        .outcomes
        .iter()
        .map(|o| (o.fault.name().to_string(), o.figure_pct(), o.status.tag()))
        .collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));

    println!("fault ranking (detection instances, % of signature lags):");
    let mut table = obs::Table::new(&["fault", "pct", "", "status"]).align(&[
        obs::Align::Left,
        obs::Align::Right,
        obs::Align::Left,
        obs::Align::Left,
    ]);
    for (name, pct, tag) in &ranked {
        table.row(&[
            name.clone(),
            format!("{pct:.1}"),
            obs::table::bar(*pct, 100.0, 40),
            format!("[{tag}]"),
        ]);
    }
    print!("{}", table.render());

    let coverage = report.coverage(40.0);
    println!(
        "\ncoverage at the 40 %-of-instances criterion: {:.0} % of the fault universe",
        coverage * 100.0
    );

    // Solver telemetry: what the campaign cost and whether any fault
    // needed the escalation ladder.
    let stats = &report.stats;
    println!("\nsolver telemetry:");
    println!(
        "  golden extraction : {} Newton iterations, {:.0} ms",
        stats.golden_newton_iterations(),
        stats.golden_wall.as_secs_f64() * 1e3
    );
    println!(
        "  fault extractions : {} Newton iterations, {:.0} ms summed over {} faults",
        stats.total_newton_iterations(),
        (stats.total_wall() - stats.golden_wall).as_secs_f64() * 1e3,
        stats.per_fault.len()
    );
    println!(
        "  escalation rungs  : histogram {:?} (index 0 = nominal solver settings)",
        stats.rung_histogram()
    );
    if let Some((i, t)) = stats
        .per_fault
        .iter()
        .enumerate()
        .max_by_key(|(_, t)| t.wall)
    {
        println!(
            "  hardest fault     : {} ({} Newton iterations, {:.0} ms, {} rung(s) tried)",
            report.outcomes[i].fault.name(),
            t.newton_iterations(),
            t.wall.as_secs_f64() * 1e3,
            t.rungs_tried
        );
    }

    // Postmortems: faults the ladder could not rescue, each with the
    // frozen last iterations and the node that dominated the residual.
    let postmortems: Vec<_> = report.postmortems().collect();
    if postmortems.is_empty() {
        println!("  postmortems       : none (every fault converged on some rung)");
    } else {
        println!("  postmortems       : {} fault(s) exhausted the ladder", postmortems.len());
        for (name, pm) in &postmortems {
            println!(
                "    {name}: residual {:.3e} at t = {:.3e} s, worst node {}",
                pm.residual,
                pm.time,
                pm.worst_nodes.first().map_or("?", |(n, _)| n.as_str())
            );
        }
        println!("  top offending nodes:");
        for (node, count) in report.top_offending_nodes().iter().take(5) {
            println!("    {node}: {count} iterations");
        }
    }

    // The same numbers as the recorder saw them: per-step counters and
    // campaign spans, deterministic apart from the wall-clock values.
    let agg = recorder.snapshot();
    println!(
        "  recorder          : {} counters, {} span names, {} fault spans",
        agg.counters.len(),
        agg.spans.len(),
        agg.spans.get("campaign.fault").map_or(0, obs::Histogram::count)
    );

    // Crash safety: every fault above was checkpointed as it completed.
    // Had this process been killed mid-campaign, rerunning with
    // `JournalConfig::resume` would replay the journal and simulate only
    // the missing faults. Here the journal is complete, so the resumed
    // run simulates nothing and still reproduces the identical report.
    let replayed = journal::load(&journal_path).expect("journal parses");
    let hunt = replayed.campaign("fault-hunt").expect("campaign journaled");
    println!(
        "\ncrash safety: {} faults checkpointed at {} ({})",
        hunt.faults.len(),
        journal_path.display(),
        if hunt.complete { "complete" } else { "interrupted" },
    );
    let resume = CampaignConfig::new(0.02 * peak)
        .workers(4)
        .flight(FlightRecorder::DEFAULT_CAPACITY)
        .journal(JournalConfig::resume(&journal_path, "fault-hunt"));
    let started = std::time::Instant::now();
    let resumed = circuit
        .bench
        .run_correlation_campaign_with(&circuit.faults, &resume)
        .expect("resume runs");
    assert_eq!(resumed.canonical_text(), report.canonical_text());
    println!(
        "  resumed report is byte-identical in {:.1} ms (all {} faults replayed from the journal)",
        started.elapsed().as_secs_f64() * 1e3,
        resumed.outcomes.len()
    );
    let _ = std::fs::remove_file(&journal_path);
}
