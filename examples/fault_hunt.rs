//! Transient-response fault hunting: stimulate the paper's OP1 op-amp
//! with a PRBS, inject stuck-at and bridging faults at its internal
//! nodes, and rank every fault by how detectable its correlation
//! signature makes it — the paper's part (c) workflow.
//!
//! Run with: `cargo run --release --example fault_hunt`

use mixsig::macrolib::process::ProcessParams;
use mixsig::msbist::transtest::circuits::circuit1;

fn main() {
    // Circuit 1: the 13-transistor OP1 in a comparator configuration,
    // PRBS of 15 bits at 250 us steps, 0-5 V amplitude.
    let circuit = circuit1(&ProcessParams::nominal());
    println!(
        "circuit 1: {} transistors, {} faults in the universe",
        circuit.bench.netlist().transistor_count(),
        circuit.faults.len()
    );

    // Golden signature: the correlation of the fault-free response with
    // the stimulus-derived correlation signal.
    let golden = circuit
        .bench
        .correlation_signature(circuit.bench.netlist())
        .expect("golden circuit simulates");
    let peak = golden.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
    println!("golden signature: {} lags, peak |R| = {peak:.3}\n", golden.len());

    // Campaign: every fault simulated and scored by detection instances.
    let report = circuit
        .bench
        .run_correlation_campaign(&circuit.faults, 0.02 * peak)
        .expect("campaign runs");

    let mut ranked: Vec<(String, f64)> = report
        .outcomes
        .iter()
        .map(|o| {
            (
                o.fault.name().to_string(),
                o.detection_pct.unwrap_or(100.0),
            )
        })
        .collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));

    println!("fault ranking (detection instances, % of signature lags):");
    for (name, pct) in &ranked {
        let bar: String = std::iter::repeat_n('#', (pct / 2.5) as usize)
            .collect();
        println!("  {name:<14} {pct:>5.1}%  {bar}");
    }

    let coverage = report.coverage(40.0);
    println!(
        "\ncoverage at the 40 %-of-instances criterion: {:.0} % of the fault universe",
        coverage * 100.0
    );
}
