//! The complete on-chip self-test session: monotonicity BIST, quick
//! tests, scan-bus session with its gate-level MISR signature,
//! DAC loopback and digital self-calibration — the "final complete
//! ASUT test" sequence the paper's background sketches, end to end.
//!
//! Run with: `cargo run --release --example full_self_test`

use mixsig::msbist::adc::{AdcErrorModel, DualSlopeAdc};
use mixsig::msbist::bist::quick_test::{run_quick_tests, QuickTestLimits};
use mixsig::msbist::self_test::run_full_self_test;

fn main() {
    let golden = run_quick_tests(&DualSlopeAdc::paper_measured(), &QuickTestLimits::paper());
    let limits = QuickTestLimits::paper().with_reference(golden.compressed.digital_signature);

    let devices = [
        ("healthy macro", DualSlopeAdc::paper_measured()),
        (
            "reference 25 % off",
            DualSlopeAdc::with_errors(AdcErrorModel {
                gain_error: 0.25,
                ..AdcErrorModel::paper_measured()
            }),
        ),
        (
            "violent SC ripple",
            DualSlopeAdc::with_errors(AdcErrorModel {
                ripple_v: 0.025,
                ripple_period_codes: 6.0,
                ..AdcErrorModel::none()
            }),
        ),
    ];

    for (tag, adc) in devices {
        let report = run_full_self_test(&adc, &limits);
        println!("== {tag} ==");
        println!(
            "  1. monotonicity BIST : {} ({} violations over {} ramp samples)",
            pass(report.monotonicity.passed()),
            report.monotonicity.violations.len(),
            report.monotonicity.samples
        );
        println!(
            "  2. quick tests       : analogue {}, digital {}, compressed {}",
            pass(report.quick.analog.passed),
            pass(report.quick.digital.passed),
            pass(report.quick.compressed.passed)
        );
        println!(
            "  3. scan session      : {} levels, path {}",
            report.scan_session.len(),
            pass(report.scan_path_ok(&adc))
        );
        println!(
            "  4. DAC loopback      : {} (max error {:.1} codes)",
            pass(report.loopback.passed(2.5)),
            report.loopback.max_code_error
        );
        println!(
            "  5. self-calibration  : residual INL {:.2} LSB",
            report.calibrated_inl_lsb
        );
        println!(
            "  verdict: {}\n",
            if report.passed(&adc, 2.5) {
                "SHIP"
            } else {
                "REJECT"
            }
        );
    }
}

fn pass(b: bool) -> &'static str {
    if b {
        "pass"
    } else {
        "FAIL"
    }
}
