//! Using the substrates directly: build a custom transistor-level
//! circuit in `anasim`, simulate it, measure the waveforms with
//! `sigproc`, and cross-check against a `linsys` model — the workflow a
//! downstream user follows to bring their own macro under test.
//!
//! The circuit is a two-stage RC-loaded common-source amplifier driven
//! by a step.
//!
//! Run with: `cargo run --release --example custom_circuit`

use mixsig::anasim::devices::{MosParams, MosPolarity};
use mixsig::anasim::netlist::Netlist;
use mixsig::anasim::source::SourceWaveform;
use mixsig::anasim::transient::TransientAnalysis;
use mixsig::linsys::transfer::ContinuousTransferFunction;
use mixsig::sigproc::measure::{rise_time, settling_time};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Build: NMOS common-source stage with resistive load ----------
    let mut nl = Netlist::new();
    let vdd = nl.node("vdd");
    let vin = nl.node("vin");
    let drain = nl.node("drain");
    let out = nl.node("out");

    nl.vsource("VDD", vdd, Netlist::GROUND, SourceWaveform::dc(5.0));
    nl.vsource(
        "VIN",
        vin,
        Netlist::GROUND,
        SourceWaveform::Step {
            initial: 1.3,
            level: 1.2,
            delay: 20e-6,
        },
    );
    nl.mosfet(
        "M1",
        drain,
        vin,
        Netlist::GROUND,
        MosPolarity::Nmos,
        MosParams::nmos_5um().with_aspect(8.0),
    );
    nl.resistor("RD", vdd, drain, 50e3);
    // Output RC filter: pole at 1/(2*pi*10k*1nF) ~ 16 kHz.
    nl.resistor("RF", drain, out, 10e3);
    nl.capacitor("CF", out, Netlist::GROUND, 1e-9);

    // --- Simulate -------------------------------------------------------
    let result = TransientAnalysis::new(200e-6, 0.2e-6).run(&nl)?;
    let w = result.voltage(out);
    println!(
        "common-source amplifier: output steps from {:.2} V to {:.2} V",
        w.value_at(15e-6),
        w.value_at(190e-6)
    );

    // --- Measure ---------------------------------------------------------
    let v_low = w.value_at(15e-6);
    let v_high = w.value_at(190e-6);
    if let Some(tr) = rise_time(&w, v_low, v_high, 0.1, 0.9, 20e-6) {
        println!("10-90 % rise time: {:.1} us", tr * 1e6);
        // --- Cross-check against the linear model -----------------------
        // Small-signal: the capacitor sees RF in series with the drain
        // node resistance (RD parallel the transistor's large ro), so
        // tau ~ (RD + RF)*C = 60 us and the 10-90 % rise is 2.2*tau.
        let r_eff = 50e3 + 10e3;
        let tf = ContinuousTransferFunction::from_coeffs(&[1.0], &[r_eff * 1e-9, 1.0]);
        let tau = -1.0 / tf.poles()[0].re;
        println!(
            "linsys model: pole tau = {:.1} us, predicted rise {:.1} us",
            tau * 1e6,
            2.2 * tau * 1e6
        );
    }
    println!(
        "settling time (10 mV band): {:.1} us after the step",
        (settling_time(&w, 0.010) - 20e-6) * 1e6
    );
    Ok(())
}
