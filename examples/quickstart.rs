//! Quickstart: convert voltages with the dual-slope ADC macro, check it
//! against its datasheet, and run the on-chip quick tests.
//!
//! Run with: `cargo run --release --example quickstart`

use mixsig::msbist::adc::spec::AdcSpecification;
use mixsig::msbist::adc::{AdcConverter, DualSlopeAdc};
use mixsig::msbist::bist::quick_test::{run_quick_tests, QuickTestLimits};
use mixsig::msbist::charac::characterise;

fn main() {
    // The behavioural dual-slope ADC macro with the paper's measured
    // error magnitudes (offset, gain, leakage, SC ripple).
    let adc = DualSlopeAdc::paper_measured();

    println!("dual-slope ADC macro: {} mV/LSB, {} counts, {:.0} kHz clock",
        adc.lsb() * 1e3,
        adc.full_count(),
        adc.clock_hz() / 1e3,
    );

    // Convert a few voltages.
    println!("\nconversions:");
    for vin in [0.0, 0.625, 1.25, 1.875, 2.5] {
        println!(
            "  {vin:.3} V -> code {:>3}  ({:.2} ms conversion)",
            adc.convert(vin),
            adc.conversion_time(vin) * 1e3
        );
    }

    // Full static characterisation: offset, gain, INL, DNL.
    let c = characterise(&adc, 100);
    println!("\ncharacterisation over 100 codes:");
    println!("  zero offset : {:+.2} LSB", c.offset_lsb);
    println!("  gain error  : {:+.2} LSB", c.gain_error_lsb);
    println!("  max INL     : {:.2} LSB", c.max_inl_lsb());
    println!("  max DNL     : {:.2} LSB", c.max_dnl_lsb());

    // Check against the datasheet (the paper's macro fails INL/DNL).
    let report = AdcSpecification::paper().check(&c);
    if report.passed() {
        println!("  specification: PASSED");
    } else {
        println!("  specification: FAILED on {:?}", report.failures());
    }

    // The three on-chip quick tests the BIST macros provide.
    let quick = run_quick_tests(&adc, &QuickTestLimits::paper());
    println!("\nquick on-chip tests:");
    println!("  analogue step test : {}", ok(quick.analog.passed));
    println!("  digital timing test: {}", ok(quick.digital.passed));
    println!(
        "  compressed test    : {} (signature {:#06x}, 2-bit analogue code 0b{:02b})",
        ok(quick.compressed.passed),
        quick.compressed.digital_signature,
        quick.compressed.analog_code
    );
}

fn ok(b: bool) -> &'static str {
    if b {
        "pass"
    } else {
        "FAIL"
    }
}
