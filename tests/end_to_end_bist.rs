//! Integration: the full BIST flow across crates — process sampling
//! (`macrolib`), die modelling (`msbist::device`), quick tests
//! (`msbist::bist`), characterisation and specification checking.

use mixsig::macrolib::process::VariationModel;
use mixsig::msbist::adc::spec::AdcSpecification;
use mixsig::msbist::adc::{AdcConverter, AdcErrorModel, DualSlopeAdc};
use mixsig::msbist::bist::quick_test::{run_quick_tests, QuickTestLimits};
use mixsig::msbist::charac::characterise;
use mixsig::msbist::device::DieBatch;

#[test]
fn batch_screening_end_to_end() {
    let golden = run_quick_tests(&DualSlopeAdc::paper_measured(), &QuickTestLimits::paper());
    let limits = QuickTestLimits::paper().with_reference(golden.compressed.digital_signature);

    let batch = DieBatch::fabricate(10, &VariationModel::typical(), 1996);
    for die in &batch {
        let report = run_quick_tests(&die.adc, &limits);
        assert!(report.passed(), "die {} failed screening", die.index);
    }
}

#[test]
fn characterisation_consistent_across_dies() {
    // Every typical die characterises within loose bounds of nominal.
    let batch = DieBatch::fabricate(5, &VariationModel::typical(), 7);
    for die in &batch {
        let c = characterise(&die.adc, 60);
        assert!(c.offset_lsb.abs() < 0.6, "die {} offset {}", die.index, c.offset_lsb);
        assert!(c.max_dnl_lsb() < 2.0, "die {} dnl", die.index);
        assert!(c.missing_codes.is_empty(), "die {} missing codes", die.index);
    }
}

#[test]
fn quick_tests_are_coarser_than_full_characterisation() {
    // The paper's central observation: the macro passes the quick tests
    // yet fails the INL/DNL specification under full characterisation.
    let adc = DualSlopeAdc::paper_measured();
    let quick = run_quick_tests(&adc, &QuickTestLimits::paper());
    assert!(quick.passed(), "quick tests must pass");

    let c = characterise(&adc, 100);
    let spec = AdcSpecification::paper().check(&c);
    assert!(!spec.passed(), "full characterisation must catch INL/DNL");
    assert!(spec.failures().contains(&"INL") || spec.failures().contains(&"DNL"));
}

#[test]
fn sweep_of_fault_magnitudes_orders_detection() {
    // Larger reference errors always reduce the code at full scale
    // monotonically: a sanity link between fault magnitude and symptom.
    let mut last = u64::MAX;
    for gain in [0.0, 0.02, 0.05, 0.10, 0.20] {
        let adc = DualSlopeAdc::with_errors(AdcErrorModel {
            gain_error: gain,
            ..AdcErrorModel::none()
        });
        let code = adc.convert(2.4);
        assert!(code <= last, "gain {gain} raised the code");
        last = code;
    }
}

#[test]
fn conversion_time_scales_with_input() {
    let adc = DualSlopeAdc::ideal();
    let t_low = adc.conversion_time(0.1);
    let t_high = adc.conversion_time(2.4);
    assert!(t_high > t_low);
    assert!(t_high <= 5.6e-3, "worst case inside the paper spec");
}
