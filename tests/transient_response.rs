//! Integration: the transient-response testing flow across crates —
//! macro library circuits, fault injection, simulation and detection
//! statistics.

use mixsig::faultsim::inject::inject;
use mixsig::faultsim::model::Fault;
use mixsig::macrolib::process::ProcessParams;
use mixsig::msbist::transtest::circuits::circuit1;
use mixsig::msbist::transtest::detect::DetectionFigure;

#[test]
fn circuit1_fault_universe_simulates_and_detects() {
    let c1 = circuit1(&ProcessParams::nominal());

    // Golden.
    let golden = c1
        .bench
        .correlation_signature(c1.bench.netlist())
        .expect("golden simulates");
    let peak = golden.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
    assert!(peak > 0.5, "golden signature should carry energy");

    // A subset of the universe (keep the integration test quick).
    let subset: Vec<Fault> = c1.faults.iter().take(4).cloned().collect();
    let report = c1
        .bench
        .run_correlation_campaign(&subset, 0.02 * peak)
        .expect("campaign runs");
    assert_eq!(report.outcomes.len(), 4);
    for o in &report.outcomes {
        assert!(
            o.figure_pct() > 30.0,
            "{} under-detected",
            o.fault.name()
        );
    }

    let mut fig = DetectionFigure::new();
    fig.add_campaign(1, &report);
    assert_eq!(fig.circuit(1).len(), 4);
    assert!(fig.floor(1).expect("entries") > 30.0);
}

#[test]
fn injected_fault_changes_the_response() {
    let c1 = circuit1(&ProcessParams::nominal());
    let golden = c1.bench.response(c1.bench.netlist()).expect("golden");
    let fault = &c1.faults[4]; // n7-sa0: the diff-pair output clamped low
    let faulty_nl = inject(c1.bench.netlist(), fault);
    let faulty = c1.bench.response(&faulty_nl).expect("faulty simulates");
    let rms_diff = golden
        .iter()
        .zip(&faulty)
        .map(|(a, b)| (a - b).powi(2))
        .sum::<f64>()
        .sqrt()
        / (golden.len() as f64).sqrt();
    assert!(rms_diff > 0.2, "rms difference only {rms_diff}");
}

#[test]
fn fault_injection_is_pure() {
    // The golden netlist must not accumulate fault hardware across a
    // campaign (faults are injected on clones).
    let c1 = circuit1(&ProcessParams::nominal());
    let before = c1.bench.netlist().device_count();
    let _ = inject(c1.bench.netlist(), &c1.faults[0]);
    let _ = inject(c1.bench.netlist(), &c1.faults[1]);
    assert_eq!(c1.bench.netlist().device_count(), before);
}
