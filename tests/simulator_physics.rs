//! Integration: cross-checks between independent substrates — the
//! circuit simulator (`anasim`), the linear-systems toolbox (`linsys`)
//! and the DSP layer (`sigproc`) must agree on shared physics.

use mixsig::anasim::netlist::Netlist;
use mixsig::anasim::source::SourceWaveform;
use mixsig::anasim::transient::{StartCondition, TransientAnalysis};
use mixsig::linsys::response::{impulse_response, step_response};
use mixsig::linsys::transfer::ContinuousTransferFunction;
use mixsig::macrolib::process::ProcessParams;
use mixsig::macrolib::sc_integrator::{ScIntegrator, ScIntegratorParams};
use mixsig::sigproc::measure::{first_crossing_after, CrossingDirection};

/// RC low-pass: the circuit simulator and the state-space model must
/// produce the same step response.
#[test]
fn rc_circuit_matches_state_space_model() {
    let r = 10e3;
    let c = 1e-9; // tau = 10 us

    // Circuit.
    let mut nl = Netlist::new();
    let vin = nl.node("in");
    let out = nl.node("out");
    nl.vsource("V1", vin, Netlist::GROUND, SourceWaveform::step(1.0, 0.0));
    nl.resistor("R1", vin, out, r);
    nl.capacitor("C1", out, Netlist::GROUND, c);
    let res = TransientAnalysis::new(50e-6, 0.1e-6)
        .start_condition(StartCondition::Uic)
        .run(&nl)
        .expect("rc simulates");
    let w = res.voltage(out);

    // Model: H(s) = 1/(RC s + 1).
    let ss = ContinuousTransferFunction::from_coeffs(&[1.0], &[r * c, 1.0]).to_state_space();
    let model = step_response(&ss, 0.5e-6, 100);

    for (k, &mv) in model.iter().enumerate() {
        let t = k as f64 * 0.5e-6;
        let cv = w.value_at(t);
        assert!(
            (cv - mv).abs() < 0.01,
            "t = {t:.2e}: circuit {cv:.4} vs model {mv:.4}"
        );
    }
}

/// Second-order RLC: oscillation frequency agrees with the poles of the
/// transfer function.
#[test]
fn rlc_ringing_matches_pole_frequency() {
    let l = 1e-3;
    let c = 1e-9;
    let r = 200.0; // light damping

    let mut nl = Netlist::new();
    let vin = nl.node("in");
    let mid = nl.node("mid");
    let out = nl.node("out");
    nl.vsource("V1", vin, Netlist::GROUND, SourceWaveform::step(1.0, 0.0));
    nl.resistor("R1", vin, mid, r);
    nl.inductor("L1", mid, out, l);
    nl.capacitor("C1", out, Netlist::GROUND, c);
    let res = TransientAnalysis::new(50e-6, 10e-9)
        .start_condition(StartCondition::Uic)
        .run(&nl)
        .expect("rlc simulates");
    let w = res.voltage(out);

    // Poles of 1/(LCs^2 + RCs + 1).
    let tf = ContinuousTransferFunction::from_coeffs(&[1.0], &[l * c, r * c, 1.0]);
    let poles = tf.poles();
    let wd = poles[0].im.abs(); // damped natural frequency
    assert!(wd > 0.0, "expected complex poles, got {poles:?}");

    // Measure the period between the first two upward crossings of the
    // final value.
    let t1 = first_crossing_after(&w, 1.0, CrossingDirection::Rising, 0.0).expect("crossing 1");
    let t2 = first_crossing_after(&w, 1.0, CrossingDirection::Rising, t1 + 1e-6)
        .expect("crossing 2");
    let measured_wd = 2.0 * std::f64::consts::PI / (t2 - t1);
    assert!(
        (measured_wd - wd).abs() / wd < 0.05,
        "measured {measured_wd:.3e}, poles say {wd:.3e}"
    );
}

/// The behavioural SC integrator tracks the ideal z-domain model the
/// paper quotes (`H(z) = -z^-1 / (6.8 (1 - z^-1))`).
#[test]
fn sc_integrator_matches_discrete_model() {
    let params = ScIntegratorParams::behavioral();
    let mut nl = Netlist::new();
    let sc = ScIntegrator::build(&mut nl, "sc", &ProcessParams::nominal(), &params);
    nl.vsource(
        "VIN",
        sc.vin,
        Netlist::GROUND,
        SourceWaveform::dc(params.vag + 0.4),
    );
    let cycles = 10usize;
    let res = TransientAnalysis::new(params.clock_period * cycles as f64, 25e-9)
        .run(&nl)
        .expect("sc simulates");
    let w = res.voltage(sc.out);

    let model = sc.ideal_transfer_function();
    let y_model = model.step_response(cycles); // per-cycle response to 1 V
    #[allow(clippy::needless_range_loop)] // k is a cycle number used on both sides
    for k in 2..cycles {
        // Just after cycle k's phase-2 transfer the output holds k steps
        // (the reset consumes only phase 1 of the first cycle).
        let circuit = w.value_at((k as f64 + 0.02) * params.clock_period) - params.vag;
        let ideal = y_model[k] * 0.4; // 0.4 V input above analogue ground
        assert!(
            (circuit - ideal).abs() < 0.03,
            "cycle {k}: circuit {circuit:.4} vs model {ideal:.4}"
        );
    }
}

/// Impulse response measured from the simulator matches `linsys`.
#[test]
fn measured_and_modelled_impulse_responses_agree() {
    // First-order RC again, via the small-signal pulse technique used by
    // transtest's approach 2.
    let r = 10e3;
    let c = 2e-9; // tau = 20 us
    let ss = ContinuousTransferFunction::from_coeffs(&[1.0], &[r * c, 1.0]).to_state_space();
    let h_model = impulse_response(&ss, 5e-6, 10);

    // Finite pulse of width 1 us, area 0.1 V·us.
    let run_with = |wave: SourceWaveform| {
        let mut nl = Netlist::new();
        let vin = nl.node("in");
        let out = nl.node("out");
        nl.vsource("V1", vin, Netlist::GROUND, wave);
        nl.resistor("R1", vin, out, r);
        nl.capacitor("C1", out, Netlist::GROUND, c);
        TransientAnalysis::new(60e-6, 0.1e-6)
            .run(&nl)
            .expect("simulates")
            .voltage(out)
    };
    let base = run_with(SourceWaveform::dc(0.0));
    let pulse = run_with(SourceWaveform::Pwl(vec![
        (0.0, 0.0),
        (1e-9, 0.1),
        (1e-6, 0.1),
        (1e-6 + 1e-9, 0.0),
    ]));
    let area = 0.1 * 1e-6;
    for (k, &hm) in h_model.iter().enumerate().take(8).skip(1) {
        let t = 1e-6 + k as f64 * 5e-6;
        let h_meas = (pulse.value_at(t) - base.value_at(t)) / area;
        assert!(
            (h_meas - hm).abs() / hm < 0.06,
            "k = {k}: measured {h_meas:.1} vs model {hm:.1}"
        );
    }
}
