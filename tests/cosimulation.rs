//! Integration: mixed-signal co-simulation across all three simulation
//! substrates — the analogue loop (`anasim` transient session), the
//! gate-level controller (`digisim`), and the behavioural macro model
//! (`msbist::adc`) as the reference.

use mixsig::macrolib::process::{ProcessParams, VariationModel};
use mixsig::msbist::adc::{AdcConverter, CosimAdc, DualSlopeAdc};

/// The co-simulated conversion transfer matches the behavioural model
/// across the input range (one staircase, scaled resolutions).
#[test]
fn cosim_transfer_matches_behavioural_macro() {
    let counts = 20u64;
    let cosim = CosimAdc::new(ProcessParams::nominal()).with_resolution(counts);
    let behavioural = DualSlopeAdc::ideal();
    let scale = behavioural.full_count() as f64 / counts as f64;

    for k in 0..8 {
        let vin = 0.15 + k as f64 * 0.3;
        let c = cosim.convert(vin).expect("conversion converges").code as f64;
        let b = behavioural.convert(vin) as f64 / scale;
        assert!((c - b).abs() <= 1.5, "vin {vin}: cosim {c} vs model {b}");
    }
}

/// Dual-slope conversion is ratiometric: process skew of the integrator
/// RC cancels between the two phases, so co-simulated codes are
/// unchanged on skewed dies — the architectural property the paper's
/// macro exploits.
#[test]
fn cosim_codes_are_ratiometric_under_process_skew() {
    let counts = 20u64;
    let nominal = CosimAdc::new(ProcessParams::nominal()).with_resolution(counts);

    let mut fast = ProcessParams::nominal();
    fast.resistor_scale = 0.85;
    fast.capacitor_scale = 1.10;
    let skewed = CosimAdc::new(fast).with_resolution(counts);

    for vin in [0.45, 1.05, 1.95] {
        let a = nominal.convert(vin).expect("nominal converges").code;
        let b = skewed.convert(vin).expect("skewed converges").code;
        assert!(
            (a as i64 - b as i64).abs() <= 1,
            "vin {vin}: nominal {a} vs skewed {b}"
        );
    }
    let _ = VariationModel::typical();
}

/// Over-range inputs terminate — the integrator clamps, the reference
/// phase runs long, and either the comparator fires near the gate-level
/// overflow limit or the limit itself ends the conversion. Never a hang.
#[test]
fn cosim_over_range_input_saturates_cleanly() {
    let cosim = CosimAdc::new(ProcessParams::nominal()).with_resolution(20);
    let conv = cosim.convert(6.0).expect("over-range still terminates");
    assert!(
        conv.code > 20,
        "over-range code {} should exceed full scale",
        conv.code
    );
    assert!(conv.code <= 40, "code {} within overflow limit", conv.code);
}
