//! Property-based tests for the signal-processing substrate.

use linsys::complex::Complex;
use proptest::prelude::*;
use sigproc::convolution::{convolve, convolve_fft};
use sigproc::correlation::{
    autocorrelation, correlation_coefficient, detection_instances, energy,
    normalized_cross_correlation,
};
use sigproc::fft::{fft, fft_real, ifft};
use sigproc::prbs::Prbs;
use sigproc::signature::{LevelSignature, Misr};

proptest! {
    #[test]
    fn fft_roundtrip_recovers_signal(
        values in proptest::collection::vec(-100.0..100.0f64, 1..64),
    ) {
        let n = values.len().next_power_of_two();
        let mut data: Vec<Complex> = values.iter().map(|&v| Complex::real(v)).collect();
        data.resize(n, Complex::ZERO);
        let original = data.clone();
        fft(&mut data);
        ifft(&mut data);
        for (a, b) in data.iter().zip(&original) {
            prop_assert!((*a - *b).abs() < 1e-8);
        }
    }

    #[test]
    fn parseval_holds_for_random_signals(
        values in proptest::collection::vec(-10.0..10.0f64, 2..64),
    ) {
        let n = values.len().next_power_of_two() as f64;
        let time_energy: f64 = values.iter().map(|v| v * v).sum();
        let spec = fft_real(&values);
        let freq_energy: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / n;
        prop_assert!((time_energy - freq_energy).abs() < 1e-6 * (1.0 + time_energy));
    }

    #[test]
    fn convolution_commutes(
        a in proptest::collection::vec(-5.0..5.0f64, 1..20),
        b in proptest::collection::vec(-5.0..5.0f64, 1..20),
    ) {
        let ab = convolve(&a, &b);
        let ba = convolve(&b, &a);
        prop_assert_eq!(ab.len(), ba.len());
        for (x, y) in ab.iter().zip(&ba) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn fft_convolution_matches_direct(
        a in proptest::collection::vec(-5.0..5.0f64, 1..40),
        b in proptest::collection::vec(-5.0..5.0f64, 1..40),
    ) {
        let direct = convolve(&a, &b);
        let fast = convolve_fft(&a, &b);
        for (x, y) in direct.iter().zip(&fast) {
            prop_assert!((x - y).abs() < 1e-7);
        }
    }

    #[test]
    fn convolution_delta_is_identity(
        a in proptest::collection::vec(-5.0..5.0f64, 1..20),
    ) {
        let y = convolve(&a, &[1.0]);
        prop_assert_eq!(y, a);
    }

    #[test]
    fn normalized_correlation_bounded(
        a in proptest::collection::vec(-5.0..5.0f64, 1..30),
        b in proptest::collection::vec(-5.0..5.0f64, 1..30),
    ) {
        for v in normalized_cross_correlation(&a, &b) {
            prop_assert!(v.abs() <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn autocorrelation_peak_at_zero_lag(
        a in proptest::collection::vec(-5.0..5.0f64, 2..30),
    ) {
        prop_assume!(energy(&a) > 1e-6);
        let r = autocorrelation(&a);
        let centre = a.len() - 1;
        for v in &r {
            prop_assert!(v.abs() <= r[centre] + 1e-9);
        }
    }

    #[test]
    fn correlation_coefficient_symmetry(
        a in proptest::collection::vec(-5.0..5.0f64, 3..20),
        b in proptest::collection::vec(-5.0..5.0f64, 3..20),
    ) {
        let n = a.len().min(b.len());
        let c1 = correlation_coefficient(&a[..n], &b[..n]);
        let c2 = correlation_coefficient(&b[..n], &a[..n]);
        prop_assert!((c1 - c2).abs() < 1e-12);
        prop_assert!(c1.abs() <= 1.0 + 1e-12);
    }

    #[test]
    fn detection_instances_bounds(
        golden in proptest::collection::vec(-5.0..5.0f64, 1..40),
        delta in proptest::collection::vec(-1.0..1.0f64, 1..40),
        threshold in 0.001..2.0f64,
    ) {
        let n = golden.len().min(delta.len());
        let faulty: Vec<f64> =
            golden[..n].iter().zip(&delta[..n]).map(|(g, d)| g + d).collect();
        let pct = detection_instances(&golden[..n], &faulty, threshold);
        prop_assert!((0.0..=100.0).contains(&pct));
        // Identical signatures never detect.
        prop_assert_eq!(detection_instances(&golden[..n], &golden[..n], threshold), 0.0);
    }

    #[test]
    fn prbs_is_maximal_and_balanced(stages in 2u32..12) {
        let mut g = Prbs::new(stages);
        let seq = g.sequence();
        prop_assert_eq!(seq.len(), (1usize << stages) - 1);
        let ones = seq.iter().filter(|&&b| b).count();
        prop_assert_eq!(ones, 1usize << (stages - 1));
    }

    #[test]
    fn prbs_seed_only_shifts_phase(stages in 3u32..8, seed in 1u32..100) {
        // Only the masked low bits seed the register; skip seeds that
        // mask to zero (the constructor rejects them).
        prop_assume!(seed & ((1 << stages) - 1) != 0);
        let mut a = Prbs::new(stages);
        let ref_seq = a.sequence();
        let period = ref_seq.len();
        let b: Vec<bool> = Prbs::with_seed(stages, seed).take(period).collect();
        let doubled: Vec<bool> = ref_seq.iter().chain(ref_seq.iter()).copied().collect();
        let found = (0..period).any(|k| doubled[k..k + period] == b[..]);
        prop_assert!(found, "seeded sequence is not a rotation");
    }

    #[test]
    fn misr_detects_any_single_corruption(
        words in proptest::collection::vec(0u16..1024, 1..50),
        idx in 0usize..50,
        flip in 1u16..1024,
    ) {
        let idx = idx % words.len();
        let golden = Misr::of(words.iter().copied());
        let mut bad = words.clone();
        bad[idx] ^= flip;
        prop_assert_ne!(golden, Misr::of(bad));
    }

    #[test]
    fn level_signature_is_monotone(v1 in 0.0..5.0f64, v2 in 0.0..5.0f64) {
        let s = LevelSignature::paper_defaults();
        if v1 <= v2 {
            prop_assert!(s.encode(v1) <= s.encode(v2));
        } else {
            prop_assert!(s.encode(v1) >= s.encode(v2));
        }
    }
}
