//! Linear convolution.
//!
//! The paper models a mixed-signal path as the stimulus convolved with the
//! impulse response of each block it propagates through:
//! `y(t) = x(t) * h(t) * z(t)`.

use crate::fft::{fft, ifft};
use linsys::complex::Complex;

/// Direct (time-domain) linear convolution; output length is
/// `a.len() + b.len() − 1`.
///
/// # Example
///
/// ```
/// use sigproc::convolution::convolve;
///
/// let y = convolve(&[1.0, 2.0], &[1.0, 1.0, 1.0]);
/// assert_eq!(y, vec![1.0, 3.0, 3.0, 2.0]);
/// ```
pub fn convolve(a: &[f64], b: &[f64]) -> Vec<f64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0.0; a.len() + b.len() - 1];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0.0 {
            continue;
        }
        for (j, &bj) in b.iter().enumerate() {
            out[i + j] += ai * bj;
        }
    }
    out
}

/// FFT-based linear convolution; identical result to [`convolve`] up to
/// floating-point error, asymptotically faster for long signals.
pub fn convolve_fft(a: &[f64], b: &[f64]) -> Vec<f64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let out_len = a.len() + b.len() - 1;
    let n = out_len.next_power_of_two();
    let mut fa: Vec<Complex> = a.iter().map(|&v| Complex::real(v)).collect();
    let mut fb: Vec<Complex> = b.iter().map(|&v| Complex::real(v)).collect();
    fa.resize(n, Complex::ZERO);
    fb.resize(n, Complex::ZERO);
    fft(&mut fa);
    fft(&mut fb);
    for (x, y) in fa.iter_mut().zip(&fb) {
        *x = *x * *y;
    }
    ifft(&mut fa);
    fa[..out_len].iter().map(|z| z.re).collect()
}

/// Chains convolution through several block impulse responses, modelling
/// the paper's composite path `x * h₁ * h₂ * …`.
pub fn convolve_chain(stimulus: &[f64], blocks: &[&[f64]]) -> Vec<f64> {
    let mut acc = stimulus.to_vec();
    for h in blocks {
        acc = convolve(&acc, h);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_kernel() {
        let x = [1.0, -2.0, 3.0];
        assert_eq!(convolve(&x, &[1.0]), x.to_vec());
    }

    #[test]
    fn commutativity() {
        let a = [1.0, 2.0, 3.0];
        let b = [0.5, -1.0];
        assert_eq!(convolve(&a, &b), convolve(&b, &a));
    }

    #[test]
    fn linearity_in_first_argument() {
        let a = [1.0, 2.0];
        let b = [3.0, 4.0];
        let k = [0.5, 0.25, 0.125];
        let sum: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        let lhs = convolve(&sum, &k);
        let rhs: Vec<f64> = convolve(&a, &k)
            .iter()
            .zip(convolve(&b, &k).iter())
            .map(|(x, y)| x + y)
            .collect();
        for (x, y) in lhs.iter().zip(&rhs) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn fft_matches_direct() {
        let a: Vec<f64> = (0..37).map(|i| ((i * 13) % 7) as f64 - 3.0).collect();
        let b: Vec<f64> = (0..23).map(|i| ((i * 5) % 11) as f64 * 0.3).collect();
        let direct = convolve(&a, &b);
        let fast = convolve_fft(&a, &b);
        assert_eq!(direct.len(), fast.len());
        for (x, y) in direct.iter().zip(&fast) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_input_yields_empty() {
        assert!(convolve(&[], &[1.0]).is_empty());
        assert!(convolve_fft(&[1.0], &[]).is_empty());
    }

    #[test]
    fn chain_is_associative() {
        let x = [1.0, 0.0, -1.0];
        let h1 = [1.0, 1.0];
        let h2 = [0.5, 0.5];
        let chained = convolve_chain(&x, &[&h1, &h2]);
        let grouped = convolve(&x, &convolve(&h1, &h2));
        for (a, b) in chained.iter().zip(&grouped) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn output_length_rule() {
        let y = convolve(&[0.0; 10], &[0.0; 4]);
        assert_eq!(y.len(), 13);
    }
}
