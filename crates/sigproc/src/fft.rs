//! Radix-2 fast Fourier transform.

use linsys::complex::Complex;

/// In-place iterative radix-2 decimation-in-time FFT.
///
/// # Panics
///
/// Panics if the length is not a power of two (or is zero).
///
/// # Example
///
/// ```
/// use linsys::complex::Complex;
/// use sigproc::fft::{fft, ifft};
///
/// let mut data: Vec<Complex> = (0..8).map(|k| Complex::real(k as f64)).collect();
/// let original = data.clone();
/// fft(&mut data);
/// ifft(&mut data);
/// for (a, b) in data.iter().zip(&original) {
///     assert!((*a - *b).abs() < 1e-12);
/// }
/// ```
pub fn fft(data: &mut [Complex]) {
    fft_dir(data, false);
}

/// In-place inverse FFT (includes the `1/N` normalisation).
///
/// # Panics
///
/// Panics if the length is not a power of two (or is zero).
pub fn ifft(data: &mut [Complex]) {
    fft_dir(data, true);
    let n = data.len() as f64;
    for z in data.iter_mut() {
        *z = *z * (1.0 / n);
    }
}

fn fft_dir(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    assert!(n.is_power_of_two() && n > 0, "fft length must be a power of two");
    if n == 1 {
        return;
    }

    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if j > i {
            data.swap(i, j);
        }
    }

    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::from_polar(1.0, ang);
        for start in (0..n).step_by(len) {
            let mut w = Complex::ONE;
            for k in 0..len / 2 {
                let u = data[start + k];
                let v = data[start + k + len / 2] * w;
                data[start + k] = u + v;
                data[start + k + len / 2] = u - v;
                w = w * wlen;
            }
        }
        len <<= 1;
    }
}

/// FFT of a real sequence, zero-padded up to the next power of two.
/// Returns the full complex spectrum.
pub fn fft_real(signal: &[f64]) -> Vec<Complex> {
    let n = signal.len().max(1).next_power_of_two();
    let mut data: Vec<Complex> = signal.iter().map(|&v| Complex::real(v)).collect();
    data.resize(n, Complex::ZERO);
    fft(&mut data);
    data
}

/// Magnitude spectrum of a real signal (first half only, DC to Nyquist).
pub fn magnitude_spectrum(signal: &[f64]) -> Vec<f64> {
    let spec = fft_real(signal);
    spec[..spec.len() / 2 + 1].iter().map(|z| z.abs()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut data = vec![Complex::ZERO; 8];
        data[0] = Complex::ONE;
        fft(&mut data);
        for z in data {
            assert!((z - Complex::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn fft_of_dc_concentrates_at_bin_zero() {
        let mut data = vec![Complex::ONE; 8];
        fft(&mut data);
        assert!((data[0].re - 8.0).abs() < 1e-12);
        for z in &data[1..] {
            assert!(z.abs() < 1e-12);
        }
    }

    #[test]
    fn single_tone_lands_in_its_bin() {
        let n = 64;
        let k0 = 5;
        let signal: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * k0 as f64 * i as f64 / n as f64).cos())
            .collect();
        let mag = magnitude_spectrum(&signal);
        let peak = mag
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(peak, k0);
    }

    #[test]
    fn parseval_theorem_holds() {
        let signal: Vec<f64> = (0..32).map(|i| ((i * 7) % 13) as f64 - 6.0).collect();
        let time_energy: f64 = signal.iter().map(|v| v * v).sum();
        let spec = fft_real(&signal);
        let freq_energy: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / 32.0;
        assert!((time_energy - freq_energy).abs() < 1e-9);
    }

    #[test]
    fn ifft_inverts_fft() {
        let original: Vec<Complex> = (0..16)
            .map(|k| Complex::new(k as f64, (k * k % 7) as f64))
            .collect();
        let mut data = original.clone();
        fft(&mut data);
        ifft(&mut data);
        for (a, b) in data.iter().zip(&original) {
            assert!((*a - *b).abs() < 1e-11);
        }
    }

    #[test]
    fn linearity() {
        let a: Vec<f64> = (0..16).map(|i| (i as f64).sin()).collect();
        let b: Vec<f64> = (0..16).map(|i| (i as f64 * 0.7).cos()).collect();
        let sum: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        let fa = fft_real(&a);
        let fb = fft_real(&b);
        let fs = fft_real(&sum);
        for k in 0..16 {
            assert!((fs[k] - (fa[k] + fb[k])).abs() < 1e-10);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let mut data = vec![Complex::ZERO; 6];
        fft(&mut data);
    }

    #[test]
    fn real_fft_pads_to_power_of_two() {
        let spec = fft_real(&[1.0, 2.0, 3.0]);
        assert_eq!(spec.len(), 4);
    }
}
