//! Waveform measurements.
//!
//! These extractors stand in for the bench instruments of the paper:
//! fall-time meters, threshold comparators and settling detectors applied
//! to simulated node waveforms.

use anasim::waveform::Waveform;

/// Direction of a threshold crossing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrossingDirection {
    /// Signal passes the threshold going up.
    Rising,
    /// Signal passes the threshold going down.
    Falling,
    /// Either direction.
    Either,
}

/// Times at which `w` crosses `threshold` in the given direction, using
/// linear interpolation between samples.
pub fn threshold_crossings(w: &Waveform, threshold: f64, dir: CrossingDirection) -> Vec<f64> {
    let t = w.times();
    let v = w.values();
    let mut out = Vec::new();
    for i in 1..w.len() {
        let (v0, v1) = (v[i - 1], v[i]);
        let rising = v0 < threshold && v1 >= threshold;
        let falling = v0 > threshold && v1 <= threshold;
        let hit = match dir {
            CrossingDirection::Rising => rising,
            CrossingDirection::Falling => falling,
            CrossingDirection::Either => rising || falling,
        };
        if hit {
            let frac = (threshold - v0) / (v1 - v0);
            out.push(t[i - 1] + frac * (t[i] - t[i - 1]));
        }
    }
    out
}

/// First crossing of `threshold` after `t_start`, if any.
pub fn first_crossing_after(
    w: &Waveform,
    threshold: f64,
    dir: CrossingDirection,
    t_start: f64,
) -> Option<f64> {
    threshold_crossings(w, threshold, dir)
        .into_iter()
        .find(|&t| t >= t_start)
}

/// Fall time of a monotonic transition: time from crossing
/// `hi_frac` to crossing `lo_frac` of the span between `v_high` and
/// `v_low`, starting the search at `t_start`.
///
/// Returns `None` if either level is never crossed.
pub fn fall_time(
    w: &Waveform,
    v_high: f64,
    v_low: f64,
    hi_frac: f64,
    lo_frac: f64,
    t_start: f64,
) -> Option<f64> {
    let span = v_high - v_low;
    let hi_level = v_low + span * hi_frac;
    let lo_level = v_low + span * lo_frac;
    let t_hi = first_crossing_after(w, hi_level, CrossingDirection::Falling, t_start)?;
    let t_lo = first_crossing_after(w, lo_level, CrossingDirection::Falling, t_hi)?;
    Some(t_lo - t_hi)
}

/// Rise time of a monotonic transition from `lo_frac` to `hi_frac` of the
/// span, starting the search at `t_start`.
pub fn rise_time(
    w: &Waveform,
    v_low: f64,
    v_high: f64,
    lo_frac: f64,
    hi_frac: f64,
    t_start: f64,
) -> Option<f64> {
    let span = v_high - v_low;
    let lo_level = v_low + span * lo_frac;
    let hi_level = v_low + span * hi_frac;
    let t_lo = first_crossing_after(w, lo_level, CrossingDirection::Rising, t_start)?;
    let t_hi = first_crossing_after(w, hi_level, CrossingDirection::Rising, t_lo)?;
    Some(t_hi - t_lo)
}

/// Time at which the waveform last leaves the band `final ± tolerance`
/// (i.e. the settling time to within `tolerance` of its final value).
///
/// Returns the start time if the signal never leaves the band.
pub fn settling_time(w: &Waveform, tolerance: f64) -> f64 {
    if w.is_empty() {
        return 0.0;
    }
    let final_v = *w.values().last().expect("non-empty");
    let t = w.times();
    let v = w.values();
    let mut settled_at = w.t_start();
    for i in 0..w.len() {
        if (v[i] - final_v).abs() > tolerance {
            settled_at = t[i];
        }
    }
    settled_at
}

/// Mean value of the waveform samples over `[t0, t1]` by trapezoidal
/// integration on the sample grid.
pub fn mean_between(w: &Waveform, t0: f64, t1: f64) -> f64 {
    assert!(t1 > t0, "t1 must exceed t0");
    // Integrate with a fine uniform grid over the window.
    let n = 256;
    let dt = (t1 - t0) / n as f64;
    let mut acc = 0.0;
    for i in 0..=n {
        let weight = if i == 0 || i == n { 0.5 } else { 1.0 };
        acc += weight * w.value_at(t0 + i as f64 * dt);
    }
    acc / n as f64
}

/// Peak-to-peak amplitude.
pub fn peak_to_peak(w: &Waveform) -> f64 {
    if w.is_empty() {
        0.0
    } else {
        w.max() - w.min()
    }
}

/// Linear-regression slope of the waveform over `[t0, t1]`, in
/// value/second — used to measure integrator ramp rates.
pub fn slope_between(w: &Waveform, t0: f64, t1: f64) -> f64 {
    assert!(t1 > t0, "t1 must exceed t0");
    let n = 128;
    let dt = (t1 - t0) / n as f64;
    let mut sx = 0.0;
    let mut sy = 0.0;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    for i in 0..=n {
        let t = t0 + i as f64 * dt;
        let y = w.value_at(t);
        sx += t;
        sy += y;
        sxx += t * t;
        sxy += t * y;
    }
    let m = (n + 1) as f64;
    (m * sxy - sx * sy) / (m * sxx - sx * sx)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp_down() -> Waveform {
        // 5 V falling linearly to 0 V over 1 ms.
        Waveform::from_samples(
            (0..=100).map(|i| i as f64 * 1e-5).collect(),
            (0..=100).map(|i| 5.0 - i as f64 * 0.05).collect(),
        )
    }

    #[test]
    fn crossing_interpolates() {
        let w = Waveform::from_samples(vec![0.0, 1.0], vec![0.0, 2.0]);
        let xs = threshold_crossings(&w, 1.0, CrossingDirection::Rising);
        assert_eq!(xs.len(), 1);
        assert!((xs[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn crossing_direction_filter() {
        let w = Waveform::from_samples(vec![0.0, 1.0, 2.0], vec![0.0, 2.0, 0.0]);
        assert_eq!(threshold_crossings(&w, 1.0, CrossingDirection::Rising).len(), 1);
        assert_eq!(threshold_crossings(&w, 1.0, CrossingDirection::Falling).len(), 1);
        assert_eq!(threshold_crossings(&w, 1.0, CrossingDirection::Either).len(), 2);
    }

    #[test]
    fn fall_time_of_linear_ramp() {
        // 90% to 10% of a 1 ms linear fall = 0.8 ms.
        let ft = fall_time(&ramp_down(), 5.0, 0.0, 0.9, 0.1, 0.0).unwrap();
        assert!((ft - 0.8e-3).abs() < 1e-8);
    }

    #[test]
    fn rise_time_symmetric() {
        let w = Waveform::from_samples(
            (0..=100).map(|i| i as f64 * 1e-5).collect(),
            (0..=100).map(|i| i as f64 * 0.05).collect(),
        );
        let rt = rise_time(&w, 0.0, 5.0, 0.1, 0.9, 0.0).unwrap();
        assert!((rt - 0.8e-3).abs() < 1e-8);
    }

    #[test]
    fn fall_time_absent_when_no_fall() {
        let w = Waveform::from_samples(vec![0.0, 1.0], vec![0.0, 5.0]);
        assert!(fall_time(&w, 5.0, 0.0, 0.9, 0.1, 0.0).is_none());
    }

    #[test]
    fn settling_detects_last_excursion() {
        let w = Waveform::from_samples(
            vec![0.0, 1.0, 2.0, 3.0, 4.0],
            vec![0.0, 2.0, 0.9, 1.01, 1.0],
        );
        let ts = settling_time(&w, 0.05);
        assert_eq!(ts, 2.0);
    }

    #[test]
    fn mean_of_constant() {
        let w = Waveform::from_samples(vec![0.0, 1.0], vec![2.0, 2.0]);
        assert!((mean_between(&w, 0.0, 1.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn slope_of_linear_ramp() {
        let s = slope_between(&ramp_down(), 0.1e-3, 0.9e-3);
        assert!((s + 5000.0).abs() < 1.0); // -5 V/ms
    }

    #[test]
    fn peak_to_peak_of_triangle() {
        let w = Waveform::from_samples(vec![0.0, 1.0, 2.0], vec![-1.0, 3.0, -1.0]);
        assert_eq!(peak_to_peak(&w), 4.0);
    }
}
