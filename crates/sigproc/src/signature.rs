//! Test-response compaction.
//!
//! The paper's compressed tests squeeze long response sequences into
//! short signatures that on-chip logic can compare against expected
//! values: a multiple-input signature register (MISR) for digital output
//! codes, and a 2-bit analogue level signature produced by the DC level
//! sensor comparing the integrator output against two thresholds.

/// A multiple-input signature register compacting 16-bit words.
///
/// Uses the CCITT CRC-16 polynomial `x¹⁶ + x¹² + x⁵ + 1` in a Galois
/// configuration. Identical input sequences always produce identical
/// signatures; differing sequences collide with probability ≈ 2⁻¹⁶.
///
/// # Example
///
/// ```
/// use sigproc::signature::Misr;
///
/// let mut a = Misr::new();
/// a.absorb_all([1u16, 2, 3]);
/// let mut b = Misr::new();
/// b.absorb_all([1u16, 2, 3]);
/// assert_eq!(a.signature(), b.signature());
///
/// let mut c = Misr::new();
/// c.absorb_all([1u16, 2, 4]);
/// assert_ne!(a.signature(), c.signature());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Misr {
    state: u16,
}

impl Default for Misr {
    fn default() -> Self {
        Misr::new()
    }
}

impl Misr {
    /// CCITT polynomial (bit-reversed Galois form).
    const POLY: u16 = 0x8408;

    /// Creates a MISR seeded with the customary all-ones state.
    pub fn new() -> Self {
        Misr { state: 0xFFFF }
    }

    /// Absorbs one 16-bit word.
    pub fn absorb(&mut self, word: u16) {
        let mut s = self.state ^ word;
        for _ in 0..16 {
            s = if s & 1 != 0 { (s >> 1) ^ Self::POLY } else { s >> 1 };
        }
        self.state = s;
    }

    /// Absorbs a sequence of words.
    pub fn absorb_all<I: IntoIterator<Item = u16>>(&mut self, words: I) {
        for w in words {
            self.absorb(w);
        }
    }

    /// The current signature.
    pub fn signature(&self) -> u16 {
        self.state
    }

    /// One-shot signature of a word sequence.
    pub fn of<I: IntoIterator<Item = u16>>(words: I) -> u16 {
        let mut m = Misr::new();
        m.absorb_all(words);
        m.signature()
    }
}

/// The 2-bit analogue level signature of the paper's DC level sensor.
///
/// The sensor compares an analogue voltage against two thresholds
/// (1.9 V and 3.6 V in the paper) and encodes the region as a 2-bit
/// code:
///
/// | region | code |
/// |---|---|
/// | below both thresholds | `0b00` |
/// | between thresholds | `0b01` |
/// | above both thresholds | `0b11` |
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LevelSignature {
    /// Lower threshold in volts.
    pub low_threshold: f64,
    /// Upper threshold in volts.
    pub high_threshold: f64,
}

impl LevelSignature {
    /// Creates a sensor with the paper's thresholds (1.9 V, 3.6 V).
    pub fn paper_defaults() -> Self {
        LevelSignature {
            low_threshold: 1.9,
            high_threshold: 3.6,
        }
    }

    /// Creates a sensor with custom thresholds.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high`.
    pub fn new(low: f64, high: f64) -> Self {
        assert!(low < high, "low threshold must be below high threshold");
        LevelSignature {
            low_threshold: low,
            high_threshold: high,
        }
    }

    /// Encodes a voltage into its 2-bit region code.
    pub fn encode(&self, volts: f64) -> u8 {
        match (volts >= self.low_threshold, volts >= self.high_threshold) {
            (false, _) => 0b00,
            (true, false) => 0b01,
            (true, true) => 0b11,
        }
    }

    /// Encodes a sequence of voltages into codes.
    pub fn encode_all(&self, volts: &[f64]) -> Vec<u8> {
        volts.iter().map(|&v| self.encode(v)).collect()
    }
}

/// Simple additive checksum compactor for quick comparisons where MISR
/// aliasing analysis is not needed.
pub fn checksum(words: &[u16]) -> u32 {
    words
        .iter()
        .fold(0u32, |acc, &w| acc.wrapping_mul(31).wrapping_add(w as u32))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn misr_is_deterministic() {
        assert_eq!(Misr::of([5u16, 10, 20]), Misr::of([5u16, 10, 20]));
    }

    #[test]
    fn misr_is_order_sensitive() {
        assert_ne!(Misr::of([1u16, 2]), Misr::of([2u16, 1]));
    }

    #[test]
    fn misr_detects_single_word_change() {
        let base: Vec<u16> = (0..100).collect();
        let sig = Misr::of(base.iter().copied());
        for k in [0usize, 50, 99] {
            let mut corrupted = base.clone();
            corrupted[k] ^= 0x0001;
            assert_ne!(sig, Misr::of(corrupted), "missed corruption at {k}");
        }
    }

    #[test]
    fn misr_empty_sequence_is_seed() {
        assert_eq!(Misr::new().signature(), 0xFFFF);
    }

    #[test]
    fn level_signature_regions() {
        let s = LevelSignature::paper_defaults();
        assert_eq!(s.encode(0.0), 0b00);
        assert_eq!(s.encode(1.89), 0b00);
        assert_eq!(s.encode(2.5), 0b01);
        assert_eq!(s.encode(3.6), 0b11);
        assert_eq!(s.encode(5.0), 0b11);
    }

    #[test]
    fn level_signature_sequence() {
        let s = LevelSignature::new(1.0, 2.0);
        assert_eq!(s.encode_all(&[0.5, 1.5, 2.5]), vec![0b00, 0b01, 0b11]);
    }

    #[test]
    #[should_panic(expected = "below")]
    fn inverted_thresholds_rejected() {
        let _ = LevelSignature::new(2.0, 1.0);
    }

    #[test]
    fn checksum_changes_with_order() {
        assert_ne!(checksum(&[1, 2, 3]), checksum(&[3, 2, 1]));
    }
}
