//! `sigproc` — signal processing for mixed-signal test evaluation.
//!
//! This crate supplies the DSP machinery the paper's transient-response
//! testing technique relies on:
//!
//! * [`prbs`] — maximal-length pseudo-random binary sequences (the paper
//!   stimulates its circuits with a 15-bit PRBS),
//! * [`fft`] — radix-2 FFT used by fast convolution and spectrum checks,
//! * [`convolution`] — direct and FFT-based convolution,
//! * [`correlation`] — cross-correlation and the normalised correlation
//!   signatures compared between fault-free and faulty circuits,
//! * [`measure`] — waveform measurements (fall time, threshold crossings,
//!   settling) standing in for the bench instruments of the paper,
//! * [`signature`] — test-response compaction: MISR signatures for
//!   digital outputs and the 2-bit analogue level signature of the
//!   paper's DC level sensor.
//!
//! # Example
//!
//! ```
//! use sigproc::prbs::Prbs;
//!
//! let seq = Prbs::new(4).sequence();
//! assert_eq!(seq.len(), 15); // maximal length 2^4 - 1
//! ```

pub mod convolution;
pub mod correlation;
pub mod fft;
pub mod measure;
pub mod prbs;
pub mod signature;
pub mod spectrum;
