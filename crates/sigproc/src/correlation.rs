//! Cross-correlation signatures.
//!
//! The paper detects faults by correlating the transient output `y(t)`
//! with a correlation signal `p(t)` derived from the applied stimulus:
//! the correlation function `R(y, p)` approximates the composite impulse
//! response of the propagating path, and fault-induced deviations from
//! the fault-free correlation mark detection instances.

/// Raw cross-correlation at every lag from `−(b.len()−1)` to
/// `a.len()−1`:
/// `r[k] = Σ a[n+lag] · b[n]`.
///
/// Returns the correlation values; the lag of entry `i` is
/// `i − (b.len() − 1)`.
pub fn cross_correlation(a: &[f64], b: &[f64]) -> Vec<f64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let n_lags = a.len() + b.len() - 1;
    let offset = b.len() as isize - 1;
    let mut out = vec![0.0; n_lags];
    for (i, slot) in out.iter_mut().enumerate() {
        let lag = i as isize - offset;
        let mut acc = 0.0;
        for (n, &bn) in b.iter().enumerate() {
            let idx = n as isize + lag;
            if idx >= 0 && (idx as usize) < a.len() {
                acc += a[idx as usize] * bn;
            }
        }
        *slot = acc;
    }
    out
}

/// Normalised cross-correlation: the raw correlation divided by
/// `‖a‖·‖b‖`, bounding every value to `[−1, 1]`.
pub fn normalized_cross_correlation(a: &[f64], b: &[f64]) -> Vec<f64> {
    let norm = energy(a).sqrt() * energy(b).sqrt();
    if norm == 0.0 {
        return vec![0.0; if a.is_empty() || b.is_empty() { 0 } else { a.len() + b.len() - 1 }];
    }
    cross_correlation(a, b)
        .into_iter()
        .map(|v| v / norm)
        .collect()
}

/// Autocorrelation of a signal (cross-correlation with itself).
pub fn autocorrelation(a: &[f64]) -> Vec<f64> {
    cross_correlation(a, a)
}

/// Pearson correlation coefficient between two equal-length sequences.
///
/// Returns 0.0 if either sequence has zero variance.
///
/// # Panics
///
/// Panics if the lengths differ or are zero.
pub fn correlation_coefficient(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    assert!(!a.is_empty(), "empty input");
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va == 0.0 || vb == 0.0 {
        return 0.0;
    }
    cov / (va.sqrt() * vb.sqrt())
}

/// Signal energy `Σ x²`.
pub fn energy(a: &[f64]) -> f64 {
    a.iter().map(|v| v * v).sum()
}

/// [`cross_correlation`] timed under a `sigproc.cross_correlation` span
/// on `recorder`.
pub fn cross_correlation_timed(
    a: &[f64],
    b: &[f64],
    recorder: &dyn obs::Recorder,
) -> Vec<f64> {
    obs::span::time(recorder, "sigproc.cross_correlation", || {
        cross_correlation(a, b)
    })
}

/// [`detection_instances`] timed under a `sigproc.detection_instances`
/// span on `recorder`.
///
/// # Panics
///
/// As [`detection_instances`].
pub fn detection_instances_timed(
    golden: &[f64],
    faulty: &[f64],
    threshold: f64,
    recorder: &dyn obs::Recorder,
) -> f64 {
    obs::span::time(recorder, "sigproc.detection_instances", || {
        detection_instances(golden, faulty, threshold)
    })
}

/// The paper's detection-instance metric.
///
/// Compares a faulty signature against the fault-free (golden) signature
/// point by point and returns the fraction of instances (in percent,
/// 0–100) at which the absolute deviation exceeds `threshold` — i.e. the
/// fraction of time instances at which this fault would be detected if
/// the comparator sampled there.
///
/// # Panics
///
/// Panics if the sequences differ in length or are empty.
pub fn detection_instances(golden: &[f64], faulty: &[f64], threshold: f64) -> f64 {
    assert_eq!(golden.len(), faulty.len(), "length mismatch");
    assert!(!golden.is_empty(), "empty signatures");
    let hits = golden
        .iter()
        .zip(faulty)
        .filter(|(g, f)| (*g - *f).abs() > threshold)
        .count();
    100.0 * hits as f64 / golden.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn autocorrelation_peaks_at_zero_lag() {
        let x = [1.0, -0.5, 0.25, 0.7];
        let r = autocorrelation(&x);
        let zero_lag = x.len() - 1;
        let peak = r
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.abs().total_cmp(&b.1.abs()))
            .unwrap()
            .0;
        assert_eq!(peak, zero_lag);
        assert!((r[zero_lag] - energy(&x)).abs() < 1e-12);
    }

    #[test]
    fn normalized_bounded_by_one() {
        let a: Vec<f64> = (0..50).map(|i| ((i * 17) % 23) as f64 - 11.0).collect();
        let b: Vec<f64> = (0..30).map(|i| ((i * 7) % 19) as f64 * 0.5 - 4.0).collect();
        let r = normalized_cross_correlation(&a, &b);
        for v in r {
            assert!(v.abs() <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn normalized_self_correlation_is_one_at_zero_lag() {
        let x = [0.3, 1.2, -0.8, 0.1];
        let r = normalized_cross_correlation(&x, &x);
        assert!((r[x.len() - 1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shifted_impulse_localises_lag() {
        // a is b delayed by 2: correlation peak at lag +2.
        let b = [0.0, 0.0, 1.0, 0.0, 0.0];
        let a = [0.0, 0.0, 0.0, 0.0, 1.0];
        let r = cross_correlation(&a, &b);
        let offset = b.len() - 1;
        let peak = r
            .iter()
            .enumerate()
            .max_by(|x, y| x.1.total_cmp(y.1))
            .unwrap()
            .0;
        assert_eq!(peak as isize - offset as isize, 2);
    }

    #[test]
    fn correlation_coefficient_of_identical_signals() {
        let a = [1.0, 2.0, 3.0, 4.0];
        assert!((correlation_coefficient(&a, &a) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = a.iter().map(|v| -v).collect();
        assert!((correlation_coefficient(&a, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_coefficient_zero_variance() {
        let a = [1.0, 1.0, 1.0];
        let b = [1.0, 2.0, 3.0];
        assert_eq!(correlation_coefficient(&a, &b), 0.0);
    }

    #[test]
    fn detection_instances_metric() {
        let golden = [1.0, 1.0, 1.0, 1.0];
        let faulty = [1.0, 2.0, 1.0, 3.0];
        assert_eq!(detection_instances(&golden, &faulty, 0.5), 50.0);
        assert_eq!(detection_instances(&golden, &golden, 0.5), 0.0);
    }

    #[test]
    fn timed_variants_match_untimed_and_record_spans() {
        let rec = obs::AggregatingRecorder::new();
        let a = [1.0, -0.5, 0.25, 0.7];
        let b = [0.5, 0.25];
        assert_eq!(
            cross_correlation_timed(&a, &b, &rec),
            cross_correlation(&a, &b)
        );
        let golden = [1.0, 1.0];
        let faulty = [1.0, 2.0];
        assert_eq!(
            detection_instances_timed(&golden, &faulty, 0.5, &rec),
            detection_instances(&golden, &faulty, 0.5)
        );
        let agg = rec.snapshot();
        assert_eq!(agg.spans["sigproc.cross_correlation"].count(), 1);
        assert_eq!(agg.spans["sigproc.detection_instances"].count(), 1);
    }

    #[test]
    fn zero_signal_normalization_safe() {
        let z = [0.0, 0.0];
        let a = [1.0, 2.0];
        let r = normalized_cross_correlation(&z, &a);
        assert!(r.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn white_prbs_autocorrelation_is_impulse_like() {
        // Maximal-length PRBS in ±1 form has autocorrelation N at lag 0
        // and -1 at all other (circular) lags; the linear version still
        // shows a dominant central peak.
        let mut g = crate::prbs::Prbs::new(5);
        let seq = g.levels(-1.0, 1.0);
        let r = autocorrelation(&seq);
        let center = seq.len() - 1;
        for (i, &v) in r.iter().enumerate() {
            if i != center {
                assert!(v.abs() < r[center] * 0.5, "lag {i} too correlated");
            }
        }
    }
}
