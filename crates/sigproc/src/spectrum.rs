//! Power-spectrum estimation: windows, periodogram, Welch averaging and
//! tone-SNR extraction.
//!
//! Frequency-domain response evaluation is the other half of the
//! paper's signal view ("after consideration of the frequency domain for
//! the signal y(t) ... minor changes to the signal spectrum, indicative
//! of circuit faults"); these estimators also ground the sigma-delta
//! SNR measurements of the future-work architecture.

use crate::fft::fft_real;

/// A spectral window function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Window {
    /// No tapering.
    Rectangular,
    /// Hann (raised cosine): good general-purpose leakage control.
    Hann,
    /// Hamming: narrower main lobe, higher first side lobe than Hann.
    Hamming,
    /// Blackman: strong side-lobe suppression.
    Blackman,
}

impl Window {
    /// Sample `k` of an `n`-point window.
    pub fn coefficient(self, k: usize, n: usize) -> f64 {
        if n <= 1 {
            return 1.0;
        }
        let x = 2.0 * std::f64::consts::PI * k as f64 / (n - 1) as f64;
        match self {
            Window::Rectangular => 1.0,
            Window::Hann => 0.5 * (1.0 - x.cos()),
            Window::Hamming => 0.54 - 0.46 * x.cos(),
            Window::Blackman => 0.42 - 0.5 * x.cos() + 0.08 * (2.0 * x).cos(),
        }
    }

    /// The full window as a vector.
    pub fn samples(self, n: usize) -> Vec<f64> {
        (0..n).map(|k| self.coefficient(k, n)).collect()
    }

    /// Coherent gain (mean of the window), used to renormalise tone
    /// amplitudes.
    pub fn coherent_gain(self, n: usize) -> f64 {
        self.samples(n).iter().sum::<f64>() / n as f64
    }
}

/// One-sided power spectral estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerSpectrum {
    /// Power per bin (DC to Nyquist inclusive), normalised so a
    /// full-scale coherent tone reads its power `A²/2`.
    pub power: Vec<f64>,
    /// Bin spacing in hertz.
    pub bin_hz: f64,
}

impl PowerSpectrum {
    /// Index of the strongest non-DC bin.
    pub fn peak_bin(&self) -> usize {
        self.power
            .iter()
            .enumerate()
            .skip(1)
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(k, _)| k)
            .unwrap_or(0)
    }

    /// The frequency of the strongest non-DC bin.
    pub fn peak_frequency(&self) -> f64 {
        self.peak_bin() as f64 * self.bin_hz
    }

    /// Signal-to-noise ratio in dB, treating `±guard` bins around the
    /// peak as signal and everything else (excluding DC) as noise.
    pub fn tone_snr_db(&self, guard: usize) -> f64 {
        let peak = self.peak_bin();
        let mut signal = 0.0;
        let mut noise = 0.0;
        for (k, &p) in self.power.iter().enumerate().skip(1) {
            if k.abs_diff(peak) <= guard {
                signal += p;
            } else {
                noise += p;
            }
        }
        10.0 * (signal / noise.max(1e-300)).log10()
    }
}

/// Single-segment windowed periodogram.
///
/// # Panics
///
/// Panics if the signal is empty or `sample_hz` is not positive.
pub fn periodogram(signal: &[f64], window: Window, sample_hz: f64) -> PowerSpectrum {
    assert!(!signal.is_empty(), "empty signal");
    assert!(sample_hz > 0.0, "sample rate must be positive");
    let n = signal.len();
    let w = window.samples(n);
    let tapered: Vec<f64> = signal.iter().zip(&w).map(|(s, wk)| s * wk).collect();
    let spec = fft_real(&tapered);
    let nfft = spec.len();
    let cg = window.coherent_gain(n) * n as f64;
    let half = nfft / 2;
    // One-sided: double interior bins.
    let power: Vec<f64> = (0..=half)
        .map(|k| {
            let p = spec[k].norm_sqr() / (cg * cg);
            if k == 0 || k == half {
                p
            } else {
                2.0 * p
            }
        })
        .collect();
    PowerSpectrum {
        power,
        bin_hz: sample_hz / nfft as f64,
    }
}

/// [`periodogram`] timed under a `sigproc.periodogram` span on
/// `recorder`.
///
/// # Panics
///
/// As [`periodogram`].
pub fn periodogram_timed(
    signal: &[f64],
    window: Window,
    sample_hz: f64,
    recorder: &dyn obs::Recorder,
) -> PowerSpectrum {
    obs::span::time(recorder, "sigproc.periodogram", || {
        periodogram(signal, window, sample_hz)
    })
}

/// Welch's method: averaged periodograms of 50 %-overlapping segments.
///
/// # Panics
///
/// Panics if `segment_len` is zero or longer than the signal.
pub fn welch(signal: &[f64], segment_len: usize, window: Window, sample_hz: f64) -> PowerSpectrum {
    assert!(segment_len > 0, "segment length must be positive");
    assert!(
        segment_len <= signal.len(),
        "segment longer than the signal"
    );
    let hop = (segment_len / 2).max(1);
    let mut acc: Option<PowerSpectrum> = None;
    let mut count = 0.0;
    let mut start = 0;
    while start + segment_len <= signal.len() {
        let p = periodogram(&signal[start..start + segment_len], window, sample_hz);
        match &mut acc {
            None => acc = Some(p),
            Some(a) => {
                for (x, y) in a.power.iter_mut().zip(&p.power) {
                    *x += y;
                }
            }
        }
        count += 1.0;
        start += hop;
    }
    let mut out = acc.expect("at least one segment");
    out.power.iter_mut().for_each(|p| *p /= count);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(n: usize, cycles: f64, amp: f64) -> Vec<f64> {
        (0..n)
            .map(|k| amp * (2.0 * std::f64::consts::PI * cycles * k as f64 / n as f64).sin())
            .collect()
    }

    #[test]
    fn window_endpoints_and_symmetry() {
        for w in [Window::Hann, Window::Hamming, Window::Blackman] {
            let s = w.samples(64);
            assert!((s[0] - s[63]).abs() < 1e-12, "{w:?} asymmetric");
            for k in 0..32 {
                assert!((s[k] - s[63 - k]).abs() < 1e-12, "{w:?} at {k}");
            }
        }
        assert!(Window::Rectangular.samples(8).iter().all(|&v| v == 1.0));
    }

    #[test]
    fn periodogram_locates_coherent_tone() {
        // 8 cycles in 256 samples at 1 kHz sample rate -> 31.25 Hz.
        let sig = tone(256, 8.0, 1.0);
        let p = periodogram(&sig, Window::Rectangular, 1000.0);
        assert_eq!(p.peak_bin(), 8);
        assert!((p.peak_frequency() - 31.25).abs() < 1e-9);
        // Coherent unit tone: power A^2/2 = 0.5 in its bin.
        assert!((p.power[8] - 0.5).abs() < 1e-6, "power {}", p.power[8]);
    }

    #[test]
    fn hann_coherent_tone_normalisation() {
        let sig = tone(256, 8.0, 2.0);
        let p = periodogram(&sig, Window::Hann, 1.0);
        // Coherent-gain normalisation: a bin-centred tone's PEAK bin
        // reads its power A^2/2 = 2.0 regardless of window...
        assert!((p.power[8] - 2.0).abs() < 0.05, "peak {}", p.power[8]);
        // ...while the main-lobe SUM overcounts by the window's noise
        // equivalent bandwidth (1.5 bins for Hann).
        let total: f64 = (6..=10).map(|k| p.power[k]).sum();
        assert!((total - 3.0).abs() < 0.1, "lobe sum {total}");
    }

    #[test]
    fn tone_snr_reflects_added_noise() {
        let n = 1024;
        let clean = tone(n, 16.0, 1.0);
        let noisy: Vec<f64> = clean
            .iter()
            .enumerate()
            .map(|(k, &v)| v + 0.05 * (((k as u64 * 2654435761) % 1000) as f64 / 1000.0 - 0.5))
            .collect();
        let p_clean = periodogram(&clean, Window::Hann, 1.0);
        let p_noisy = periodogram(&noisy, Window::Hann, 1.0);
        assert!(p_clean.tone_snr_db(2) > p_noisy.tone_snr_db(2) + 10.0);
        // SNR of the noisy tone: amplitude 1 vs ~0.014 rms uniform noise
        // -> roughly 33 dB; allow a broad band.
        let snr = p_noisy.tone_snr_db(2);
        assert!((20.0..50.0).contains(&snr), "snr {snr}");
    }

    #[test]
    fn welch_reduces_variance() {
        // Deterministic pseudo-noise.
        let noise: Vec<f64> = (0..4096)
            .map(|k| (((k as u64 * 2654435761 + 12345) % 10000) as f64 / 10000.0) - 0.5)
            .collect();
        let single = periodogram(&noise[..512], Window::Hann, 1.0);
        let averaged = welch(&noise, 512, Window::Hann, 1.0);
        let variance = |p: &PowerSpectrum| {
            let m = p.power.iter().sum::<f64>() / p.power.len() as f64;
            p.power.iter().map(|v| (v - m).powi(2)).sum::<f64>() / p.power.len() as f64
        };
        assert!(
            variance(&averaged) < variance(&single),
            "welch {} vs single {}",
            variance(&averaged),
            variance(&single)
        );
    }

    #[test]
    #[should_panic(expected = "segment longer")]
    fn welch_rejects_oversized_segment() {
        let _ = welch(&[1.0, 2.0], 8, Window::Hann, 1.0);
    }
}
