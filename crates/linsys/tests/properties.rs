//! Property-based tests for the linear-algebra and linear-systems core.

use linsys::complex::Complex;
use linsys::matrix::{solve, Matrix};
use linsys::polynomial::Polynomial;
use linsys::transfer::{ContinuousTransferFunction, DiscreteTransferFunction};
use proptest::prelude::*;

/// Strategy: well-conditioned square matrices (diagonally dominant).
fn dominant_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0..10.0f64, n * n).prop_map(move |vals| {
        let mut m = Matrix::zeros(n, n);
        for r in 0..n {
            let mut row_sum = 0.0;
            for c in 0..n {
                let v = vals[r * n + c];
                m[(r, c)] = v;
                row_sum += v.abs();
            }
            // Diagonal dominance guarantees invertibility.
            m[(r, r)] += row_sum + 1.0;
        }
        m
    })
}

proptest! {
    #[test]
    fn lu_solve_residual_is_small(
        a in dominant_matrix(5),
        b in proptest::collection::vec(-100.0..100.0f64, 5),
    ) {
        let x = solve(&a, &b).expect("dominant matrix is invertible");
        let back = a.mul_vec(&x);
        for (bb, rb) in b.iter().zip(&back) {
            prop_assert!((bb - rb).abs() < 1e-8, "residual {} vs {}", bb, rb);
        }
    }

    #[test]
    fn expm_inverse_property(a in dominant_matrix(3)) {
        // e^A · e^{-A} = I (scale down so the series is benign).
        let a = a.scale(0.05);
        let e = a.expm();
        let einv = a.scale(-1.0).expm();
        let prod = e.mul_mat(&einv);
        for r in 0..3 {
            for c in 0..3 {
                let expect = if r == c { 1.0 } else { 0.0 };
                prop_assert!((prod[(r, c)] - expect).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn matrix_transpose_involution(a in dominant_matrix(4)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn polynomial_roots_roundtrip(
        roots in proptest::collection::vec(-5.0..5.0f64, 1..5),
    ) {
        // Keep roots separated so the iteration converges crisply.
        let mut rs = roots.clone();
        rs.sort_by(f64::total_cmp);
        prop_assume!(rs.windows(2).all(|w| w[1] - w[0] > 0.25));
        let poly = Polynomial::from_roots(
            &rs.iter().map(|&r| Complex::real(r)).collect::<Vec<_>>(),
        );
        let mut found: Vec<f64> = poly.roots().iter().map(|z| z.re).collect();
        found.sort_by(f64::total_cmp);
        for (want, got) in rs.iter().zip(&found) {
            prop_assert!((want - got).abs() < 1e-5, "{want} vs {got}");
        }
    }

    #[test]
    fn polynomial_eval_agrees_with_horner_expansion(
        coeffs in proptest::collection::vec(-3.0..3.0f64, 1..6),
        x in -2.0..2.0f64,
    ) {
        let p = Polynomial::new(coeffs.clone());
        let manual: f64 = coeffs
            .iter()
            .enumerate()
            .map(|(k, &c)| c * x.powi(k as i32))
            .sum();
        prop_assert!((p.eval(x) - manual).abs() < 1e-9);
    }

    #[test]
    fn complex_field_axioms(
        re1 in -10.0..10.0f64, im1 in -10.0..10.0f64,
        re2 in -10.0..10.0f64, im2 in -10.0..10.0f64,
    ) {
        let a = Complex::new(re1, im1);
        let b = Complex::new(re2, im2);
        prop_assume!(b.abs() > 1e-6);
        // Multiplication distributes over addition.
        let lhs = a * (b + Complex::ONE);
        let rhs = a * b + a;
        prop_assert!((lhs - rhs).abs() < 1e-9);
        // Division inverts multiplication.
        let q = (a * b) / b;
        prop_assert!((q - a).abs() < 1e-8 * (1.0 + a.abs()));
    }

    #[test]
    fn stable_tf_impulse_decays(pole in 0.5..20.0f64, gain in 0.1..10.0f64) {
        let tf = ContinuousTransferFunction::from_coeffs(&[gain], &[1.0, pole]);
        let ss = tf.to_state_space();
        // Sample fine relative to the pole so the integral converges.
        let dt = 0.1 / pole;
        let h = linsys::response::impulse_response(&ss, dt, 300);
        // Strictly decaying magnitude for a single real pole.
        for w in h.windows(2) {
            prop_assert!(w[1].abs() <= w[0].abs() + 1e-12);
        }
        // Trapezoidal integral of the impulse response = DC gain.
        let integral = (h.iter().sum::<f64>() - h[0] / 2.0) * dt;
        let expect = tf.dc_gain();
        prop_assert!(
            (integral - expect).abs() < 0.02 * expect.abs() + 1e-6,
            "{integral} vs {expect}"
        );
    }

    #[test]
    fn discrete_filter_is_linear(
        x in proptest::collection::vec(-5.0..5.0f64, 10..30),
        k in -3.0..3.0f64,
    ) {
        let h = DiscreteTransferFunction::new(vec![0.4, 0.3], vec![1.0, -0.5], 1.0);
        let y1 = h.filter(&x);
        let scaled: Vec<f64> = x.iter().map(|v| v * k).collect();
        let y2 = h.filter(&scaled);
        for (a, b) in y1.iter().zip(&y2) {
            prop_assert!((a * k - b).abs() < 1e-9);
        }
    }
}

proptest! {
    /// Complex LU: the solution of a diagonally dominant complex system
    /// reproduces the right-hand side.
    #[test]
    fn complex_lu_residual_is_small(
        res in proptest::collection::vec(-5.0..5.0f64, 16),
        ims in proptest::collection::vec(-5.0..5.0f64, 16),
        b_re in proptest::collection::vec(-10.0..10.0f64, 4),
        b_im in proptest::collection::vec(-10.0..10.0f64, 4),
    ) {
        use linsys::cmatrix::{solve, CMatrix};

        let n = 4;
        let mut a = CMatrix::zeros(n, n);
        for r in 0..n {
            let mut dominance = 0.0;
            for c in 0..n {
                let z = Complex::new(res[r * n + c], ims[r * n + c]);
                a[(r, c)] = z;
                dominance += z.abs();
            }
            a[(r, r)] = a[(r, r)] + Complex::real(dominance + 1.0);
        }
        let b: Vec<Complex> = b_re
            .iter()
            .zip(&b_im)
            .map(|(&re, &im)| Complex::new(re, im))
            .collect();
        let x = solve(&a, &b).expect("dominant complex system solves");
        let back = a.mul_vec(&x);
        for (want, got) in b.iter().zip(&back) {
            prop_assert!((*want - *got).abs() < 1e-9, "{want} vs {got}");
        }
    }

    /// ZOH discretisation at two half-steps composes to one full step
    /// for the autonomous part (semigroup property of e^{At}).
    #[test]
    fn zoh_semigroup_property(pole in 0.2..10.0f64, dt in 0.001..0.2f64) {
        use linsys::matrix::Matrix;

        let a = Matrix::from_rows(&[vec![-pole]]);
        let full = a.scale(dt).expm();
        let half = a.scale(dt / 2.0).expm();
        let composed = half.mul_mat(&half);
        prop_assert!((full[(0, 0)] - composed[(0, 0)]).abs() < 1e-12);
    }
}

/// A random MNA-style conductance stamp: `n` nodes, each grounded
/// through its own conductance (diagonal dominance ⇒ invertibility),
/// plus a set of two-terminal conductances between node pairs stamped
/// the usual way (`+g` on both diagonals, `-g` off-diagonal).
#[derive(Debug, Clone)]
struct MnaStamp {
    n: usize,
    ground: Vec<f64>,
    branches: Vec<(usize, usize, f64)>,
}

fn mna_stamp(n: usize) -> impl Strategy<Value = MnaStamp> {
    let ground = proptest::collection::vec(0.1..10.0f64, n);
    let branches = proptest::collection::vec(
        (0..n, 0..n, 0.01..100.0f64),
        1..(3 * n),
    );
    (ground, branches).prop_map(move |(ground, raw)| MnaStamp {
        n,
        ground,
        branches: raw
            .into_iter()
            .filter(|&(a, b, _)| a != b)
            .collect(),
    })
}

impl MnaStamp {
    /// Stamp positions (with duplicates), as MNA assembly produces them.
    fn positions(&self) -> Vec<(usize, usize)> {
        let mut pos: Vec<(usize, usize)> = (0..self.n).map(|k| (k, k)).collect();
        for &(a, b, _) in &self.branches {
            pos.extend([(a, a), (b, b), (a, b), (b, a)]);
        }
        pos
    }

    fn stamp(&self, mut add: impl FnMut(usize, usize, f64)) {
        for (k, &g) in self.ground.iter().enumerate() {
            add(k, k, g);
        }
        for &(a, b, g) in &self.branches {
            add(a, a, g);
            add(b, b, g);
            add(a, b, -g);
            add(b, a, -g);
        }
    }

    fn dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.n, self.n);
        self.stamp(|r, c, v| m.add(r, c, v));
        m
    }

    fn sparse(&self) -> linsys::sparse::SparseMatrix {
        let structure =
            linsys::sparse::SparseStructure::from_positions(self.n, &self.positions());
        let mut m = linsys::sparse::SparseMatrix::zeros(structure);
        self.stamp(|r, c, v| m.add(r, c, v));
        m
    }
}

proptest! {
    /// The sparse Gilbert–Peierls factorisation agrees with the dense
    /// LU on random well-conditioned MNA stamps — and not merely within
    /// tolerance: the sparse core replays the dense pivot order and
    /// arithmetic, so the solutions are bit-identical.
    #[test]
    fn sparse_factorisation_agrees_with_dense_on_mna_stamps(
        stamp in mna_stamp(7),
        b in proptest::collection::vec(-100.0..100.0f64, 7),
    ) {
        use linsys::matrix::Lu;
        use linsys::sparse::SparseLu;

        let dense_x = Lu::factor(&stamp.dense()).expect("dominant").solve(&b);
        let sparse_x = SparseLu::factor(&stamp.sparse()).expect("dominant").solve(&b);
        for (k, (d, s)) in dense_x.iter().zip(&sparse_x).enumerate() {
            prop_assert!(
                d.to_bits() == s.to_bits(),
                "x[{k}]: dense {d:e} != sparse {s:e}"
            );
        }
        // And both actually solve the system.
        let back = stamp.dense().mul_vec(&dense_x);
        for (want, got) in b.iter().zip(&back) {
            prop_assert!((want - got).abs() < 1e-7, "{want} vs {got}");
        }
    }

    /// Sherman–Morrison against a golden factorisation: for the bridge
    /// perturbation A' = A + g·w·wᵀ with w = e_a − e_b, the rank-1
    /// update of the golden solution agrees with factorising A' from
    /// scratch.
    #[test]
    fn rank1_update_agrees_with_from_scratch_factorisation(
        stamp in mna_stamp(6),
        b in proptest::collection::vec(-10.0..10.0f64, 6),
        bridge in (0..6usize, 0..6usize, 0.05..50.0f64),
    ) {
        use linsys::matrix::Lu;

        let (pa, pb, g) = bridge;
        prop_assume!(pa != pb);
        let golden = Lu::factor(&stamp.dense()).expect("dominant");
        let mut w = vec![0.0; stamp.n];
        w[pa] = 1.0;
        w[pb] = -1.0;
        let y = golden.solve(&b);
        let z = golden.solve(&w);
        let wty: f64 = y.iter().zip(&w).map(|(yi, wi)| yi * wi).sum();
        let wtz: f64 = z.iter().zip(&w).map(|(zi, wi)| zi * wi).sum();
        let denom = 1.0 + g * wtz;
        prop_assume!(denom.abs() > 1e-9);
        let scale = g * wty / denom;
        let updated: Vec<f64> = y.iter().zip(&z).map(|(yi, zi)| yi - scale * zi).collect();

        // From scratch: stamp the bridge conductance and refactorise.
        let mut perturbed = stamp.dense();
        perturbed.add(pa, pa, g);
        perturbed.add(pb, pb, g);
        perturbed.add(pa, pb, -g);
        perturbed.add(pb, pa, -g);
        let direct = Lu::factor(&perturbed).expect("still dominant").solve(&b);
        for (k, (u, d)) in updated.iter().zip(&direct).enumerate() {
            prop_assert!(
                (u - d).abs() < 1e-6 * (1.0 + d.abs()),
                "x[{k}]: rank-1 {u:e} vs direct {d:e}"
            );
        }
    }
}

proptest! {
    /// The scale-relative pivot threshold classifies identically on the
    /// dense and sparse backends: graded (uniformly rescaled) systems
    /// factor on both, rank-deficient ones fail on both with the same
    /// breakdown row — byte-compared campaign reports depend on the two
    /// backends never disagreeing about what is singular.
    #[test]
    fn dense_and_sparse_classify_graded_and_rank_deficient_alike(
        stamp in mna_stamp(6),
        scale_exp in 0..605usize,
        kill in 0..7usize,
    ) {
        use linsys::matrix::Lu;
        use linsys::sparse::SparseLu;

        // Shifted draws: the shim only samples unsigned ranges.
        let scale = 10f64.powi(scale_exp as i32 - 305);
        let kill = if kill == 6 { None } else { Some(kill) };
        let mut dense = Matrix::zeros(stamp.n, stamp.n);
        let structure =
            linsys::sparse::SparseStructure::from_positions(stamp.n, &stamp.positions());
        let mut sparse = linsys::sparse::SparseMatrix::zeros(structure);
        stamp.stamp(|r, c, v| {
            // `kill` empties one node's row and column (stamping zeros
            // keeps the sparsity pattern), leaving the system exactly
            // rank-deficient at O(scale) magnitude — the shape the old
            // absolute 1e-300 floor silently factored into garbage.
            let v = if Some(r) == kill || Some(c) == kill { 0.0 } else { v * scale };
            dense.add(r, c, v);
            sparse.add(r, c, v);
        });
        let d = Lu::factor(&dense);
        let s = SparseLu::factor(&sparse);
        match (&d, &s) {
            (Ok(dlu), Ok(slu)) => {
                prop_assert!(kill.is_none(), "rank-deficient system factored");
                let b: Vec<f64> = (0..stamp.n).map(|i| i as f64 - 1.5).collect();
                for (k, (dv, sv)) in dlu.solve(&b).iter().zip(&slu.solve(&b)).enumerate() {
                    prop_assert!(
                        dv.to_bits() == sv.to_bits(),
                        "x[{k}]: dense {dv:e} != sparse {sv:e}"
                    );
                }
                // The growth factor is part of the hazard story, so it
                // must agree bit for bit too.
                prop_assert!(dlu.pivot_growth().to_bits() == slu.pivot_growth().to_bits());
            }
            (Err(de), Err(se)) => prop_assert_eq!(de, se),
            _ => prop_assert!(
                false,
                "classification split: dense {:?} vs sparse {:?}",
                d.as_ref().map(|_| ()),
                s.as_ref().map(|_| ())
            ),
        }
    }

    /// One round of iterative refinement through a deliberately
    /// perturbed factorisation never increases the true residual norm:
    /// the contraction gate commits the corrected iterate only when it
    /// strictly improves.
    #[test]
    fn refinement_round_never_increases_the_true_residual(
        stamp in mna_stamp(5),
        b in proptest::collection::vec(-10.0..10.0f64, 5),
        perturb in 1.0..4.0f64,
    ) {
        use linsys::matrix::Lu;
        use linsys::refine::{norm_inf, refine_once};

        let a = stamp.dense();
        let mut lu = Lu::factor(&a).expect("dominant");
        lu.perturb_first_pivot(perturb);
        let mut x = lu.solve(&b);
        let n = stamp.n;
        let residual_of = |x: &[f64], out: &mut [f64]| {
            let ax = a.mul_vec(x);
            for (o, (axv, bv)) in out.iter_mut().zip(ax.iter().zip(&b)) {
                *o = axv - bv;
            }
        };
        let mut before_buf = vec![0.0; n];
        residual_of(&x, &mut before_buf);
        let before = norm_inf(&before_buf);
        let (mut r, mut d, mut t) = (vec![0.0; n], vec![0.0; n], vec![0.0; n]);
        let out = refine_once(
            &mut x,
            &mut r,
            &mut d,
            &mut t,
            residual_of,
            |rhs, sol| lu.solve_into(rhs, sol),
        );
        let mut after_buf = vec![0.0; n];
        residual_of(&x, &mut after_buf);
        let after = norm_inf(&after_buf);
        prop_assert!(after <= before, "residual grew: {before:e} -> {after:e} ({out:?})");
        prop_assert_eq!(out.accepted, out.residual_after < out.residual_before);
    }

    /// Transpose solves and the Hager condition estimate built on them
    /// are bit-identical between backends (zeros may differ only in
    /// sign), and the transpose solve actually solves Aᵀx = b.
    #[test]
    fn transpose_solve_and_condest_are_bit_identical_across_backends(
        stamp in mna_stamp(6),
        b in proptest::collection::vec(-10.0..10.0f64, 6),
    ) {
        use linsys::matrix::Lu;
        use linsys::sparse::SparseLu;

        let dense = stamp.dense();
        let dlu = Lu::factor(&dense).expect("dominant");
        let slu = SparseLu::factor(&stamp.sparse()).expect("dominant");
        let n = stamp.n;
        let (mut xd, mut xs) = (vec![0.0; n], vec![0.0; n]);
        dlu.solve_transpose_into(&b, &mut xd);
        slu.solve_transpose_into(&b, &mut xs);
        for (k, (d, s)) in xd.iter().zip(&xs).enumerate() {
            prop_assert!(
                d.to_bits() == s.to_bits() || (*d == 0.0 && *s == 0.0),
                "xT[{k}]: dense {d:e} != sparse {s:e}"
            );
        }
        // Aᵀ·x reproduces b (the matrix is symmetric only in pattern,
        // not in values, so this genuinely exercises the transpose).
        let back = dense.transpose().mul_vec(&xd);
        for (want, got) in b.iter().zip(&back) {
            prop_assert!((want - got).abs() < 1e-7 * (1.0 + want.abs()), "{want} vs {got}");
        }
        let anorm = 1.0; // placeholder scale: identical on both sides
        let cd = dlu.condest(anorm);
        let cs = slu.condest(anorm);
        prop_assert!(cd.to_bits() == cs.to_bits(), "condest dense {cd:e} != sparse {cs:e}");
        prop_assert!(cd.is_finite() && cd > 0.0);
    }
}

/// A well-conditioned system scaled far below the old absolute pivot
/// floor of `1e-300` must still factor: singularity is a property of
/// the matrix, not of its units. This is the regression the
/// scale-relative threshold exists for.
#[test]
fn graded_matrix_below_the_old_absolute_floor_still_factors() {
    use linsys::matrix::Lu;
    use linsys::sparse::SparseLu;

    let scale = 1e-305;
    let mut dense = Matrix::zeros(3, 3);
    let structure = linsys::sparse::SparseStructure::from_positions(
        3,
        &[(0, 0), (0, 1), (1, 0), (1, 1), (1, 2), (2, 1), (2, 2)],
    );
    let mut sparse = linsys::sparse::SparseMatrix::zeros(structure);
    for (r, c, v) in [
        (0, 0, 4.0),
        (0, 1, -1.0),
        (1, 0, -1.0),
        (1, 1, 4.0),
        (1, 2, -1.0),
        (2, 1, -1.0),
        (2, 2, 4.0),
    ] {
        dense.add(r, c, v * scale);
        sparse.add(r, c, v * scale);
    }
    let dlu = Lu::factor(&dense).expect("well-conditioned tiny-scale system must factor");
    let slu = SparseLu::factor(&sparse).expect("well-conditioned tiny-scale system must factor");
    // Scale b the same way so the solution is O(1) and checkable.
    let b = [scale, 2.0 * scale, 3.0 * scale];
    let xd = dlu.solve(&b);
    let xs = slu.solve(&b);
    for (d, s) in xd.iter().zip(&xs) {
        assert_eq!(d.to_bits(), s.to_bits());
    }
    let back = dense.mul_vec(&xd);
    for (want, got) in b.iter().zip(&back) {
        assert!((want - got).abs() <= 1e-10 * scale, "{want:e} vs {got:e}");
    }
}

/// An O(1)-scale matrix whose elimination collapses a column to
/// rounding noise is *numerically* rank-deficient: the old absolute
/// floor happily divided by the ~1e-17 leftover and returned garbage;
/// the scale-relative threshold classifies it as singular on both
/// backends, at the same column.
#[test]
fn cancellation_garbage_is_rejected_as_singular() {
    use linsys::matrix::Lu;
    use linsys::sparse::SparseLu;

    // Row 1 is row 0 plus a perturbation 1e-17 — far below the working
    // precision of the O(1) entries, so the matrix is rank-1 for any
    // practical purpose.
    let mut dense = Matrix::zeros(2, 2);
    let structure =
        linsys::sparse::SparseStructure::from_positions(2, &[(0, 0), (0, 1), (1, 0), (1, 1)]);
    let mut sparse = linsys::sparse::SparseMatrix::zeros(structure);
    for (r, c, v) in [(0, 0, 1.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 1.0 + 1e-17)] {
        dense.add(r, c, v);
        sparse.add(r, c, v);
    }
    let de = Lu::factor(&dense).expect_err("numerically rank-deficient");
    let se = SparseLu::factor(&sparse).expect_err("numerically rank-deficient");
    assert_eq!(de, se);
    assert_eq!(de.row, 1, "breakdown at the collapsed second column");
}
