//! Property-based tests for the linear-algebra and linear-systems core.

use linsys::complex::Complex;
use linsys::matrix::{solve, Matrix};
use linsys::polynomial::Polynomial;
use linsys::transfer::{ContinuousTransferFunction, DiscreteTransferFunction};
use proptest::prelude::*;

/// Strategy: well-conditioned square matrices (diagonally dominant).
fn dominant_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0..10.0f64, n * n).prop_map(move |vals| {
        let mut m = Matrix::zeros(n, n);
        for r in 0..n {
            let mut row_sum = 0.0;
            for c in 0..n {
                let v = vals[r * n + c];
                m[(r, c)] = v;
                row_sum += v.abs();
            }
            // Diagonal dominance guarantees invertibility.
            m[(r, r)] += row_sum + 1.0;
        }
        m
    })
}

proptest! {
    #[test]
    fn lu_solve_residual_is_small(
        a in dominant_matrix(5),
        b in proptest::collection::vec(-100.0..100.0f64, 5),
    ) {
        let x = solve(&a, &b).expect("dominant matrix is invertible");
        let back = a.mul_vec(&x);
        for (bb, rb) in b.iter().zip(&back) {
            prop_assert!((bb - rb).abs() < 1e-8, "residual {} vs {}", bb, rb);
        }
    }

    #[test]
    fn expm_inverse_property(a in dominant_matrix(3)) {
        // e^A · e^{-A} = I (scale down so the series is benign).
        let a = a.scale(0.05);
        let e = a.expm();
        let einv = a.scale(-1.0).expm();
        let prod = e.mul_mat(&einv);
        for r in 0..3 {
            for c in 0..3 {
                let expect = if r == c { 1.0 } else { 0.0 };
                prop_assert!((prod[(r, c)] - expect).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn matrix_transpose_involution(a in dominant_matrix(4)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn polynomial_roots_roundtrip(
        roots in proptest::collection::vec(-5.0..5.0f64, 1..5),
    ) {
        // Keep roots separated so the iteration converges crisply.
        let mut rs = roots.clone();
        rs.sort_by(f64::total_cmp);
        prop_assume!(rs.windows(2).all(|w| w[1] - w[0] > 0.25));
        let poly = Polynomial::from_roots(
            &rs.iter().map(|&r| Complex::real(r)).collect::<Vec<_>>(),
        );
        let mut found: Vec<f64> = poly.roots().iter().map(|z| z.re).collect();
        found.sort_by(f64::total_cmp);
        for (want, got) in rs.iter().zip(&found) {
            prop_assert!((want - got).abs() < 1e-5, "{want} vs {got}");
        }
    }

    #[test]
    fn polynomial_eval_agrees_with_horner_expansion(
        coeffs in proptest::collection::vec(-3.0..3.0f64, 1..6),
        x in -2.0..2.0f64,
    ) {
        let p = Polynomial::new(coeffs.clone());
        let manual: f64 = coeffs
            .iter()
            .enumerate()
            .map(|(k, &c)| c * x.powi(k as i32))
            .sum();
        prop_assert!((p.eval(x) - manual).abs() < 1e-9);
    }

    #[test]
    fn complex_field_axioms(
        re1 in -10.0..10.0f64, im1 in -10.0..10.0f64,
        re2 in -10.0..10.0f64, im2 in -10.0..10.0f64,
    ) {
        let a = Complex::new(re1, im1);
        let b = Complex::new(re2, im2);
        prop_assume!(b.abs() > 1e-6);
        // Multiplication distributes over addition.
        let lhs = a * (b + Complex::ONE);
        let rhs = a * b + a;
        prop_assert!((lhs - rhs).abs() < 1e-9);
        // Division inverts multiplication.
        let q = (a * b) / b;
        prop_assert!((q - a).abs() < 1e-8 * (1.0 + a.abs()));
    }

    #[test]
    fn stable_tf_impulse_decays(pole in 0.5..20.0f64, gain in 0.1..10.0f64) {
        let tf = ContinuousTransferFunction::from_coeffs(&[gain], &[1.0, pole]);
        let ss = tf.to_state_space();
        // Sample fine relative to the pole so the integral converges.
        let dt = 0.1 / pole;
        let h = linsys::response::impulse_response(&ss, dt, 300);
        // Strictly decaying magnitude for a single real pole.
        for w in h.windows(2) {
            prop_assert!(w[1].abs() <= w[0].abs() + 1e-12);
        }
        // Trapezoidal integral of the impulse response = DC gain.
        let integral = (h.iter().sum::<f64>() - h[0] / 2.0) * dt;
        let expect = tf.dc_gain();
        prop_assert!(
            (integral - expect).abs() < 0.02 * expect.abs() + 1e-6,
            "{integral} vs {expect}"
        );
    }

    #[test]
    fn discrete_filter_is_linear(
        x in proptest::collection::vec(-5.0..5.0f64, 10..30),
        k in -3.0..3.0f64,
    ) {
        let h = DiscreteTransferFunction::new(vec![0.4, 0.3], vec![1.0, -0.5], 1.0);
        let y1 = h.filter(&x);
        let scaled: Vec<f64> = x.iter().map(|v| v * k).collect();
        let y2 = h.filter(&scaled);
        for (a, b) in y1.iter().zip(&y2) {
            prop_assert!((a * k - b).abs() < 1e-9);
        }
    }
}

proptest! {
    /// Complex LU: the solution of a diagonally dominant complex system
    /// reproduces the right-hand side.
    #[test]
    fn complex_lu_residual_is_small(
        res in proptest::collection::vec(-5.0..5.0f64, 16),
        ims in proptest::collection::vec(-5.0..5.0f64, 16),
        b_re in proptest::collection::vec(-10.0..10.0f64, 4),
        b_im in proptest::collection::vec(-10.0..10.0f64, 4),
    ) {
        use linsys::cmatrix::{solve, CMatrix};

        let n = 4;
        let mut a = CMatrix::zeros(n, n);
        for r in 0..n {
            let mut dominance = 0.0;
            for c in 0..n {
                let z = Complex::new(res[r * n + c], ims[r * n + c]);
                a[(r, c)] = z;
                dominance += z.abs();
            }
            a[(r, r)] = a[(r, r)] + Complex::real(dominance + 1.0);
        }
        let b: Vec<Complex> = b_re
            .iter()
            .zip(&b_im)
            .map(|(&re, &im)| Complex::new(re, im))
            .collect();
        let x = solve(&a, &b).expect("dominant complex system solves");
        let back = a.mul_vec(&x);
        for (want, got) in b.iter().zip(&back) {
            prop_assert!((*want - *got).abs() < 1e-9, "{want} vs {got}");
        }
    }

    /// ZOH discretisation at two half-steps composes to one full step
    /// for the autonomous part (semigroup property of e^{At}).
    #[test]
    fn zoh_semigroup_property(pole in 0.2..10.0f64, dt in 0.001..0.2f64) {
        use linsys::matrix::Matrix;

        let a = Matrix::from_rows(&[vec![-pole]]);
        let full = a.scale(dt).expm();
        let half = a.scale(dt / 2.0).expm();
        let composed = half.mul_mat(&half);
        prop_assert!((full[(0, 0)] - composed[(0, 0)]).abs() < 1e-12);
    }
}

/// A random MNA-style conductance stamp: `n` nodes, each grounded
/// through its own conductance (diagonal dominance ⇒ invertibility),
/// plus a set of two-terminal conductances between node pairs stamped
/// the usual way (`+g` on both diagonals, `-g` off-diagonal).
#[derive(Debug, Clone)]
struct MnaStamp {
    n: usize,
    ground: Vec<f64>,
    branches: Vec<(usize, usize, f64)>,
}

fn mna_stamp(n: usize) -> impl Strategy<Value = MnaStamp> {
    let ground = proptest::collection::vec(0.1..10.0f64, n);
    let branches = proptest::collection::vec(
        (0..n, 0..n, 0.01..100.0f64),
        1..(3 * n),
    );
    (ground, branches).prop_map(move |(ground, raw)| MnaStamp {
        n,
        ground,
        branches: raw
            .into_iter()
            .filter(|&(a, b, _)| a != b)
            .collect(),
    })
}

impl MnaStamp {
    /// Stamp positions (with duplicates), as MNA assembly produces them.
    fn positions(&self) -> Vec<(usize, usize)> {
        let mut pos: Vec<(usize, usize)> = (0..self.n).map(|k| (k, k)).collect();
        for &(a, b, _) in &self.branches {
            pos.extend([(a, a), (b, b), (a, b), (b, a)]);
        }
        pos
    }

    fn stamp(&self, mut add: impl FnMut(usize, usize, f64)) {
        for (k, &g) in self.ground.iter().enumerate() {
            add(k, k, g);
        }
        for &(a, b, g) in &self.branches {
            add(a, a, g);
            add(b, b, g);
            add(a, b, -g);
            add(b, a, -g);
        }
    }

    fn dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.n, self.n);
        self.stamp(|r, c, v| m.add(r, c, v));
        m
    }

    fn sparse(&self) -> linsys::sparse::SparseMatrix {
        let structure =
            linsys::sparse::SparseStructure::from_positions(self.n, &self.positions());
        let mut m = linsys::sparse::SparseMatrix::zeros(structure);
        self.stamp(|r, c, v| m.add(r, c, v));
        m
    }
}

proptest! {
    /// The sparse Gilbert–Peierls factorisation agrees with the dense
    /// LU on random well-conditioned MNA stamps — and not merely within
    /// tolerance: the sparse core replays the dense pivot order and
    /// arithmetic, so the solutions are bit-identical.
    #[test]
    fn sparse_factorisation_agrees_with_dense_on_mna_stamps(
        stamp in mna_stamp(7),
        b in proptest::collection::vec(-100.0..100.0f64, 7),
    ) {
        use linsys::matrix::Lu;
        use linsys::sparse::SparseLu;

        let dense_x = Lu::factor(&stamp.dense()).expect("dominant").solve(&b);
        let sparse_x = SparseLu::factor(&stamp.sparse()).expect("dominant").solve(&b);
        for (k, (d, s)) in dense_x.iter().zip(&sparse_x).enumerate() {
            prop_assert!(
                d.to_bits() == s.to_bits(),
                "x[{k}]: dense {d:e} != sparse {s:e}"
            );
        }
        // And both actually solve the system.
        let back = stamp.dense().mul_vec(&dense_x);
        for (want, got) in b.iter().zip(&back) {
            prop_assert!((want - got).abs() < 1e-7, "{want} vs {got}");
        }
    }

    /// Sherman–Morrison against a golden factorisation: for the bridge
    /// perturbation A' = A + g·w·wᵀ with w = e_a − e_b, the rank-1
    /// update of the golden solution agrees with factorising A' from
    /// scratch.
    #[test]
    fn rank1_update_agrees_with_from_scratch_factorisation(
        stamp in mna_stamp(6),
        b in proptest::collection::vec(-10.0..10.0f64, 6),
        bridge in (0..6usize, 0..6usize, 0.05..50.0f64),
    ) {
        use linsys::matrix::Lu;

        let (pa, pb, g) = bridge;
        prop_assume!(pa != pb);
        let golden = Lu::factor(&stamp.dense()).expect("dominant");
        let mut w = vec![0.0; stamp.n];
        w[pa] = 1.0;
        w[pb] = -1.0;
        let y = golden.solve(&b);
        let z = golden.solve(&w);
        let wty: f64 = y.iter().zip(&w).map(|(yi, wi)| yi * wi).sum();
        let wtz: f64 = z.iter().zip(&w).map(|(zi, wi)| zi * wi).sum();
        let denom = 1.0 + g * wtz;
        prop_assume!(denom.abs() > 1e-9);
        let scale = g * wty / denom;
        let updated: Vec<f64> = y.iter().zip(&z).map(|(yi, zi)| yi - scale * zi).collect();

        // From scratch: stamp the bridge conductance and refactorise.
        let mut perturbed = stamp.dense();
        perturbed.add(pa, pa, g);
        perturbed.add(pb, pb, g);
        perturbed.add(pa, pb, -g);
        perturbed.add(pb, pa, -g);
        let direct = Lu::factor(&perturbed).expect("still dominant").solve(&b);
        for (k, (u, d)) in updated.iter().zip(&direct).enumerate() {
            prop_assert!(
                (u - d).abs() < 1e-6 * (1.0 + d.abs()),
                "x[{k}]: rank-1 {u:e} vs direct {d:e}"
            );
        }
    }
}
