//! A minimal complex-number type.
//!
//! Only the operations the root finder, transfer functions and FFT need.

use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A complex number `re + i·im`.
///
/// # Example
///
/// ```
/// use linsys::complex::Complex;
///
/// let i = Complex::I;
/// assert_eq!(i * i, Complex::new(-1.0, 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The imaginary unit.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    /// Creates `re + i·im`.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real value.
    pub const fn real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Creates from polar form `r·e^{iθ}`.
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex {
            re: r * theta.cos(),
            im: r * theta.sin(),
        }
    }

    /// Magnitude `|z|`.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude, avoiding the square root.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase) in radians.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Complex exponential `e^z`.
    pub fn exp(self) -> Self {
        Complex::from_polar(self.re.exp(), self.im)
    }

    /// True if either component is NaN.
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::real(re)
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    fn mul(self, rhs: f64) -> Complex {
        Complex::new(self.re * rhs, self.im * rhs)
    }
}

impl Div for Complex {
    type Output = Complex;
    fn div(self, rhs: Complex) -> Complex {
        let d = rhs.norm_sqr();
        Complex::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(-3.0, 0.5);
        assert_eq!(a + b - b, a);
        let roundtrip = (a * b) / b;
        assert!((roundtrip - a).abs() < 1e-14);
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(Complex::I * Complex::I, Complex::real(-1.0));
    }

    #[test]
    fn abs_and_arg() {
        let z = Complex::new(3.0, 4.0);
        assert_eq!(z.abs(), 5.0);
        assert!((Complex::I.arg() - std::f64::consts::FRAC_PI_2).abs() < 1e-15);
    }

    #[test]
    fn conjugate_negates_imaginary() {
        assert_eq!(Complex::new(1.0, 2.0).conj(), Complex::new(1.0, -2.0));
    }

    #[test]
    fn exp_of_i_pi_is_minus_one() {
        let z = (Complex::I * std::f64::consts::PI).exp();
        assert!((z.re + 1.0).abs() < 1e-15);
        assert!(z.im.abs() < 1e-15);
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex::from_polar(2.0, 0.3);
        assert!((z.abs() - 2.0).abs() < 1e-15);
        assert!((z.arg() - 0.3).abs() < 1e-15);
    }

    #[test]
    fn division_by_self_is_one() {
        let z = Complex::new(0.5, -1.5);
        let one = z / z;
        assert!((one.re - 1.0).abs() < 1e-15);
        assert!(one.im.abs() < 1e-15);
    }

    #[test]
    fn display_format() {
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2i");
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2i");
    }
}
