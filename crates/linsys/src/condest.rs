//! Shared 1-norm condition estimation (Hager's algorithm, the
//! LINPACK/LAPACK `xLACON` family) for the dense and sparse LU
//! factorisations.
//!
//! The estimator needs only solves with `A` and `Aᵀ` against the
//! existing factorisation — a handful of triangular substitutions, no
//! refactorisation — so it is cheap enough to run as an advisory check
//! after a fresh factorisation.
//!
//! # Determinism
//!
//! The estimate feeds solver hazard counters that land in canonical
//! (byte-compared) reports, so it must be bit-identical between the
//! dense and sparse backends. Every choice here is made with that in
//! mind:
//!
//! * the sign vector uses `>= 0.0`, which treats `-0.0` and `+0.0`
//!   identically (IEEE `-0.0 == 0.0`), so zero-sign differences between
//!   backends cannot flip a sign;
//! * the argmax scan keeps the *first* strictly-greater index, the same
//!   tie-break the pivot scans use;
//! * accumulations run in ascending index order on both sides.
//!
//! Combined with solve/transpose-solve kernels that are bit-identical
//! for nonzero values (zeros may differ only in sign, and only their
//! magnitudes are consumed here), the returned estimate is
//! bit-identical across backends.

/// Estimates `anorm · ||A⁻¹||₁` (an estimate of the 1-norm condition
/// number) given closures that solve `A·y = x` and `Aᵀ·y = x` against a
/// factorisation of `A`.
///
/// Returns `0.0` for empty systems and `f64::INFINITY` when a solve
/// produces non-finite values (a hazard in its own right).
pub(crate) fn condest_1(
    n: usize,
    mut solve: impl FnMut(&[f64], &mut [f64]),
    mut solve_transpose: impl FnMut(&[f64], &mut [f64]),
    anorm: f64,
) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let mut x = vec![1.0 / n as f64; n];
    let mut y = vec![0.0; n];
    let mut xi = vec![0.0; n];
    let mut z = vec![0.0; n];
    let mut est = 0.0_f64;
    // Hager's iteration converges in 2–3 steps in practice; five is the
    // customary hard cap.
    for _ in 0..5 {
        solve(&x, &mut y);
        let mut next = 0.0_f64;
        for v in &y {
            let a = v.abs();
            if a.is_nan() {
                return f64::INFINITY;
            }
            next += a;
        }
        if !next.is_finite() {
            return f64::INFINITY;
        }
        if next <= est {
            break;
        }
        est = next;
        for (s, v) in xi.iter_mut().zip(&y) {
            *s = if *v >= 0.0 { 1.0 } else { -1.0 };
        }
        solve_transpose(&xi, &mut z);
        // First strictly-greater index, matching the pivot-scan
        // tie-break.
        let mut j = 0;
        let mut zmax = z[0].abs();
        for (k, v) in z.iter().enumerate().skip(1) {
            let a = v.abs();
            if a > zmax {
                zmax = a;
                j = k;
            }
        }
        if zmax.is_nan() {
            return f64::INFINITY;
        }
        let mut dot = 0.0;
        for (zv, xv) in z.iter().zip(&x) {
            dot += zv * xv;
        }
        if zmax <= dot.abs() {
            break;
        }
        x.fill(0.0);
        x[j] = 1.0;
    }
    anorm * est
}
