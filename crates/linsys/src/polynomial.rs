//! Real-coefficient polynomials with complex root finding.

use crate::complex::Complex;

/// A polynomial with real coefficients, stored lowest power first:
/// `coeffs[k]` multiplies `x^k`.
///
/// # Example
///
/// ```
/// use linsys::polynomial::Polynomial;
///
/// // p(x) = x² - 1
/// let p = Polynomial::new(vec![-1.0, 0.0, 1.0]);
/// assert_eq!(p.eval(2.0), 3.0);
/// let roots = p.roots();
/// assert_eq!(roots.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Polynomial {
    coeffs: Vec<f64>,
}

impl Polynomial {
    /// Creates a polynomial from coefficients, lowest power first.
    /// Trailing (highest-power) zeros are trimmed.
    pub fn new(coeffs: Vec<f64>) -> Self {
        let mut p = Polynomial { coeffs };
        p.trim();
        p
    }

    /// The constant polynomial `1`.
    pub fn one() -> Self {
        Polynomial { coeffs: vec![1.0] }
    }

    /// Builds the monic polynomial with the given complex roots.
    ///
    /// Complex roots must come in conjugate pairs for the coefficients to
    /// be real; tiny imaginary residue is discarded.
    pub fn from_roots(roots: &[Complex]) -> Self {
        let mut c = vec![Complex::ONE];
        for &r in roots {
            // Multiply by (x - r).
            let mut next = vec![Complex::ZERO; c.len() + 1];
            for (k, &ck) in c.iter().enumerate() {
                next[k + 1] = next[k + 1] + ck;
                next[k] = next[k] - ck * r;
            }
            c = next;
        }
        Polynomial::new(c.into_iter().map(|z| z.re).collect())
    }

    fn trim(&mut self) {
        while self.coeffs.len() > 1 && self.coeffs.last() == Some(&0.0) {
            self.coeffs.pop();
        }
        if self.coeffs.is_empty() {
            self.coeffs.push(0.0);
        }
    }

    /// Coefficients, lowest power first.
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Degree (0 for constants, including the zero polynomial).
    pub fn degree(&self) -> usize {
        self.coeffs.len() - 1
    }

    /// Evaluates at a real point (Horner).
    pub fn eval(&self, x: f64) -> f64 {
        self.coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
    }

    /// Evaluates at a complex point (Horner).
    pub fn eval_complex(&self, z: Complex) -> Complex {
        self.coeffs
            .iter()
            .rev()
            .fold(Complex::ZERO, |acc, &c| acc * z + Complex::real(c))
    }

    /// Derivative polynomial.
    pub fn derivative(&self) -> Polynomial {
        if self.coeffs.len() <= 1 {
            return Polynomial::new(vec![0.0]);
        }
        Polynomial::new(
            self.coeffs
                .iter()
                .enumerate()
                .skip(1)
                .map(|(k, &c)| k as f64 * c)
                .collect(),
        )
    }

    /// Product of two polynomials.
    pub fn mul(&self, other: &Polynomial) -> Polynomial {
        let mut out = vec![0.0; self.coeffs.len() + other.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            for (j, &b) in other.coeffs.iter().enumerate() {
                out[i + j] += a * b;
            }
        }
        Polynomial::new(out)
    }

    /// Sum of two polynomials.
    pub fn add(&self, other: &Polynomial) -> Polynomial {
        let n = self.coeffs.len().max(other.coeffs.len());
        let mut out = vec![0.0; n];
        for (k, slot) in out.iter_mut().enumerate() {
            *slot = self.coeffs.get(k).copied().unwrap_or(0.0)
                + other.coeffs.get(k).copied().unwrap_or(0.0);
        }
        Polynomial::new(out)
    }

    /// Scales all coefficients by `k`.
    pub fn scale(&self, k: f64) -> Polynomial {
        Polynomial::new(self.coeffs.iter().map(|c| c * k).collect())
    }

    /// All complex roots via the Durand–Kerner (Weierstrass) iteration.
    ///
    /// Returns an empty vector for constants. Multiple roots are returned
    /// with multiplicity; accuracy degrades gracefully for highly
    /// clustered roots, which is sufficient for the low-order transfer
    /// functions in this workspace.
    pub fn roots(&self) -> Vec<Complex> {
        let n = self.degree();
        if n == 0 {
            return Vec::new();
        }
        // Normalise to a monic polynomial.
        let lead = *self.coeffs.last().expect("non-empty coeffs");
        let monic: Vec<f64> = self.coeffs.iter().map(|c| c / lead).collect();
        let poly = Polynomial {
            coeffs: monic.clone(),
        };

        // Initial guesses on a circle of radius based on coefficient size,
        // at non-symmetric angles to break ties.
        let radius = 1.0
            + monic[..n]
                .iter()
                .map(|c| c.abs())
                .fold(0.0_f64, f64::max);
        let mut z: Vec<Complex> = (0..n)
            .map(|k| Complex::from_polar(radius, 0.4 + 2.0 * std::f64::consts::PI * k as f64 / n as f64))
            .collect();

        for _ in 0..500 {
            let mut worst: f64 = 0.0;
            for i in 0..n {
                let mut denom = Complex::ONE;
                for j in 0..n {
                    if i != j {
                        denom = denom * (z[i] - z[j]);
                    }
                }
                let delta = poly.eval_complex(z[i]) / denom;
                z[i] = z[i] - delta;
                worst = worst.max(delta.abs());
            }
            if worst < 1e-13 {
                break;
            }
        }

        // Snap near-real roots onto the real axis.
        for zi in &mut z {
            if zi.im.abs() < 1e-8 * (1.0 + zi.re.abs()) {
                zi.im = 0.0;
            }
        }
        z
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted_real_roots(p: &Polynomial) -> Vec<f64> {
        let mut r: Vec<f64> = p.roots().iter().map(|z| z.re).collect();
        r.sort_by(|a, b| a.total_cmp(b));
        r
    }

    #[test]
    fn eval_horner() {
        // 3 + 2x + x²
        let p = Polynomial::new(vec![3.0, 2.0, 1.0]);
        assert_eq!(p.eval(2.0), 11.0);
        assert_eq!(p.eval(0.0), 3.0);
    }

    #[test]
    fn quadratic_real_roots() {
        // (x-1)(x-3) = 3 - 4x + x²
        let p = Polynomial::new(vec![3.0, -4.0, 1.0]);
        let r = sorted_real_roots(&p);
        assert!((r[0] - 1.0).abs() < 1e-9);
        assert!((r[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn complex_conjugate_roots() {
        // x² + 1 -> ±i
        let p = Polynomial::new(vec![1.0, 0.0, 1.0]);
        let roots = p.roots();
        assert_eq!(roots.len(), 2);
        for z in roots {
            assert!(z.re.abs() < 1e-9);
            assert!((z.im.abs() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn cubic_mixed_roots() {
        // (x+2)(x² + 4) = x³ + 2x² + 4x + 8
        let p = Polynomial::new(vec![8.0, 4.0, 2.0, 1.0]);
        let roots = p.roots();
        let real_count = roots.iter().filter(|z| z.im == 0.0).count();
        assert_eq!(real_count, 1);
        let real = roots.iter().find(|z| z.im == 0.0).unwrap();
        assert!((real.re + 2.0).abs() < 1e-8);
    }

    #[test]
    fn from_roots_roundtrip() {
        let roots = [
            Complex::real(-1.0),
            Complex::new(0.0, 2.0),
            Complex::new(0.0, -2.0),
        ];
        let p = Polynomial::from_roots(&roots);
        // (x+1)(x²+4) = x³ + x² + 4x + 4
        assert_eq!(p.coeffs(), &[4.0, 4.0, 1.0, 1.0]);
        for r in roots {
            assert!(p.eval_complex(r).abs() < 1e-12);
        }
    }

    #[test]
    fn derivative_drops_degree() {
        // d/dx (x³ - x) = 3x² - 1
        let p = Polynomial::new(vec![0.0, -1.0, 0.0, 1.0]);
        assert_eq!(p.derivative().coeffs(), &[-1.0, 0.0, 3.0]);
        assert_eq!(Polynomial::new(vec![5.0]).derivative().coeffs(), &[0.0]);
    }

    #[test]
    fn multiply_polynomials() {
        // (1+x)(1-x) = 1 - x²
        let a = Polynomial::new(vec![1.0, 1.0]);
        let b = Polynomial::new(vec![1.0, -1.0]);
        assert_eq!(a.mul(&b).coeffs(), &[1.0, 0.0, -1.0]);
    }

    #[test]
    fn add_pads_shorter() {
        let a = Polynomial::new(vec![1.0]);
        let b = Polynomial::new(vec![0.0, 0.0, 2.0]);
        assert_eq!(a.add(&b).coeffs(), &[1.0, 0.0, 2.0]);
    }

    #[test]
    fn trailing_zeros_trimmed() {
        let p = Polynomial::new(vec![1.0, 2.0, 0.0, 0.0]);
        assert_eq!(p.degree(), 1);
    }

    #[test]
    fn constant_has_no_roots() {
        assert!(Polynomial::new(vec![5.0]).roots().is_empty());
    }

    #[test]
    fn high_order_roots_accurate() {
        // Roots at -1, -2, -3, -4, -5 (a realistic pole spread).
        let roots: Vec<Complex> = (1..=5).map(|k| Complex::real(-(k as f64))).collect();
        let p = Polynomial::from_roots(&roots);
        let mut found = sorted_real_roots(&p);
        found.reverse();
        for (k, r) in found.iter().enumerate() {
            assert!(
                (r + (k + 1) as f64).abs() < 1e-6,
                "root {k}: got {r}"
            );
        }
    }
}
