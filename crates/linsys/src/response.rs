//! Time responses of linear models.
//!
//! These functions mirror Matlab's `impulse` and `step`: the paper's
//! second testing approach builds state-space models of fault-free and
//! faulty circuits and compares their impulse responses sample by sample.

use crate::statespace::StateSpace;

/// Samples the impulse response `y(t) = C·e^{A·t}·B` of a continuous
/// model at `n` points spaced `dt` apart (starting at `t = 0`).
///
/// The direct feed-through term `D` contributes a Dirac impulse at
/// `t = 0` which has no finite sample value; following common practice it
/// is omitted from the returned samples.
///
/// # Example
///
/// ```
/// use linsys::transfer::ContinuousTransferFunction;
/// use linsys::response::impulse_response;
///
/// // H(s) = 1/(s+1): h(t) = e^{-t}.
/// let ss = ContinuousTransferFunction::from_coeffs(&[1.0], &[1.0, 1.0])
///     .to_state_space();
/// let h = impulse_response(&ss, 0.1, 50);
/// assert!((h[10] - (-1.0_f64).exp()).abs() < 1e-6);
/// ```
pub fn impulse_response(ss: &StateSpace, dt: f64, n: usize) -> Vec<f64> {
    assert!(dt > 0.0, "dt must be positive");
    let order = ss.order();
    let phi = ss.a().scale(dt).expm();
    // x(0+) = B after a unit impulse.
    let mut x: Vec<f64> = (0..order).map(|i| ss.b()[(i, 0)]).collect();
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let mut out = 0.0;
        for (j, &xj) in x.iter().enumerate() {
            out += ss.c()[(0, j)] * xj;
        }
        y.push(out);
        x = phi.mul_vec(&x);
    }
    y
}

/// Samples the unit-step response of a continuous model at `n` points
/// spaced `dt` apart, using zero-order-hold discretisation (exact for a
/// step input).
pub fn step_response(ss: &StateSpace, dt: f64, n: usize) -> Vec<f64> {
    assert!(dt > 0.0, "dt must be positive");
    ss.discretize_zoh(dt).simulate(&vec![1.0; n])
}

/// Simulates a continuous model over an arbitrary piecewise-constant
/// input sampled every `dt` (zero-order hold between samples).
pub fn lsim(ss: &StateSpace, input: &[f64], dt: f64) -> Vec<f64> {
    assert!(dt > 0.0, "dt must be positive");
    ss.discretize_zoh(dt).simulate(input)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transfer::ContinuousTransferFunction;

    fn first_order() -> StateSpace {
        // H(s) = 1/(s+1).
        ContinuousTransferFunction::from_coeffs(&[1.0], &[1.0, 1.0]).to_state_space()
    }

    #[test]
    fn impulse_of_first_order_is_exponential() {
        let h = impulse_response(&first_order(), 0.05, 100);
        for (k, &y) in h.iter().enumerate() {
            let t = k as f64 * 0.05;
            assert!((y - (-t).exp()).abs() < 1e-9, "sample {k}");
        }
    }

    #[test]
    fn step_of_first_order_approaches_one() {
        let y = step_response(&first_order(), 0.05, 200);
        assert!(y[0].abs() < 1e-12);
        assert!((y[199] - 1.0).abs() < 1e-4);
    }

    #[test]
    fn second_order_impulse_underdamped_rings() {
        // H(s) = 1/(s² + 0.2s + 1): lightly damped, must cross zero.
        let ss =
            ContinuousTransferFunction::from_coeffs(&[1.0], &[1.0, 0.2, 1.0]).to_state_space();
        let h = impulse_response(&ss, 0.05, 400);
        assert!(h.iter().any(|&y| y > 0.1));
        assert!(h.iter().any(|&y| y < -0.1));
    }

    #[test]
    fn lsim_step_input_matches_step_response() {
        let ss = first_order();
        let via_lsim = lsim(&ss, &vec![1.0; 100], 0.05);
        let via_step = step_response(&ss, 0.05, 100);
        for (a, b) in via_lsim.iter().zip(&via_step) {
            assert!((a - b).abs() < 1e-14);
        }
    }

    #[test]
    fn impulse_energy_decreases_for_stable_system() {
        let h = impulse_response(&first_order(), 0.1, 100);
        assert!(h[99].abs() < h[0].abs() * 1e-3);
    }
}
