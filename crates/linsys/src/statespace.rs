//! State-space models for SISO systems.

use crate::matrix::Matrix;
use crate::transfer::ContinuousTransferFunction;

/// A continuous-time SISO state-space model
///
/// ```text
/// x' = A·x + B·u
/// y  = C·x + D·u
/// ```
///
/// # Example
///
/// ```
/// use linsys::transfer::ContinuousTransferFunction;
///
/// let h = ContinuousTransferFunction::from_coeffs(&[1.0], &[1.0, 2.0, 1.0]);
/// let ss = h.to_state_space();
/// assert_eq!(ss.order(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StateSpace {
    a: Matrix,
    b: Matrix,
    c: Matrix,
    d: f64,
}

impl StateSpace {
    /// Creates a model from explicit matrices.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent dimensions (`A` must be `n×n`, `B` `n×1`,
    /// `C` `1×n`).
    pub fn new(a: Matrix, b: Matrix, c: Matrix, d: f64) -> Self {
        let n = a.rows();
        assert_eq!(a.cols(), n, "A must be square");
        assert_eq!((b.rows(), b.cols()), (n, 1), "B must be n x 1");
        assert_eq!((c.rows(), c.cols()), (1, n), "C must be 1 x n");
        StateSpace { a, b, c, d }
    }

    /// Controllable-canonical realisation of a proper transfer function.
    ///
    /// # Panics
    ///
    /// Panics for zero-order (pure gain) systems.
    pub fn from_transfer_function(tf: &ContinuousTransferFunction) -> Self {
        let n = tf.order();
        assert!(n >= 1, "state space needs at least first order");
        let den = tf.denominator().coeffs(); // lowest power first, length n+1
        let lead = den[n];
        // Monic denominator coefficients a_0..a_{n-1}.
        let a_coeffs: Vec<f64> = den[..n].iter().map(|c| c / lead).collect();
        // Numerator padded to length n+1 and normalised by the leading
        // denominator coefficient.
        let mut b_coeffs = vec![0.0; n + 1];
        for (k, &c) in tf.numerator().coeffs().iter().enumerate() {
            b_coeffs[k] = c / lead;
        }
        let bn = b_coeffs[n];

        let mut a = Matrix::zeros(n, n);
        for i in 0..n - 1 {
            a[(i, i + 1)] = 1.0;
        }
        for j in 0..n {
            a[(n - 1, j)] = -a_coeffs[j];
        }
        let mut b = Matrix::zeros(n, 1);
        b[(n - 1, 0)] = 1.0;
        let mut c = Matrix::zeros(1, n);
        for j in 0..n {
            c[(0, j)] = b_coeffs[j] - bn * a_coeffs[j];
        }
        StateSpace { a, b, c, d: bn }
    }

    /// System order (number of states).
    pub fn order(&self) -> usize {
        self.a.rows()
    }

    /// The `A` matrix.
    pub fn a(&self) -> &Matrix {
        &self.a
    }

    /// The `B` vector (as an `n×1` matrix).
    pub fn b(&self) -> &Matrix {
        &self.b
    }

    /// The `C` vector (as a `1×n` matrix).
    pub fn c(&self) -> &Matrix {
        &self.c
    }

    /// The direct feed-through term `D`.
    pub fn d(&self) -> f64 {
        self.d
    }

    /// Zero-order-hold discretisation with sample period `dt`.
    ///
    /// Uses the augmented-matrix exponential
    /// `exp([[A, B], [0, 0]]·dt) = [[Ad, Bd], [0, I]]`, which remains
    /// valid when `A` is singular (e.g. integrators).
    pub fn discretize_zoh(&self, dt: f64) -> DiscreteStateSpace {
        assert!(dt > 0.0, "sample period must be positive");
        let n = self.order();
        let mut aug = Matrix::zeros(n + 1, n + 1);
        for r in 0..n {
            for c in 0..n {
                aug[(r, c)] = self.a[(r, c)] * dt;
            }
            aug[(r, n)] = self.b[(r, 0)] * dt;
        }
        let e = aug.expm();
        let mut ad = Matrix::zeros(n, n);
        let mut bd = Matrix::zeros(n, 1);
        for r in 0..n {
            for c in 0..n {
                ad[(r, c)] = e[(r, c)];
            }
            bd[(r, 0)] = e[(r, n)];
        }
        DiscreteStateSpace {
            a: ad,
            b: bd,
            c: self.c.clone(),
            d: self.d,
            dt,
        }
    }
}

/// A discrete-time SISO state-space model produced by
/// [`StateSpace::discretize_zoh`].
#[derive(Debug, Clone, PartialEq)]
pub struct DiscreteStateSpace {
    a: Matrix,
    b: Matrix,
    c: Matrix,
    d: f64,
    dt: f64,
}

impl DiscreteStateSpace {
    /// Sample period in seconds.
    pub fn sample_time(&self) -> f64 {
        self.dt
    }

    /// System order.
    pub fn order(&self) -> usize {
        self.a.rows()
    }

    /// Simulates the model over an input sequence from a zero initial
    /// state, returning the output sequence.
    pub fn simulate(&self, input: &[f64]) -> Vec<f64> {
        let mut x = vec![0.0; self.order()];
        let mut y = Vec::with_capacity(input.len());
        for &u in input {
            let mut out = self.d * u;
            for (j, &xj) in x.iter().enumerate() {
                out += self.c[(0, j)] * xj;
            }
            y.push(out);
            let mut x_next = self.a.mul_vec(&x);
            for (j, xn) in x_next.iter_mut().enumerate() {
                *xn += self.b[(j, 0)] * u;
            }
            x = x_next;
        }
        y
    }

    /// Propagates one step from state `x` with input `u`, returning the
    /// next state (exposed for custom simulations).
    pub fn step_state(&self, x: &[f64], u: f64) -> Vec<f64> {
        let mut x_next = self.a.mul_vec(x);
        for (j, xn) in x_next.iter_mut().enumerate() {
            *xn += self.b[(j, 0)] * u;
        }
        x_next
    }

    /// Output for state `x` and input `u`.
    pub fn output(&self, x: &[f64], u: f64) -> f64 {
        let mut out = self.d * u;
        for (j, &xj) in x.iter().enumerate() {
            out += self.c[(0, j)] * xj;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transfer::ContinuousTransferFunction;

    #[test]
    fn canonical_form_first_order() {
        // H(s) = 3/(s+2): A = [-2], B = [1], C = [3], D = 0.
        let tf = ContinuousTransferFunction::from_coeffs(&[3.0], &[1.0, 2.0]);
        let ss = tf.to_state_space();
        assert_eq!(ss.a()[(0, 0)], -2.0);
        assert_eq!(ss.b()[(0, 0)], 1.0);
        assert_eq!(ss.c()[(0, 0)], 3.0);
        assert_eq!(ss.d(), 0.0);
    }

    #[test]
    fn feedthrough_extracted() {
        // H(s) = (s+3)/(s+2) = 1 + 1/(s+2): D = 1.
        let tf = ContinuousTransferFunction::from_coeffs(&[1.0, 3.0], &[1.0, 2.0]);
        let ss = tf.to_state_space();
        assert_eq!(ss.d(), 1.0);
        assert_eq!(ss.c()[(0, 0)], 1.0);
    }

    #[test]
    fn non_monic_denominator_normalised() {
        // H(s) = 4/(2s+2) = 2/(s+1).
        let tf = ContinuousTransferFunction::from_coeffs(&[4.0], &[2.0, 2.0]);
        let ss = tf.to_state_space();
        assert_eq!(ss.a()[(0, 0)], -1.0);
        assert_eq!(ss.c()[(0, 0)], 2.0);
    }

    #[test]
    fn zoh_first_order_matches_analytic() {
        // x' = -x + u; Ad = e^{-dt}, Bd = 1 - e^{-dt}.
        let ss = StateSpace::new(
            Matrix::from_rows(&[vec![-1.0]]),
            Matrix::column(&[1.0]),
            Matrix::from_rows(&[vec![1.0]]),
            0.0,
        );
        let d = ss.discretize_zoh(0.1);
        let (ad, bd) = ((-0.1_f64).exp(), 1.0 - (-0.1_f64).exp());
        let y = d.simulate(&[1.0, 0.0]);
        assert!(y[0].abs() < 1e-15);
        assert!((y[1] - bd).abs() < 1e-12);
        let y2 = d.simulate(&[1.0, 0.0, 0.0]);
        assert!((y2[2] - ad * bd).abs() < 1e-12);
    }

    #[test]
    fn zoh_handles_singular_a() {
        // Pure integrator: A = 0, B = 1 -> Ad = 1, Bd = dt.
        let ss = StateSpace::new(
            Matrix::zeros(1, 1),
            Matrix::column(&[1.0]),
            Matrix::from_rows(&[vec![1.0]]),
            0.0,
        );
        let d = ss.discretize_zoh(0.25);
        let y = d.simulate(&[1.0, 1.0, 1.0, 1.0, 0.0]);
        assert!((y[4] - 1.0).abs() < 1e-12); // integrated 4 * 0.25
    }

    #[test]
    fn step_response_settles_to_dc_gain() {
        // H(s) = 5/(s² + 3s + 5): DC gain 1.
        let tf = ContinuousTransferFunction::from_coeffs(&[5.0], &[1.0, 3.0, 5.0]);
        let ss = tf.to_state_space();
        let d = ss.discretize_zoh(0.01);
        let y = d.simulate(&vec![1.0; 2000]);
        assert!((y[1999] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn step_state_and_output_compose_like_simulate() {
        let tf = ContinuousTransferFunction::from_coeffs(&[1.0], &[1.0, 1.0]);
        let d = tf.to_state_space().discretize_zoh(0.1);
        let input = [1.0, 0.5, -0.2, 0.0];
        let y_ref = d.simulate(&input);
        let mut x = vec![0.0; d.order()];
        for (k, &u) in input.iter().enumerate() {
            assert!((d.output(&x, u) - y_ref[k]).abs() < 1e-15);
            x = d.step_state(&x, u);
        }
    }

    #[test]
    #[should_panic(expected = "square")]
    fn dimension_checks() {
        let _ = StateSpace::new(
            Matrix::zeros(2, 1),
            Matrix::column(&[1.0]),
            Matrix::from_rows(&[vec![1.0]]),
            0.0,
        );
    }
}
