//! Transfer functions in the s and z domains.

use crate::complex::Complex;
use crate::polynomial::Polynomial;
use crate::statespace::StateSpace;

/// A continuous-time (s-domain) SISO transfer function
/// `H(s) = gain · Π(s − zᵢ) / Π(s − pⱼ)`.
///
/// Construct from numerator/denominator coefficients
/// ([`ContinuousTransferFunction::from_coeffs`], Matlab-style highest
/// power first) or from poles/zeros/gain
/// ([`ContinuousTransferFunction::from_zpk`]).
///
/// # Example
///
/// ```
/// use linsys::transfer::ContinuousTransferFunction;
/// use linsys::complex::Complex;
///
/// // H(s) = 10 / (s + 10): unity DC gain single pole.
/// let h = ContinuousTransferFunction::from_coeffs(&[10.0], &[1.0, 10.0]);
/// assert!((h.dc_gain() - 1.0).abs() < 1e-12);
/// assert!((h.poles()[0].re + 10.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ContinuousTransferFunction {
    num: Polynomial,
    den: Polynomial,
}

impl ContinuousTransferFunction {
    /// Builds from numerator and denominator coefficients, **highest
    /// power first** (Matlab convention).
    ///
    /// # Panics
    ///
    /// Panics if the denominator is empty or all-zero, or if the transfer
    /// function is improper (numerator degree exceeds denominator degree).
    pub fn from_coeffs(num: &[f64], den: &[f64]) -> Self {
        let num = Polynomial::new(num.iter().rev().copied().collect());
        let den = Polynomial::new(den.iter().rev().copied().collect());
        assert!(
            den.coeffs().iter().any(|&c| c != 0.0),
            "denominator must be non-zero"
        );
        assert!(
            num.degree() <= den.degree(),
            "transfer function must be proper (num degree <= den degree)"
        );
        ContinuousTransferFunction { num, den }
    }

    /// Builds from zeros, poles and gain.
    ///
    /// Complex roots must appear in conjugate pairs.
    ///
    /// # Panics
    ///
    /// Panics if there are more zeros than poles.
    pub fn from_zpk(zeros: &[Complex], poles: &[Complex], gain: f64) -> Self {
        assert!(
            zeros.len() <= poles.len(),
            "transfer function must be proper (zeros <= poles)"
        );
        ContinuousTransferFunction {
            num: Polynomial::from_roots(zeros).scale(gain),
            den: Polynomial::from_roots(poles),
        }
    }

    /// Numerator polynomial (lowest power first).
    pub fn numerator(&self) -> &Polynomial {
        &self.num
    }

    /// Denominator polynomial (lowest power first).
    pub fn denominator(&self) -> &Polynomial {
        &self.den
    }

    /// Zeros of the transfer function.
    pub fn zeros(&self) -> Vec<Complex> {
        self.num.roots()
    }

    /// Poles of the transfer function.
    pub fn poles(&self) -> Vec<Complex> {
        self.den.roots()
    }

    /// System order (denominator degree).
    pub fn order(&self) -> usize {
        self.den.degree()
    }

    /// Evaluates `H(s)` at a complex frequency.
    pub fn eval(&self, s: Complex) -> Complex {
        self.num.eval_complex(s) / self.den.eval_complex(s)
    }

    /// Magnitude response at angular frequency `w` (rad/s).
    pub fn magnitude_at(&self, w: f64) -> f64 {
        self.eval(Complex::new(0.0, w)).abs()
    }

    /// DC gain `H(0)`.
    pub fn dc_gain(&self) -> f64 {
        self.num.eval(0.0) / self.den.eval(0.0)
    }

    /// True if every pole has a strictly negative real part.
    pub fn is_stable(&self) -> bool {
        self.poles().iter().all(|p| p.re < 0.0)
    }

    /// Controllable-canonical state-space realisation.
    ///
    /// # Panics
    ///
    /// Panics for a zero-order (pure gain) system.
    pub fn to_state_space(&self) -> StateSpace {
        StateSpace::from_transfer_function(self)
    }
}

/// A discrete-time (z-domain) SISO transfer function expressed in
/// **negative powers of z**:
///
/// `H(z) = (b₀ + b₁ z⁻¹ + ... + b_m z⁻ᵐ) / (a₀ + a₁ z⁻¹ + ... + a_n z⁻ⁿ)`
///
/// # Example
///
/// The paper's switched-capacitor integrator,
/// `H(z) = z⁻¹ / (6.8·(1 − z⁻¹))`:
///
/// ```
/// use linsys::transfer::DiscreteTransferFunction;
///
/// let h = DiscreteTransferFunction::new(
///     vec![0.0, 1.0 / 6.8],
///     vec![1.0, -1.0],
///     5e-6,
/// );
/// let imp = h.impulse_response(4);
/// // Accumulates 1/6.8 from sample 1 on.
/// assert!(imp[0].abs() < 1e-12);
/// assert!((imp[1] - 1.0 / 6.8).abs() < 1e-12);
/// assert!((imp[3] - 1.0 / 6.8).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DiscreteTransferFunction {
    b: Vec<f64>,
    a: Vec<f64>,
    sample_time: f64,
}

impl DiscreteTransferFunction {
    /// Creates a discrete transfer function.
    ///
    /// `b` and `a` are coefficients of increasing powers of `z⁻¹`.
    ///
    /// # Panics
    ///
    /// Panics if `a` is empty, `a[0]` is zero, or `sample_time <= 0`.
    pub fn new(b: Vec<f64>, a: Vec<f64>, sample_time: f64) -> Self {
        assert!(!a.is_empty() && a[0] != 0.0, "a[0] must be non-zero");
        assert!(sample_time > 0.0, "sample time must be positive");
        DiscreteTransferFunction { b, a, sample_time }
    }

    /// Numerator coefficients (powers of z⁻¹).
    pub fn numerator(&self) -> &[f64] {
        &self.b
    }

    /// Denominator coefficients (powers of z⁻¹).
    pub fn denominator(&self) -> &[f64] {
        &self.a
    }

    /// Sample period in seconds.
    pub fn sample_time(&self) -> f64 {
        self.sample_time
    }

    /// Runs the difference equation over an arbitrary input sequence.
    pub fn filter(&self, input: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; input.len()];
        for n in 0..input.len() {
            let mut acc = 0.0;
            for (k, &bk) in self.b.iter().enumerate() {
                if n >= k {
                    acc += bk * input[n - k];
                }
            }
            for (k, &ak) in self.a.iter().enumerate().skip(1) {
                if n >= k {
                    acc -= ak * y[n - k];
                }
            }
            y[n] = acc / self.a[0];
        }
        y
    }

    /// First `n` samples of the impulse response.
    pub fn impulse_response(&self, n: usize) -> Vec<f64> {
        let mut delta = vec![0.0; n];
        if n > 0 {
            delta[0] = 1.0;
        }
        self.filter(&delta)
    }

    /// First `n` samples of the unit-step response.
    pub fn step_response(&self, n: usize) -> Vec<f64> {
        self.filter(&vec![1.0; n])
    }

    /// Evaluates `H(z)` at a point in the z-plane.
    pub fn eval(&self, z: Complex) -> Complex {
        let zinv = Complex::ONE / z;
        let horner = |c: &[f64]| {
            c.iter()
                .rev()
                .fold(Complex::ZERO, |acc, &ck| acc * zinv + Complex::real(ck))
        };
        horner(&self.b) / horner(&self.a)
    }

    /// Poles in the z-plane.
    pub fn poles(&self) -> Vec<Complex> {
        // a0 + a1 z^-1 + ... + an z^-n = 0  <=>  a0 z^n + ... + an = 0.
        Polynomial::new(self.a.iter().rev().copied().collect()).roots()
    }

    /// True if all poles are strictly inside the unit circle.
    pub fn is_stable(&self) -> bool {
        self.poles().iter().all(|p| p.abs() < 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_order_pole_location() {
        let h = ContinuousTransferFunction::from_coeffs(&[1.0], &[1.0, 5.0]);
        let p = h.poles();
        assert_eq!(p.len(), 1);
        assert!((p[0].re + 5.0).abs() < 1e-9);
        assert!(h.is_stable());
    }

    #[test]
    fn zpk_and_coeffs_agree() {
        use crate::complex::Complex;
        // H(s) = 2 (s+1) / ((s+2)(s+3))
        let a = ContinuousTransferFunction::from_zpk(
            &[Complex::real(-1.0)],
            &[Complex::real(-2.0), Complex::real(-3.0)],
            2.0,
        );
        let b = ContinuousTransferFunction::from_coeffs(&[2.0, 2.0], &[1.0, 5.0, 6.0]);
        for w in [0.0, 0.5, 2.0, 50.0] {
            let s = Complex::new(0.0, w);
            assert!((a.eval(s) - b.eval(s)).abs() < 1e-12);
        }
    }

    #[test]
    fn magnitude_rolls_off() {
        // Single pole at -10 rad/s: -3 dB at w = 10.
        let h = ContinuousTransferFunction::from_coeffs(&[10.0], &[1.0, 10.0]);
        let m = h.magnitude_at(10.0);
        assert!((m - 1.0 / 2.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn unstable_pole_detected() {
        let h = ContinuousTransferFunction::from_coeffs(&[1.0], &[1.0, -1.0]);
        assert!(!h.is_stable());
    }

    #[test]
    #[should_panic(expected = "proper")]
    fn improper_rejected() {
        let _ = ContinuousTransferFunction::from_coeffs(&[1.0, 0.0, 0.0], &[1.0, 1.0]);
    }

    #[test]
    fn discrete_accumulator_impulse() {
        // y[n] = y[n-1] + x[n]: running sum.
        let h = DiscreteTransferFunction::new(vec![1.0], vec![1.0, -1.0], 1.0);
        assert_eq!(h.impulse_response(4), vec![1.0, 1.0, 1.0, 1.0]);
        assert_eq!(h.step_response(4), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn discrete_fir_filter() {
        // Two-tap moving average.
        let h = DiscreteTransferFunction::new(vec![0.5, 0.5], vec![1.0], 1.0);
        let y = h.filter(&[1.0, 1.0, 1.0, 0.0]);
        assert_eq!(y, vec![0.5, 1.0, 1.0, 0.5]);
    }

    #[test]
    fn discrete_pole_on_unit_circle_is_marginal() {
        let h = DiscreteTransferFunction::new(vec![1.0], vec![1.0, -1.0], 1.0);
        let p = h.poles();
        assert_eq!(p.len(), 1);
        assert!((p[0].re - 1.0).abs() < 1e-9);
        assert!(!h.is_stable());
    }

    #[test]
    fn discrete_eval_at_dc() {
        // H(z) = 0.5/(1 - 0.5 z^-1): H(1) = 1.
        let h = DiscreteTransferFunction::new(vec![0.5], vec![1.0, -0.5], 1.0);
        let g = h.eval(Complex::ONE);
        assert!((g.re - 1.0).abs() < 1e-12);
        assert!(h.is_stable());
    }

    #[test]
    fn sc_integrator_matches_paper_form() {
        // H(z) = z^-1 / (6.8 (1 - z^-1)); step response ramps by 1/6.8.
        let h = DiscreteTransferFunction::new(vec![0.0, 1.0 / 6.8], vec![1.0, -1.0], 5e-6);
        let s = h.step_response(10);
        for (n, y) in s.iter().enumerate() {
            assert!((y - n as f64 / 6.8).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn discrete_rejects_zero_leading_denominator() {
        let _ = DiscreteTransferFunction::new(vec![1.0], vec![0.0, 1.0], 1.0);
    }
}
