use std::error::Error;
use std::fmt;

/// Returned when a matrix factorisation finds no usable pivot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SingularMatrixError {
    /// Row index at which elimination broke down.
    pub row: usize,
}

impl fmt::Display for SingularMatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "singular matrix at row {}", self.row)
    }
}

impl Error for SingularMatrixError {}

/// A classified numerical hazard observed by the LU kernels or the
/// solver tiers built on top of them.
///
/// The taxonomy is deliberately small and stable: each variant has a
/// fixed kebab-case [`NumericalHazard::label`] that appears verbatim in
/// solver counters, flight-recorder postmortems, campaign journals and
/// canonical report markers, so a hazard seen in one layer can be
/// traced through every other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NumericalHazard {
    /// Elimination found a pivot far below the magnitude of its updated
    /// column — the matrix is numerically rank-deficient at that step.
    NearSingularPivot,
    /// Element growth during elimination exceeded the advisory bound:
    /// the factorisation succeeded but may have lost accuracy.
    PivotGrowth,
    /// A Sherman–Morrison rank-1 update met a denominator consistent
    /// with catastrophic cancellation (`1 + g·wᵀM⁻¹w ≈ 0`).
    Rank1Breakdown,
    /// A residual, trial step or solution contained a NaN or infinity.
    NonFinite,
    /// One round of iterative refinement failed to contract the true
    /// residual of a suspect solve.
    RefinementStall,
    /// The 1-norm condition estimate of a fresh factorisation exceeded
    /// the advisory threshold.
    IllConditioned,
}

impl NumericalHazard {
    /// Every hazard, in canonical (counter/report) order.
    pub const ALL: [NumericalHazard; 6] = [
        NumericalHazard::NearSingularPivot,
        NumericalHazard::PivotGrowth,
        NumericalHazard::Rank1Breakdown,
        NumericalHazard::NonFinite,
        NumericalHazard::RefinementStall,
        NumericalHazard::IllConditioned,
    ];

    /// Stable kebab-case identifier used in reports and journals.
    pub fn label(self) -> &'static str {
        match self {
            NumericalHazard::NearSingularPivot => "near-singular-pivot",
            NumericalHazard::PivotGrowth => "pivot-growth",
            NumericalHazard::Rank1Breakdown => "rank1-breakdown",
            NumericalHazard::NonFinite => "non-finite",
            NumericalHazard::RefinementStall => "refinement-stall",
            NumericalHazard::IllConditioned => "ill-conditioned",
        }
    }

    /// Inverse of [`NumericalHazard::label`] (journal decoding).
    pub fn from_label(label: &str) -> Option<Self> {
        NumericalHazard::ALL.into_iter().find(|h| h.label() == label)
    }
}

impl fmt::Display for NumericalHazard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_row() {
        assert_eq!(
            SingularMatrixError { row: 7 }.to_string(),
            "singular matrix at row 7"
        );
    }

    #[test]
    fn hazard_labels_round_trip_and_are_distinct() {
        for h in NumericalHazard::ALL {
            assert_eq!(NumericalHazard::from_label(h.label()), Some(h));
            assert_eq!(h.to_string(), h.label());
        }
        for (i, a) in NumericalHazard::ALL.iter().enumerate() {
            for b in &NumericalHazard::ALL[i + 1..] {
                assert_ne!(a.label(), b.label());
            }
        }
        assert_eq!(NumericalHazard::from_label("bogus"), None);
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync + Error>() {}
        check::<SingularMatrixError>();
    }
}
