use std::error::Error;
use std::fmt;

/// Returned when a matrix factorisation finds no usable pivot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SingularMatrixError {
    /// Row index at which elimination broke down.
    pub row: usize,
}

impl fmt::Display for SingularMatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "singular matrix at row {}", self.row)
    }
}

impl Error for SingularMatrixError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_row() {
        assert_eq!(
            SingularMatrixError { row: 7 }.to_string(),
            "singular matrix at row 7"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync + Error>() {}
        check::<SingularMatrixError>();
    }
}
