//! One-round iterative refinement with a contraction acceptance gate.
//!
//! A factorisation that is stale, perturbed or marginally conditioned
//! can return a solution whose true residual is far above rounding
//! level. One round of iterative refinement — solve the residual
//! through the same (cheap, already-computed) factorisation and correct
//! the iterate — repairs most such solves. The primitive here makes the
//! round *safe*: the corrected iterate is accepted only when it
//! strictly contracts the true residual norm, so refinement can never
//! make a solution worse. Callers that still see a non-contracting
//! residual should treat the factorisation as untrustworthy
//! ([`crate::NumericalHazard::RefinementStall`]) and demote to a
//! stronger tier.

/// Result of one [`refine_once`] round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefineOutcome {
    /// ∞-norm of the true residual before the round (`f64::INFINITY`
    /// when the residual contained non-finite values).
    pub residual_before: f64,
    /// ∞-norm of the true residual of the *corrected* iterate, whether
    /// or not it was accepted.
    pub residual_after: f64,
    /// True when the corrected iterate was committed to `x` (its
    /// residual was finite and strictly smaller).
    pub accepted: bool,
}

/// ∞-norm that treats any NaN as infinitely bad (a plain max-fold
/// would silently skip NaNs because all NaN comparisons are false).
pub fn norm_inf(v: &[f64]) -> f64 {
    let mut m = 0.0_f64;
    for &x in v {
        let a = x.abs();
        if a.is_nan() {
            return f64::INFINITY;
        }
        if a > m {
            m = a;
        }
    }
    m
}

/// Performs one round of iterative refinement on `x`.
///
/// `residual_into(x, out)` must write the true residual `A·x − b` and
/// `solve_into(r, out)` must solve `M·δ = r` against the factorisation
/// under test (`M ≈ A`). The corrected iterate `x − δ` is committed to
/// `x` only if its true residual norm strictly contracts; otherwise `x`
/// is left untouched. `resid`, `delta` and `trial` are caller-provided
/// scratch of the same length as `x`.
///
/// # Panics
///
/// Panics if the scratch slices and `x` differ in length.
pub fn refine_once(
    x: &mut [f64],
    resid: &mut [f64],
    delta: &mut [f64],
    trial: &mut [f64],
    mut residual_into: impl FnMut(&[f64], &mut [f64]),
    mut solve_into: impl FnMut(&[f64], &mut [f64]),
) -> RefineOutcome {
    assert_eq!(x.len(), resid.len(), "scratch length");
    assert_eq!(x.len(), delta.len(), "scratch length");
    assert_eq!(x.len(), trial.len(), "scratch length");
    residual_into(x, resid);
    let before = norm_inf(resid);
    solve_into(resid, delta);
    for ((t, xv), d) in trial.iter_mut().zip(x.iter()).zip(delta.iter()) {
        *t = xv - d;
    }
    residual_into(trial, resid);
    let after = norm_inf(resid);
    let accepted = after.is_finite() && after < before;
    if accepted {
        x.copy_from_slice(trial);
    }
    RefineOutcome {
        residual_before: before,
        residual_after: after,
        accepted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::{Lu, Matrix};

    fn residual_of<'a>(a: &'a Matrix, b: &'a [f64]) -> impl FnMut(&[f64], &mut [f64]) + 'a {
        move |x, out| {
            let ax = a.mul_vec(x);
            for (o, (axv, bv)) in out.iter_mut().zip(ax.iter().zip(b)) {
                *o = axv - bv;
            }
        }
    }

    #[test]
    fn refinement_repairs_a_perturbed_solve() {
        let mut a = Matrix::zeros(2, 2);
        a.add(0, 0, 4.0);
        a.add(0, 1, 1.0);
        a.add(1, 0, 1.0);
        a.add(1, 1, 3.0);
        let b = [1.0, 2.0];
        let mut lu = Lu::factor(&a).unwrap();
        lu.perturb_first_pivot(1.5);
        let mut x = lu.solve(&b);
        let (mut r, mut d, mut t) = (vec![0.0; 2], vec![0.0; 2], vec![0.0; 2]);
        let out = refine_once(
            &mut x,
            &mut r,
            &mut d,
            &mut t,
            residual_of(&a, &b),
            |rhs, sol| lu.solve_into(rhs, sol),
        );
        assert!(out.accepted, "{out:?}");
        assert!(out.residual_after < out.residual_before);
    }

    #[test]
    fn exact_solution_never_gets_worse() {
        let mut a = Matrix::zeros(2, 2);
        a.add(0, 0, 2.0);
        a.add(1, 1, 5.0);
        let b = [2.0, 10.0];
        let lu = Lu::factor(&a).unwrap();
        let mut x = lu.solve(&b);
        let want = x.clone();
        let (mut r, mut d, mut t) = (vec![0.0; 2], vec![0.0; 2], vec![0.0; 2]);
        let out = refine_once(
            &mut x,
            &mut r,
            &mut d,
            &mut t,
            residual_of(&a, &b),
            |rhs, sol| lu.solve_into(rhs, sol),
        );
        // A zero residual cannot strictly contract, so the round is
        // rejected and the (already exact) solution is untouched.
        assert!(!out.accepted);
        assert_eq!(x, want);
    }

    #[test]
    fn non_finite_residuals_read_as_infinity() {
        assert_eq!(norm_inf(&[1.0, f64::NAN]), f64::INFINITY);
        assert_eq!(norm_inf(&[-3.0, 2.0]), 3.0);
        assert_eq!(norm_inf(&[]), 0.0);
    }
}
