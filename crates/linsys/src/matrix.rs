//! Dense real matrices: arithmetic, LU factorisation and the matrix
//! exponential.
//!
//! Systems in this workspace are small (tens of states at most), so a
//! dense representation with partial-pivot LU is simpler and faster than
//! any sparse scheme would be at this scale.

use crate::SingularMatrixError;

/// A dense, row-major matrix of `f64`.
///
/// # Example
///
/// ```
/// use linsys::matrix::Matrix;
///
/// let mut m = Matrix::zeros(2, 2);
/// m[(0, 0)] = 2.0;
/// m[(1, 1)] = 4.0;
/// assert_eq!(m[(1, 1)], 4.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates an `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from nested rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows are ragged (not all the same length).
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, Vec::len);
        assert!(
            rows.iter().all(|r| r.len() == ncols),
            "ragged rows in Matrix::from_rows"
        );
        Matrix {
            rows: nrows,
            cols: ncols,
            data: rows.iter().flatten().copied().collect(),
        }
    }

    /// Builds a column vector from a slice.
    pub fn column(values: &[f64]) -> Self {
        Matrix {
            rows: values.len(),
            cols: 1,
            data: values.to_vec(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Sets every entry to zero, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Adds `value` to entry `(r, c)`.
    #[inline]
    pub fn add(&mut self, r: usize, c: usize, value: f64) {
        self[(r, c)] += value;
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "dimension mismatch in mul_vec");
        (0..self.rows)
            .map(|r| {
                let row = &self.data[r * self.cols..(r + 1) * self.cols];
                row.iter().zip(v).map(|(a, b)| a * b).sum()
            })
            .collect()
    }

    /// [`Matrix::mul_vec`] into a caller-provided buffer, with the same
    /// per-row ascending-column accumulation order.
    ///
    /// # Panics
    ///
    /// Panics if `v` or `out` have the wrong length.
    pub fn mul_vec_into(&self, v: &[f64], out: &mut [f64]) {
        assert_eq!(v.len(), self.cols, "dimension mismatch in mul_vec_into");
        assert_eq!(out.len(), self.rows, "output length in mul_vec_into");
        for (r, slot) in out.iter_mut().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            *slot = row.iter().zip(v).map(|(a, b)| a * b).sum();
        }
    }

    /// Residual `A·v − b` into `out` in one pass: each row accumulates
    /// its product with [`Matrix::mul_vec_into`]'s ascending-column
    /// order, then subtracts `b[r]` — the identical operations of the
    /// two-pass form, fused so hot callers touch `out` once.
    ///
    /// # Panics
    ///
    /// Panics if `v`, `b` or `out` have the wrong length.
    pub fn residual_into(&self, v: &[f64], b: &[f64], out: &mut [f64]) {
        assert_eq!(v.len(), self.cols, "dimension mismatch in residual_into");
        assert_eq!(b.len(), self.rows, "rhs length in residual_into");
        assert_eq!(out.len(), self.rows, "output length in residual_into");
        for (r, slot) in out.iter_mut().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            let acc: f64 = row.iter().zip(v).map(|(a, b)| a * b).sum();
            *slot = acc - b[r];
        }
    }

    /// Residual `A·v − b` into `out` plus the Oettli–Prager gate scale,
    /// in one pass. Returns `(residual_norm, scale)` where
    /// `residual_norm` is the ∞-norm of the residual (NaN reads as
    /// `INFINITY`) and `scale = max_r(Σ_c |a_rc·v_c| + |b_r|)` — the
    /// componentwise backward-error scale a residual must be compared
    /// against before calling a solve "accurate". Relative gates built
    /// on it survive uniformly graded systems that would fool any
    /// absolute threshold.
    ///
    /// # Panics
    ///
    /// Panics if `v`, `b` or `out` have the wrong length.
    pub fn residual_gate_into(&self, v: &[f64], b: &[f64], out: &mut [f64]) -> (f64, f64) {
        assert_eq!(v.len(), self.cols, "dimension mismatch in residual_gate_into");
        assert_eq!(b.len(), self.rows, "rhs length in residual_gate_into");
        assert_eq!(out.len(), self.rows, "output length in residual_gate_into");
        let mut rnorm = 0.0_f64;
        let mut scale = 0.0_f64;
        for (r, slot) in out.iter_mut().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            let mut acc = 0.0_f64;
            let mut mag = 0.0_f64;
            for (a, x) in row.iter().zip(v) {
                let p = a * x;
                acc += p;
                mag += p.abs();
            }
            *slot = acc - b[r];
            let ra = slot.abs();
            if ra.is_nan() {
                rnorm = f64::INFINITY;
            } else if ra > rnorm {
                rnorm = ra;
            }
            let s = mag + b[r].abs();
            if s.is_nan() {
                scale = f64::INFINITY;
            } else if s > scale {
                scale = s;
            }
        }
        (rnorm, scale)
    }

    /// 1-norm `max_c Σ_r |a_rc|`, accumulated per column in ascending
    /// row order (the sparse twin visits entries in the same order, so
    /// the two agree bit for bit — skipped zeros add `+0.0` to a
    /// non-negative sum, which cannot change it).
    pub fn norm_one(&self) -> f64 {
        let mut colsum = vec![0.0_f64; self.cols];
        for r in 0..self.rows {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (s, a) in colsum.iter_mut().zip(row) {
                *s += a.abs();
            }
        }
        let mut m = 0.0_f64;
        for s in colsum {
            if s.is_nan() {
                return f64::INFINITY;
            }
            if s > m {
                m = s;
            }
        }
        m
    }

    /// The backing storage in row-major order.
    pub fn values(&self) -> &[f64] {
        &self.data
    }

    /// Overwrites the backing storage from a snapshot taken with
    /// [`Matrix::values`].
    ///
    /// # Panics
    ///
    /// Panics if `values` has the wrong length.
    pub fn load_values(&mut self, values: &[f64]) {
        self.data.copy_from_slice(values);
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn mul_mat(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "dimension mismatch in mul_mat");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(r, k)];
                if a == 0.0 {
                    continue;
                }
                for c in 0..other.cols {
                    out[(r, c)] += a * other[(k, c)];
                }
            }
        }
        out
    }

    /// Returns `self + other`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn add_mat(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "row mismatch in add_mat");
        assert_eq!(self.cols, other.cols, "col mismatch in add_mat");
        let mut out = self.clone();
        for (a, b) in out.data.iter_mut().zip(&other.data) {
            *a += b;
        }
        out
    }

    /// Returns `self` scaled by `k`.
    pub fn scale(&self, k: f64) -> Matrix {
        let mut out = self.clone();
        out.data.iter_mut().for_each(|x| *x *= k);
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Infinity norm (maximum absolute row sum).
    pub fn norm_inf(&self) -> f64 {
        (0..self.rows)
            .map(|r| {
                self.data[r * self.cols..(r + 1) * self.cols]
                    .iter()
                    .map(|x| x.abs())
                    .sum::<f64>()
            })
            .fold(0.0, f64::max)
    }

    /// Matrix exponential `e^self` via scaling-and-squaring with a Taylor
    /// series, accurate for the small systems used here.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn expm(&self) -> Matrix {
        assert_eq!(self.rows, self.cols, "expm requires a square matrix");
        let n = self.rows;
        // Scale so the norm is below 0.5 before the series.
        let norm = self.norm_inf();
        let squarings = if norm > 0.5 {
            (norm / 0.5).log2().ceil() as u32
        } else {
            0
        };
        let a = self.scale(1.0 / f64::powi(2.0, squarings as i32));

        // Taylor series: I + A + A²/2! + ...
        let mut result = Matrix::identity(n);
        let mut term = Matrix::identity(n);
        for k in 1..=20 {
            term = term.mul_mat(&a).scale(1.0 / k as f64);
            result = result.add_mat(&term);
            if term.norm_inf() < 1e-18 {
                break;
            }
        }
        // Square back up.
        for _ in 0..squarings {
            result = result.mul_mat(&result);
        }
        result
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols, "matrix index out of range");
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols, "matrix index out of range");
        &mut self.data[r * self.cols + c]
    }
}

/// LU decomposition with partial pivoting of a square matrix.
///
/// Factorises `P·A = L·U` once, then solves any number of right-hand
/// sides with [`Lu::solve`].
#[derive(Debug, Clone)]
pub struct Lu {
    n: usize,
    lu: Vec<f64>,
    perm: Vec<usize>,
    growth: f64,
}

impl Lu {
    /// Matrix dimension the factorisation was computed for.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Factorises `a` (a copy is taken).
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] if elimination finds a column
    /// whose best pivot is smaller than [`crate::PIVOT_REL_TOL`] times
    /// the largest updated magnitude in that column (or exactly zero).
    /// The threshold is scale-relative, so uniformly tiny or huge but
    /// well-conditioned matrices factor cleanly while numerically
    /// rank-deficient ones are rejected instead of factoring
    /// cancellation garbage.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not square.
    pub fn factor(a: &Matrix) -> Result<Lu, SingularMatrixError> {
        assert_eq!(a.rows, a.cols, "LU requires a square matrix");
        let n = a.rows;
        let mut lu = a.data.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut max_orig = 0.0_f64;
        for v in &lu {
            let m = v.abs();
            if m > max_orig {
                max_orig = m;
            }
        }
        let mut max_grown = max_orig;

        for col in 0..n {
            let mut pivot_row = col;
            let mut pivot_val = lu[col * n + col].abs();
            for r in col + 1..n {
                let v = lu[r * n + col].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            // Column scale: the largest updated magnitude anywhere in
            // the column — U entries above the diagonal are final,
            // candidate rows are fully updated by the right-looking
            // elimination.
            let mut col_scale = pivot_val;
            for r in 0..col {
                let v = lu[r * n + col].abs();
                if v > col_scale {
                    col_scale = v;
                }
            }
            if pivot_val == 0.0 || pivot_val < crate::PIVOT_REL_TOL * col_scale {
                return Err(SingularMatrixError { row: col });
            }
            if col_scale > max_grown {
                max_grown = col_scale;
            }
            if pivot_row != col {
                perm.swap(col, pivot_row);
                for c in 0..n {
                    lu.swap(col * n + c, pivot_row * n + c);
                }
            }
            let pivot = lu[col * n + col];
            for r in col + 1..n {
                let factor = lu[r * n + col] / pivot;
                lu[r * n + col] = factor;
                if factor != 0.0 {
                    for c in col + 1..n {
                        lu[r * n + c] -= factor * lu[col * n + c];
                    }
                }
            }
        }
        let growth = if max_orig > 0.0 {
            max_grown / max_orig
        } else {
            1.0
        };
        Ok(Lu {
            n,
            lu,
            perm,
            growth,
        })
    }

    /// Element growth factor of the elimination: the largest updated
    /// magnitude seen during factorisation divided by the largest input
    /// magnitude. Growth near 1 means the factorisation lost no
    /// accuracy; very large growth (say above 1e8) is an advisory
    /// hazard — the factors are usable but solutions deserve a residual
    /// check.
    pub fn pivot_growth(&self) -> f64 {
        self.growth
    }

    /// Estimates the 1-norm condition number `||A||₁·||A⁻¹||₁` with
    /// Hager's algorithm, given `anorm` = `||A||₁` of the factored
    /// matrix. Costs a handful of substitutions against the stored
    /// factors; returns `f64::INFINITY` when solves produce non-finite
    /// values.
    pub fn condest(&self, anorm: f64) -> f64 {
        crate::condest::condest_1(
            self.n,
            |b, x| self.solve_into(b, x),
            |b, x| self.solve_transpose_into(b, x),
            anorm,
        )
    }

    /// Multiplies the first stored pivot `U(0,0)` by `scale`, making
    /// every subsequent solve deterministically wrong by a known
    /// amount. This exists for numeric fault-injection drills (the
    /// numeric-chaos harness perturbs a factor entry and expects the
    /// residual gate to catch it); it has no place on any healthy path.
    pub fn perturb_first_pivot(&mut self, scale: f64) {
        if self.n > 0 {
            self.lu[0] *= scale;
        }
    }

    /// Solves `A·x = b` using the stored factorisation.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not match the matrix dimension.
    #[allow(clippy::needless_range_loop)] // triangular index patterns read clearest this way
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n, "rhs dimension mismatch");
        let n = self.n;
        let mut x: Vec<f64> = self.perm.iter().map(|&i| b[i]).collect();
        for r in 1..n {
            let mut sum = x[r];
            for c in 0..r {
                sum -= self.lu[r * n + c] * x[c];
            }
            x[r] = sum;
        }
        for r in (0..n).rev() {
            let mut sum = x[r];
            for c in r + 1..n {
                sum -= self.lu[r * n + c] * x[c];
            }
            x[r] = sum / self.lu[r * n + r];
        }
        x
    }

    /// [`Lu::solve`] into a caller-provided buffer, identical
    /// arithmetic, no allocation.
    ///
    /// # Panics
    ///
    /// Panics if `b` or `x` have the wrong length.
    #[allow(clippy::needless_range_loop)] // triangular index patterns read clearest this way
    pub fn solve_into(&self, b: &[f64], x: &mut [f64]) {
        assert_eq!(b.len(), self.n, "rhs dimension mismatch");
        assert_eq!(x.len(), self.n, "solution dimension mismatch");
        let n = self.n;
        for i in 0..n {
            x[i] = b[self.perm[i]];
        }
        for r in 1..n {
            let mut sum = x[r];
            for c in 0..r {
                sum -= self.lu[r * n + c] * x[c];
            }
            x[r] = sum;
        }
        for r in (0..n).rev() {
            let mut sum = x[r];
            for c in r + 1..n {
                sum -= self.lu[r * n + c] * x[c];
            }
            x[r] = sum / self.lu[r * n + r];
        }
    }

    /// Solves `Aᵀ·x = b` using the stored factorisation: with
    /// `P·A = L·U`, forward-substitute `Uᵀ·z = b`, back-substitute
    /// `Lᵀ·w = z`, then scatter through the permutation
    /// (`x[perm[i]] = w[i]`). Needed by the 1-norm condition estimator.
    ///
    /// # Panics
    ///
    /// Panics if `b` or `x` have the wrong length.
    #[allow(clippy::needless_range_loop)] // triangular index patterns read clearest this way
    pub fn solve_transpose_into(&self, b: &[f64], x: &mut [f64]) {
        assert_eq!(b.len(), self.n, "rhs dimension mismatch");
        assert_eq!(x.len(), self.n, "solution dimension mismatch");
        let n = self.n;
        let mut w = vec![0.0; n];
        for r in 0..n {
            let mut sum = b[r];
            for k in 0..r {
                sum -= self.lu[k * n + r] * w[k];
            }
            w[r] = sum / self.lu[r * n + r];
        }
        for r in (0..n).rev() {
            let mut sum = w[r];
            for k in r + 1..n {
                sum -= self.lu[k * n + r] * w[k];
            }
            w[r] = sum;
        }
        for i in 0..n {
            x[self.perm[i]] = w[i];
        }
    }
}

/// Convenience: solves `A·x = b` with a one-shot factorisation.
///
/// # Errors
///
/// Returns [`SingularMatrixError`] if `a` is singular.
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, SingularMatrixError> {
    Ok(Lu::factor(a)?.solve(b))
}


/// Dominant eigenpair of a symmetric matrix by power iteration.
///
/// Returns `(eigenvalue, unit eigenvector)`. Convergence is geometric in
/// the eigenvalue gap; `iterations` around 100 suffices for the
/// covariance matrices used in this workspace.
///
/// # Panics
///
/// Panics if the matrix is not square or is empty.
pub fn power_iteration(a: &Matrix, iterations: usize) -> (f64, Vec<f64>) {
    assert_eq!(a.rows(), a.cols(), "power iteration needs a square matrix");
    let n = a.rows();
    assert!(n >= 1, "empty matrix");
    // Deterministic, non-degenerate start vector.
    let mut v: Vec<f64> = (0..n).map(|k| 1.0 + (k as f64) * 0.37).collect();
    normalise(&mut v);
    let mut lambda = 0.0;
    for _ in 0..iterations {
        let mut w = a.mul_vec(&v);
        lambda = v.iter().zip(&w).map(|(x, y)| x * y).sum();
        if normalise(&mut w) < 1e-300 {
            return (0.0, v);
        }
        v = w;
    }
    (lambda, v)
}

/// Top-`k` eigenpairs of a symmetric positive semi-definite matrix via
/// power iteration with deflation.
///
/// # Panics
///
/// Panics if the matrix is not square or `k` exceeds its dimension.
pub fn top_eigenpairs(a: &Matrix, k: usize, iterations: usize) -> Vec<(f64, Vec<f64>)> {
    assert_eq!(a.rows(), a.cols(), "eigen decomposition needs square");
    assert!(k <= a.rows(), "k exceeds dimension");
    let mut work = a.clone();
    let mut out = Vec::with_capacity(k);
    for _ in 0..k {
        let (lambda, v) = power_iteration(&work, iterations);
        // Deflate: A <- A - lambda v v^T.
        for r in 0..work.rows() {
            for c in 0..work.cols() {
                work[(r, c)] -= lambda * v[r] * v[c];
            }
        }
        out.push((lambda, v));
    }
    out
}

fn normalise(v: &mut [f64]) -> f64 {
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 0.0 {
        v.iter_mut().for_each(|x| *x /= norm);
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solve_returns_rhs() {
        let a = Matrix::identity(4);
        let b = vec![1.0, -2.0, 3.5, 0.0];
        let x = solve(&a, &b).unwrap();
        assert_eq!(x, b);
    }

    #[test]
    fn solves_small_system() {
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        let x = solve(&a, &[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let x = solve(&a, &[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_is_reported() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(solve(&a, &[1.0, 2.0]).is_err());
    }

    #[test]
    fn mul_vec_matches_manual() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.mul_vec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn expm_of_zero_is_identity() {
        let z = Matrix::zeros(3, 3);
        assert_eq!(z.expm(), Matrix::identity(3));
    }

    #[test]
    fn expm_of_diagonal() {
        let mut a = Matrix::zeros(2, 2);
        a[(0, 0)] = 1.0;
        a[(1, 1)] = -2.0;
        let e = a.expm();
        assert!((e[(0, 0)] - 1.0_f64.exp()).abs() < 1e-12);
        assert!((e[(1, 1)] - (-2.0_f64).exp()).abs() < 1e-12);
        assert!(e[(0, 1)].abs() < 1e-15);
    }

    #[test]
    fn expm_rotation_matrix() {
        // exp([[0, -t], [t, 0]]) = rotation by t.
        let t = 0.7;
        let a = Matrix::from_rows(&[vec![0.0, -t], vec![t, 0.0]]);
        let e = a.expm();
        assert!((e[(0, 0)] - t.cos()).abs() < 1e-12);
        assert!((e[(1, 0)] - t.sin()).abs() < 1e-12);
    }

    #[test]
    fn expm_large_norm_uses_squaring() {
        let a = Matrix::from_rows(&[vec![-100.0]]);
        let e = a.expm();
        assert!((e[(0, 0)] - (-100.0_f64).exp()).abs() < 1e-40);
    }

    #[test]
    fn norm_inf_is_max_row_sum() {
        let a = Matrix::from_rows(&[vec![1.0, -2.0], vec![3.0, 0.5]]);
        assert_eq!(a.norm_inf(), 3.5);
    }

    #[test]
    fn column_vector_shape() {
        let v = Matrix::column(&[1.0, 2.0, 3.0]);
        assert_eq!(v.rows(), 3);
        assert_eq!(v.cols(), 1);
    }

    #[test]
    fn power_iteration_finds_dominant_eigenpair() {
        // Symmetric with eigenvalues 5 (along [1,1]/sqrt2) and 1.
        let a = Matrix::from_rows(&[vec![3.0, 2.0], vec![2.0, 3.0]]);
        let (lambda, v) = power_iteration(&a, 200);
        assert!((lambda - 5.0).abs() < 1e-9, "lambda {lambda}");
        let expect = 1.0 / 2.0_f64.sqrt();
        assert!((v[0].abs() - expect).abs() < 1e-6);
        assert!((v[0] - v[1]).abs() < 1e-6);
    }

    #[test]
    fn deflation_recovers_full_spectrum() {
        let a = Matrix::from_rows(&[
            vec![4.0, 0.0, 0.0],
            vec![0.0, 2.5, 0.0],
            vec![0.0, 0.0, 1.0],
        ]);
        let pairs = top_eigenpairs(&a, 3, 300);
        let lambdas: Vec<f64> = pairs.iter().map(|(l, _)| *l).collect();
        assert!((lambdas[0] - 4.0).abs() < 1e-8);
        assert!((lambdas[1] - 2.5).abs() < 1e-8);
        assert!((lambdas[2] - 1.0).abs() < 1e-8);
        // Eigenvectors of distinct eigenvalues are orthogonal.
        let dot: f64 = pairs[0].1.iter().zip(&pairs[1].1).map(|(x, y)| x * y).sum();
        assert!(dot.abs() < 1e-6);
    }

    #[test]
    fn factor_reuse_for_multiple_rhs() {
        let a = Matrix::from_rows(&[vec![4.0, 1.0], vec![1.0, 3.0]]);
        let lu = Lu::factor(&a).unwrap();
        for b in [[1.0, 0.0], [0.0, 1.0], [2.0, -1.0]] {
            let x = lu.solve(&b);
            let back = a.mul_vec(&x);
            assert!((back[0] - b[0]).abs() < 1e-12);
            assert!((back[1] - b[1]).abs() < 1e-12);
        }
    }
}
