//! Compressed-sparse-column matrices and a sparse LU factorisation
//! whose arithmetic mirrors the dense [`crate::matrix::Lu`] bit for
//! bit.
//!
//! The MNA systems the circuit solver assembles are small but very
//! sparse (a handful of entries per row), and the Newton hot loop
//! factorises one per iteration. This module splits that work the way
//! sparse direct solvers do:
//!
//! * [`SparseStructure`] — the *symbolic* side: the sparsity pattern of
//!   the assembled system plus a dense position→slot lookup table, so
//!   stamping into a [`SparseMatrix`] costs the same indexed add a
//!   dense matrix would. The structure is computed once per (netlist,
//!   fault) structure and shared (`Arc`) across every Newton iteration
//!   and timestep.
//! * [`SparseMatrix`] — the numeric values over a shared structure:
//!   clear, indexed add, row-oriented matrix–vector product.
//! * [`SparseLu`] — a left-looking Gilbert–Peierls LU with partial
//!   pivoting. Pivot choice, update order and per-entry arithmetic
//!   replicate the dense `Lu::factor`/`Lu::solve` exactly (see below),
//!   and [`SparseLu::refactor`] reuses every allocation for the
//!   numeric-only refactorisations the Newton loop performs.
//!
//! # Bit-compatibility with the dense factorisation
//!
//! The solver promises canonical reports that are byte-identical
//! between its dense and sparse backends, which requires the two
//! factorisations to produce bit-identical *nonzero* values (zeros are
//! normalised at the solve boundary by the caller):
//!
//! * **Pivoting** — the dense code scans physical rows `col..n` in
//!   current order, keeps the strictly-greater maximum of `|value|`,
//!   rejects pivots below [`crate::PIVOT_REL_TOL`] times the column's
//!   largest updated magnitude, and swaps whole rows. Here the physical
//!   order lives in a permutation vector scanned the same way with the
//!   same strict comparison; the column scale is the maximum over the
//!   accumulator pattern, which matches the dense maximum because every
//!   entry the dense code sees outside the pattern is an exact zero.
//! * **Update order** — the dense right-looking elimination applies,
//!   to each entry, the updates from pivot columns `k` in ascending
//!   order, skipping a pivot row whose multiplier is exactly `0.0`.
//!   The left-looking column solve here walks `k` ascending and keeps
//!   the same `multiplier != 0.0` skip, so every entry accumulates the
//!   same terms in the same order.
//! * **Substitution order** — forward substitution walks rows
//!   ascending with columns ascending inside each row; backward
//!   substitution walks rows descending with columns ascending, one
//!   division by the diagonal per row. [`SparseLu`] stores L and U in
//!   row-major form post-factorisation so its substitutions visit
//!   entries in exactly that order.
//!
//! Entries the dense code touches that the sparse pattern omits are
//! exact (signed) zeros on both sides; skipping them can flip the sign
//! of a zero but never changes a nonzero value.

use std::sync::Arc;

use crate::error::SingularMatrixError;
use crate::matrix::Matrix;

/// Marker for an absent entry in the dense position→slot table.
const NO_SLOT: u32 = u32::MAX;

/// The symbolic half of a sparse system: the sparsity pattern of an
/// `n × n` matrix, with column-major and row-major index forms plus a
/// dense lookup table mapping `(row, col)` to a value slot.
///
/// Build one with [`SparseStructure::from_positions`] and share it
/// (`Arc`) between every [`SparseMatrix`] that assembles the same
/// circuit structure.
#[derive(Debug)]
pub struct SparseStructure {
    n: usize,
    /// CSC column pointers (`n + 1` entries).
    col_ptr: Vec<usize>,
    /// Row index of each stored entry, ascending within a column.
    row_idx: Vec<u32>,
    /// CSC entry order is the canonical slot order: `slot[r * n + c]`
    /// is the value index of `(r, c)`, or [`NO_SLOT`].
    slot: Vec<u32>,
    /// Row-major traversal of the same slots: row pointers,
    /// per-entry column indices and value-slot indices.
    row_ptr: Vec<usize>,
    row_col: Vec<u32>,
    row_slot: Vec<u32>,
}

impl SparseStructure {
    /// Builds a structure from the set of occupied `(row, col)`
    /// positions (duplicates are fine).
    ///
    /// # Panics
    ///
    /// Panics if any position lies outside the `n × n` grid.
    pub fn from_positions(n: usize, positions: &[(usize, usize)]) -> Arc<Self> {
        let mut present = vec![false; n * n];
        for &(r, c) in positions {
            assert!(r < n && c < n, "position ({r}, {c}) outside {n}x{n} matrix");
            present[r * n + c] = true;
        }
        let mut col_ptr = vec![0usize; n + 1];
        let mut row_idx = Vec::new();
        let mut slot = vec![NO_SLOT; n * n];
        for c in 0..n {
            for r in 0..n {
                if present[r * n + c] {
                    slot[r * n + c] = u32::try_from(row_idx.len()).expect("pattern fits u32");
                    row_idx.push(r as u32);
                }
            }
            col_ptr[c + 1] = row_idx.len();
        }
        let mut row_ptr = vec![0usize; n + 1];
        let mut row_col = Vec::with_capacity(row_idx.len());
        let mut row_slot = Vec::with_capacity(row_idx.len());
        for r in 0..n {
            for c in 0..n {
                let s = slot[r * n + c];
                if s != NO_SLOT {
                    row_col.push(c as u32);
                    row_slot.push(s);
                }
            }
            row_ptr[r + 1] = row_col.len();
        }
        Arc::new(SparseStructure {
            n,
            col_ptr,
            row_idx,
            slot,
            row_ptr,
            row_col,
            row_slot,
        })
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of structurally nonzero entries.
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// Value-slot index of `(r, c)`, if the position is in the pattern.
    pub fn slot_of(&self, r: usize, c: usize) -> Option<usize> {
        match self.slot[r * self.n + c] {
            NO_SLOT => None,
            s => Some(s as usize),
        }
    }
}

/// Numeric values over a shared [`SparseStructure`].
#[derive(Debug, Clone)]
pub struct SparseMatrix {
    structure: Arc<SparseStructure>,
    values: Vec<f64>,
}

impl SparseMatrix {
    /// An all-zero matrix over `structure`.
    pub fn zeros(structure: Arc<SparseStructure>) -> Self {
        let nnz = structure.nnz();
        SparseMatrix {
            structure,
            values: vec![0.0; nnz],
        }
    }

    /// The shared structure.
    pub fn structure(&self) -> &Arc<SparseStructure> {
        &self.structure
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.structure.n
    }

    /// Resets every stored value to zero (the pattern is retained).
    pub fn clear(&mut self) {
        self.values.fill(0.0);
    }

    /// Stored values in canonical (CSC) slot order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Overwrites the stored values from a snapshot taken with
    /// [`SparseMatrix::values`] (the linear-stamp baseline fast path).
    ///
    /// # Panics
    ///
    /// Panics if `values` has the wrong length.
    pub fn load_values(&mut self, values: &[f64]) {
        self.values.copy_from_slice(values);
    }

    /// Adds `value` at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `(r, c)` is not in the pattern — the structure must
    /// have been built from a superset of the stamped positions.
    #[inline]
    pub fn add(&mut self, r: usize, c: usize, value: f64) {
        let s = self.structure.slot[r * self.structure.n + c];
        assert!(s != NO_SLOT, "stamp at ({r}, {c}) outside sparse pattern");
        self.values[s as usize] += value;
    }

    /// Entry at `(r, c)` (zero when outside the pattern).
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.structure
            .slot_of(r, c)
            .map_or(0.0, |s| self.values[s])
    }

    /// Row-oriented matrix–vector product into `out`, visiting each
    /// row's entries in ascending column order (the dense
    /// [`Matrix::mul_vec`] accumulation order restricted to the
    /// pattern).
    pub fn mul_vec_into(&self, x: &[f64], out: &mut [f64]) {
        let s = &*self.structure;
        for (r, slot) in out.iter_mut().enumerate().take(s.n) {
            let mut acc = 0.0;
            for e in s.row_ptr[r]..s.row_ptr[r + 1] {
                acc += self.values[s.row_slot[e] as usize] * x[s.row_col[e] as usize];
            }
            *slot = acc;
        }
    }

    /// Residual `A·x − b` into `out` in one pass: each row accumulates
    /// its product with [`SparseMatrix::mul_vec_into`]'s ascending-column
    /// order, then subtracts `b[r]` — the identical operations of the
    /// two-pass form, fused so the Newton stale-trial path touches
    /// `out` once per iteration.
    pub fn residual_into(&self, x: &[f64], b: &[f64], out: &mut [f64]) {
        let s = &*self.structure;
        for (r, slot) in out.iter_mut().enumerate().take(s.n) {
            let mut acc = 0.0;
            for e in s.row_ptr[r]..s.row_ptr[r + 1] {
                acc += self.values[s.row_slot[e] as usize] * x[s.row_col[e] as usize];
            }
            *slot = acc - b[r];
        }
    }

    /// Residual `A·x − b` into `out` plus the Oettli–Prager gate scale
    /// `max_r(Σ_c |a_rc·x_c| + |b_r|)`, in one pass — the sparse twin of
    /// [`Matrix::residual_gate_into`], bit-identical to it because both
    /// visit each row's entries in ascending column order and the
    /// entries this one skips are exact zeros whose `|0·x|` contribution
    /// cannot change a non-negative sum.
    pub fn residual_gate_into(&self, x: &[f64], b: &[f64], out: &mut [f64]) -> (f64, f64) {
        let s = &*self.structure;
        let mut rnorm = 0.0_f64;
        let mut scale = 0.0_f64;
        for (r, slot) in out.iter_mut().enumerate().take(s.n) {
            let mut acc = 0.0_f64;
            let mut mag = 0.0_f64;
            for e in s.row_ptr[r]..s.row_ptr[r + 1] {
                let p = self.values[s.row_slot[e] as usize] * x[s.row_col[e] as usize];
                acc += p;
                mag += p.abs();
            }
            *slot = acc - b[r];
            let ra = slot.abs();
            if ra.is_nan() {
                rnorm = f64::INFINITY;
            } else if ra > rnorm {
                rnorm = ra;
            }
            let g = mag + b[r].abs();
            if g.is_nan() {
                scale = f64::INFINITY;
            } else if g > scale {
                scale = g;
            }
        }
        (rnorm, scale)
    }

    /// 1-norm `max_c Σ_r |a_rc|`, bit-identical to the dense
    /// [`Matrix::norm_one`]: both accumulate each column in ascending
    /// row order and the entries skipped here are exact zeros.
    pub fn norm_one(&self) -> f64 {
        let s = &*self.structure;
        let mut colsum = vec![0.0_f64; s.n];
        for r in 0..s.n {
            for e in s.row_ptr[r]..s.row_ptr[r + 1] {
                colsum[s.row_col[e] as usize] += self.values[s.row_slot[e] as usize].abs();
            }
        }
        let mut m = 0.0_f64;
        for v in colsum {
            if v.is_nan() {
                return f64::INFINITY;
            }
            if v > m {
                m = v;
            }
        }
        m
    }

    /// Dense copy (diagnostics and tests).
    pub fn to_dense(&self) -> Matrix {
        let n = self.structure.n;
        let mut m = Matrix::zeros(n, n);
        for r in 0..n {
            for c in 0..n {
                if let Some(s) = self.structure.slot_of(r, c) {
                    m.add(r, c, self.values[s]);
                }
            }
        }
        m
    }
}

/// Reusable scratch space for [`SparseLu::refactor`]: the dense
/// accumulator column, pattern flags and the by-column intermediate
/// factors. One workspace serves any number of refactorisations of the
/// same dimension without allocating.
#[derive(Debug, Clone, Default)]
pub struct SparseWorkspace {
    /// Dense accumulator for the active column, indexed by original
    /// row.
    x: Vec<f64>,
    /// Pattern membership of `x`, indexed by original row.
    in_pattern: Vec<bool>,
    /// Original rows currently in the pattern (reset list).
    pattern: Vec<u32>,
    /// L by pivot column: `(original row, multiplier)` per entry.
    lcol_ptr: Vec<usize>,
    lcol_row: Vec<u32>,
    lcol_val: Vec<f64>,
    /// U by column: `(pivot step k, value)` per entry, diagonal
    /// included.
    ucol_ptr: Vec<usize>,
    ucol_k: Vec<u32>,
    ucol_val: Vec<f64>,
    /// Original row → pivotal position (inverse of the permutation).
    pos: Vec<usize>,
    /// Pivot step → original pivot row.
    pivot_row: Vec<usize>,
    /// Per-row entry counters for the row-major transposes.
    row_count: Vec<usize>,
}

impl SparseWorkspace {
    /// A workspace for `n × n` factorisations.
    pub fn new(n: usize) -> Self {
        let mut ws = SparseWorkspace::default();
        ws.resize(n);
        ws
    }

    fn resize(&mut self, n: usize) {
        self.x.resize(n, 0.0);
        self.in_pattern.resize(n, false);
        self.pos.resize(n, 0);
        self.pivot_row.resize(n, 0);
        self.row_count.resize(n, 0);
    }
}

/// A sparse LU factorisation `P·A = L·U` with the same pivot sequence
/// and arithmetic as the dense [`crate::matrix::Lu`].
///
/// L and U are stored row-major (by pivotal row) so the substitutions
/// visit entries in the dense order; L's unit diagonal is implicit.
#[derive(Debug, Clone, Default)]
pub struct SparseLu {
    n: usize,
    /// `perm[i]` = original row at pivotal position `i`.
    perm: Vec<usize>,
    lrow_ptr: Vec<usize>,
    lrow_col: Vec<u32>,
    lrow_val: Vec<f64>,
    /// Strictly-upper entries, columns ascending within a row.
    urow_ptr: Vec<usize>,
    urow_col: Vec<u32>,
    urow_val: Vec<f64>,
    diag: Vec<f64>,
    /// Column-major transposes of L and strict-upper U (row indices
    /// ascending within each column), consumed by
    /// [`SparseLu::solve_transpose_into`] in the dense accumulation
    /// order.
    lcolt_ptr: Vec<usize>,
    lcolt_row: Vec<u32>,
    lcolt_val: Vec<f64>,
    ucolt_ptr: Vec<usize>,
    ucolt_row: Vec<u32>,
    ucolt_val: Vec<f64>,
    /// Element growth factor of the last (re)factorisation.
    growth: f64,
}

impl SparseLu {
    /// Factorises `a`, allocating a fresh factor and workspace.
    ///
    /// # Errors
    ///
    /// [`SingularMatrixError`] when no usable pivot exists, mirroring
    /// the dense factorisation's threshold and breakdown row.
    pub fn factor(a: &SparseMatrix) -> Result<SparseLu, SingularMatrixError> {
        let mut ws = SparseWorkspace::new(a.n());
        let mut lu = SparseLu::default();
        lu.refactor(a, &mut ws)?;
        Ok(lu)
    }

    /// Numeric (re)factorisation of `a` into `self`, reusing both the
    /// factor's and the workspace's allocations. On error the factor
    /// contents are unspecified and must not be used for solves.
    ///
    /// # Errors
    ///
    /// [`SingularMatrixError`] when no usable pivot exists.
    pub fn refactor(
        &mut self,
        a: &SparseMatrix,
        ws: &mut SparseWorkspace,
    ) -> Result<(), SingularMatrixError> {
        let s = &**a.structure();
        let n = s.n;
        ws.resize(n);
        self.n = n;
        self.perm.clear();
        self.perm.extend(0..n);
        ws.lcol_ptr.clear();
        ws.lcol_ptr.push(0);
        ws.lcol_row.clear();
        ws.lcol_val.clear();
        ws.ucol_ptr.clear();
        ws.ucol_ptr.push(0);
        ws.ucol_k.clear();
        ws.ucol_val.clear();
        for (row, pos) in ws.pos.iter_mut().enumerate() {
            *pos = row;
        }
        let mut max_orig = 0.0_f64;
        for v in &a.values {
            let m = v.abs();
            if m > max_orig {
                max_orig = m;
            }
        }
        let mut max_grown = max_orig;

        for col in 0..n {
            // Scatter A's column into the dense accumulator.
            ws.pattern.clear();
            for e in s.col_ptr[col]..s.col_ptr[col + 1] {
                let r = s.row_idx[e] as usize;
                ws.x[r] = a.values[e];
                ws.in_pattern[r] = true;
                ws.pattern.push(r as u32);
            }

            // Left-looking update: pivot steps in ascending order are
            // exactly the ascending-`k` updates each entry of this
            // column receives in the dense right-looking elimination.
            for k in 0..col {
                let pr = ws.pivot_row[k];
                if !ws.in_pattern[pr] {
                    // Structurally zero U(k, col): the dense code
                    // subtracts `multiplier * ±0.0` here, which never
                    // changes a nonzero value.
                    continue;
                }
                let ukc = ws.x[pr];
                for e in ws.lcol_ptr[k]..ws.lcol_ptr[k + 1] {
                    let lik = ws.lcol_val[e];
                    // The dense elimination skips a row whose stored
                    // multiplier is exactly zero; keep that skip so
                    // fill-in and arithmetic match.
                    if lik != 0.0 {
                        let r = ws.lcol_row[e] as usize;
                        if !ws.in_pattern[r] {
                            ws.x[r] = 0.0;
                            ws.in_pattern[r] = true;
                            ws.pattern.push(r as u32);
                        }
                        ws.x[r] -= lik * ukc;
                    }
                }
            }

            // Partial pivoting over the not-yet-pivotal rows in current
            // physical order: same scan, same strict comparison, same
            // threshold as the dense code.
            let value_at = |row: usize| {
                if ws.in_pattern[row] {
                    ws.x[row]
                } else {
                    0.0
                }
            };
            let mut pivot_phys = col;
            let mut pivot_val = value_at(self.perm[col]).abs();
            for i in col + 1..n {
                let v = value_at(self.perm[i]).abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_phys = i;
                }
            }
            // Column scale over the accumulator pattern: U entries
            // already gathered for this column plus the pivot
            // candidates. Entries outside the pattern are exact zeros
            // on the dense side too, so the maximum matches the dense
            // scan over all rows.
            let mut col_scale = pivot_val;
            for &r in &ws.pattern {
                let v = ws.x[r as usize].abs();
                if v > col_scale {
                    col_scale = v;
                }
            }
            if pivot_val == 0.0 || pivot_val < crate::PIVOT_REL_TOL * col_scale {
                return Err(SingularMatrixError { row: col });
            }
            if col_scale > max_grown {
                max_grown = col_scale;
            }
            self.perm.swap(col, pivot_phys);
            let pr = self.perm[col];
            ws.pos[pr] = col;
            ws.pos[self.perm[pivot_phys]] = pivot_phys;
            ws.pivot_row[col] = pr;
            let pivot = ws.x[pr];

            // Gather U(·, col) in ascending pivot-step order and the L
            // multipliers (one division by the pivot each, exactly as
            // the dense code computes its stored factors).
            for &r in &ws.pattern {
                let r = r as usize;
                let k = ws.pos[r];
                if k < col {
                    ws.ucol_k.push(k as u32);
                    ws.ucol_val.push(ws.x[r]);
                }
            }
            ws.ucol_k.push(col as u32);
            ws.ucol_val.push(pivot);
            ws.ucol_ptr.push(ws.ucol_k.len());
            for &r in &ws.pattern {
                let r = r as usize;
                if ws.pos[r] > col {
                    ws.lcol_row.push(r as u32);
                    ws.lcol_val.push(ws.x[r] / pivot);
                }
            }
            ws.lcol_ptr.push(ws.lcol_row.len());

            for &r in &ws.pattern {
                ws.in_pattern[r as usize] = false;
                ws.x[r as usize] = 0.0;
            }
        }

        self.growth = if max_orig > 0.0 {
            max_grown / max_orig
        } else {
            1.0
        };
        self.build_row_forms(ws);
        Ok(())
    }

    /// Transposes the by-column intermediates into the row-major forms
    /// the substitutions consume. Iterating source columns in ascending
    /// order lands each row's entries already sorted by column.
    fn build_row_forms(&mut self, ws: &mut SparseWorkspace) {
        let n = self.n;

        ws.row_count[..n].fill(0);
        for &r in &ws.lcol_row {
            ws.row_count[ws.pos[r as usize]] += 1;
        }
        self.lrow_ptr.clear();
        self.lrow_ptr.push(0);
        for r in 0..n {
            self.lrow_ptr.push(self.lrow_ptr[r] + ws.row_count[r]);
        }
        self.lrow_col.resize(ws.lcol_row.len(), 0);
        self.lrow_val.resize(ws.lcol_val.len(), 0.0);
        ws.row_count[..n].copy_from_slice(&self.lrow_ptr[..n]);
        for k in 0..n {
            for e in ws.lcol_ptr[k]..ws.lcol_ptr[k + 1] {
                let row = ws.pos[ws.lcol_row[e] as usize];
                let dst = ws.row_count[row];
                ws.row_count[row] += 1;
                self.lrow_col[dst] = k as u32;
                self.lrow_val[dst] = ws.lcol_val[e];
            }
        }

        self.diag.resize(n, 0.0);
        ws.row_count[..n].fill(0);
        for c in 0..n {
            for e in ws.ucol_ptr[c]..ws.ucol_ptr[c + 1] {
                let k = ws.ucol_k[e] as usize;
                if k < c {
                    ws.row_count[k] += 1;
                }
            }
        }
        self.urow_ptr.clear();
        self.urow_ptr.push(0);
        for r in 0..n {
            self.urow_ptr.push(self.urow_ptr[r] + ws.row_count[r]);
        }
        let strict_upper = self.urow_ptr[n];
        self.urow_col.resize(strict_upper, 0);
        self.urow_val.resize(strict_upper, 0.0);
        ws.row_count[..n].copy_from_slice(&self.urow_ptr[..n]);
        for c in 0..n {
            for e in ws.ucol_ptr[c]..ws.ucol_ptr[c + 1] {
                let k = ws.ucol_k[e] as usize;
                if k == c {
                    self.diag[c] = ws.ucol_val[e];
                } else {
                    let dst = ws.row_count[k];
                    ws.row_count[k] += 1;
                    self.urow_col[dst] = c as u32;
                    self.urow_val[dst] = ws.ucol_val[e];
                }
            }
        }

        // Transpose the row-major forms once more into column-major
        // forms for Aᵀ solves. Iterating source rows ascending lands
        // each column's row indices already sorted, which is exactly
        // the ascending-k accumulation order the dense transpose
        // substitutions use.
        ws.row_count[..n].fill(0);
        for &k in &self.lrow_col {
            ws.row_count[k as usize] += 1;
        }
        self.lcolt_ptr.clear();
        self.lcolt_ptr.push(0);
        for c in 0..n {
            self.lcolt_ptr.push(self.lcolt_ptr[c] + ws.row_count[c]);
        }
        self.lcolt_row.resize(self.lrow_col.len(), 0);
        self.lcolt_val.resize(self.lrow_val.len(), 0.0);
        ws.row_count[..n].copy_from_slice(&self.lcolt_ptr[..n]);
        for r in 0..n {
            for e in self.lrow_ptr[r]..self.lrow_ptr[r + 1] {
                let c = self.lrow_col[e] as usize;
                let dst = ws.row_count[c];
                ws.row_count[c] += 1;
                self.lcolt_row[dst] = r as u32;
                self.lcolt_val[dst] = self.lrow_val[e];
            }
        }

        ws.row_count[..n].fill(0);
        for &c in &self.urow_col {
            ws.row_count[c as usize] += 1;
        }
        self.ucolt_ptr.clear();
        self.ucolt_ptr.push(0);
        for c in 0..n {
            self.ucolt_ptr.push(self.ucolt_ptr[c] + ws.row_count[c]);
        }
        self.ucolt_row.resize(self.urow_col.len(), 0);
        self.ucolt_val.resize(self.urow_val.len(), 0.0);
        ws.row_count[..n].copy_from_slice(&self.ucolt_ptr[..n]);
        for r in 0..n {
            for e in self.urow_ptr[r]..self.urow_ptr[r + 1] {
                let c = self.urow_col[e] as usize;
                let dst = ws.row_count[c];
                ws.row_count[c] += 1;
                self.ucolt_row[dst] = r as u32;
                self.ucolt_val[dst] = self.urow_val[e];
            }
        }
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Solves `A·x = b` into `x`, mirroring the dense substitution
    /// order (forward rows ascending, backward rows descending, columns
    /// ascending within each row).
    ///
    /// # Panics
    ///
    /// Panics if `b` or `x` have the wrong length.
    pub fn solve_into(&self, b: &[f64], x: &mut [f64]) {
        let n = self.n;
        assert_eq!(b.len(), n, "rhs length");
        assert_eq!(x.len(), n, "solution length");
        for i in 0..n {
            x[i] = b[self.perm[i]];
        }
        for r in 1..n {
            let mut sum = x[r];
            for e in self.lrow_ptr[r]..self.lrow_ptr[r + 1] {
                sum -= self.lrow_val[e] * x[self.lrow_col[e] as usize];
            }
            x[r] = sum;
        }
        for r in (0..n).rev() {
            let mut sum = x[r];
            for e in self.urow_ptr[r]..self.urow_ptr[r + 1] {
                sum -= self.urow_val[e] * x[self.urow_col[e] as usize];
            }
            x[r] = sum / self.diag[r];
        }
    }

    /// Solves `A·x = b`, allocating the solution.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = vec![0.0; self.n];
        self.solve_into(b, &mut x);
        x
    }

    /// Solves `Aᵀ·x = b`, mirroring [`crate::matrix::Lu::solve_transpose_into`]:
    /// forward-substitute `Uᵀ·z = b` and back-substitute `Lᵀ·w = z`
    /// over the column-major transposes (row indices ascending inside
    /// each column, the dense accumulation order), then scatter through
    /// the permutation. Entries the dense code touches that the pattern
    /// omits are exact zeros, so nonzero results are bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if `b` or `x` have the wrong length.
    pub fn solve_transpose_into(&self, b: &[f64], x: &mut [f64]) {
        let n = self.n;
        assert_eq!(b.len(), n, "rhs length");
        assert_eq!(x.len(), n, "solution length");
        let mut w = vec![0.0; n];
        for r in 0..n {
            let mut sum = b[r];
            for e in self.ucolt_ptr[r]..self.ucolt_ptr[r + 1] {
                sum -= self.ucolt_val[e] * w[self.ucolt_row[e] as usize];
            }
            w[r] = sum / self.diag[r];
        }
        for r in (0..n).rev() {
            let mut sum = w[r];
            for e in self.lcolt_ptr[r]..self.lcolt_ptr[r + 1] {
                sum -= self.lcolt_val[e] * w[self.lcolt_row[e] as usize];
            }
            w[r] = sum;
        }
        for (i, &wv) in w.iter().enumerate() {
            x[self.perm[i]] = wv;
        }
    }

    /// Element growth factor of the last (re)factorisation; see
    /// [`crate::matrix::Lu::pivot_growth`].
    pub fn pivot_growth(&self) -> f64 {
        self.growth
    }

    /// 1-norm condition estimate; see [`crate::matrix::Lu::condest`].
    /// Bit-identical to the dense estimate for the same matrix.
    pub fn condest(&self, anorm: f64) -> f64 {
        crate::condest::condest_1(
            self.n,
            |b, x| self.solve_into(b, x),
            |b, x| self.solve_transpose_into(b, x),
            anorm,
        )
    }

    /// Multiplies the first stored pivot `U(0,0)` by `scale`; see
    /// [`crate::matrix::Lu::perturb_first_pivot`]. Fault-injection
    /// support only.
    pub fn perturb_first_pivot(&mut self, scale: f64) {
        if self.n > 0 {
            self.diag[0] *= scale;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Lu;

    fn dense_of(n: usize, entries: &[(usize, usize, f64)]) -> (Matrix, SparseMatrix) {
        let positions: Vec<(usize, usize)> = entries.iter().map(|&(r, c, _)| (r, c)).collect();
        let structure = SparseStructure::from_positions(n, &positions);
        let mut sparse = SparseMatrix::zeros(structure);
        let mut dense = Matrix::zeros(n, n);
        for &(r, c, v) in entries {
            sparse.add(r, c, v);
            dense.add(r, c, v);
        }
        (dense, sparse)
    }

    /// A well-conditioned MNA-shaped system: diagonally dominant
    /// conductance grid with a couple of off-diagonal couplings.
    fn mna_like(n: usize, seed: u64) -> Vec<(usize, usize, f64)> {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut entries = Vec::new();
        for r in 0..n {
            entries.push((r, r, 2.0 + next()));
            let c = (r + 1) % n;
            let g = 0.5 + next();
            entries.push((r, c, -g));
            entries.push((c, r, -g));
        }
        entries
    }

    #[test]
    fn structure_maps_positions_to_slots() {
        let s = SparseStructure::from_positions(3, &[(0, 0), (2, 1), (0, 0), (1, 2)]);
        assert_eq!(s.n(), 3);
        assert_eq!(s.nnz(), 3);
        assert!(s.slot_of(0, 0).is_some());
        assert!(s.slot_of(2, 1).is_some());
        assert!(s.slot_of(1, 1).is_none());
    }

    #[test]
    fn add_accumulates_duplicates() {
        let (_, mut m) = dense_of(2, &[(0, 0, 1.0), (1, 1, 1.0)]);
        m.add(0, 0, 2.5);
        assert_eq!(m.get(0, 0), 3.5);
        m.clear();
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "outside sparse pattern")]
    fn add_outside_pattern_panics() {
        let (_, mut m) = dense_of(2, &[(0, 0, 1.0)]);
        m.add(1, 0, 1.0);
    }

    #[test]
    fn mul_vec_matches_dense() {
        let (dense, sparse) = dense_of(3, &mna_like(3, 7));
        let x = [1.5, -2.0, 0.25];
        let mut out = [0.0; 3];
        sparse.mul_vec_into(&x, &mut out);
        let want = dense.mul_vec(&x);
        assert_eq!(out.to_vec(), want);
    }

    #[test]
    fn sparse_lu_is_bit_identical_to_dense_lu() {
        for n in [2usize, 5, 9, 16, 31] {
            for seed in [3u64, 17, 99] {
                let (dense, sparse) = dense_of(n, &mna_like(n, seed));
                let dlu = Lu::factor(&dense).expect("dense factors");
                let slu = SparseLu::factor(&sparse).expect("sparse factors");
                let b: Vec<f64> = (0..n).map(|i| (i as f64) - 0.3 * n as f64).collect();
                let xd = dlu.solve(&b);
                let xs = slu.solve(&b);
                for (i, (d, s)) in xd.iter().zip(&xs).enumerate() {
                    assert_eq!(
                        d.to_bits(),
                        s.to_bits(),
                        "n={n} seed={seed} x[{i}]: dense {d:e} sparse {s:e}"
                    );
                }
            }
        }
    }

    #[test]
    fn pivoting_kicks_in_on_zero_diagonal() {
        // (0,0) is structurally present but zero: the first pivot must
        // come from row 1, exactly as the dense code picks it.
        let entries = [(0, 0, 0.0), (0, 1, 2.0), (1, 0, 3.0), (1, 1, 1.0)];
        let (dense, sparse) = dense_of(2, &entries);
        let dlu = Lu::factor(&dense).unwrap();
        let slu = SparseLu::factor(&sparse).unwrap();
        let b = [4.0, 5.0];
        assert_eq!(dlu.solve(&b), slu.solve(&b));
    }

    #[test]
    fn singular_matrix_reports_breakdown_row() {
        let entries = [(0, 0, 1.0), (1, 1, 0.0), (0, 1, 0.0), (1, 0, 0.0)];
        let (dense, sparse) = dense_of(2, &entries);
        let derr = Lu::factor(&dense).unwrap_err();
        let serr = SparseLu::factor(&sparse).unwrap_err();
        assert_eq!(derr, serr);
        assert_eq!(serr.row, 1);
    }

    #[test]
    fn refactor_reuses_allocations_and_stays_exact() {
        let entries = mna_like(12, 5);
        let (dense, mut sparse) = dense_of(12, &entries);
        let mut ws = SparseWorkspace::new(12);
        let mut lu = SparseLu::default();
        lu.refactor(&sparse, &mut ws).unwrap();

        // Perturb the values (same structure), refactor in place.
        sparse.clear();
        for &(r, c, v) in &entries {
            sparse.add(r, c, v * 1.5);
        }
        let dense2 = dense.scale(1.5);
        lu.refactor(&sparse, &mut ws).unwrap();
        let b: Vec<f64> = (0..12).map(|i| 1.0 + i as f64).collect();
        let want = Lu::factor(&dense2).unwrap().solve(&b);
        let mut got = vec![0.0; 12];
        lu.solve_into(&b, &mut got);
        assert_eq!(want, got);
    }

    #[test]
    fn fill_in_beyond_the_input_pattern_is_handled() {
        // Arrow matrix: elimination of column 0 fills the whole last
        // row/column block.
        let n = 6;
        let mut entries = vec![];
        for i in 0..n {
            entries.push((i, i, 4.0 + i as f64));
        }
        for i in 1..n {
            entries.push((0, i, 1.0));
            entries.push((i, 0, 1.0));
        }
        let (dense, sparse) = dense_of(n, &entries);
        let dlu = Lu::factor(&dense).unwrap();
        let slu = SparseLu::factor(&sparse).unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        assert_eq!(dlu.solve(&b), slu.solve(&b));
    }
}
