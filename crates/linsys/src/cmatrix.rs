//! Dense complex matrices with LU factorisation — the backbone of AC
//! (small-signal frequency-domain) circuit analysis.

use crate::complex::Complex;
use crate::SingularMatrixError;

/// A dense, row-major complex matrix.
///
/// # Example
///
/// ```
/// use linsys::cmatrix::CMatrix;
/// use linsys::complex::Complex;
///
/// let mut m = CMatrix::zeros(2, 2);
/// m[(0, 0)] = Complex::new(1.0, 1.0);
/// assert_eq!(m[(0, 0)].im, 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex>,
}

impl CMatrix {
    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CMatrix {
            rows,
            cols,
            data: vec![Complex::ZERO; rows * cols],
        }
    }

    /// Creates an `n x n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = CMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex::ONE;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Zeroes every entry, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.iter_mut().for_each(|z| *z = Complex::ZERO);
    }

    /// Adds `value` to entry `(r, c)`.
    #[inline]
    pub fn add(&mut self, r: usize, c: usize, value: Complex) {
        self[(r, c)] = self[(r, c)] + value;
    }

    /// Matrix-vector product.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn mul_vec(&self, v: &[Complex]) -> Vec<Complex> {
        assert_eq!(v.len(), self.cols, "dimension mismatch");
        (0..self.rows)
            .map(|r| {
                self.data[r * self.cols..(r + 1) * self.cols]
                    .iter()
                    .zip(v)
                    .fold(Complex::ZERO, |acc, (a, b)| acc + *a * *b)
            })
            .collect()
    }
}

impl std::ops::Index<(usize, usize)> for CMatrix {
    type Output = Complex;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &Complex {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for CMatrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut Complex {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

/// Solves the complex system `A·x = b` by LU with partial pivoting
/// (pivot chosen by magnitude).
///
/// # Errors
///
/// Returns [`SingularMatrixError`] if no usable pivot exists.
///
/// # Panics
///
/// Panics if `a` is not square or `b` has the wrong length.
pub fn solve(a: &CMatrix, b: &[Complex]) -> Result<Vec<Complex>, SingularMatrixError> {
    assert_eq!(a.rows, a.cols, "complex solve requires a square matrix");
    assert_eq!(b.len(), a.rows, "rhs dimension mismatch");
    let n = a.rows;
    let mut lu = a.data.clone();
    let mut x: Vec<Complex> = b.to_vec();

    for col in 0..n {
        // Partial pivot by magnitude.
        let mut pivot_row = col;
        let mut pivot_val = lu[col * n + col].norm_sqr();
        for r in col + 1..n {
            let v = lu[r * n + col].norm_sqr();
            if v > pivot_val {
                pivot_val = v;
                pivot_row = r;
            }
        }
        if pivot_val < 1e-280 {
            return Err(SingularMatrixError { row: col });
        }
        if pivot_row != col {
            for c in 0..n {
                lu.swap(col * n + c, pivot_row * n + c);
            }
            x.swap(col, pivot_row);
        }
        let pivot = lu[col * n + col];
        for r in col + 1..n {
            let factor = lu[r * n + col] / pivot;
            lu[r * n + col] = factor;
            if factor.norm_sqr() != 0.0 {
                for c in col + 1..n {
                    lu[r * n + c] = lu[r * n + c] - factor * lu[col * n + c];
                }
            }
            x[r] = x[r] - factor * x[col];
        }
    }
    // Back substitution.
    for r in (0..n).rev() {
        let mut sum = x[r];
        for c in r + 1..n {
            sum = sum - lu[r * n + c] * x[c];
        }
        x[r] = sum / lu[r * n + r];
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64, im: f64) -> Complex {
        Complex::new(re, im)
    }

    #[test]
    fn identity_solve() {
        let a = CMatrix::identity(3);
        let b = vec![c(1.0, 2.0), c(-1.0, 0.5), c(0.0, -3.0)];
        let x = solve(&a, &b).unwrap();
        assert_eq!(x, b);
    }

    #[test]
    fn solves_complex_system() {
        // [1+j, 1; 0, 2] x = [2+j; 4] -> x2 = 2, x1 = (2+j-2)/(1+j) = j/(1+j)
        let mut a = CMatrix::zeros(2, 2);
        a[(0, 0)] = c(1.0, 1.0);
        a[(0, 1)] = c(1.0, 0.0);
        a[(1, 1)] = c(2.0, 0.0);
        let x = solve(&a, &[c(2.0, 1.0), c(4.0, 0.0)]).unwrap();
        assert!((x[1] - c(2.0, 0.0)).abs() < 1e-12);
        let expect = c(0.0, 1.0) / c(1.0, 1.0);
        assert!((x[0] - expect).abs() < 1e-12);
    }

    #[test]
    fn residual_vanishes_for_random_like_system() {
        let n = 6;
        let mut a = CMatrix::zeros(n, n);
        for r in 0..n {
            for col in 0..n {
                let v = ((r * 7 + col * 13) % 11) as f64 - 5.0;
                let w = ((r * 3 + col * 5) % 7) as f64 - 3.0;
                a[(r, col)] = c(v, w * 0.5);
            }
            a[(r, r)] = a[(r, r)] + c(20.0, 0.0); // dominance
        }
        let b: Vec<Complex> = (0..n).map(|k| c(k as f64, -(k as f64))).collect();
        let x = solve(&a, &b).unwrap();
        let back = a.mul_vec(&x);
        for (want, got) in b.iter().zip(&back) {
            assert!((*want - *got).abs() < 1e-10);
        }
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let mut a = CMatrix::zeros(2, 2);
        a[(0, 1)] = Complex::ONE;
        a[(1, 0)] = Complex::ONE;
        let x = solve(&a, &[c(3.0, 0.0), c(5.0, 0.0)]).unwrap();
        assert!((x[0] - c(5.0, 0.0)).abs() < 1e-12);
        assert!((x[1] - c(3.0, 0.0)).abs() < 1e-12);
    }

    #[test]
    fn singular_reported() {
        let a = CMatrix::zeros(2, 2);
        assert!(solve(&a, &[Complex::ZERO, Complex::ZERO]).is_err());
    }
}
