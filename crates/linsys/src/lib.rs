//! `linsys` — a small linear-systems and numerical linear-algebra toolbox.
//!
//! This crate plays the role Matlab played in Cobley's 1996 ED&TC paper:
//! building state-space representations of fault-free and faulty analogue
//! circuits from their transfer functions and comparing impulse responses.
//! It provides:
//!
//! * [`matrix`] — dense matrices with LU factorisation and matrix
//!   exponentials,
//! * [`complex`] — a minimal complex number type,
//! * [`polynomial`] — real-coefficient polynomials with complex root
//!   finding (Durand–Kerner),
//! * [`transfer`] — continuous (s-domain) and discrete (z-domain) transfer
//!   functions in pole/zero/gain form,
//! * [`statespace`] — state-space models and controllable canonical
//!   realisation,
//! * [`response`] — impulse and step responses of both model kinds.
//!
//! # Example
//!
//! First-order low-pass `H(s) = 1/(s + 1)`: its impulse response is
//! `e^{-t}`.
//!
//! ```
//! use linsys::transfer::ContinuousTransferFunction;
//!
//! let h = ContinuousTransferFunction::from_coeffs(&[1.0], &[1.0, 1.0]);
//! let ss = h.to_state_space();
//! let resp = linsys::response::impulse_response(&ss, 0.01, 200);
//! assert!((resp[100] - (-1.0_f64).exp()).abs() < 1e-3);
//! ```

pub mod cmatrix;
pub mod complex;
pub mod matrix;
pub mod polynomial;
pub mod response;
pub mod sparse;
pub mod statespace;
pub mod transfer;

mod error;

pub use error::SingularMatrixError;
