//! `linsys` — a small linear-systems and numerical linear-algebra toolbox.
//!
//! This crate plays the role Matlab played in Cobley's 1996 ED&TC paper:
//! building state-space representations of fault-free and faulty analogue
//! circuits from their transfer functions and comparing impulse responses.
//! It provides:
//!
//! * [`matrix`] — dense matrices with LU factorisation and matrix
//!   exponentials,
//! * [`complex`] — a minimal complex number type,
//! * [`polynomial`] — real-coefficient polynomials with complex root
//!   finding (Durand–Kerner),
//! * [`transfer`] — continuous (s-domain) and discrete (z-domain) transfer
//!   functions in pole/zero/gain form,
//! * [`statespace`] — state-space models and controllable canonical
//!   realisation,
//! * [`response`] — impulse and step responses of both model kinds.
//!
//! # Example
//!
//! First-order low-pass `H(s) = 1/(s + 1)`: its impulse response is
//! `e^{-t}`.
//!
//! ```
//! use linsys::transfer::ContinuousTransferFunction;
//!
//! let h = ContinuousTransferFunction::from_coeffs(&[1.0], &[1.0, 1.0]);
//! let ss = h.to_state_space();
//! let resp = linsys::response::impulse_response(&ss, 0.01, 200);
//! assert!((resp[100] - (-1.0_f64).exp()).abs() < 1e-3);
//! ```

pub mod cmatrix;
pub mod complex;
pub mod matrix;
pub mod polynomial;
pub mod refine;
pub mod response;
pub mod sparse;
pub mod statespace;
pub mod transfer;

mod condest;
mod error;

pub use error::{NumericalHazard, SingularMatrixError};
pub use refine::{refine_once, RefineOutcome};

/// Scale-relative pivot floor shared by the dense and sparse LU
/// kernels: elimination fails with [`SingularMatrixError`] when the
/// chosen pivot is smaller than this fraction of the largest updated
/// magnitude in its column. The value sits just below f64 machine
/// epsilon (≈2.2e-16): a pivot that small relative to its column is
/// indistinguishable from rounding noise, so any factorisation built on
/// it would be garbage — while badly *scaled* but well-conditioned
/// systems (whole matrix near 1e-300, say) factor cleanly, which the
/// old absolute `1e-300` floor forbade.
pub const PIVOT_REL_TOL: f64 = 1e-16;
