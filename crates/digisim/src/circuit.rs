//! Gate-level netlists and the event-driven simulation kernel.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use crate::logic::Logic;

/// A digital net handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(usize);

impl NetId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A gate handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GateId(usize);

/// Primitive gate kinds.
///
/// `Dff` is a positive-edge-triggered D flip-flop whose inputs are
/// `[d, clk]` or `[d, clk, rst]` (asynchronous active-high reset to 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// Logical AND of all inputs.
    And,
    /// NAND of all inputs.
    Nand,
    /// OR of all inputs.
    Or,
    /// NOR of all inputs.
    Nor,
    /// XOR (odd parity) of all inputs.
    Xor,
    /// XNOR (even parity) of all inputs.
    Xnor,
    /// Inverter (single input).
    Not,
    /// Buffer (single input).
    Buf,
    /// Positive-edge D flip-flop: inputs `[d, clk]` or `[d, clk, rst]`.
    Dff,
}

#[derive(Debug, Clone)]
struct Gate {
    kind: GateKind,
    inputs: Vec<NetId>,
    output: NetId,
    delay: u64,
    /// Flip-flop internal state: (last clock sample, stored Q).
    ff_state: (Logic, Logic),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Event {
    time: u64,
    seq: u64,
    net: NetId,
    value: Logic,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A gate-level digital circuit with an event-driven simulator.
///
/// Nets start at [`Logic::X`]. Drive primary inputs with
/// [`Circuit::set_input`], advance time with [`Circuit::run_until`], and
/// observe nets with [`Circuit::value`].
///
/// # Example
///
/// ```
/// use digisim::circuit::{Circuit, GateKind};
/// use digisim::logic::Logic;
///
/// let mut c = Circuit::new();
/// let a = c.input("a");
/// let y = c.net("y");
/// c.gate(GateKind::Not, &[a], y, 2);
/// c.set_input(a, Logic::Zero);
/// c.run_until(5);
/// assert_eq!(c.value(y), Logic::One);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Circuit {
    nets: Vec<Logic>,
    net_names: Vec<String>,
    name_lookup: HashMap<String, NetId>,
    gates: Vec<Gate>,
    fanout: Vec<Vec<usize>>,
    queue: BinaryHeap<Reverse<Event>>,
    now: u64,
    seq: u64,
    events_processed: u64,
}

impl Circuit {
    /// Maximum events per `run_until` call, guarding against zero-delay
    /// oscillation.
    const EVENT_LIMIT: u64 = 100_000_000;

    /// Creates an empty circuit.
    pub fn new() -> Self {
        Circuit::default()
    }

    /// Creates (or returns) a named net.
    pub fn net(&mut self, name: &str) -> NetId {
        if let Some(&id) = self.name_lookup.get(name) {
            return id;
        }
        let id = NetId(self.nets.len());
        self.nets.push(Logic::X);
        self.net_names.push(name.to_string());
        self.name_lookup.insert(name.to_string(), id);
        self.fanout.push(Vec::new());
        id
    }

    /// Creates a primary-input net (identical to [`Circuit::net`]; the
    /// distinction is documentary).
    pub fn input(&mut self, name: &str) -> NetId {
        self.net(name)
    }

    /// Creates an anonymous net.
    pub fn anon(&mut self) -> NetId {
        let name = format!("_n{}", self.nets.len());
        self.net(&name)
    }

    /// Name of a net.
    pub fn net_name(&self, id: NetId) -> &str {
        &self.net_names[id.0]
    }

    /// Number of nets.
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// Number of gates.
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// Current simulation time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Adds a gate driving `output` from `inputs` with propagation
    /// `delay` (time units).
    ///
    /// # Panics
    ///
    /// Panics if the input count is invalid for the gate kind.
    pub fn gate(&mut self, kind: GateKind, inputs: &[NetId], output: NetId, delay: u64) -> GateId {
        match kind {
            GateKind::Not | GateKind::Buf => {
                assert_eq!(inputs.len(), 1, "{kind:?} takes exactly one input")
            }
            GateKind::Dff => assert!(
                inputs.len() == 2 || inputs.len() == 3,
                "Dff takes [d, clk] or [d, clk, rst]"
            ),
            _ => assert!(inputs.len() >= 2, "{kind:?} needs at least two inputs"),
        }
        let gid = self.gates.len();
        for &i in inputs {
            // Flip-flops are only sensitive to clock and reset, not D.
            if kind == GateKind::Dff && i == inputs[0] && inputs.iter().filter(|&&x| x == i).count() == 1
            {
                continue;
            }
            self.fanout[i.0].push(gid);
        }
        self.gates.push(Gate {
            kind,
            inputs: inputs.to_vec(),
            output,
            delay,
            ff_state: (Logic::X, Logic::X),
        });
        GateId(gid)
    }

    /// Current value of a net.
    pub fn value(&self, net: NetId) -> Logic {
        self.nets[net.0]
    }

    /// Current values of several nets.
    pub fn values(&self, nets: &[NetId]) -> Vec<Logic> {
        nets.iter().map(|&n| self.value(n)).collect()
    }

    /// Schedules a primary-input change at the current time.
    pub fn set_input(&mut self, net: NetId, value: Logic) {
        self.schedule(self.now, net, value);
    }

    /// Schedules a primary-input change at an absolute future time.
    ///
    /// # Panics
    ///
    /// Panics if `time` is in the past.
    pub fn set_input_at(&mut self, time: u64, net: NetId, value: Logic) {
        assert!(time >= self.now, "cannot schedule in the past");
        self.schedule(time, net, value);
    }

    fn schedule(&mut self, time: u64, net: NetId, value: Logic) {
        self.seq += 1;
        self.queue.push(Reverse(Event {
            time,
            seq: self.seq,
            net,
            value,
        }));
    }

    /// Processes events up to and including time `t_stop`, advancing
    /// simulation time.
    ///
    /// # Panics
    ///
    /// Panics if the event limit is exceeded (indicating a zero-delay
    /// oscillation).
    pub fn run_until(&mut self, t_stop: u64) {
        self.process_events(t_stop);
        self.now = t_stop;
    }

    /// Drains every pending event regardless of time (runs the circuit to
    /// quiescence), leaving the clock at the last event time.
    pub fn settle(&mut self) {
        self.process_events(u64::MAX);
    }

    fn process_events(&mut self, t_stop: u64) {
        self.events_processed = 0;
        while let Some(&Reverse(ev)) = self.queue.peek() {
            if ev.time > t_stop {
                break;
            }
            self.queue.pop();
            self.now = ev.time;
            self.events_processed += 1;
            assert!(
                self.events_processed < Self::EVENT_LIMIT,
                "event limit exceeded: possible zero-delay oscillation"
            );
            if self.nets[ev.net.0] == ev.value {
                continue;
            }
            self.nets[ev.net.0] = ev.value;
            // Re-evaluate fanout gates.
            let gate_ids = self.fanout[ev.net.0].clone();
            for gid in gate_ids {
                self.evaluate_gate(gid, ev.net);
            }
        }
    }

    fn evaluate_gate(&mut self, gid: usize, trigger: NetId) {
        let kind = self.gates[gid].kind;
        let delay = self.gates[gid].delay;
        let output = self.gates[gid].output;
        let inputs = self.gates[gid].inputs.clone();
        let new_value = match kind {
            GateKind::Dff => {
                let d = self.nets[inputs[0].0];
                let clk = self.nets[inputs[1].0];
                let rst = inputs.get(2).map(|r| self.nets[r.0]);
                let (last_clk, q) = self.gates[gid].ff_state;
                let mut new_q = q;
                if rst == Some(Logic::One) {
                    new_q = Logic::Zero;
                } else if trigger == inputs[1] && last_clk == Logic::Zero && clk == Logic::One {
                    new_q = d;
                }
                self.gates[gid].ff_state = (clk, new_q);
                new_q
            }
            _ => {
                let vals: Vec<Logic> = inputs.iter().map(|&i| self.nets[i.0]).collect();
                combinational(kind, &vals)
            }
        };
        // Always schedule: an earlier pending event for this output may
        // carry a stale value, and comparing against the *current* net
        // value would wrongly suppress the correction. Same-value events
        // are dropped harmlessly at apply time.
        self.schedule(self.now + delay, output, new_value);
    }
}

fn combinational(kind: GateKind, inputs: &[Logic]) -> Logic {
    match kind {
        GateKind::And => inputs.iter().fold(Logic::One, |a, &b| a.and(b)),
        GateKind::Nand => inputs.iter().fold(Logic::One, |a, &b| a.and(b)).not(),
        GateKind::Or => inputs.iter().fold(Logic::Zero, |a, &b| a.or(b)),
        GateKind::Nor => inputs.iter().fold(Logic::Zero, |a, &b| a.or(b)).not(),
        GateKind::Xor => inputs.iter().fold(Logic::Zero, |a, &b| a.xor(b)),
        GateKind::Xnor => inputs.iter().fold(Logic::Zero, |a, &b| a.xor(b)).not(),
        GateKind::Not | GateKind::Buf => {
            let v = inputs[0];
            if kind == GateKind::Not {
                v.not()
            } else {
                v
            }
        }
        GateKind::Dff => unreachable!("Dff handled in evaluate_gate"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(c: &mut Circuit, net: NetId, v: bool) {
        c.set_input(net, Logic::from_bool(v));
    }

    #[test]
    fn not_gate_inverts_with_delay() {
        let mut c = Circuit::new();
        let a = c.input("a");
        let y = c.net("y");
        c.gate(GateKind::Not, &[a], y, 3);
        drive(&mut c, a, false);
        c.run_until(2);
        assert_eq!(c.value(y), Logic::X); // not yet propagated
        c.run_until(3);
        assert_eq!(c.value(y), Logic::One);
    }

    #[test]
    fn and_gate_truth() {
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let y = c.net("y");
        c.gate(GateKind::And, &[a, b], y, 1);
        for (va, vb, exp) in [(false, false, false), (true, false, false), (true, true, true)] {
            drive(&mut c, a, va);
            drive(&mut c, b, vb);
            c.settle();
            assert_eq!(c.value(y), Logic::from_bool(exp), "{va} & {vb}");
        }
    }

    #[test]
    fn xor_parity_of_three() {
        let mut c = Circuit::new();
        let ins: Vec<NetId> = (0..3).map(|i| c.input(&format!("i{i}"))).collect();
        let y = c.net("y");
        c.gate(GateKind::Xor, &ins, y, 1);
        for bits in 0..8u8 {
            for (k, &n) in ins.iter().enumerate() {
                drive(&mut c, n, bits >> k & 1 == 1);
            }
            c.settle();
            let expect = (bits.count_ones() & 1) == 1;
            assert_eq!(c.value(y), Logic::from_bool(expect), "bits {bits:03b}");
        }
    }

    #[test]
    fn dff_samples_on_rising_edge_only() {
        let mut c = Circuit::new();
        let d = c.input("d");
        let clk = c.input("clk");
        let q = c.net("q");
        c.gate(GateKind::Dff, &[d, clk], q, 1);
        drive(&mut c, clk, false);
        drive(&mut c, d, true);
        c.settle();
        assert_eq!(c.value(q), Logic::X); // no edge yet
        drive(&mut c, clk, true); // rising edge: sample D=1
        c.settle();
        assert_eq!(c.value(q), Logic::One);
        drive(&mut c, d, false); // changing D without a clock edge
        c.settle();
        assert_eq!(c.value(q), Logic::One);
        drive(&mut c, clk, false); // falling edge: no sample
        c.settle();
        assert_eq!(c.value(q), Logic::One);
        drive(&mut c, clk, true); // rising edge: sample D=0
        c.settle();
        assert_eq!(c.value(q), Logic::Zero);
    }

    #[test]
    fn dff_async_reset() {
        let mut c = Circuit::new();
        let d = c.input("d");
        let clk = c.input("clk");
        let rst = c.input("rst");
        let q = c.net("q");
        c.gate(GateKind::Dff, &[d, clk, rst], q, 1);
        drive(&mut c, rst, true);
        drive(&mut c, clk, false);
        drive(&mut c, d, true);
        c.settle();
        assert_eq!(c.value(q), Logic::Zero);
        // Reset dominates a clock edge.
        drive(&mut c, clk, true);
        c.settle();
        assert_eq!(c.value(q), Logic::Zero);
        drive(&mut c, rst, false);
        drive(&mut c, clk, false);
        c.settle();
        drive(&mut c, clk, true);
        c.settle();
        assert_eq!(c.value(q), Logic::One);
    }

    #[test]
    fn combinational_chain_accumulates_delay() {
        let mut c = Circuit::new();
        let a = c.input("a");
        let mut prev = a;
        for i in 0..4 {
            let y = c.net(&format!("y{i}"));
            c.gate(GateKind::Not, &[prev], y, 2);
            prev = y;
        }
        drive(&mut c, a, false);
        c.run_until(7);
        assert_eq!(c.value(prev), Logic::X); // needs 8 units
        c.run_until(8);
        assert_eq!(c.value(prev), Logic::Zero); // 4 inversions of 0... wait
    }

    #[test]
    fn scheduled_inputs_fire_in_order() {
        let mut c = Circuit::new();
        let a = c.input("a");
        let y = c.net("y");
        c.gate(GateKind::Buf, &[a], y, 1);
        c.set_input_at(0, a, Logic::Zero);
        c.set_input_at(10, a, Logic::One);
        c.set_input_at(20, a, Logic::Zero);
        c.run_until(5);
        assert_eq!(c.value(y), Logic::Zero);
        c.run_until(15);
        assert_eq!(c.value(y), Logic::One);
        c.run_until(25);
        assert_eq!(c.value(y), Logic::Zero);
    }

    #[test]
    fn x_propagates_through_gates() {
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let y = c.net("y");
        c.gate(GateKind::Or, &[a, b], y, 1);
        drive(&mut c, a, false);
        // b stays X.
        c.settle();
        assert_eq!(c.value(y), Logic::X);
        drive(&mut c, b, true);
        c.settle();
        assert_eq!(c.value(y), Logic::One);
    }

    #[test]
    fn nets_are_interned_by_name() {
        let mut c = Circuit::new();
        let a = c.net("x");
        let b = c.net("x");
        assert_eq!(a, b);
        assert_eq!(c.net_count(), 1);
        assert_eq!(c.net_name(a), "x");
    }

    #[test]
    #[should_panic(expected = "exactly one input")]
    fn not_gate_arity_checked() {
        let mut c = Circuit::new();
        let a = c.input("a");
        let b = c.input("b");
        let y = c.net("y");
        c.gate(GateKind::Not, &[a, b], y, 1);
    }
}
