//! Structural digital building blocks assembled from primitive gates.
//!
//! These mirror the digital test structures of the paper's BIST macro:
//! the conversion counter, the output latch, scan/shift registers for
//! test access, and LFSR/MISR signature hardware. Each builder adds gates
//! to a [`Circuit`] and returns handles to the interesting nets.

use crate::circuit::{Circuit, GateKind, NetId};
use crate::logic::{to_word, Logic};

/// A synchronous binary up-counter built from D flip-flops and gates.
///
/// Bit `k` toggles when all lower bits are 1 (carry chain of AND gates).
///
/// # Example
///
/// ```
/// use digisim::circuit::Circuit;
/// use digisim::components::Counter;
/// use digisim::logic::Logic;
///
/// let mut c = Circuit::new();
/// let counter = Counter::build(&mut c, "cnt", 4);
/// counter.reset(&mut c);
/// for _ in 0..5 {
///     counter.clock_pulse(&mut c, 10);
/// }
/// assert_eq!(counter.read(&c), Some(5));
/// ```
#[derive(Debug, Clone)]
pub struct Counter {
    /// Clock input net.
    pub clk: NetId,
    /// Asynchronous reset input net (active high).
    pub rst: NetId,
    /// Counter state bits, LSB first.
    pub bits: Vec<NetId>,
}

impl Counter {
    /// Builds an `n`-bit counter named `name` into `circuit`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0 or greater than 63.
    pub fn build(circuit: &mut Circuit, name: &str, n: usize) -> Self {
        assert!((1..=63).contains(&n), "counter width must be 1..=63");
        let clk = circuit.input(&format!("{name}_clk"));
        let rst = circuit.input(&format!("{name}_rst"));
        let bits: Vec<NetId> = (0..n)
            .map(|k| circuit.net(&format!("{name}_q{k}")))
            .collect();

        // Carry chain: carry[0] = 1 (toggle enable of bit 0 is constant),
        // carry[k] = q0 & q1 & ... & q_{k-1}.
        // d[k] = q[k] XOR carry[k].
        let mut carry: Option<NetId> = None;
        for k in 0..n {
            let d = circuit.net(&format!("{name}_d{k}"));
            match carry {
                None => {
                    // Bit 0 always toggles.
                    circuit.gate(GateKind::Not, &[bits[0]], d, 1);
                }
                Some(cin) => {
                    circuit.gate(GateKind::Xor, &[bits[k], cin], d, 1);
                }
            }
            circuit.gate(GateKind::Dff, &[d, clk, rst], bits[k], 1);
            // Extend the carry chain.
            carry = Some(match carry {
                None => bits[0],
                Some(cin) => {
                    let c_next = circuit.net(&format!("{name}_c{k}"));
                    circuit.gate(GateKind::And, &[cin, bits[k]], c_next, 1);
                    c_next
                }
            });
        }
        Counter { clk, rst, bits }
    }

    /// Width in bits.
    pub fn width(&self) -> usize {
        self.bits.len()
    }

    /// Applies and releases reset, settling the circuit.
    pub fn reset(&self, circuit: &mut Circuit) {
        circuit.set_input(self.clk, Logic::Zero);
        circuit.set_input(self.rst, Logic::One);
        circuit.settle();
        circuit.set_input(self.rst, Logic::Zero);
        circuit.settle();
    }

    /// Applies one full clock pulse (rise then fall) of `half_period`
    /// units per phase.
    pub fn clock_pulse(&self, circuit: &mut Circuit, half_period: u64) {
        let t = circuit.now();
        circuit.set_input_at(t + half_period, self.clk, Logic::One);
        circuit.set_input_at(t + 2 * half_period, self.clk, Logic::Zero);
        circuit.run_until(t + 2 * half_period);
        circuit.settle();
    }

    /// Reads the counter value, `None` if any bit is unknown.
    pub fn read(&self, circuit: &Circuit) -> Option<u64> {
        to_word(&circuit.values(&self.bits))
    }
}

/// A parallel-load register (bank of D flip-flops sharing a clock), used
/// as the ADC output latch.
#[derive(Debug, Clone)]
pub struct Register {
    /// Clock (load strobe) net.
    pub clk: NetId,
    /// Data input nets, LSB first.
    pub d: Vec<NetId>,
    /// Stored output nets, LSB first.
    pub q: Vec<NetId>,
}

impl Register {
    /// Builds an `n`-bit register named `name`.
    pub fn build(circuit: &mut Circuit, name: &str, n: usize) -> Self {
        assert!(n >= 1, "register width must be at least 1");
        let clk = circuit.input(&format!("{name}_clk"));
        let d: Vec<NetId> = (0..n)
            .map(|k| circuit.input(&format!("{name}_d{k}")))
            .collect();
        let q: Vec<NetId> = (0..n)
            .map(|k| circuit.net(&format!("{name}_q{k}")))
            .collect();
        for k in 0..n {
            circuit.gate(GateKind::Dff, &[d[k], clk], q[k], 1);
        }
        Register { clk, d, q }
    }

    /// Drives the inputs and strobes the clock, latching `value`.
    pub fn load(&self, circuit: &mut Circuit, value: u64) {
        circuit.set_input(self.clk, Logic::Zero);
        for (k, &dk) in self.d.iter().enumerate() {
            circuit.set_input(dk, Logic::from_bool(value >> k & 1 == 1));
        }
        circuit.settle();
        circuit.set_input(self.clk, Logic::One);
        circuit.settle();
        circuit.set_input(self.clk, Logic::Zero);
        circuit.settle();
    }

    /// Reads the stored value, `None` if any bit is unknown.
    pub fn read(&self, circuit: &Circuit) -> Option<u64> {
        to_word(&circuit.values(&self.q))
    }
}

/// A serial shift register with scan-style access, the test-data path of
/// the paper's digital test structures.
#[derive(Debug, Clone)]
pub struct ShiftRegister {
    /// Clock input.
    pub clk: NetId,
    /// Serial data input.
    pub sin: NetId,
    /// Stage outputs; `stages[0]` is the first stage after `sin`.
    pub stages: Vec<NetId>,
}

impl ShiftRegister {
    /// Builds an `n`-stage shift register named `name`.
    pub fn build(circuit: &mut Circuit, name: &str, n: usize) -> Self {
        assert!(n >= 1, "shift register needs at least one stage");
        let clk = circuit.input(&format!("{name}_clk"));
        let sin = circuit.input(&format!("{name}_sin"));
        let stages: Vec<NetId> = (0..n)
            .map(|k| circuit.net(&format!("{name}_s{k}")))
            .collect();
        let mut prev = sin;
        for &s in &stages {
            circuit.gate(GateKind::Dff, &[prev, clk], s, 1);
            prev = s;
        }
        ShiftRegister { clk, sin, stages }
    }

    /// Serial output (last stage).
    pub fn sout(&self) -> NetId {
        *self.stages.last().expect("at least one stage")
    }

    /// Shifts in one bit with a full clock pulse.
    pub fn shift_in(&self, circuit: &mut Circuit, bit: bool) {
        circuit.set_input(self.clk, Logic::Zero);
        circuit.set_input(self.sin, Logic::from_bool(bit));
        circuit.settle();
        circuit.set_input(self.clk, Logic::One);
        circuit.settle();
        circuit.set_input(self.clk, Logic::Zero);
        circuit.settle();
    }

    /// Shifts a whole pattern in, first element first.
    pub fn scan_in(&self, circuit: &mut Circuit, pattern: &[bool]) {
        for &b in pattern {
            self.shift_in(circuit, b);
        }
    }

    /// Reads the parallel stage values (stage 0 first), `None` on any X.
    pub fn read(&self, circuit: &Circuit) -> Option<u64> {
        to_word(&circuit.values(&self.stages))
    }
}

/// A structural MISR: a shift register with XOR feedback and XOR data
/// injection at each stage, compacting parallel response words.
#[derive(Debug, Clone)]
pub struct StructuralMisr {
    /// Clock input.
    pub clk: NetId,
    /// Asynchronous reset input.
    pub rst: NetId,
    /// Parallel data inputs, one per stage.
    pub data: Vec<NetId>,
    /// Stage outputs.
    pub stages: Vec<NetId>,
    taps: Vec<usize>,
}

impl StructuralMisr {
    /// Builds an `n`-stage MISR with feedback from the given tap stages
    /// into stage 0.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`, taps are empty or any tap is out of range.
    pub fn build(circuit: &mut Circuit, name: &str, n: usize, taps: &[usize]) -> Self {
        assert!(n >= 2, "misr needs at least two stages");
        assert!(!taps.is_empty(), "misr needs at least one tap");
        assert!(taps.iter().all(|&t| t < n), "tap out of range");
        let clk = circuit.input(&format!("{name}_clk"));
        let rst = circuit.input(&format!("{name}_rst"));
        let data: Vec<NetId> = (0..n)
            .map(|k| circuit.input(&format!("{name}_in{k}")))
            .collect();
        let stages: Vec<NetId> = (0..n)
            .map(|k| circuit.net(&format!("{name}_q{k}")))
            .collect();

        // Feedback = XOR of tapped stages.
        let feedback = if taps.len() == 1 {
            stages[taps[0]]
        } else {
            let fb = circuit.net(&format!("{name}_fb"));
            let tap_nets: Vec<NetId> = taps.iter().map(|&t| stages[t]).collect();
            circuit.gate(GateKind::Xor, &tap_nets, fb, 1);
            fb
        };

        for k in 0..n {
            let src = if k == 0 { feedback } else { stages[k - 1] };
            let d = circuit.net(&format!("{name}_d{k}"));
            circuit.gate(GateKind::Xor, &[src, data[k]], d, 1);
            circuit.gate(GateKind::Dff, &[d, clk, rst], stages[k], 1);
        }
        StructuralMisr {
            clk,
            rst,
            data,
            stages,
            taps: taps.to_vec(),
        }
    }

    /// Tap positions feeding back into stage 0.
    pub fn taps(&self) -> &[usize] {
        &self.taps
    }

    /// Resets all stages to zero.
    pub fn reset(&self, circuit: &mut Circuit) {
        circuit.set_input(self.clk, Logic::Zero);
        for &d in &self.data {
            circuit.set_input(d, Logic::Zero);
        }
        circuit.set_input(self.rst, Logic::One);
        circuit.settle();
        circuit.set_input(self.rst, Logic::Zero);
        circuit.settle();
    }

    /// Absorbs one parallel word (LSB on stage 0) with a clock pulse.
    pub fn absorb(&self, circuit: &mut Circuit, word: u64) {
        circuit.set_input(self.clk, Logic::Zero);
        for (k, &d) in self.data.iter().enumerate() {
            circuit.set_input(d, Logic::from_bool(word >> k & 1 == 1));
        }
        circuit.settle();
        circuit.set_input(self.clk, Logic::One);
        circuit.settle();
        circuit.set_input(self.clk, Logic::Zero);
        circuit.settle();
    }

    /// Current signature, `None` if any stage is unknown.
    pub fn signature(&self, circuit: &Circuit) -> Option<u64> {
        to_word(&circuit.values(&self.stages))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts_to_fifteen_and_wraps() {
        let mut c = Circuit::new();
        let cnt = Counter::build(&mut c, "c", 4);
        cnt.reset(&mut c);
        assert_eq!(cnt.read(&c), Some(0));
        for expect in 1..=15 {
            cnt.clock_pulse(&mut c, 10);
            assert_eq!(cnt.read(&c), Some(expect));
        }
        cnt.clock_pulse(&mut c, 10);
        assert_eq!(cnt.read(&c), Some(0)); // wrap
    }

    #[test]
    fn counter_width_one_toggles() {
        let mut c = Circuit::new();
        let cnt = Counter::build(&mut c, "t", 1);
        cnt.reset(&mut c);
        cnt.clock_pulse(&mut c, 5);
        assert_eq!(cnt.read(&c), Some(1));
        cnt.clock_pulse(&mut c, 5);
        assert_eq!(cnt.read(&c), Some(0));
    }

    #[test]
    fn counter_reset_mid_count() {
        let mut c = Circuit::new();
        let cnt = Counter::build(&mut c, "r", 3);
        cnt.reset(&mut c);
        for _ in 0..5 {
            cnt.clock_pulse(&mut c, 10);
        }
        assert_eq!(cnt.read(&c), Some(5));
        cnt.reset(&mut c);
        assert_eq!(cnt.read(&c), Some(0));
    }

    #[test]
    fn register_latches_value() {
        let mut c = Circuit::new();
        let reg = Register::build(&mut c, "lat", 8);
        reg.load(&mut c, 0xA5);
        assert_eq!(reg.read(&c), Some(0xA5));
        reg.load(&mut c, 0x3C);
        assert_eq!(reg.read(&c), Some(0x3C));
    }

    #[test]
    fn shift_register_delays_pattern() {
        let mut c = Circuit::new();
        let sr = ShiftRegister::build(&mut c, "sr", 4);
        sr.scan_in(&mut c, &[true, false, true, true]);
        // After 4 shifts the first bit sits in the last stage.
        // Stage order: s0 holds the most recent bit.
        assert_eq!(c.value(sr.sout()), Logic::One);
        // Word packs s0 into bit 0: s0=1 (newest), s1=1, s2=0, s3=1 (oldest).
        assert_eq!(sr.read(&c), Some(0b1011));
    }

    #[test]
    fn misr_signature_is_deterministic_and_sensitive() {
        let words = [3u64, 7, 1, 0, 5];
        let sig_of = |ws: &[u64]| {
            let mut c = Circuit::new();
            let m = StructuralMisr::build(&mut c, "m", 4, &[3, 2]);
            m.reset(&mut c);
            for &w in ws {
                m.absorb(&mut c, w);
            }
            m.signature(&c).unwrap()
        };
        assert_eq!(sig_of(&words), sig_of(&words));
        let mut corrupted = words;
        corrupted[2] ^= 0b10;
        assert_ne!(sig_of(&words), sig_of(&corrupted));
    }

    #[test]
    fn misr_reset_returns_to_zero() {
        let mut c = Circuit::new();
        let m = StructuralMisr::build(&mut c, "m", 4, &[3]);
        m.reset(&mut c);
        m.absorb(&mut c, 0xF);
        assert_ne!(m.signature(&c), Some(0));
        m.reset(&mut c);
        assert_eq!(m.signature(&c), Some(0));
    }

    #[test]
    #[should_panic(expected = "1..=63")]
    fn zero_width_counter_rejected() {
        let mut c = Circuit::new();
        let _ = Counter::build(&mut c, "z", 0);
    }
}
