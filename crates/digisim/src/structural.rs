//! A gate-level (structural) realisation of the dual-slope control
//! logic.
//!
//! The behavioural [`crate::fsm::DualSlopeController`] specifies *what*
//! the control sub-macro does; this module builds the same controller
//! out of flip-flops and gates — the form it takes on the gate array —
//! and the tests prove the two equivalent cycle by cycle. The paper's
//! control-circuit fault class ("control circuit faults will stop the
//! conversion process") is only meaningful against this structural
//! form.
//!
//! State encoding (`s1 s0`): `00` idle, `01` integrate-input, `10`
//! integrate-reference, `11` done. Two phase counters run on gated
//! clocks; the reference counter holds the output code at `done`.

use crate::circuit::{Circuit, GateKind, NetId};
use crate::components::Counter;
use crate::fsm::DualSlopePhase;
use crate::logic::Logic;

/// A built structural dual-slope controller.
#[derive(Debug, Clone)]
pub struct StructuralDualSlope {
    /// Clock input.
    pub clk: NetId,
    /// Asynchronous reset (active high).
    pub rst: NetId,
    /// Start request (level; sampled in idle).
    pub start: NetId,
    /// Comparator input (high once the integrator has crossed back).
    pub comparator: NetId,
    /// Done flag (state `11`).
    pub done: NetId,
    state: [NetId; 2],
    counter_ref: Counter,
    counter_in: Counter,
    full_count: u64,
}

impl StructuralDualSlope {
    /// Builds the controller for a fixed input-phase length
    /// `full_count`, using `width`-bit phase counters.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= full_count < 2^(width−1)` (the reference
    /// phase needs head-room for its 2× overflow limit).
    pub fn build(circuit: &mut Circuit, name: &str, full_count: u64, width: usize) -> Self {
        assert!(full_count >= 1, "full count must be positive");
        assert!(
            2 * full_count < (1 << width),
            "width too small for the 2x overflow limit"
        );
        let clk = circuit.input(&format!("{name}_clk"));
        let rst = circuit.input(&format!("{name}_rst"));
        let start = circuit.input(&format!("{name}_start"));
        let comparator = circuit.input(&format!("{name}_cmp"));

        // State register.
        let s0 = circuit.net(&format!("{name}_s0"));
        let s1 = circuit.net(&format!("{name}_s1"));
        let ns0 = circuit.net(&format!("{name}_ns0"));
        let ns1 = circuit.net(&format!("{name}_ns1"));
        circuit.gate(GateKind::Dff, &[ns0, clk, rst], s0, 1);
        circuit.gate(GateKind::Dff, &[ns1, clk, rst], s1, 1);
        let n_s0 = circuit.net(&format!("{name}_s0n"));
        let n_s1 = circuit.net(&format!("{name}_s1n"));
        circuit.gate(GateKind::Not, &[s0], n_s0, 1);
        circuit.gate(GateKind::Not, &[s1], n_s1, 1);

        // Phase decode.
        let idle = circuit.net(&format!("{name}_idle"));
        let integ = circuit.net(&format!("{name}_integ"));
        let refp = circuit.net(&format!("{name}_refp"));
        let done = circuit.net(&format!("{name}_done"));
        circuit.gate(GateKind::And, &[n_s1, n_s0], idle, 1);
        circuit.gate(GateKind::And, &[n_s1, s0], integ, 1);
        circuit.gate(GateKind::And, &[s1, n_s0], refp, 1);
        circuit.gate(GateKind::And, &[s1, s0], done, 1);

        // Phase counters on gated clocks. The gating state is registered,
        // so it is stable when the raw clock edge arrives. The reference
        // counter is additionally inhibited on the conversion-ending
        // cycle so the held code equals the number of reference clocks
        // *before* the comparator fired — matching the behavioural
        // controller exactly.
        let clk_in = circuit.net(&format!("{name}_clkin"));
        let clk_ref = circuit.net(&format!("{name}_clkref"));
        let end_ref = circuit.net(&format!("{name}_endref"));
        let n_endref = circuit.net(&format!("{name}_endrefn"));
        circuit.gate(GateKind::Not, &[end_ref], n_endref, 1);
        circuit.gate(GateKind::And, &[clk, integ], clk_in, 1);
        circuit.gate(GateKind::And, &[clk, refp, n_endref], clk_ref, 1);
        let counter_in = Counter::build(circuit, &format!("{name}_cin"), width);
        let counter_ref = Counter::build(circuit, &format!("{name}_cref"), width);
        // The counters' own clock/reset nets are driven by our logic.
        circuit.gate(GateKind::Buf, &[clk_in], counter_in.clk, 1);
        circuit.gate(GateKind::Buf, &[clk_ref], counter_ref.clk, 1);
        circuit.gate(GateKind::Buf, &[rst], counter_in.rst, 1);
        circuit.gate(GateKind::Buf, &[rst], counter_ref.rst, 1);

        // Terminal-count detectors: equality against constants, built as
        // an AND of bits XNORed with the constant's bits.
        // tc fires one count early: the transition clock itself still
        // increments the input counter, landing it exactly on full_count.
        let tc_in = equality_detector(
            circuit,
            &format!("{name}_tcin"),
            &counter_in.bits,
            full_count - 1,
        );
        let tc_ovf = equality_detector(
            circuit,
            &format!("{name}_tcovf"),
            &counter_ref.bits,
            2 * full_count,
        );

        // Next-state logic:
        //   s1' = (integ & tc_in) | refp | done
        //   s0' = (idle & start) | (integ & ~tc_in) | (refp & (cmp|ovf)) | done
        let t_a = circuit.net(&format!("{name}_ta"));
        circuit.gate(GateKind::And, &[integ, tc_in], t_a, 1);
        circuit.gate(GateKind::Or, &[t_a, refp, done], ns1, 1);

        let t_b = circuit.net(&format!("{name}_tb"));
        let t_c = circuit.net(&format!("{name}_tc"));
        let t_d = circuit.net(&format!("{name}_td"));
        let n_tcin = circuit.net(&format!("{name}_tcinn"));
        circuit.gate(GateKind::Not, &[tc_in], n_tcin, 1);
        circuit.gate(GateKind::And, &[idle, start], t_b, 1);
        circuit.gate(GateKind::And, &[integ, n_tcin], t_c, 1);
        circuit.gate(GateKind::Or, &[comparator, tc_ovf], end_ref, 1);
        circuit.gate(GateKind::And, &[refp, end_ref], t_d, 1);
        circuit.gate(GateKind::Or, &[t_b, t_c, t_d, done], ns0, 1);

        StructuralDualSlope {
            clk,
            rst,
            start,
            comparator,
            done,
            state: [s0, s1],
            counter_ref,
            counter_in,
            full_count,
        }
    }

    /// Applies and releases reset.
    pub fn reset(&self, circuit: &mut Circuit) {
        circuit.set_input(self.clk, Logic::Zero);
        circuit.set_input(self.start, Logic::Zero);
        circuit.set_input(self.comparator, Logic::Zero);
        circuit.set_input(self.rst, Logic::One);
        circuit.settle();
        circuit.set_input(self.rst, Logic::Zero);
        circuit.settle();
    }

    /// Raises the start request (sampled on the next clock in idle).
    pub fn request_start(&self, circuit: &mut Circuit) {
        circuit.set_input(self.start, Logic::One);
        circuit.settle();
    }

    /// One clock cycle with the given comparator level.
    ///
    /// The high phase (2 units) is kept shorter than the state-register
    /// plus decode delay (3 units), so the gated phase clocks cannot
    /// glitch when the state changes — the discrete-time equivalent of
    /// the glitch-free clock-gating cells a real gate array would use.
    pub fn step(&self, circuit: &mut Circuit, comparator: bool) {
        circuit.set_input(self.comparator, Logic::from_bool(comparator));
        circuit.settle();
        let t = circuit.now();
        circuit.set_input_at(t + 5, self.clk, Logic::One);
        circuit.set_input_at(t + 7, self.clk, Logic::Zero);
        circuit.run_until(t + 7);
        circuit.settle();
    }

    /// Decodes the present phase.
    pub fn phase(&self, circuit: &Circuit) -> DualSlopePhase {
        let s0 = circuit.value(self.state[0]).to_bool().unwrap_or(false);
        let s1 = circuit.value(self.state[1]).to_bool().unwrap_or(false);
        match (s1, s0) {
            (false, false) => DualSlopePhase::Idle,
            (false, true) => DualSlopePhase::IntegrateInput,
            (true, false) => DualSlopePhase::IntegrateReference,
            (true, true) => DualSlopePhase::Done,
        }
    }

    /// The conversion result (reference-phase count), meaningful at
    /// `Done`.
    pub fn result(&self, circuit: &Circuit) -> Option<u64> {
        self.counter_ref.read(circuit)
    }

    /// The input-phase count (diagnostic).
    pub fn input_count(&self, circuit: &Circuit) -> Option<u64> {
        self.counter_in.read(circuit)
    }

    /// The configured input-phase length.
    pub fn full_count(&self) -> u64 {
        self.full_count
    }
}

/// Builds `out = (bits == constant)` from XNOR/AND gates and returns the
/// output net.
fn equality_detector(circuit: &mut Circuit, name: &str, bits: &[NetId], constant: u64) -> NetId {
    // Constant nets, driven once.
    let one = circuit.net(&format!("{name}_one"));
    let zero = circuit.net(&format!("{name}_zero"));
    circuit.set_input(one, Logic::One);
    circuit.set_input(zero, Logic::Zero);

    let mut terms = Vec::with_capacity(bits.len());
    for (k, &bit) in bits.iter().enumerate() {
        let want = constant >> k & 1 == 1;
        let term = circuit.net(&format!("{name}_x{k}"));
        let cnet = if want { one } else { zero };
        circuit.gate(GateKind::Xnor, &[bit, cnet], term, 1);
        terms.push(term);
    }
    let out = circuit.net(&format!("{name}_eq"));
    if terms.len() == 1 {
        circuit.gate(GateKind::Buf, &[terms[0]], out, 1);
    } else {
        circuit.gate(GateKind::And, &terms, out, 1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fsm::DualSlopeController;

    fn run_structural(full_count: u64, trip_at: u64) -> (DualSlopePhase, Option<u64>) {
        let mut c = Circuit::new();
        let ctl = StructuralDualSlope::build(&mut c, "ds", full_count, 10);
        ctl.reset(&mut c);
        ctl.request_start(&mut c);
        let mut clocks = 0u64;
        let limit = 4 * full_count + 10;
        while ctl.phase(&c) != DualSlopePhase::Done && clocks < limit {
            let in_ref = ctl.phase(&c) == DualSlopePhase::IntegrateReference;
            let count = ctl.result(&c).unwrap_or(0);
            ctl.step(&mut c, in_ref && count >= trip_at);
            clocks += 1;
        }
        (ctl.phase(&c), ctl.result(&c))
    }

    fn run_behavioral(full_count: u64, trip_at: u64) -> Option<u64> {
        let mut ctl = DualSlopeController::new(full_count);
        ctl.start();
        for _ in 0..full_count {
            ctl.clock(false);
        }
        loop {
            let fire = ctl.counter() >= trip_at;
            if ctl.clock(fire) == DualSlopePhase::Done {
                return ctl.result();
            }
        }
    }

    #[test]
    fn structural_matches_behavioral_results() {
        for (full, trip) in [(8u64, 0u64), (8, 3), (8, 7), (20, 13), (20, 19)] {
            let (phase, got) = run_structural(full, trip);
            assert_eq!(phase, DualSlopePhase::Done, "full={full} trip={trip}");
            let want = run_behavioral(full, trip);
            assert_eq!(got, want, "full={full} trip={trip}");
        }
    }

    #[test]
    fn overflow_terminates_with_stuck_comparator() {
        let full = 8;
        let (phase, result) = run_structural(full, u64::MAX);
        assert_eq!(phase, DualSlopePhase::Done);
        assert_eq!(result, Some(2 * full));
    }

    #[test]
    fn stays_idle_without_start() {
        let mut c = Circuit::new();
        let ctl = StructuralDualSlope::build(&mut c, "ds", 8, 10);
        ctl.reset(&mut c);
        for _ in 0..5 {
            ctl.step(&mut c, false);
        }
        assert_eq!(ctl.phase(&c), DualSlopePhase::Idle);
        assert_eq!(ctl.result(&c), Some(0));
    }

    #[test]
    fn input_phase_counts_full_count_clocks() {
        let mut c = Circuit::new();
        let ctl = StructuralDualSlope::build(&mut c, "ds", 12, 10);
        ctl.reset(&mut c);
        ctl.request_start(&mut c);
        let mut clocks = 0;
        while ctl.phase(&c) != DualSlopePhase::IntegrateReference && clocks < 40 {
            ctl.step(&mut c, false);
            clocks += 1;
        }
        assert_eq!(ctl.input_count(&c), Some(12));
    }

    #[test]
    fn done_state_is_sticky() {
        let (phase, result) = run_structural(8, 2);
        assert_eq!(phase, DualSlopePhase::Done);
        let code = result.unwrap();
        // Clocking further in Done must not change the result.
        let mut c = Circuit::new();
        let ctl = StructuralDualSlope::build(&mut c, "ds", 8, 10);
        ctl.reset(&mut c);
        ctl.request_start(&mut c);
        for _ in 0..9 {
            ctl.step(&mut c, false);
        }
        for _ in 0..3 {
            ctl.step(&mut c, true);
        }
        let frozen = ctl.result(&c);
        for _ in 0..5 {
            ctl.step(&mut c, false);
        }
        assert_eq!(ctl.result(&c), frozen);
        let _ = code;
    }

    #[test]
    #[should_panic(expected = "width too small")]
    fn width_check() {
        let mut c = Circuit::new();
        let _ = StructuralDualSlope::build(&mut c, "ds", 300, 9);
    }
}
