//! Behavioural controllers used by the ADC macro and its BIST logic.
//!
//! These are clock-accurate state machines: the dual-slope conversion
//! controller that sequences the ADC's integrate/de-integrate phases, and
//! the output-code monotonicity checker described in the AT&T BIST
//! patent (DeWitt et al., US 5,132,685) that the paper adopts for initial
//! ADC testing.

/// Phase of a dual-slope conversion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DualSlopePhase {
    /// Waiting for a start request.
    Idle,
    /// Integrating the (unknown) input for a fixed number of counts.
    IntegrateInput,
    /// De-integrating with the reference until the comparator trips.
    IntegrateReference,
    /// Conversion complete; result latched.
    Done,
}

/// The dual-slope ADC control state machine.
///
/// Drives the conversion sequence: integrate the input for exactly
/// `full_count` clock cycles, then integrate the reference of opposite
/// polarity while counting until the comparator reports the integrator
/// has returned through its threshold. The count in the second phase is
/// the output code: `code = full_count · Vin / Vref`.
///
/// # Example
///
/// ```
/// use digisim::fsm::{DualSlopeController, DualSlopePhase};
///
/// let mut ctl = DualSlopeController::new(100);
/// ctl.start();
/// // Phase 1: 100 clocks of input integration.
/// for _ in 0..100 {
///     assert_eq!(ctl.phase(), DualSlopePhase::IntegrateInput);
///     ctl.clock(false);
/// }
/// // Phase 2: comparator trips after 42 clocks.
/// for _ in 0..42 {
///     assert_eq!(ctl.phase(), DualSlopePhase::IntegrateReference);
///     ctl.clock(false);
/// }
/// ctl.clock(true);
/// assert_eq!(ctl.phase(), DualSlopePhase::Done);
/// assert_eq!(ctl.result(), Some(42));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DualSlopeController {
    phase: DualSlopePhase,
    counter: u64,
    full_count: u64,
    max_count: u64,
    result: Option<u64>,
    overflowed: bool,
}

impl DualSlopeController {
    /// Creates a controller with the given fixed input-integration length
    /// (also used as the overflow limit for the reference phase, times
    /// two).
    ///
    /// # Panics
    ///
    /// Panics if `full_count` is zero.
    pub fn new(full_count: u64) -> Self {
        assert!(full_count > 0, "full count must be positive");
        DualSlopeController {
            phase: DualSlopePhase::Idle,
            counter: 0,
            full_count,
            max_count: full_count * 2,
            result: None,
            overflowed: false,
        }
    }

    /// Begins a conversion (from any phase).
    pub fn start(&mut self) {
        self.phase = DualSlopePhase::IntegrateInput;
        self.counter = 0;
        self.result = None;
        self.overflowed = false;
    }

    /// Current phase.
    pub fn phase(&self) -> DualSlopePhase {
        self.phase
    }

    /// Elapsed counts in the current phase.
    pub fn counter(&self) -> u64 {
        self.counter
    }

    /// The latched conversion result, if the conversion has completed.
    pub fn result(&self) -> Option<u64> {
        self.result
    }

    /// True if the reference phase ran past the overflow limit (input
    /// over-range or a stuck comparator — the "conversion process
    /// stopped" failure signature of control faults in the paper).
    pub fn overflowed(&self) -> bool {
        self.overflowed
    }

    /// Total clocks a conversion takes at worst (both phases), for
    /// conversion-time specification checks.
    pub fn worst_case_clocks(&self) -> u64 {
        self.full_count + self.max_count
    }

    /// Advances one clock. `comparator_high` is the comparator output:
    /// `true` once the integrator has crossed back through the threshold.
    ///
    /// Returns the phase after the clock edge.
    pub fn clock(&mut self, comparator_high: bool) -> DualSlopePhase {
        match self.phase {
            DualSlopePhase::Idle | DualSlopePhase::Done => {}
            DualSlopePhase::IntegrateInput => {
                self.counter += 1;
                if self.counter >= self.full_count {
                    self.phase = DualSlopePhase::IntegrateReference;
                    self.counter = 0;
                }
            }
            DualSlopePhase::IntegrateReference => {
                if comparator_high {
                    self.result = Some(self.counter);
                    self.phase = DualSlopePhase::Done;
                } else {
                    self.counter += 1;
                    if self.counter >= self.max_count {
                        self.result = Some(self.counter);
                        self.overflowed = true;
                        self.phase = DualSlopePhase::Done;
                    }
                }
            }
        }
        self.phase
    }
}

/// A single monotonicity violation observed by [`MonotonicityChecker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonotonicityViolation {
    /// Index of the offending sample.
    pub sample: usize,
    /// The previous code.
    pub previous: u64,
    /// The offending code.
    pub code: u64,
}

/// Monitors a stream of ADC output codes taken during a rising-ramp test
/// and records violations, following the AT&T BIST patent's scheme of a
/// ramp generator plus a state machine watching the output.
///
/// A violation is a code that *decreases*, or that jumps upward by more
/// than `max_step` (a large gap indicates missing codes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MonotonicityChecker {
    last: Option<u64>,
    samples: usize,
    max_step: u64,
    violations: Vec<MonotonicityViolation>,
}

impl MonotonicityChecker {
    /// Creates a checker tolerating upward jumps up to `max_step` codes.
    ///
    /// # Panics
    ///
    /// Panics if `max_step` is zero.
    pub fn new(max_step: u64) -> Self {
        assert!(max_step > 0, "max step must be positive");
        MonotonicityChecker {
            last: None,
            samples: 0,
            max_step,
            violations: Vec::new(),
        }
    }

    /// Observes the next output code.
    pub fn observe(&mut self, code: u64) {
        if let Some(prev) = self.last {
            let bad = code < prev || code - prev > self.max_step;
            if bad {
                self.violations.push(MonotonicityViolation {
                    sample: self.samples,
                    previous: prev,
                    code,
                });
            }
        }
        self.last = Some(code);
        self.samples += 1;
    }

    /// Observes a whole code sequence.
    pub fn observe_all<I: IntoIterator<Item = u64>>(&mut self, codes: I) {
        for c in codes {
            self.observe(c);
        }
    }

    /// True if no violations were recorded.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// The recorded violations.
    pub fn violations(&self) -> &[MonotonicityViolation] {
        &self.violations
    }

    /// Number of codes observed.
    pub fn samples(&self) -> usize {
        self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_sequence_and_result() {
        let mut ctl = DualSlopeController::new(10);
        assert_eq!(ctl.phase(), DualSlopePhase::Idle);
        ctl.clock(false); // idle ignores clocks
        assert_eq!(ctl.phase(), DualSlopePhase::Idle);
        ctl.start();
        for _ in 0..10 {
            ctl.clock(true); // comparator ignored during input phase
        }
        assert_eq!(ctl.phase(), DualSlopePhase::IntegrateReference);
        for _ in 0..7 {
            ctl.clock(false);
        }
        ctl.clock(true);
        assert_eq!(ctl.result(), Some(7));
        assert!(!ctl.overflowed());
    }

    #[test]
    fn zero_input_trips_immediately() {
        let mut ctl = DualSlopeController::new(5);
        ctl.start();
        for _ in 0..5 {
            ctl.clock(false);
        }
        ctl.clock(true);
        assert_eq!(ctl.result(), Some(0));
    }

    #[test]
    fn stuck_comparator_overflows() {
        let mut ctl = DualSlopeController::new(4);
        ctl.start();
        for _ in 0..4 {
            ctl.clock(false);
        }
        // Comparator never fires: overflow at 2 * full_count.
        for _ in 0..8 {
            assert_eq!(ctl.phase(), DualSlopePhase::IntegrateReference);
            ctl.clock(false);
        }
        assert_eq!(ctl.phase(), DualSlopePhase::Done);
        assert!(ctl.overflowed());
        assert_eq!(ctl.result(), Some(8));
    }

    #[test]
    fn restart_clears_state() {
        let mut ctl = DualSlopeController::new(3);
        ctl.start();
        for _ in 0..3 {
            ctl.clock(false);
        }
        ctl.clock(true);
        assert!(ctl.result().is_some());
        ctl.start();
        assert_eq!(ctl.result(), None);
        assert_eq!(ctl.phase(), DualSlopePhase::IntegrateInput);
    }

    #[test]
    fn worst_case_clock_budget() {
        let ctl = DualSlopeController::new(256);
        assert_eq!(ctl.worst_case_clocks(), 256 + 512);
    }

    #[test]
    fn monotonic_ramp_passes() {
        let mut chk = MonotonicityChecker::new(1);
        chk.observe_all(0..100);
        assert!(chk.passed());
        assert_eq!(chk.samples(), 100);
    }

    #[test]
    fn decreasing_code_flagged() {
        let mut chk = MonotonicityChecker::new(2);
        chk.observe_all([1u64, 2, 3, 2, 4]);
        assert!(!chk.passed());
        let v = chk.violations()[0];
        assert_eq!(v.sample, 3);
        assert_eq!(v.previous, 3);
        assert_eq!(v.code, 2);
    }

    #[test]
    fn missing_codes_flagged_by_step_limit() {
        let mut chk = MonotonicityChecker::new(1);
        chk.observe_all([1u64, 2, 5]);
        assert!(!chk.passed());
    }

    #[test]
    fn repeated_codes_allowed() {
        let mut chk = MonotonicityChecker::new(1);
        chk.observe_all([1u64, 1, 1, 2, 2]);
        assert!(chk.passed());
    }
}
