//! `digisim` — a compact event-driven digital logic simulator.
//!
//! The digital substrate of the `mixsig` workspace: the paper's on-chip
//! test structures include a counter, an output latch, control logic and
//! signature-compression registers, all of which are modelled here at
//! gate level.
//!
//! * [`logic`] — three-valued logic (`0`, `1`, `X`),
//! * [`circuit`] — gate-level netlists with an event-driven kernel
//!   (inertial delays, delta cycles, edge-triggered flip-flops),
//! * [`components`] — structural building blocks: counters, registers,
//!   shift/scan chains, LFSRs and MISRs assembled from gates,
//! * [`fsm`] — behavioural controllers used by the ADC macro: the
//!   dual-slope conversion control state machine and the ramp
//!   monotonicity checker of the AT&T BIST patent.
//!
//! # Example
//!
//! ```
//! use digisim::circuit::{Circuit, GateKind};
//! use digisim::logic::Logic;
//!
//! let mut c = Circuit::new();
//! let a = c.input("a");
//! let b = c.input("b");
//! let y = c.net("y");
//! c.gate(GateKind::And, &[a, b], y, 1);
//! c.set_input(a, Logic::One);
//! c.set_input(b, Logic::One);
//! c.run_until(10);
//! assert_eq!(c.value(y), Logic::One);
//! ```

pub mod circuit;
pub mod components;
pub mod fsm;
pub mod logic;
pub mod structural;
