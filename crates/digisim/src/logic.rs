//! Three-valued logic.

use std::fmt;

/// A logic value: `0`, `1` or unknown (`X`).
///
/// Unknowns propagate pessimistically: any operation whose result could
/// differ depending on the unknown yields `X`, while dominating inputs
/// (e.g. a `0` into an AND) resolve it.
///
/// # Example
///
/// ```
/// use digisim::logic::Logic;
///
/// assert_eq!(Logic::Zero.and(Logic::X), Logic::Zero); // 0 dominates
/// assert_eq!(Logic::One.and(Logic::X), Logic::X);
/// assert_eq!(Logic::One.or(Logic::X), Logic::One);    // 1 dominates
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Logic {
    /// Logic low.
    Zero,
    /// Logic high.
    One,
    /// Unknown / uninitialised.
    #[default]
    X,
}

impl Logic {
    /// Converts from a bool.
    pub fn from_bool(b: bool) -> Self {
        if b {
            Logic::One
        } else {
            Logic::Zero
        }
    }

    /// Returns `Some(bool)` for known values, `None` for `X`.
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Logic::Zero => Some(false),
            Logic::One => Some(true),
            Logic::X => None,
        }
    }

    /// True if the value is `0` or `1`.
    pub fn is_known(self) -> bool {
        self != Logic::X
    }

    /// Logical AND with X-propagation.
    pub fn and(self, other: Logic) -> Logic {
        match (self, other) {
            (Logic::Zero, _) | (_, Logic::Zero) => Logic::Zero,
            (Logic::One, Logic::One) => Logic::One,
            _ => Logic::X,
        }
    }

    /// Logical OR with X-propagation.
    pub fn or(self, other: Logic) -> Logic {
        match (self, other) {
            (Logic::One, _) | (_, Logic::One) => Logic::One,
            (Logic::Zero, Logic::Zero) => Logic::Zero,
            _ => Logic::X,
        }
    }

    /// Logical XOR with X-propagation.
    pub fn xor(self, other: Logic) -> Logic {
        match (self.to_bool(), other.to_bool()) {
            (Some(a), Some(b)) => Logic::from_bool(a != b),
            _ => Logic::X,
        }
    }

    /// Logical NOT with X-propagation (also available via the `!`
    /// operator).
    #[allow(clippy::should_implement_trait)] // `Not` is implemented below; the method reads better in gate code
    pub fn not(self) -> Logic {
        match self {
            Logic::Zero => Logic::One,
            Logic::One => Logic::Zero,
            Logic::X => Logic::X,
        }
    }
}

impl std::ops::Not for Logic {
    type Output = Logic;

    fn not(self) -> Logic {
        Logic::not(self)
    }
}

impl From<bool> for Logic {
    fn from(b: bool) -> Self {
        Logic::from_bool(b)
    }
}

impl fmt::Display for Logic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Logic::Zero => write!(f, "0"),
            Logic::One => write!(f, "1"),
            Logic::X => write!(f, "X"),
        }
    }
}

/// Packs a slice of logic values (LSB first) into an integer, returning
/// `None` if any bit is `X`.
pub fn to_word(bits: &[Logic]) -> Option<u64> {
    let mut word = 0u64;
    for (k, b) in bits.iter().enumerate() {
        match b.to_bool() {
            Some(true) => word |= 1 << k,
            Some(false) => {}
            None => return None,
        }
    }
    Some(word)
}

/// Unpacks the low `n` bits of `word` into logic values, LSB first.
pub fn from_word(word: u64, n: usize) -> Vec<Logic> {
    (0..n).map(|k| Logic::from_bool(word >> k & 1 == 1)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn and_truth_table() {
        use Logic::*;
        assert_eq!(Zero.and(Zero), Zero);
        assert_eq!(Zero.and(One), Zero);
        assert_eq!(One.and(One), One);
        assert_eq!(X.and(Zero), Zero);
        assert_eq!(X.and(One), X);
        assert_eq!(X.and(X), X);
    }

    #[test]
    fn or_truth_table() {
        use Logic::*;
        assert_eq!(Zero.or(Zero), Zero);
        assert_eq!(One.or(Zero), One);
        assert_eq!(X.or(One), One);
        assert_eq!(X.or(Zero), X);
    }

    #[test]
    fn xor_and_not() {
        use Logic::*;
        assert_eq!(One.xor(Zero), One);
        assert_eq!(One.xor(One), Zero);
        assert_eq!(One.xor(X), X);
        assert_eq!(X.not(), X);
        assert_eq!(Zero.not(), One);
    }

    #[test]
    fn word_packing_roundtrip() {
        let bits = from_word(0b1011, 4);
        assert_eq!(to_word(&bits), Some(0b1011));
    }

    #[test]
    fn word_packing_with_x_fails() {
        let bits = [Logic::One, Logic::X];
        assert_eq!(to_word(&bits), None);
    }

    #[test]
    fn default_is_unknown() {
        assert_eq!(Logic::default(), Logic::X);
    }

    #[test]
    fn display_values() {
        assert_eq!(Logic::Zero.to_string(), "0");
        assert_eq!(Logic::X.to_string(), "X");
    }
}
