//! Property-based tests for the digital substrate.

use digisim::circuit::Circuit;
use digisim::components::{Counter, Register, ShiftRegister, StructuralMisr};
use digisim::fsm::{DualSlopeController, DualSlopePhase, MonotonicityChecker};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn counter_counts_any_pulse_train(width in 2usize..7, pulses in 0u64..40) {
        let mut c = Circuit::new();
        let counter = Counter::build(&mut c, "cnt", width);
        counter.reset(&mut c);
        for _ in 0..pulses {
            counter.clock_pulse(&mut c, 5);
        }
        let modulus = 1u64 << width;
        prop_assert_eq!(counter.read(&c), Some(pulses % modulus));
    }

    #[test]
    fn register_roundtrips_any_word(width in 1usize..12, value in 0u64..4096) {
        let mut c = Circuit::new();
        let reg = Register::build(&mut c, "r", width);
        let masked = value & ((1 << width) - 1);
        reg.load(&mut c, masked);
        prop_assert_eq!(reg.read(&c), Some(masked));
    }

    #[test]
    fn shift_register_preserves_history(bits in proptest::collection::vec(any::<bool>(), 4..12)) {
        let n = bits.len();
        let mut c = Circuit::new();
        let sr = ShiftRegister::build(&mut c, "s", n);
        sr.scan_in(&mut c, &bits);
        // Stage k holds the bit shifted in (n-1-k) steps ago.
        let word = sr.read(&c).expect("all stages known");
        for (k, &b) in bits.iter().rev().enumerate() {
            prop_assert_eq!(word >> k & 1 == 1, b, "stage {}", k);
        }
    }

    #[test]
    fn structural_misr_is_order_sensitive(
        words in proptest::collection::vec(0u64..16, 2..12),
    ) {
        prop_assume!(words.windows(2).any(|w| w[0] != w[1]));
        let sig_of = |ws: &[u64]| {
            let mut c = Circuit::new();
            let m = StructuralMisr::build(&mut c, "m", 4, &[3, 1]);
            m.reset(&mut c);
            for &w in ws {
                m.absorb(&mut c, w & 0xF);
            }
            m.signature(&c).expect("signature known")
        };
        let forward = sig_of(&words);
        let mut reversed = words.clone();
        reversed.reverse();
        // Deterministic...
        prop_assert_eq!(forward, sig_of(&words));
        // ...and (for differing sequences) usually order-sensitive; we
        // only assert determinism plus sensitivity to a known corruption
        // to avoid rare aliasing flakes.
        let mut corrupted = words.clone();
        corrupted[0] ^= 0x1;
        prop_assert_ne!(forward, sig_of(&corrupted));
    }

    #[test]
    fn dual_slope_code_equals_comparator_trip_count(
        full in 4u64..200,
        trip in 0u64..200,
    ) {
        let trip = trip.min(2 * full - 1);
        let mut ctl = DualSlopeController::new(full);
        ctl.start();
        for _ in 0..full {
            ctl.clock(false);
        }
        prop_assert_eq!(ctl.phase(), DualSlopePhase::IntegrateReference);
        for _ in 0..trip {
            ctl.clock(false);
        }
        ctl.clock(true);
        prop_assert_eq!(ctl.result(), Some(trip));
        prop_assert!(!ctl.overflowed());
    }

    #[test]
    fn monotonicity_checker_accepts_sorted(
        mut codes in proptest::collection::vec(0u64..100, 1..30),
    ) {
        codes.sort_unstable();
        // Cap jumps at the checker's step limit.
        let mut chk = MonotonicityChecker::new(100);
        chk.observe_all(codes.iter().copied());
        prop_assert!(chk.passed());
    }

    #[test]
    fn monotonicity_checker_rejects_any_decrease(
        prefix in proptest::collection::vec(0u64..50, 1..10),
        drop in 1u64..20,
    ) {
        let mut codes: Vec<u64> = prefix.clone();
        codes.sort_unstable();
        let last = *codes.last().expect("non-empty") + drop;
        codes.push(last);
        codes.push(last - drop); // guaranteed decrease
        let mut chk = MonotonicityChecker::new(u64::MAX - 1);
        chk.observe_all(codes.iter().copied());
        prop_assert!(!chk.passed());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The gate-level dual-slope controller is cycle-equivalent to the
    /// behavioural FSM for arbitrary phase lengths and trip points.
    #[test]
    fn structural_controller_matches_behavioral(
        full in 2u64..40,
        trip_frac in 0.0..1.0f64,
    ) {
        use digisim::structural::StructuralDualSlope;
        use digisim::fsm::DualSlopeController;

        let trip = ((2 * full - 1) as f64 * trip_frac) as u64;

        // Behavioural reference.
        let mut beh = DualSlopeController::new(full);
        beh.start();
        for _ in 0..full {
            beh.clock(false);
        }
        let behavioral = loop {
            let fire = beh.counter() >= trip;
            if beh.clock(fire) == DualSlopePhase::Done {
                break beh.result();
            }
        };

        // Structural.
        let mut c = Circuit::new();
        let ctl = StructuralDualSlope::build(&mut c, "ds", full, 8);
        ctl.reset(&mut c);
        ctl.request_start(&mut c);
        let limit = 4 * full + 10;
        let mut clocks = 0;
        while ctl.phase(&c) != DualSlopePhase::Done && clocks < limit {
            let in_ref = ctl.phase(&c) == DualSlopePhase::IntegrateReference;
            let count = ctl.result(&c).unwrap_or(0);
            ctl.step(&mut c, in_ref && count >= trip);
            clocks += 1;
        }
        prop_assert_eq!(ctl.phase(&c), DualSlopePhase::Done, "did not finish");
        prop_assert_eq!(ctl.result(&c), behavioral);
    }
}
