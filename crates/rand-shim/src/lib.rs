//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships a minimal, dependency-free implementation of exactly the API
//! surface it uses: [`Rng::gen_range`] over numeric ranges,
//! [`rngs::StdRng`] and [`SeedableRng::seed_from_u64`]. The generator is
//! a splitmix64-seeded xorshift64*, which is deterministic, fast and
//! statistically adequate for Monte-Carlo process sampling.

use std::ops::Range;

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Sized {
    /// Draws a uniform sample in `range` from `rng`.
    fn sample_range<R: RngCore + ?Sized>(range: &Range<Self>, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(range: &Range<Self>, rng: &mut R) -> Self {
                assert!(range.start < range.end, "empty range");
                let span = (range.end - range.start) as u64;
                range.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(range: &Range<Self>, rng: &mut R) -> Self {
        assert!(range.start < range.end, "empty range");
        // 53 random mantissa bits -> uniform in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        range.start + unit * (range.end - range.start)
    }
}

/// The raw generator interface.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling helpers, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(&range, self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xorshift64* generator seeded via splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 whitening so that small seeds diverge quickly.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            StdRng {
                state: (z ^ (z >> 31)) | 1,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xorshift64*
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0.0..1.0f64), b.gen_range(0.0..1.0f64));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(1e-12..1.0f64);
            assert!((1e-12..1.0).contains(&v));
            let k = rng.gen_range(3u64..17);
            assert!((3..17).contains(&k));
        }
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0f64)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
