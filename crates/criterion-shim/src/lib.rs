//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships a minimal, dependency-free benchmark harness covering the API
//! surface its benches use: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`], [`BenchmarkId`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! There is no warm-up, outlier rejection or statistical analysis: each
//! benchmark runs `sample_size` timed iterations and prints the mean.
//! That is enough to keep `cargo bench` compiling and give rough numbers.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque identity function preventing the optimiser from deleting a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 10,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, f: F) {
        run_one(id, 10, f);
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark in the group runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, f: F) {
        run_one(id, self.sample_size, f);
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) {
        run_one(id, self.sample_size, |b| f(b, input));
    }

    /// Ends the group (a no-op in this shim, kept for API parity).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: impl fmt::Display, samples: usize, mut f: F) {
    let mut bencher = Bencher {
        elapsed: Duration::ZERO,
        iterations: 0,
    };
    for _ in 0..samples {
        f(&mut bencher);
    }
    let per_iter = if bencher.iterations > 0 {
        bencher.elapsed / bencher.iterations as u32
    } else {
        Duration::ZERO
    };
    println!(
        "  {id}: {:.3} ms/iter ({} iters)",
        per_iter.as_secs_f64() * 1e3,
        bencher.iterations
    );
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Times one execution of `routine`, accumulating into the sample.
    pub fn iter<T, R: FnMut() -> T>(&mut self, mut routine: R) {
        let start = Instant::now();
        let out = routine();
        self.elapsed += start.elapsed();
        self.iterations += 1;
        drop(black_box(out));
    }
}

/// A benchmark name with a parameter attached, e.g. `resolution/8`.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{name}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// Declares a group of benchmark functions (mirrors `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point (mirrors `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.bench_with_input(BenchmarkId::new("with_input", 4), &4usize, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
        assert_eq!(runs, 3);
    }
}
