//! Scan-based serial test access.
//!
//! The paper's research background describes the standard mixed-signal
//! DfT of its era: "The digital section includes scan architecture, so
//! that the test data for the analogue section can be scanned in via
//! scan shift registers and the response monitored and captured on the
//! serial test bus via ADC macros." This module models that test bus at
//! gate level: a command scan chain selects the analogue stimulus, the
//! conversion result is captured in a latch bank, and the response is
//! shifted back out serially.

use digisim::circuit::Circuit;
use digisim::components::{Register, ShiftRegister, StructuralMisr};
use digisim::logic::Logic;

use crate::adc::{AdcConverter, DualSlopeAdc};
use crate::bist::StepGenerator;

/// The serial test-access port around the ADC macro.
///
/// # Example
///
/// ```
/// use msbist::adc::{AdcConverter, DualSlopeAdc};
/// use msbist::bist::scan_access::SerialTestBus;
///
/// let mut bus = SerialTestBus::new();
/// // Select step level 4 (1.8 V), run a conversion, read it back.
/// bus.scan_in_command(4);
/// let adc = DualSlopeAdc::ideal();
/// bus.execute(&adc);
/// assert_eq!(bus.scan_out_result(), adc.convert(1.8));
/// ```
#[derive(Debug)]
pub struct SerialTestBus {
    circuit: Circuit,
    command: ShiftRegister,
    result: Register,
    /// Gate-level response analyser: every captured result is absorbed
    /// so a whole session compresses to one signature on-chip.
    analyzer: StructuralMisr,
    generator: StepGenerator,
    result_bits: usize,
}

impl SerialTestBus {
    /// Command-register width: addresses up to 8 stimulus levels.
    pub const COMMAND_BITS: usize = 3;

    /// Builds the test bus with the paper's step generator as the
    /// analogue stimulus source and a 9-bit result latch.
    pub fn new() -> Self {
        let mut circuit = Circuit::new();
        let command = ShiftRegister::build(&mut circuit, "cmd", Self::COMMAND_BITS);
        let result_bits = 9;
        let result = Register::build(&mut circuit, "res", result_bits);
        let analyzer = StructuralMisr::build(&mut circuit, "sig", result_bits, &[8, 4]);
        let mut bus = SerialTestBus {
            circuit,
            command,
            result,
            analyzer,
            generator: StepGenerator::paper(),
            result_bits,
        };
        bus.analyzer.reset(&mut bus.circuit);
        bus
    }

    /// Scans a stimulus-level index into the command chain, LSB last
    /// (so the LSB ends in stage 0).
    pub fn scan_in_command(&mut self, level_index: u8) {
        for k in (0..Self::COMMAND_BITS).rev() {
            self.command
                .shift_in(&mut self.circuit, level_index >> k & 1 == 1);
        }
    }

    /// The stimulus-level index currently held in the command chain,
    /// `None` until a full command has been scanned in.
    pub fn command_value(&self) -> Option<u8> {
        // Stage 0 holds the most recently shifted bit = LSB.
        self.command.read(&self.circuit).map(|w| w as u8)
    }

    /// Executes the selected test: routes the commanded step level to
    /// the ADC, converts, and latches the code into the result register.
    ///
    /// Out-of-range commands select the highest level (the analogue
    /// multiplexer saturates).
    ///
    /// # Panics
    ///
    /// Panics if no command has been scanned in.
    pub fn execute(&mut self, adc: &DualSlopeAdc) {
        let idx = self
            .command_value()
            .expect("scan a command in before executing") as usize;
        let idx = idx.min(self.generator.levels().len() - 1);
        let vin = self.generator.level(idx);
        let code = adc.convert(vin);
        self.result.load(&mut self.circuit, code);
        self.analyzer.absorb(&mut self.circuit, code);
    }

    /// The gate-level session signature: the MISR compaction of every
    /// result executed since the last reset.
    pub fn response_signature(&self) -> Option<u64> {
        self.analyzer.signature(&self.circuit)
    }

    /// Resets the response analyser for a new session.
    pub fn reset_signature(&mut self) {
        self.analyzer.reset(&mut self.circuit);
    }

    /// Reads the captured result in parallel (as the on-chip comparator
    /// would).
    pub fn result_value(&self) -> Option<u64> {
        self.result.read(&self.circuit)
    }

    /// Shifts the captured result out serially, reconstructing the code
    /// (models the tester reading the serial test bus).
    ///
    /// # Panics
    ///
    /// Panics if no result has been captured.
    pub fn scan_out_result(&mut self) -> u64 {
        // The result register is parallel-out; a production scan path
        // would mux it onto the chain. Model the serial read by sampling
        // each latch output in turn.
        let word = self
            .result_value()
            .expect("execute a test before scanning out");
        // Re-serialise through the command chain to exercise the serial
        // path end to end: shift the word through and rebuild it.
        let mut rebuilt = 0u64;
        for k in 0..self.result_bits {
            let bit = word >> k & 1 == 1;
            self.command.shift_in(&mut self.circuit, bit);
            let observed = self.circuit.value(self.command.stages[0]);
            if observed == Logic::One {
                rebuilt |= 1 << k;
            }
        }
        rebuilt
    }

    /// Runs the complete scan-test session: every generator level is
    /// commanded, executed and read back; returns `(level, code)` pairs.
    pub fn run_session(&mut self, adc: &DualSlopeAdc) -> Vec<(f64, u64)> {
        (0..self.generator.levels().len())
            .map(|idx| {
                self.scan_in_command(idx as u8);
                self.execute(adc);
                let code = self.scan_out_result();
                (self.generator.level(idx), code)
            })
            .collect()
    }

    /// Gate count of the digital test-access structures (scan chain,
    /// result latch and response analyser), for overhead accounting.
    pub fn gate_count(&self) -> usize {
        self.circuit.gate_count()
    }
}

impl Default for SerialTestBus {
    fn default() -> Self {
        SerialTestBus::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_scan_roundtrip() {
        let mut bus = SerialTestBus::new();
        for idx in 0..6u8 {
            bus.scan_in_command(idx);
            assert_eq!(bus.command_value(), Some(idx), "command {idx}");
        }
    }

    #[test]
    fn execute_latches_the_conversion() {
        let mut bus = SerialTestBus::new();
        let adc = DualSlopeAdc::ideal();
        bus.scan_in_command(5); // 2.5 V
        bus.execute(&adc);
        assert_eq!(bus.result_value(), Some(adc.convert(2.5)));
    }

    #[test]
    fn serial_readback_matches_parallel() {
        let mut bus = SerialTestBus::new();
        let adc = DualSlopeAdc::paper_measured();
        bus.scan_in_command(3);
        bus.execute(&adc);
        let parallel = bus.result_value().unwrap();
        assert_eq!(bus.scan_out_result(), parallel);
    }

    #[test]
    fn full_session_matches_direct_conversions() {
        let mut bus = SerialTestBus::new();
        let adc = DualSlopeAdc::paper_measured();
        let session = bus.run_session(&adc);
        assert_eq!(session.len(), 6);
        for (level, code) in session {
            assert_eq!(code, adc.convert(level), "level {level}");
        }
    }

    #[test]
    fn out_of_range_command_saturates() {
        let mut bus = SerialTestBus::new();
        let adc = DualSlopeAdc::ideal();
        bus.scan_in_command(7);
        bus.execute(&adc);
        assert_eq!(bus.result_value(), Some(adc.convert(2.5)));
    }

    #[test]
    fn structures_cost_gates() {
        let bus = SerialTestBus::new();
        // 3 scan stages + 9 latch DFFs + the 9-stage MISR (one XOR and
        // one DFF per stage plus the feedback XOR).
        assert!(bus.gate_count() > 25, "{}", bus.gate_count());
    }

    #[test]
    fn session_signature_is_deterministic_and_sensitive() {
        let run_session_sig = |adc: &DualSlopeAdc| {
            let mut bus = SerialTestBus::new();
            bus.run_session(adc);
            bus.response_signature().expect("signature known")
        };
        let a = run_session_sig(&DualSlopeAdc::ideal());
        let b = run_session_sig(&DualSlopeAdc::ideal());
        assert_eq!(a, b);
        // A grossly faulty device produces a different signature.
        let faulty = DualSlopeAdc::with_errors(crate::adc::AdcErrorModel {
            gain_error: 0.3,
            ..crate::adc::AdcErrorModel::none()
        });
        assert_ne!(a, run_session_sig(&faulty));
    }

    #[test]
    fn signature_reset_restores_seed() {
        let mut bus = SerialTestBus::new();
        let seed = bus.response_signature();
        bus.scan_in_command(2);
        bus.execute(&DualSlopeAdc::ideal());
        assert_ne!(bus.response_signature(), seed);
        bus.reset_signature();
        assert_eq!(bus.response_signature(), seed);
    }
}
