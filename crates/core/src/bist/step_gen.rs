//! The on-chip DC step input generator macro.
//!
//! A resistor-string DAC tapped at six levels; the paper's macro
//! "produced voltage steps of 0, 0.59, 0.96, 1.41, 1.8 and 2.5 volts".

use anasim::netlist::{Netlist, NodeId};
use anasim::source::SourceWaveform;
use macrolib::process::ProcessParams;

/// The six step levels the paper's generator produces, in volts.
pub const PAPER_STEP_LEVELS: [f64; 6] = [0.0, 0.59, 0.96, 1.41, 1.8, 2.5];

/// The on-chip step generator macro.
///
/// # Example
///
/// ```
/// use msbist::bist::StepGenerator;
///
/// let sg = StepGenerator::paper();
/// assert_eq!(sg.levels().len(), 6);
/// assert_eq!(sg.level(5), 2.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StepGenerator {
    levels: Vec<f64>,
    dwell: f64,
}

impl StepGenerator {
    /// The paper's generator: six levels, one conversion slot each.
    pub fn paper() -> Self {
        StepGenerator {
            levels: PAPER_STEP_LEVELS.to_vec(),
            dwell: 10e-3,
        }
    }

    /// A generator with custom levels and per-level dwell time.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is empty or `dwell` is not positive.
    pub fn new(levels: Vec<f64>, dwell: f64) -> Self {
        assert!(!levels.is_empty(), "need at least one level");
        assert!(dwell > 0.0, "dwell must be positive");
        StepGenerator { levels, dwell }
    }

    /// The step levels in application order.
    pub fn levels(&self) -> &[f64] {
        &self.levels
    }

    /// A single level.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn level(&self, index: usize) -> f64 {
        self.levels[index]
    }

    /// Time each level is held, seconds.
    pub fn dwell(&self) -> f64 {
        self.dwell
    }

    /// The staircase waveform the macro drives onto the ADC input.
    pub fn waveform(&self) -> SourceWaveform {
        let mut points = Vec::with_capacity(self.levels.len() * 2);
        for (k, &v) in self.levels.iter().enumerate() {
            let t0 = k as f64 * self.dwell;
            points.push((t0, v));
            points.push(((k + 1) as f64 * self.dwell - 1e-9, v));
        }
        SourceWaveform::Pwl(points)
    }

    /// Builds the generator as circuit hardware: a resistor-string DAC
    /// between ground and a 2.5 V reference, with one tap node per
    /// level. Returns the tap nodes in level order.
    ///
    /// This is the "available low-cost analogue CMOS macro" realisation;
    /// its transistor/element cost feeds the overhead accounting.
    pub fn build_resistor_string(
        &self,
        netlist: &mut Netlist,
        prefix: &str,
        process: &ProcessParams,
    ) -> Vec<NodeId> {
        let gnd = Netlist::GROUND;
        let vtop = *self
            .levels
            .iter()
            .last()
            .expect("at least one level");
        let top = netlist.node(&format!("{prefix}:top"));
        netlist.vsource(&format!("{prefix}:VREF"), top, gnd, SourceWaveform::dc(vtop));

        // Segment resistances proportional to the level gaps, on a
        // 10 kΩ-total string (scaled by the die's resistor corner; taps
        // are ratiometric, so the levels are process-insensitive).
        let total_r = process.resistor(10e3);
        let mut taps = Vec::with_capacity(self.levels.len());
        let mut below = gnd;
        let mut v_below = 0.0;
        for (k, &v) in self.levels.iter().enumerate() {
            let node = if v == 0.0 {
                gnd
            } else if (v - vtop).abs() < 1e-12 {
                top
            } else {
                netlist.node(&format!("{prefix}:tap{k}"))
            };
            if node != gnd && node != top {
                let r = total_r * (v - v_below) / vtop;
                netlist.resistor(&format!("{prefix}:R{k}"), below, node, r.max(1.0));
                below = node;
                v_below = v;
            }
            taps.push(node);
        }
        // Final segment up to the reference.
        if v_below < vtop {
            let r = total_r * (vtop - v_below) / vtop;
            netlist.resistor(&format!("{prefix}:Rtop"), below, top, r.max(1.0));
        }
        taps
    }
}

impl Default for StepGenerator {
    fn default() -> Self {
        StepGenerator::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anasim::dc::dc_operating_point;

    #[test]
    fn paper_levels_are_the_published_six() {
        let sg = StepGenerator::paper();
        assert_eq!(sg.levels(), &[0.0, 0.59, 0.96, 1.41, 1.8, 2.5]);
    }

    #[test]
    fn waveform_steps_through_levels() {
        let sg = StepGenerator::new(vec![1.0, 2.0, 3.0], 1e-3);
        let w = sg.waveform();
        assert_eq!(w.value_at(0.5e-3), 1.0);
        assert_eq!(w.value_at(1.5e-3), 2.0);
        assert_eq!(w.value_at(2.5e-3), 3.0);
    }

    #[test]
    fn resistor_string_taps_hit_levels() {
        let sg = StepGenerator::paper();
        let mut nl = Netlist::new();
        let taps = sg.build_resistor_string(&mut nl, "sg", &ProcessParams::nominal());
        let op = dc_operating_point(&nl).unwrap();
        for (k, &tap) in taps.iter().enumerate() {
            let v = op.voltage(tap);
            assert!(
                (v - sg.level(k)).abs() < 1e-3,
                "tap {k}: {v} vs {}",
                sg.level(k)
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn empty_levels_rejected() {
        let _ = StepGenerator::new(vec![], 1.0);
    }
}
