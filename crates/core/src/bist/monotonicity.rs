//! The ramp-based monotonicity BIST of the AT&T patent.
//!
//! The paper adopts US patent 5,132,685 (DeWitt, Gross & Ramachandran,
//! for AT&T Bell Labs) for initial ADC testing: "built-in self test
//! circuits ... generate a ramp voltage to test the monotonicity of an
//! ADC, whilst a state machine monitors the output." This module wires
//! the BIST ramp generator to a converter and the gate-level-modelled
//! monitoring state machine ([`digisim::fsm::MonotonicityChecker`])
//! watches the code stream.

use digisim::fsm::{MonotonicityChecker, MonotonicityViolation};

use crate::adc::AdcConverter;
use crate::bist::RampGenerator;

/// Result of the monotonicity BIST.
#[derive(Debug, Clone, PartialEq)]
pub struct MonotonicityReport {
    /// Number of conversions performed along the ramp.
    pub samples: usize,
    /// Violations the state machine flagged.
    pub violations: Vec<MonotonicityViolation>,
}

impl MonotonicityReport {
    /// True if no violations occurred.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Runs the patent's test: converts `samples` points along the BIST
/// ramp and feeds every output code to the monitoring state machine.
///
/// `max_step` bounds the upward code jump the monitor tolerates between
/// consecutive conversions; for a ramp of `span` codes sampled
/// `samples` times the natural choice is `ceil(span/samples) + 1`.
///
/// # Panics
///
/// Panics if `samples < 2`.
pub fn monotonicity_test<A: AdcConverter>(
    adc: &A,
    ramp: &RampGenerator,
    samples: usize,
    max_step: u64,
) -> MonotonicityReport {
    assert!(samples >= 2, "need at least two ramp samples");
    let mut checker = MonotonicityChecker::new(max_step);
    for k in 0..samples {
        let t = ramp.duration() * k as f64 / (samples - 1) as f64;
        checker.observe(adc.convert(ramp.value_at(t)));
    }
    MonotonicityReport {
        samples: checker.samples(),
        violations: checker.violations().to_vec(),
    }
}

/// Convenience: the paper's configuration — the 0→2.5 V BIST ramp
/// sampled densely enough that each step moves at most a few codes.
pub fn paper_monotonicity_test<A: AdcConverter>(adc: &A) -> MonotonicityReport {
    let ramp = RampGenerator::paper();
    let samples = 500; // ~0.5 code per step at 250 codes full scale
    monotonicity_test(adc, &ramp, samples, 3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adc::{AdcErrorModel, DualSlopeAdc};

    #[test]
    fn ideal_adc_is_monotone() {
        let report = paper_monotonicity_test(&DualSlopeAdc::ideal());
        assert!(report.passed(), "{:?}", report.violations);
        assert_eq!(report.samples, 500);
    }

    #[test]
    fn paper_macro_passes_monotonicity_despite_failing_dnl() {
        // The decisive subtlety of the paper's story: the measured
        // macro's 0.85 LSB ripple swings the DNL past 1 LSB, but the
        // transfer stays monotone (the ripple's slope never exceeds
        // 1 LSB/code) — so the patent's quick monotonicity BIST passes
        // the very device the full characterisation rejects.
        let report = paper_monotonicity_test(&DualSlopeAdc::paper_measured());
        assert!(report.passed(), "{:?}", report.violations);
    }

    #[test]
    fn smooth_errors_stay_monotone() {
        let adc = DualSlopeAdc::with_errors(AdcErrorModel {
            offset_v: 0.003,
            gain_error: -0.01,
            leak_per_s: 10.0,
            ..AdcErrorModel::none()
        });
        let report = paper_monotonicity_test(&adc);
        assert!(report.passed(), "{:?}", report.violations);
    }

    #[test]
    fn violation_positions_point_at_the_ripple_period() {
        let adc = DualSlopeAdc::with_errors(AdcErrorModel {
            ripple_v: 0.02,
            ripple_period_codes: 10.0,
            ..AdcErrorModel::none()
        });
        let report = paper_monotonicity_test(&adc);
        assert!(report.violations.len() > 3);
        // Violations recur roughly every ripple period (10 codes).
        let codes: Vec<u64> = report.violations.iter().map(|v| v.code).collect();
        let gaps: Vec<i64> = codes
            .windows(2)
            .map(|w| w[1] as i64 - w[0] as i64)
            .filter(|&g| g > 2)
            .collect();
        let mean_gap = gaps.iter().sum::<i64>() as f64 / gaps.len().max(1) as f64;
        assert!(
            (6.0..14.0).contains(&mean_gap),
            "mean violation spacing {mean_gap}"
        );
    }

    #[test]
    fn coarse_sampling_uses_larger_step_budget() {
        // 50 samples over 250 codes: ~5 codes per step needs max_step 6.
        let ramp = RampGenerator::paper();
        let report = monotonicity_test(&DualSlopeAdc::ideal(), &ramp, 50, 7);
        assert!(report.passed(), "{:?}", report.violations);
    }
}
