//! The three quick on-chip tests and the batch report.
//!
//! The paper's testing macros enable "a quick check of the ADC
//! operation" in three ranges:
//!
//! * **analogue**: step inputs applied to the integrator, fall times
//!   measured (0 V → 2.6 ms down to 2.5 V → 0.1 ms),
//! * **digital**: conversion timing against the 5.6 ms specification at
//!   the 100 kHz recommended clock, 10 mV per output code,
//! * **compressed**: a digital signature over the step-response codes
//!   plus the 2-bit analogue signature from the DC level sensor during a
//!   ramped input.
//!
//! A batch run across simulated dies reproduces the paper's result that
//! all ten fabricated devices passed all three tests.

use anasim::AnalysisError;
use sigproc::signature::Misr;

use crate::adc::{AdcConverter, DualSlopeAdc};
use crate::bist::{DcLevelSensor, RampGenerator, StepGenerator};

/// Pass/fail limits for the quick tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuickTestLimits {
    /// Maximum conversion time, seconds (paper: 5.6 ms).
    pub max_conversion_time: f64,
    /// Relative tolerance on measured step fall times against the
    /// nominal law.
    pub fall_time_rel_tol: f64,
    /// Absolute fall-time slack, seconds (dominates at small levels).
    pub fall_time_abs_tol: f64,
    /// Expected 2-bit analogue signature during the ramp test.
    pub analog_expected_code: u8,
    /// Reference digital signature; `None` on the golden (reference)
    /// run.
    pub misr_reference: Option<u16>,
}

impl QuickTestLimits {
    /// The paper's limits.
    pub fn paper() -> Self {
        QuickTestLimits {
            max_conversion_time: 5.6e-3,
            fall_time_rel_tol: 0.25,
            fall_time_abs_tol: 0.15e-3,
            analog_expected_code: 0b11,
            misr_reference: None,
        }
    }

    /// The same limits with a reference signature for comparison runs.
    pub fn with_reference(mut self, signature: u16) -> Self {
        self.misr_reference = Some(signature);
        self
    }
}

impl Default for QuickTestLimits {
    fn default() -> Self {
        QuickTestLimits::paper()
    }
}

/// The nominal fall-time law of the macro: the complement architecture
/// gives `t_fall = (v_span + margin − vin) · T1 / v_span`, i.e. 2.6 ms
/// at 0 V falling 1 ms/V to 0.1 ms at 2.5 V.
pub fn nominal_fall_time(vin: f64) -> f64 {
    (2.5 + 0.1 - vin) * 1e-3
}

/// One step-level measurement of the analogue test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepMeasurement {
    /// Applied step level, volts.
    pub level: f64,
    /// Measured integrator fall time, seconds (`None` if the
    /// measurement failed).
    pub fall_time: Option<f64>,
    /// Nominal fall time for this level.
    pub expected: f64,
}

/// Outcome of the analogue step test.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalogStepOutcome {
    /// Per-level measurements.
    pub measurements: Vec<StepMeasurement>,
    /// True if every level fell within tolerance.
    pub passed: bool,
}

/// Runs the analogue step test: applies each generator level to the
/// integrator via `fall_time` (circuit- or model-backed) and checks the
/// measured fall times against the nominal law.
pub fn analog_step_test<F>(
    generator: &StepGenerator,
    limits: &QuickTestLimits,
    mut fall_time: F,
) -> AnalogStepOutcome
where
    F: FnMut(f64) -> Result<f64, AnalysisError>,
{
    let mut passed = true;
    let measurements = generator
        .levels()
        .iter()
        .map(|&level| {
            let expected = nominal_fall_time(level);
            let measured = fall_time(level).ok();
            let ok = measured.is_some_and(|m| {
                (m - expected).abs()
                    <= limits.fall_time_abs_tol + limits.fall_time_rel_tol * expected
            });
            passed &= ok;
            StepMeasurement {
                level,
                fall_time: measured,
                expected,
            }
        })
        .collect();
    AnalogStepOutcome { measurements, passed }
}

/// Outcome of the digital timing test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DigitalOutcome {
    /// Worst conversion time observed, seconds.
    pub max_conversion_time: f64,
    /// Input step per output code, volts (paper: 10 mV).
    pub volts_per_code: f64,
    /// True if timing and resolution are in specification.
    pub passed: bool,
}

/// Runs the digital test on a converter: worst-case conversion time over
/// the step levels, and the volts-per-code resolution check.
pub fn digital_test<A: AdcConverter>(
    adc: &A,
    generator: &StepGenerator,
    limits: &QuickTestLimits,
) -> DigitalOutcome {
    let max_conversion_time = generator
        .levels()
        .iter()
        .map(|&v| adc.conversion_time(v))
        .fold(0.0, f64::max);
    let volts_per_code = adc.lsb();
    let passed = max_conversion_time <= limits.max_conversion_time
        && (volts_per_code - 0.010).abs() < 0.002;
    DigitalOutcome {
        max_conversion_time,
        volts_per_code,
        passed,
    }
}

/// Outcome of the compressed test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompressedOutcome {
    /// MISR signature over the step and ramp output codes.
    pub digital_signature: u16,
    /// 2-bit analogue signature from the DC level sensor.
    pub analog_code: u8,
    /// True if both signatures match the expectation.
    pub passed: bool,
}

/// Runs the compressed test: converts the consecutive DC steps and the
/// ramp samples, compacts the codes in a MISR, and takes the level
/// sensor's 2-bit code of the maximum integrator voltage during the
/// ramp.
pub fn compressed_test(
    adc: &DualSlopeAdc,
    generator: &StepGenerator,
    ramp: &RampGenerator,
    sensor: &DcLevelSensor,
    limits: &QuickTestLimits,
) -> CompressedOutcome {
    // The BIST stores design-time expected codes and compacts the
    // *windowed deviation* from them: a device within ±4 codes of the
    // design at every sample produces the constant golden signature,
    // while a fault that moves any code further lands in a different
    // window and corrupts it. This is the hardware equivalent of the
    // paper's "expected results on all chips" comparison, tolerant to
    // die-to-die wobble but sensitive to catastrophic failure.
    const TOL: i64 = 4;
    let design = DualSlopeAdc::paper_measured();
    let window = |code: u64, expected: u64| -> u16 {
        let d = code as i64 - expected as i64;
        (d + TOL).div_euclid(2 * TOL + 1) as u16
    };
    let mut misr = Misr::new();
    for &level in generator.levels() {
        misr.absorb(window(adc.convert(level), design.convert(level)));
    }
    let mut max_integrator = f64::NEG_INFINITY;
    for t in ramp.sample_times() {
        let vin = ramp.value_at(t);
        misr.absorb(window(adc.convert(vin), design.convert(vin)));
        // Integrator output rides on the 2.5 V analogue ground.
        max_integrator = max_integrator.max(2.5 + adc.integrator_peak(vin));
    }
    let digital_signature = misr.signature();
    let analog_code = sensor.encode(max_integrator.min(5.0));

    let misr_ok = limits
        .misr_reference
        .is_none_or(|expected| expected == digital_signature);
    let passed = misr_ok && analog_code == limits.analog_expected_code;
    CompressedOutcome {
        digital_signature,
        analog_code,
        passed,
    }
}

/// Combined report of the three quick tests on one device.
#[derive(Debug, Clone, PartialEq)]
pub struct QuickTestReport {
    /// Analogue step-test outcome.
    pub analog: AnalogStepOutcome,
    /// Digital timing outcome.
    pub digital: DigitalOutcome,
    /// Compressed signature outcome.
    pub compressed: CompressedOutcome,
}

impl QuickTestReport {
    /// True if all three tests passed.
    pub fn passed(&self) -> bool {
        self.analog.passed && self.digital.passed && self.compressed.passed
    }
}

/// Runs all three quick tests on a behavioural device, using the
/// macro's nominal fall-time law perturbed by the device's own gain and
/// offset errors as the analogue measurement (the circuit-level path is
/// exercised separately through [`crate::adc::circuit::CircuitAdc`]).
pub fn run_quick_tests(adc: &DualSlopeAdc, limits: &QuickTestLimits) -> QuickTestReport {
    let generator = StepGenerator::paper();
    let ramp = RampGenerator::paper();
    let sensor = DcLevelSensor::paper();
    let errors = *adc.errors();
    let analog = analog_step_test(&generator, limits, |vin| {
        // The device's own analogue imperfections show up in the
        // measured fall time.
        let ideal = nominal_fall_time(vin - errors.offset_v);
        Ok(ideal * (1.0 + errors.gain_error))
    });
    let digital = digital_test(adc, &generator, limits);
    let compressed = compressed_test(adc, &generator, &ramp, &sensor, limits);
    QuickTestReport {
        analog,
        digital,
        compressed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adc::AdcErrorModel;

    #[test]
    fn nominal_law_matches_paper_endpoints() {
        assert!((nominal_fall_time(0.0) - 2.6e-3).abs() < 1e-12);
        assert!((nominal_fall_time(2.5) - 0.1e-3).abs() < 1e-12);
        assert!((nominal_fall_time(1.8) - 0.8e-3).abs() < 1e-12);
    }

    #[test]
    fn golden_device_passes_all_tests() {
        let report = run_quick_tests(&DualSlopeAdc::ideal(), &QuickTestLimits::paper());
        assert!(report.analog.passed);
        assert!(report.digital.passed);
        assert!(report.compressed.passed);
        assert!(report.passed());
    }

    #[test]
    fn paper_measured_device_still_passes_quick_tests() {
        // The quick tests are a coarse screen: the paper's real macro
        // passed them even though full characterisation later showed
        // INL/DNL above spec.
        let report = run_quick_tests(&DualSlopeAdc::paper_measured(), &QuickTestLimits::paper());
        assert!(report.passed());
    }

    #[test]
    fn dead_integrator_fails_analog_test() {
        let generator = StepGenerator::paper();
        let outcome = analog_step_test(&generator, &QuickTestLimits::paper(), |_| {
            Err(AnalysisError::InvalidParameter("dead".into()))
        });
        assert!(!outcome.passed);
        assert!(outcome.measurements.iter().all(|m| m.fall_time.is_none()));
    }

    #[test]
    fn slow_clock_fails_digital_test() {
        // Halving the clock doubles conversion time past 5.6 ms.
        let adc = DualSlopeAdc::ideal().with_clock(50e3);
        let outcome = digital_test(&adc, &StepGenerator::paper(), &QuickTestLimits::paper());
        assert!(!outcome.passed);
        assert!(outcome.max_conversion_time > 5.6e-3);
    }

    #[test]
    fn gross_gain_fault_fails_compressed_test() {
        let golden = run_quick_tests(&DualSlopeAdc::ideal(), &QuickTestLimits::paper());
        let limits =
            QuickTestLimits::paper().with_reference(golden.compressed.digital_signature);
        let faulty = DualSlopeAdc::with_errors(AdcErrorModel {
            gain_error: -0.30, // 30 % reference error
            ..AdcErrorModel::none()
        });
        let report = run_quick_tests(&faulty, &limits);
        assert!(!report.compressed.passed);
    }

    #[test]
    fn signature_reference_matching() {
        let golden = run_quick_tests(&DualSlopeAdc::ideal(), &QuickTestLimits::paper());
        let limits =
            QuickTestLimits::paper().with_reference(golden.compressed.digital_signature);
        let again = run_quick_tests(&DualSlopeAdc::ideal(), &limits);
        assert!(again.compressed.passed);
    }
}
