//! The on-chip ramp generator macro.
//!
//! The paper's "ramp signal generator varied from 0 to 2.5 volts over a
//! 1 Sec period, allowing time for 6 measurements at 200 mSec
//! intervals". It also notes the blind spot this test has: a gain error
//! in the ADC compensated by a matching gain error in the ramp leaves
//! the output looking correct.

use anasim::source::SourceWaveform;

/// The on-chip ramp generator macro.
///
/// # Example
///
/// ```
/// use msbist::bist::RampGenerator;
///
/// let rg = RampGenerator::paper();
/// let times = rg.sample_times();
/// assert_eq!(times.len(), 6);
/// assert!((rg.value_at(times[1]) - 0.5).abs() < 1e-9); // 200 ms into a 2.5 V/s ramp
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RampGenerator {
    v_start: f64,
    v_end: f64,
    duration: f64,
    samples: usize,
    /// Relative gain error of the generator itself (the paper's caveat:
    /// a ramp gain error can mask an ADC gain error).
    gain_error: f64,
}

impl RampGenerator {
    /// The paper's ramp: 0 → 2.5 V over 1 s, six samples at 200 ms.
    pub fn paper() -> Self {
        RampGenerator {
            v_start: 0.0,
            v_end: 2.5,
            duration: 1.0,
            samples: 6,
            gain_error: 0.0,
        }
    }

    /// A custom ramp.
    ///
    /// # Panics
    ///
    /// Panics if `duration` is not positive or `samples` is zero.
    pub fn new(v_start: f64, v_end: f64, duration: f64, samples: usize) -> Self {
        assert!(duration > 0.0, "duration must be positive");
        assert!(samples >= 1, "need at least one sample");
        RampGenerator {
            v_start,
            v_end,
            duration,
            samples,
            gain_error: 0.0,
        }
    }

    /// Adds a generator gain error (e.g. `0.02` = ramp runs 2 % fast).
    pub fn with_gain_error(mut self, rel: f64) -> Self {
        self.gain_error = rel;
        self
    }

    /// The generator's gain error.
    pub fn gain_error(&self) -> f64 {
        self.gain_error
    }

    /// Ramp duration, seconds.
    pub fn duration(&self) -> f64 {
        self.duration
    }

    /// The value driven at time `t` (holds the end value after the
    /// ramp).
    pub fn value_at(&self, t: f64) -> f64 {
        let span = (self.v_end - self.v_start) * (1.0 + self.gain_error);
        if t <= 0.0 {
            self.v_start
        } else if t >= self.duration {
            self.v_start + span
        } else {
            self.v_start + span * t / self.duration
        }
    }

    /// The measurement instants: evenly spaced from the ramp start to
    /// its end — six measurements at 200 ms intervals for the paper's
    /// configuration.
    pub fn sample_times(&self) -> Vec<f64> {
        if self.samples == 1 {
            return vec![self.duration / 2.0];
        }
        let dt = self.duration / (self.samples - 1) as f64;
        (0..self.samples).map(|k| k as f64 * dt).collect()
    }

    /// The ramp as a simulator source waveform.
    pub fn waveform(&self) -> SourceWaveform {
        let span = (self.v_end - self.v_start) * (1.0 + self.gain_error);
        SourceWaveform::ramp(self.v_start, self.v_start + span, self.duration)
    }
}

impl Default for RampGenerator {
    fn default() -> Self {
        RampGenerator::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ramp_reaches_full_scale() {
        let rg = RampGenerator::paper();
        assert_eq!(rg.value_at(0.0), 0.0);
        assert!((rg.value_at(1.0) - 2.5).abs() < 1e-12);
        assert_eq!(rg.value_at(2.0), 2.5); // held
    }

    #[test]
    fn six_samples_at_200ms_spacing() {
        let times = RampGenerator::paper().sample_times();
        assert_eq!(times.len(), 6);
        for w in times.windows(2) {
            assert!((w[1] - w[0] - 0.2).abs() < 1e-12);
        }
    }

    #[test]
    fn gain_error_scales_slope() {
        let rg = RampGenerator::paper().with_gain_error(0.04);
        assert!((rg.value_at(1.0) - 2.6).abs() < 1e-12);
    }

    #[test]
    fn waveform_matches_value_at() {
        let rg = RampGenerator::paper().with_gain_error(-0.02);
        let w = rg.waveform();
        for t in [0.0, 0.3, 0.77, 1.0, 1.5] {
            assert!((w.value_at(t) - rg.value_at(t)).abs() < 1e-12);
        }
    }
}
