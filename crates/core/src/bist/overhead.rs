//! Transistor-count overhead accounting of the BIST macros.
//!
//! The paper reports: ADC macro ≈ 250 gates / ≈1000 transistors; the
//! analogue section of the testing macro adds 152 transistors, the
//! digital section 484 (reusable for other digital areas of the chip).

/// Transistor budget of the chip's functional and test sections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverheadBudget {
    /// Transistors in the ADC macro itself.
    pub adc_transistors: u32,
    /// Transistors in the analogue test macros.
    pub analog_test_transistors: u32,
    /// Transistors in the digital test structures.
    pub digital_test_transistors: u32,
}

impl OverheadBudget {
    /// The paper's published budget.
    pub fn paper() -> Self {
        OverheadBudget {
            adc_transistors: 1000,
            analog_test_transistors: 152,
            digital_test_transistors: 484,
        }
    }

    /// Total test transistors.
    pub fn test_total(&self) -> u32 {
        self.analog_test_transistors + self.digital_test_transistors
    }

    /// Test overhead as a fraction of the functional macro
    /// (paper: 636 / 1000 = 63.6 %, though the digital part is shared
    /// with the rest of the chip).
    pub fn overhead_fraction(&self) -> f64 {
        self.test_total() as f64 / self.adc_transistors as f64
    }

    /// Overhead fraction when the digital test structures are amortised
    /// over `sharing` functional blocks (the paper notes they "could
    /// also be used to test further digital areas of a mixed chip").
    ///
    /// # Panics
    ///
    /// Panics if `sharing` is zero.
    pub fn amortised_overhead_fraction(&self, sharing: u32) -> f64 {
        assert!(sharing >= 1, "sharing factor must be at least 1");
        (self.analog_test_transistors as f64
            + self.digital_test_transistors as f64 / sharing as f64)
            / self.adc_transistors as f64
    }
}

impl Default for OverheadBudget {
    fn default() -> Self {
        OverheadBudget::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_numbers() {
        let b = OverheadBudget::paper();
        assert_eq!(b.test_total(), 636);
        assert!((b.overhead_fraction() - 0.636).abs() < 1e-12);
    }

    #[test]
    fn amortisation_reduces_overhead() {
        let b = OverheadBudget::paper();
        let alone = b.amortised_overhead_fraction(1);
        let shared = b.amortised_overhead_fraction(4);
        assert!((alone - 0.636).abs() < 1e-12);
        assert!(shared < 0.3);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_sharing_rejected() {
        let _ = OverheadBudget::paper().amortised_overhead_fraction(0);
    }
}
