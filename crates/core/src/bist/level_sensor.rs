//! The DC level sensor macro.
//!
//! Two comparators watch an analogue node against fixed thresholds
//! (1.9 V and 3.6 V in the paper) and compress the result into a 2-bit
//! code — the "analogue signature" of the compressed test.

use anasim::netlist::{Netlist, NodeId};
use anasim::source::SourceWaveform;
use anasim::waveform::Waveform;
use macrolib::opamp::{BehavioralOpamp, OpampParams};
use sigproc::signature::LevelSignature;

/// The on-chip DC level sensor.
///
/// Wraps the encoding of [`LevelSignature`] and provides the
/// circuit-level realisation (two comparator macros).
///
/// # Example
///
/// ```
/// use msbist::bist::DcLevelSensor;
///
/// let sensor = DcLevelSensor::paper();
/// assert_eq!(sensor.encode(1.0), 0b00);
/// assert_eq!(sensor.encode(2.5), 0b01);
/// assert_eq!(sensor.encode(4.0), 0b11);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DcLevelSensor {
    coding: LevelSignature,
}

impl DcLevelSensor {
    /// The paper's sensor: thresholds 1.9 V and 3.6 V.
    pub fn paper() -> Self {
        DcLevelSensor {
            coding: LevelSignature::paper_defaults(),
        }
    }

    /// A sensor with custom thresholds.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high`.
    pub fn new(low: f64, high: f64) -> Self {
        DcLevelSensor {
            coding: LevelSignature::new(low, high),
        }
    }

    /// Lower threshold, volts.
    pub fn low_threshold(&self) -> f64 {
        self.coding.low_threshold
    }

    /// Upper threshold, volts.
    pub fn high_threshold(&self) -> f64 {
        self.coding.high_threshold
    }

    /// Encodes one voltage into its 2-bit region code.
    pub fn encode(&self, volts: f64) -> u8 {
        self.coding.encode(volts)
    }

    /// Encodes the maximum of a waveform — the paper compresses "the
    /// maximum integrator voltage signal" into the 2-bit code during the
    /// ramped-input test.
    pub fn encode_peak(&self, w: &Waveform) -> u8 {
        self.encode(w.max())
    }

    /// Builds the sensor as circuit hardware: two behavioural
    /// comparators against threshold references. Returns the
    /// `(above_low, above_high)` output nodes.
    pub fn build(
        &self,
        netlist: &mut Netlist,
        prefix: &str,
        monitored: NodeId,
    ) -> (NodeId, NodeId) {
        let gnd = Netlist::GROUND;
        let cmp_against = |nl: &mut Netlist, tag: &str, threshold: f64| {
            let c = BehavioralOpamp::build(
                nl,
                &format!("{prefix}:{tag}"),
                &OpampParams::comparator_5um(),
            );
            let vref = nl.node(&format!("{prefix}:{tag}:ref"));
            nl.vsource(
                &format!("{prefix}:{tag}:VREF"),
                vref,
                gnd,
                SourceWaveform::dc(threshold),
            );
            nl.resistor(&format!("{prefix}:{tag}:RINP"), c.in_p, monitored, 1.0);
            nl.resistor(&format!("{prefix}:{tag}:RINN"), c.in_n, vref, 1.0);
            nl.resistor(&format!("{prefix}:{tag}:RLOAD"), c.out, gnd, 1e6);
            c.out
        };
        let low_out = cmp_against(netlist, "lo", self.coding.low_threshold);
        let high_out = cmp_against(netlist, "hi", self.coding.high_threshold);
        (low_out, high_out)
    }

    /// Interprets the two comparator output voltages as the 2-bit code
    /// (logic threshold at mid-rail).
    pub fn decode_outputs(&self, above_low_v: f64, above_high_v: f64) -> u8 {
        let lo = above_low_v > 2.5;
        let hi = above_high_v > 2.5;
        match (lo, hi) {
            (false, _) => 0b00,
            (true, false) => 0b01,
            (true, true) => 0b11,
        }
    }
}

impl Default for DcLevelSensor {
    fn default() -> Self {
        DcLevelSensor::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anasim::dc::dc_operating_point;

    #[test]
    fn paper_thresholds() {
        let s = DcLevelSensor::paper();
        assert_eq!(s.low_threshold(), 1.9);
        assert_eq!(s.high_threshold(), 3.6);
    }

    #[test]
    fn encode_peak_uses_waveform_maximum() {
        let s = DcLevelSensor::paper();
        let w = Waveform::from_samples(vec![0.0, 1.0, 2.0], vec![0.5, 2.4, 1.0]);
        assert_eq!(s.encode_peak(&w), 0b01);
    }

    #[test]
    fn circuit_realisation_encodes_each_region() {
        for (vin, expect) in [(1.0, 0b00u8), (2.7, 0b01), (4.2, 0b11)] {
            let mut nl = Netlist::new();
            let mon = nl.node("mon");
            nl.vsource("VMON", mon, Netlist::GROUND, SourceWaveform::dc(vin));
            let sensor = DcLevelSensor::paper();
            let (lo, hi) = sensor.build(&mut nl, "ls", mon);
            let op = dc_operating_point(&nl).unwrap();
            let code = sensor.decode_outputs(op.voltage(lo), op.voltage(hi));
            assert_eq!(code, expect, "vin = {vin}");
        }
    }

    #[test]
    fn decode_is_consistent_with_encode() {
        let s = DcLevelSensor::paper();
        // Comparator outputs at the rails mirror direct encoding.
        assert_eq!(s.decode_outputs(0.1, 0.1), s.encode(1.0));
        assert_eq!(s.decode_outputs(4.9, 0.1), s.encode(2.5));
        assert_eq!(s.decode_outputs(4.9, 4.9), s.encode(4.5));
    }
}
