//! On-chip BIST macros for the ADC.
//!
//! The paper adds low-cost analogue and digital test macros next to the
//! ADC macro: a DC step generator, a ramp generator, a DC level sensor
//! and digital signature compression. The analogue section of the
//! testing macro cost 152 transistors, the digital section 484.
//!
//! * [`StepGenerator`] — the six-level step input macro,
//! * [`RampGenerator`] — 0 → 2.5 V in 1 s with six 200 ms sample slots,
//! * [`DcLevelSensor`] — two comparators producing the 2-bit analogue
//!   signature (thresholds 1.9 V / 3.6 V),
//! * [`monotonicity`] — the AT&T-patent ramp/state-machine monotonicity
//!   BIST the paper adopts for initial ADC testing,
//! * [`quick_test`] — the three quick on-chip tests (analogue, digital,
//!   compressed) and the batch report,
//! * [`scan_access`] — the serial test bus / scan architecture of the
//!   paper's research background,
//! * [`overhead`] — transistor-count accounting of the test macros.

pub mod monotonicity;
pub mod overhead;
pub mod quick_test;
pub mod scan_access;

mod level_sensor;
mod ramp_gen;
mod step_gen;

pub use level_sensor::DcLevelSensor;
pub use ramp_gen::RampGenerator;
pub use step_gen::StepGenerator;
