//! The complete on-chip self-test session.
//!
//! Orchestrates every test facility the workspace models into the
//! "final complete ASUT test" sequence the paper's background sketches:
//!
//! 1. **monotonicity BIST** (AT&T patent): ramp + monitoring state
//!    machine — the cheapest go/no-go;
//! 2. **quick tests**: analogue step/fall-time, digital timing,
//!    compressed signatures;
//! 3. **scan session**: every stimulus level commanded and read back
//!    over the serial test bus;
//! 4. **converter loopback**: the companion DAC drives the ADC with no
//!    analogue I/O;
//! 5. **self-calibration**: the measured transfer function becomes the
//!    correction table the background proposes.

use crate::adc::{AdcConverter, DualSlopeAdc};
use crate::bist::monotonicity::{paper_monotonicity_test, MonotonicityReport};
use crate::bist::quick_test::{run_quick_tests, QuickTestLimits, QuickTestReport};
use crate::bist::scan_access::SerialTestBus;
use crate::calibrate::CalibratedAdc;
use crate::charac::characterise;
use crate::dac_test::{loopback_test, LoopbackReport};
use macrolib::dac::BinaryDac;

/// Report of a full self-test session.
#[derive(Debug, Clone)]
pub struct SelfTestReport {
    /// Stage 1: monotonicity BIST.
    pub monotonicity: MonotonicityReport,
    /// Stage 2: the three quick tests.
    pub quick: QuickTestReport,
    /// Stage 3: scan-bus readings `(level, code)`.
    pub scan_session: Vec<(f64, u64)>,
    /// Stage 4: loopback against the companion DAC.
    pub loopback: LoopbackReport,
    /// Stage 5: residual max INL after self-calibration, in LSB.
    pub calibrated_inl_lsb: f64,
}

impl SelfTestReport {
    /// True if the scan-bus readings match direct conversions (the
    /// digital test-access path is healthy).
    pub fn scan_path_ok(&self, adc: &DualSlopeAdc) -> bool {
        self.scan_session
            .iter()
            .all(|&(level, code)| code == adc.convert(level))
    }

    /// Overall verdict at the given loopback tolerance (codes).
    pub fn passed(&self, adc: &DualSlopeAdc, loopback_tol: f64) -> bool {
        self.monotonicity.passed()
            && self.quick.passed()
            && self.scan_path_ok(adc)
            && self.loopback.passed(loopback_tol)
    }
}

/// Runs the full session on one device.
///
/// `limits` carries the quick-test expectations (including the golden
/// compressed signature for comparison runs).
pub fn run_full_self_test(adc: &DualSlopeAdc, limits: &QuickTestLimits) -> SelfTestReport {
    // 1. Monotonicity.
    let monotonicity = paper_monotonicity_test(adc);

    // 2. Quick tests.
    let quick = run_quick_tests(adc, limits);

    // 3. Scan session over the serial test bus.
    let mut bus = SerialTestBus::new();
    let scan_session = bus.run_session(adc);

    // 4. Loopback with the companion 8-bit DAC.
    let dac = BinaryDac::ideal(8, 2.5);
    let loopback = loopback_test(&dac, adc, 16);

    // 5. Self-calibration and residual linearity.
    let cal = CalibratedAdc::self_calibrated(*adc, 110);
    let calibrated_inl_lsb = characterise(&cal, 100).max_inl_lsb();

    SelfTestReport {
        monotonicity,
        quick,
        scan_session,
        loopback,
        calibrated_inl_lsb,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adc::AdcErrorModel;
    use crate::bist::quick_test::run_quick_tests as quick;

    fn reference_limits() -> QuickTestLimits {
        let golden = quick(&DualSlopeAdc::paper_measured(), &QuickTestLimits::paper());
        QuickTestLimits::paper().with_reference(golden.compressed.digital_signature)
    }

    #[test]
    fn healthy_device_passes_the_full_session() {
        let adc = DualSlopeAdc::paper_measured();
        let report = run_full_self_test(&adc, &reference_limits());
        assert!(report.monotonicity.passed());
        assert!(report.quick.passed());
        assert!(report.scan_path_ok(&adc));
        assert!(report.loopback.passed(2.5), "{}", report.loopback.max_code_error);
        assert!(report.passed(&adc, 2.5));
        assert!(report.calibrated_inl_lsb.is_finite());
    }

    #[test]
    fn gross_reference_fault_fails_multiple_stages() {
        let adc = DualSlopeAdc::with_errors(AdcErrorModel {
            gain_error: 0.25,
            ..AdcErrorModel::paper_measured()
        });
        let report = run_full_self_test(&adc, &reference_limits());
        assert!(!report.quick.passed(), "quick tests must flag it");
        assert!(!report.loopback.passed(2.5), "loopback must flag it");
        assert!(!report.passed(&adc, 2.5));
    }

    #[test]
    fn violent_ripple_is_caught_by_the_monotonicity_stage() {
        let adc = DualSlopeAdc::with_errors(AdcErrorModel {
            ripple_v: 0.025,
            ripple_period_codes: 6.0,
            ..AdcErrorModel::none()
        });
        let report = run_full_self_test(&adc, &reference_limits());
        assert!(!report.monotonicity.passed());
    }

    #[test]
    fn scan_session_covers_all_levels() {
        let adc = DualSlopeAdc::ideal();
        let report = run_full_self_test(&adc, &QuickTestLimits::paper());
        assert_eq!(report.scan_session.len(), 6);
        assert!(report.scan_path_ok(&adc));
    }
}
