//! First-order sigma-delta modulator — the paper's "future developments"
//! architecture.
//!
//! The paper closes by noting the on-chip testing macros are being
//! extended to "larger full-custom ADC devices designed with sigma-delta
//! modulation architecture, where the switched capacitor integrator
//! forms a major part of the circuit". This module provides that
//! architecture at the discrete-time level, built on the same SC
//! integrator dynamics, so the BIST and transient-response machinery can
//! be exercised against it.

/// A first-order discrete-time sigma-delta modulator.
///
/// `v[n] = v[n−1] + (x[n] − y[n−1])·g`, `y[n] = sign(v[n])`, with `g`
/// the integrator gain per cycle (`Cs/Cf` of the SC realisation) and an
/// optional leak modelling integrator loss.
///
/// # Example
///
/// ```
/// use msbist::sigma_delta::SigmaDeltaModulator;
///
/// let mut sd = SigmaDeltaModulator::new(1.0 / 6.8);
/// let bits = sd.modulate_dc(0.5, 1024);
/// let ones = bits.iter().filter(|&&b| b).count() as f64;
/// // Bit density encodes the input: 0.5 in ±1 terms = 75 % ones.
/// assert!((ones / 1024.0 - 0.75).abs() < 0.02);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SigmaDeltaModulator {
    gain: f64,
    leak: f64,
    state: f64,
    last_bit: bool,
}

impl SigmaDeltaModulator {
    /// Creates a modulator with the given integrator gain per cycle.
    ///
    /// # Panics
    ///
    /// Panics if `gain` is not positive.
    pub fn new(gain: f64) -> Self {
        assert!(gain > 0.0, "integrator gain must be positive");
        SigmaDeltaModulator {
            gain,
            leak: 0.0,
            state: 0.0,
            last_bit: false,
        }
    }

    /// Adds integrator leakage: the state decays by `1 − leak` each
    /// cycle (a fault mechanism the SC-integrator tests target).
    ///
    /// # Panics
    ///
    /// Panics if `leak` is outside `[0, 1)`.
    pub fn with_leak(mut self, leak: f64) -> Self {
        assert!((0.0..1.0).contains(&leak), "leak must be in [0, 1)");
        self.leak = leak;
        self
    }

    /// Integrator gain per cycle.
    pub fn gain(&self) -> f64 {
        self.gain
    }

    /// Resets the modulator state.
    pub fn reset(&mut self) {
        self.state = 0.0;
        self.last_bit = false;
    }

    /// Processes one input sample (in [−1, 1]) and returns the output
    /// bit.
    pub fn step(&mut self, x: f64) -> bool {
        let feedback = if self.last_bit { 1.0 } else { -1.0 };
        self.state = self.state * (1.0 - self.leak) + (x - feedback) * self.gain;
        self.last_bit = self.state >= 0.0;
        self.last_bit
    }

    /// Modulates a DC input for `n` cycles.
    pub fn modulate_dc(&mut self, x: f64, n: usize) -> Vec<bool> {
        (0..n).map(|_| self.step(x)).collect()
    }

    /// Modulates an arbitrary sample sequence.
    pub fn modulate(&mut self, input: &[f64]) -> Vec<bool> {
        input.iter().map(|&x| self.step(x)).collect()
    }
}

/// Decimates a bitstream by simple counting (sinc¹ / boxcar filter):
/// each group of `osr` bits becomes one sample in [−1, 1].
///
/// # Panics
///
/// Panics if `osr` is zero.
pub fn decimate(bits: &[bool], osr: usize) -> Vec<f64> {
    assert!(osr >= 1, "oversampling ratio must be at least 1");
    bits.chunks_exact(osr)
        .map(|chunk| {
            let ones = chunk.iter().filter(|&&b| b).count() as f64;
            2.0 * ones / osr as f64 - 1.0
        })
        .collect()
}

/// Measures the in-band signal-to-noise ratio (dB) of the modulator for
/// a sine input, using coherent demodulation of the decimated output.
///
/// `osr` is the oversampling ratio; `cycles` full sine periods are
/// modulated at `periods_per_decimated_sample` resolution.
pub fn measure_snr_db(modulator: &mut SigmaDeltaModulator, amplitude: f64, osr: usize) -> f64 {
    let decimated_len = 256;
    let n = decimated_len * osr;
    let periods = 8.0;
    let input: Vec<f64> = (0..n)
        .map(|k| amplitude * (2.0 * std::f64::consts::PI * periods * k as f64 / n as f64).sin())
        .collect();
    modulator.reset();
    let bits = modulator.modulate(&input);
    let out = decimate(&bits, osr);

    // Coherent demodulation at the signal frequency.
    let mut sig_i = 0.0;
    let mut sig_q = 0.0;
    for (k, &y) in out.iter().enumerate() {
        let phase = 2.0 * std::f64::consts::PI * periods * k as f64 / decimated_len as f64;
        sig_i += y * phase.sin();
        sig_q += y * phase.cos();
    }
    let m = decimated_len as f64;
    let est_amp = 2.0 * (sig_i * sig_i + sig_q * sig_q).sqrt() / m;
    let signal_power = est_amp * est_amp / 2.0;

    // Noise: residual after removing the coherent component.
    let mut noise_power = 0.0;
    for (k, &y) in out.iter().enumerate() {
        let phase = 2.0 * std::f64::consts::PI * periods * k as f64 / decimated_len as f64;
        let recon = 2.0 * (sig_i * phase.sin() + sig_q * phase.cos()) / m;
        noise_power += (y - recon).powi(2);
    }
    noise_power /= m;
    10.0 * (signal_power / noise_power.max(1e-30)).log10()
}

/// A second-order (Boser–Wooley style) modulator: two cascaded
/// integrators inside the loop give ~15 dB/octave noise shaping against
/// the first order's ~9.
///
/// `v1[n] = v1 + g1·(x − y)`, `v2[n] = v2 + g2·(v1 − y)`,
/// `y = sign(v2)`, with conservative gains `g1 = g2 = 0.5` for
/// stability.
#[derive(Debug, Clone, PartialEq)]
pub struct SecondOrderModulator {
    g1: f64,
    g2: f64,
    v1: f64,
    v2: f64,
    last_bit: bool,
}

impl SecondOrderModulator {
    /// Creates a modulator with the standard 0.5/0.5 gains.
    pub fn new() -> Self {
        SecondOrderModulator {
            g1: 0.5,
            g2: 0.5,
            v1: 0.0,
            v2: 0.0,
            last_bit: false,
        }
    }

    /// Resets both integrators.
    pub fn reset(&mut self) {
        self.v1 = 0.0;
        self.v2 = 0.0;
        self.last_bit = false;
    }

    /// Processes one sample (input in [−1, 1]).
    pub fn step(&mut self, x: f64) -> bool {
        let feedback = if self.last_bit { 1.0 } else { -1.0 };
        self.v1 += self.g1 * (x - feedback);
        self.v2 += self.g2 * (self.v1 - feedback);
        self.last_bit = self.v2 >= 0.0;
        self.last_bit
    }

    /// Modulates a sequence.
    pub fn modulate(&mut self, input: &[f64]) -> Vec<f64> {
        input
            .iter()
            .map(|&x| if self.step(x) { 1.0 } else { -1.0 })
            .collect()
    }
}

impl Default for SecondOrderModulator {
    fn default() -> Self {
        SecondOrderModulator::new()
    }
}

/// Measures the modulator's output spectrum SNR with a Welch PSD
/// estimate (`sigproc::spectrum`): an in-band tone is modulated, the
/// bitstream's spectrum is estimated directly, and the tone-vs-in-band
/// noise ratio is computed over the band `[0, f_s / (2·osr)]`.
pub fn measure_snr_psd<F>(mut modulate: F, amplitude: f64, osr: usize, n: usize) -> f64
where
    F: FnMut(&[f64]) -> Vec<f64>,
{
    assert!(osr >= 2, "oversampling ratio must be at least 2");
    let cycles = (n / (osr * 8)).max(3) as f64;
    let input: Vec<f64> = (0..n)
        .map(|k| amplitude * (2.0 * std::f64::consts::PI * cycles * k as f64 / n as f64).sin())
        .collect();
    let bits = modulate(&input);
    let psd = sigproc::spectrum::welch(
        &bits,
        (n / 4).next_power_of_two().min(n),
        sigproc::spectrum::Window::Hann,
        1.0,
    );
    // In-band: bins up to Nyquist/osr.
    let band_end = (psd.power.len() - 1) / osr;
    let peak = psd
        .power
        .iter()
        .take(band_end + 1)
        .enumerate()
        .skip(1)
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(k, _)| k)
        .unwrap_or(1);
    let mut signal = 0.0;
    let mut noise = 0.0;
    for (k, &p) in psd.power.iter().enumerate().take(band_end + 1).skip(1) {
        if k.abs_diff(peak) <= 3 {
            signal += p;
        } else {
            noise += p;
        }
    }
    10.0 * (signal / noise.max(1e-300)).log10()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_bit_density_tracks_input() {
        for dc in [-0.8, -0.3, 0.0, 0.4, 0.9] {
            let mut sd = SigmaDeltaModulator::new(1.0 / 6.8);
            let bits = sd.modulate_dc(dc, 4096);
            let density = bits.iter().filter(|&&b| b).count() as f64 / 4096.0;
            let expect = (dc + 1.0) / 2.0;
            assert!(
                (density - expect).abs() < 0.02,
                "dc {dc}: density {density}, expect {expect}"
            );
        }
    }

    #[test]
    fn decimation_recovers_dc() {
        let mut sd = SigmaDeltaModulator::new(0.2);
        let bits = sd.modulate_dc(0.25, 64 * 32);
        let out = decimate(&bits, 64);
        let mean: f64 = out.iter().sum::<f64>() / out.len() as f64;
        assert!((mean - 0.25).abs() < 0.03, "mean {mean}");
    }

    #[test]
    fn snr_improves_with_oversampling() {
        // First-order noise shaping: ~9 dB per octave of OSR.
        let mut sd = SigmaDeltaModulator::new(1.0 / 6.8);
        let low = measure_snr_db(&mut sd, 0.5, 16);
        let mut sd2 = SigmaDeltaModulator::new(1.0 / 6.8);
        let high = measure_snr_db(&mut sd2, 0.5, 64);
        assert!(
            high > low + 6.0,
            "snr did not improve: {low:.1} dB -> {high:.1} dB"
        );
    }

    #[test]
    fn leak_degrades_snr() {
        let mut clean = SigmaDeltaModulator::new(1.0 / 6.8);
        let mut leaky = SigmaDeltaModulator::new(1.0 / 6.8).with_leak(0.2);
        let snr_clean = measure_snr_db(&mut clean, 0.5, 64);
        let snr_leaky = measure_snr_db(&mut leaky, 0.5, 64);
        assert!(
            snr_clean > snr_leaky + 3.0,
            "clean {snr_clean:.1} dB vs leaky {snr_leaky:.1} dB"
        );
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut sd = SigmaDeltaModulator::new(0.3);
        let first = sd.modulate_dc(0.1, 100);
        sd.reset();
        let second = sd.modulate_dc(0.1, 100);
        assert_eq!(first, second);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_gain_rejected() {
        let _ = SigmaDeltaModulator::new(0.0);
    }

    #[test]
    fn second_order_tracks_dc() {
        let mut sd = SecondOrderModulator::new();
        let input = vec![0.3; 8192];
        let bits = sd.modulate(&input);
        let mean: f64 = bits.iter().sum::<f64>() / bits.len() as f64;
        assert!((mean - 0.3).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn second_order_beats_first_order_in_band() {
        let osr = 32;
        let n = 16384;
        let snr1 = measure_snr_psd(
            |x| {
                let mut m = SigmaDeltaModulator::new(1.0 / 6.8);
                m.modulate(x)
                    .into_iter()
                    .map(|b| if b { 1.0 } else { -1.0 })
                    .collect()
            },
            0.5,
            osr,
            n,
        );
        let snr2 = measure_snr_psd(
            |x| {
                let mut m = SecondOrderModulator::new();
                m.modulate(x)
            },
            0.5,
            osr,
            n,
        );
        assert!(
            snr2 > snr1 + 6.0,
            "2nd order {snr2:.1} dB vs 1st order {snr1:.1} dB"
        );
    }

    #[test]
    fn second_order_reset_reproduces() {
        let mut m = SecondOrderModulator::new();
        let x = vec![0.1; 64];
        let a = m.modulate(&x);
        m.reset();
        let b = m.modulate(&x);
        assert_eq!(a, b);
    }
}
