//! DAC characterisation and the DAC→ADC loopback self-test.
//!
//! The paper's background positions the converter pair as the core of
//! mixed-signal self-test: measure the converters' transfer functions,
//! then use them to test (and self-calibrate for) the remaining
//! analogue macros. This module provides the DAC side — static
//! characterisation mirroring [`crate::charac`] — and the on-chip
//! loopback test that exercises both converters without any analogue
//! I/O.

use macrolib::dac::BinaryDac;

use crate::adc::AdcConverter;

/// A digital-to-analogue converter under test.
pub trait DacConverter {
    /// The analogue output for a code.
    fn output(&self, code: u64) -> f64;

    /// Resolution in bits.
    fn bits(&self) -> u32;

    /// Full-scale reference voltage.
    fn vref(&self) -> f64;

    /// Nominal LSB in volts.
    fn lsb(&self) -> f64 {
        self.vref() / (1u64 << self.bits()) as f64
    }

    /// Number of codes.
    fn code_count(&self) -> u64 {
        1u64 << self.bits()
    }
}

impl DacConverter for BinaryDac {
    fn output(&self, code: u64) -> f64 {
        BinaryDac::output(self, code)
    }

    fn bits(&self) -> u32 {
        BinaryDac::bits(self)
    }

    fn vref(&self) -> f64 {
        BinaryDac::vref(self)
    }
}

/// Static characterisation of a DAC.
#[derive(Debug, Clone, PartialEq)]
pub struct DacCharacterisation {
    /// Nominal LSB, volts.
    pub lsb: f64,
    /// Offset error in LSB (output at code 0).
    pub offset_lsb: f64,
    /// Gain error in LSB (full-scale deviation after offset removal).
    pub gain_error_lsb: f64,
    /// Per-code DNL in LSB.
    pub dnl: Vec<f64>,
    /// Per-code INL in LSB against the endpoint line.
    pub inl: Vec<f64>,
    /// True if the transfer is monotonic.
    pub monotonic: bool,
}

impl DacCharacterisation {
    /// Maximum |DNL| in LSB.
    pub fn max_dnl_lsb(&self) -> f64 {
        self.dnl.iter().fold(0.0, |m, &v| m.max(v.abs()))
    }

    /// Maximum |INL| in LSB.
    pub fn max_inl_lsb(&self) -> f64 {
        self.inl.iter().fold(0.0, |m, &v| m.max(v.abs()))
    }
}

/// Characterises a DAC over its full code range by direct output
/// measurement.
pub fn characterise_dac<D: DacConverter>(dac: &D) -> DacCharacterisation {
    let lsb = dac.lsb();
    let n = dac.code_count();
    let outputs: Vec<f64> = (0..n).map(|c| dac.output(c)).collect();

    let offset_lsb = outputs[0] / lsb;
    let ideal_span = (n - 1) as f64 * lsb;
    let gain_error_lsb = (outputs[n as usize - 1] - outputs[0] - ideal_span) / lsb;

    // Endpoint line.
    let fit = |code: u64| {
        outputs[0] + (outputs[n as usize - 1] - outputs[0]) * code as f64 / (n - 1) as f64
    };
    let inl: Vec<f64> = (0..n).map(|c| (outputs[c as usize] - fit(c)) / lsb).collect();
    let dnl: Vec<f64> = outputs
        .windows(2)
        .map(|w| (w[1] - w[0]) / lsb - 1.0)
        .collect();
    let monotonic = outputs.windows(2).all(|w| w[1] >= w[0]);

    DacCharacterisation {
        lsb,
        offset_lsb,
        gain_error_lsb,
        dnl,
        inl,
        monotonic,
    }
}

/// Result of the DAC→ADC loopback self-test.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopbackReport {
    /// `(dac code, adc code)` pairs.
    pub readings: Vec<(u64, u64)>,
    /// Worst absolute code error after removing the scale factor.
    pub max_code_error: f64,
    /// Scale factor between DAC and ADC code spaces.
    pub scale: f64,
}

impl LoopbackReport {
    /// True if every reading lands within `tol` ADC codes of the scaled
    /// DAC code.
    pub fn passed(&self, tol: f64) -> bool {
        self.max_code_error <= tol
    }
}

/// Runs the loopback: the DAC drives the ADC at `points` evenly spaced
/// codes; readings are compared against the expected scaled codes.
///
/// This is the paper-background self-test topology: both converters are
/// exercised on-chip and a single digital comparison closes the loop.
///
/// # Panics
///
/// Panics if `points < 2`.
pub fn loopback_test<D: DacConverter, A: AdcConverter>(
    dac: &D,
    adc: &A,
    points: usize,
) -> LoopbackReport {
    assert!(points >= 2, "need at least two loopback points");
    // Code-space scale: ADC codes per DAC code.
    let scale = (dac.lsb() / adc.lsb()) * (adc.full_scale() / adc.full_scale());
    let n = dac.code_count();
    let mut readings = Vec::with_capacity(points);
    let mut max_code_error: f64 = 0.0;
    for k in 0..points {
        let dac_code = (k as u64 * (n - 1)) / (points as u64 - 1);
        let v = dac.output(dac_code);
        let adc_code = adc.convert(v);
        let expect = dac_code as f64 * scale;
        max_code_error = max_code_error.max((adc_code as f64 - expect).abs());
        readings.push((dac_code, adc_code));
    }
    LoopbackReport {
        readings,
        max_code_error,
        scale,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adc::DualSlopeAdc;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ideal_dac_characterises_cleanly() {
        let c = characterise_dac(&BinaryDac::ideal(8, 2.56));
        assert!(c.offset_lsb.abs() < 1e-9);
        assert!(c.gain_error_lsb.abs() < 1e-9);
        assert!(c.max_dnl_lsb() < 1e-9);
        assert!(c.max_inl_lsb() < 1e-9);
        assert!(c.monotonic);
    }

    #[test]
    fn msb_fault_breaks_monotonicity_and_dnl() {
        let dac = BinaryDac::ideal(8, 2.56).with_bit_weight(7, 0.97);
        let c = characterise_dac(&dac);
        assert!(!c.monotonic);
        assert!(c.max_dnl_lsb() > 1.0, "dnl {}", c.max_dnl_lsb());
    }

    #[test]
    fn matched_elements_keep_dnl_small() {
        let dac = BinaryDac::with_mismatch(8, 2.56, 0.001, &mut StdRng::seed_from_u64(1));
        let c = characterise_dac(&dac);
        assert!(c.max_dnl_lsb() < 0.5, "dnl {}", c.max_dnl_lsb());
        assert!(c.monotonic);
    }

    #[test]
    fn loopback_of_healthy_converters_passes() {
        // An 8-bit, 2.5 V DAC into the 10 mV/LSB ADC: scale ~ 0.977.
        let dac = BinaryDac::ideal(8, 2.5);
        let adc = DualSlopeAdc::paper_measured();
        let report = loopback_test(&dac, &adc, 32);
        assert!(
            report.passed(2.5),
            "max error {} codes",
            report.max_code_error
        );
    }

    #[test]
    fn loopback_catches_a_dead_dac_bit() {
        let dac = BinaryDac::ideal(8, 2.5).with_bit_weight(7, 0.0); // MSB dead
        let adc = DualSlopeAdc::paper_measured();
        let report = loopback_test(&dac, &adc, 32);
        assert!(!report.passed(2.5));
        assert!(report.max_code_error > 50.0);
    }

    #[test]
    fn loopback_catches_a_gross_adc_fault() {
        let dac = BinaryDac::ideal(8, 2.5);
        let adc = DualSlopeAdc::with_errors(crate::adc::AdcErrorModel {
            gain_error: 0.2,
            ..crate::adc::AdcErrorModel::none()
        });
        let report = loopback_test(&dac, &adc, 32);
        assert!(!report.passed(2.5));
    }
}
