//! Approach 2: impulse-response comparison through state-space models.
//!
//! The paper's second method determines the poles, zeros and constants
//! of the fault-free and faulty circuits (HSPICE), builds state-space
//! representations (Matlab) and compares their impulse responses. Here
//! the same flow runs on the workspace substrates:
//!
//! * [`measured_impulse_response`] linearises a circuit around its
//!   operating trajectory by differencing a pulsed and an unpulsed
//!   transient (the simulation equivalent of HSPICE's small-signal
//!   view),
//! * [`fit_first_order_discrete`] identifies a first-order z-domain
//!   model (the SC integrator family, `H(z) = b·z⁻¹/(1 − a·z⁻¹)`) from
//!   cycle-sampled data by least squares,
//! * the fitted models go through [`linsys`] state-space machinery so
//!   golden and faulty impulse responses can be compared sample by
//!   sample.

use anasim::netlist::Netlist;
use anasim::source::SourceWaveform;
use anasim::transient::TransientAnalysis;
use anasim::AnalysisError;
use linsys::transfer::DiscreteTransferFunction;

use super::bench::TransientTestBench;

/// Measures a circuit's small-signal impulse response by pulse
/// perturbation.
///
/// Two transients run: one with the stimulus source held at `bias`, one
/// with an added pulse of `amplitude` volts lasting `pulse_width`
/// seconds at `t = pulse_width`. The scaled difference of the sampled
/// outputs approximates `h(t)` (area-normalised).
///
/// # Errors
///
/// Propagates simulator non-convergence from either run.
pub fn measured_impulse_response(
    bench: &TransientTestBench,
    netlist: &Netlist,
    bias: f64,
    amplitude: f64,
    pulse_width: f64,
    sample_dt: f64,
    samples: usize,
) -> Result<Vec<f64>, AnalysisError> {
    assert!(pulse_width > 0.0, "pulse width must be positive");
    assert!(sample_dt > 0.0, "sample period must be positive");
    let t_stop = sample_dt * samples as f64 + 2.0 * pulse_width;

    let run = |wave: SourceWaveform| -> Result<Vec<f64>, AnalysisError> {
        // Rebuild a variant of the *given* netlist (which may carry an
        // injected fault) with the requested input drive.
        let mut nl = netlist.clone();
        match nl.device_mut(bench.stimulus_source()) {
            anasim::devices::Device::Vsource { wave: w, .. } => *w = wave,
            _ => unreachable!("bench validated the stimulus source"),
        }
        let sim_dt = (pulse_width / 4.0).min(sample_dt / 2.0);
        let result = TransientAnalysis::new(t_stop, sim_dt).run(&nl)?;
        let w = result.voltage(bench.output());
        // Sample from the end of the pulse: the impulse approximation
        // y_diff/area ~ h(t) holds once the pulse has finished.
        Ok((0..samples)
            .map(|k| w.value_at(2.0 * pulse_width + k as f64 * sample_dt))
            .collect())
    };

    let baseline = run(SourceWaveform::dc(bias))?;
    let pulsed = run(SourceWaveform::Pwl(vec![
        (0.0, bias),
        (pulse_width, bias),
        (pulse_width + 1e-12, bias + amplitude),
        (2.0 * pulse_width, bias + amplitude),
        (2.0 * pulse_width + 1e-12, bias),
    ]))?;

    let area = amplitude * pulse_width;
    Ok(baseline
        .iter()
        .zip(&pulsed)
        .map(|(b, p)| (p - b) / area)
        .collect())
}

/// A first-order discrete model identified from data:
/// `y[n] = a·y[n−1] + b·x[n−1]`, i.e. `H(z) = b·z⁻¹ / (1 − a·z⁻¹)`.
///
/// For an ideal SC integrator `a = 1` (lossless accumulation) and
/// `b = ±Cs/Cf`; leakage faults pull `a` below 1 and gain faults move
/// `b`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FirstOrderFit {
    /// Pole location (`a`).
    pub a: f64,
    /// Input gain (`b`).
    pub b: f64,
    /// Residual RMS of the fit.
    pub residual_rms: f64,
}

impl FirstOrderFit {
    /// The fitted model as a [`DiscreteTransferFunction`].
    pub fn transfer_function(&self, sample_time: f64) -> DiscreteTransferFunction {
        DiscreteTransferFunction::new(vec![0.0, self.b], vec![1.0, -self.a], sample_time)
    }

    /// Sampled impulse response of the fitted model.
    pub fn impulse_response(&self, sample_time: f64, n: usize) -> Vec<f64> {
        self.transfer_function(sample_time).impulse_response(n)
    }
}

/// Identifies the first-order model from input/output sequences sampled
/// once per cycle, by least squares over
/// `y[n] = a·y[n−1] + b·x[n−1]`.
///
/// # Panics
///
/// Panics if fewer than 3 samples are supplied or lengths mismatch.
pub fn fit_first_order_discrete(input: &[f64], output: &[f64]) -> FirstOrderFit {
    assert_eq!(input.len(), output.len(), "length mismatch");
    assert!(input.len() >= 3, "need at least 3 samples");
    // Normal equations for [a b]: minimise Σ (y[n] − a·y[n−1] − b·x[n−1])².
    let mut syy = 0.0;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut sy_y = 0.0;
    let mut sx_y = 0.0;
    for n in 1..output.len() {
        let y1 = output[n - 1];
        let x1 = input[n - 1];
        let y = output[n];
        syy += y1 * y1;
        sxx += x1 * x1;
        sxy += x1 * y1;
        sy_y += y1 * y;
        sx_y += x1 * y;
    }
    let det = syy * sxx - sxy * sxy;
    let (a, b) = if det.abs() < 1e-30 {
        (0.0, 0.0)
    } else {
        (
            (sy_y * sxx - sx_y * sxy) / det,
            (sx_y * syy - sy_y * sxy) / det,
        )
    };
    // Residual.
    let mut ss = 0.0;
    for n in 1..output.len() {
        let pred = a * output[n - 1] + b * input[n - 1];
        ss += (output[n] - pred).powi(2);
    }
    FirstOrderFit {
        a,
        b,
        residual_rms: (ss / (output.len() - 1) as f64).sqrt(),
    }
}

/// Compares golden and faulty impulse responses with the paper's
/// detection-instance metric: the percentage of samples deviating beyond
/// `threshold`.
///
/// # Panics
///
/// Panics if the responses differ in length or are empty.
pub fn impulse_detection_instances(golden: &[f64], faulty: &[f64], threshold: f64) -> f64 {
    sigproc::correlation::detection_instances(golden, faulty, threshold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transtest::stimulus::PrbsStimulus;
    use anasim::netlist::Netlist;

    fn rc_bench(tau_c: f64) -> TransientTestBench {
        let mut nl = Netlist::new();
        let vin = nl.node("vin");
        let out = nl.node("out");
        let src = nl.vsource("VSTIM", vin, Netlist::GROUND, SourceWaveform::dc(0.0));
        nl.resistor("R1", vin, out, 10e3);
        nl.capacitor("C1", out, Netlist::GROUND, tau_c);
        TransientTestBench::new(
            nl,
            src,
            out,
            PrbsStimulus::paper_circuit1(),
            4,
            5e-6,
        )
    }

    #[test]
    fn rc_impulse_response_is_exponential() {
        // tau = 100 us.
        let bench = rc_bench(10e-9);
        let h = measured_impulse_response(
            &bench,
            bench.netlist(),
            1.0,
            0.1,
            5e-6,
            20e-6,
            20,
        )
        .unwrap();
        // h(t) = (1/tau)·e^{−t/tau}; check the ratio between samples.
        let tau = 100e-6;
        let expect_ratio = (-20e-6_f64 / tau).exp();
        for k in 1..10 {
            let ratio = h[k] / h[k - 1];
            assert!(
                (ratio - expect_ratio).abs() < 0.08,
                "sample {k}: ratio {ratio} vs {expect_ratio}"
            );
        }
    }

    #[test]
    fn first_order_fit_recovers_known_model() {
        // Simulate y[n] = 0.9 y[n-1] + 0.2 x[n-1] exactly.
        let x: Vec<f64> = (0..50).map(|n| ((n * 7) % 5) as f64 - 2.0).collect();
        let mut y = vec![0.0];
        for n in 1..50 {
            y.push(0.9 * y[n - 1] + 0.2 * x[n - 1]);
        }
        let fit = fit_first_order_discrete(&x, &y);
        assert!((fit.a - 0.9).abs() < 1e-9, "a = {}", fit.a);
        assert!((fit.b - 0.2).abs() < 1e-9, "b = {}", fit.b);
        assert!(fit.residual_rms < 1e-9);
    }

    #[test]
    fn fitted_impulse_response_matches_model() {
        let fit = FirstOrderFit {
            a: 0.8,
            b: 0.5,
            residual_rms: 0.0,
        };
        let h = fit.impulse_response(1.0, 5);
        assert_eq!(h[0], 0.0);
        assert!((h[1] - 0.5).abs() < 1e-12);
        assert!((h[2] - 0.4).abs() < 1e-12);
        assert!((h[3] - 0.32).abs() < 1e-12);
    }

    #[test]
    fn detection_metric_distinguishes_models() {
        let golden = FirstOrderFit {
            a: 1.0,
            b: -1.0 / 6.8,
            residual_rms: 0.0,
        };
        let leaky = FirstOrderFit {
            a: 0.9,
            b: -1.0 / 6.8,
            residual_rms: 0.0,
        };
        let hg = golden.impulse_response(5e-6, 40);
        let hf = leaky.impulse_response(5e-6, 40);
        let pct = impulse_detection_instances(&hg, &hf, 0.01);
        assert!(pct > 50.0, "pct = {pct}");
    }
}
