//! Dynamic supply-current (IDD) testing.
//!
//! The paper's research background cites Binns & Taylor and Arguelles
//! et al. [refs 10, 11]: "the use of dynamic current testing to detect
//! faults in embedded analogue macros and mixed signal devices". This
//! module adds that third signature to the transient-response bench —
//! the chip's supply current under the PRBS stimulus — which observes
//! faults (bias shifts, shorted stages) that leave the *voltage* output
//! untouched.

use anasim::netlist::{DeviceId, Netlist};
use anasim::robust::SolveSettings;
use anasim::AnalysisError;
use faultsim::campaign::{run_campaign, run_campaign_with, CampaignConfig, CampaignReport};
use faultsim::model::Fault;

use super::bench::TransientTestBench;

/// Summary statistics of a supply-current signature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IddStats {
    /// Mean supply current (amperes, magnitude).
    pub mean: f64,
    /// Peak-to-peak dynamic component.
    pub peak_to_peak: f64,
    /// RMS of the dynamic (mean-removed) component.
    pub dynamic_rms: f64,
}

/// Computes summary statistics of a sampled IDD waveform.
pub fn idd_stats(samples: &[f64]) -> IddStats {
    if samples.is_empty() {
        return IddStats {
            mean: 0.0,
            peak_to_peak: 0.0,
            dynamic_rms: 0.0,
        };
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let dyn_rms = (samples.iter().map(|v| (v - mean).powi(2)).sum::<f64>()
        / samples.len() as f64)
        .sqrt();
    IddStats {
        mean: mean.abs(),
        peak_to_peak: max - min,
        dynamic_rms: dyn_rms,
    }
}

/// The IDD signature of a netlist variant: the sampled, summed supply
/// currents of `supplies` under the bench stimulus.
///
/// # Errors
///
/// Propagates simulator non-convergence.
pub fn idd_signature(
    bench: &TransientTestBench,
    netlist: &Netlist,
    supplies: &[DeviceId],
) -> Result<Vec<f64>, AnalysisError> {
    bench.current_response(netlist, supplies)
}

/// [`idd_signature`] under explicit [`SolveSettings`].
///
/// # Errors
///
/// Propagates simulator non-convergence and budget exhaustion.
pub fn idd_signature_with(
    bench: &TransientTestBench,
    netlist: &Netlist,
    supplies: &[DeviceId],
    settings: &SolveSettings,
) -> Result<Vec<f64>, AnalysisError> {
    bench.current_response_with(netlist, supplies, settings)
}

/// Runs a fault campaign on IDD signatures. The detection threshold is
/// `threshold_rel` times the golden signature's mean current, so it
/// scales with the circuit's quiescent draw.
///
/// # Errors
///
/// Fails only if the golden circuit cannot be simulated.
pub fn run_idd_campaign(
    bench: &TransientTestBench,
    supplies: &[DeviceId],
    faults: &[Fault],
    threshold_rel: f64,
) -> Result<CampaignReport, AnalysisError> {
    let golden = idd_signature(bench, bench.netlist(), supplies)?;
    let threshold = threshold_rel * idd_stats(&golden).mean.max(1e-12);
    run_campaign(bench.netlist(), faults, threshold, |nl| {
        idd_signature(bench, nl, supplies)
    })
}

/// Runs an IDD fault campaign on the resilient engine: the relative
/// threshold is resolved against the golden mean current exactly as in
/// [`run_idd_campaign`], then `config`'s ladder, budget and worker
/// settings drive the per-fault extractions (the threshold inside
/// `config` is ignored).
///
/// # Errors
///
/// Fails only if the golden circuit cannot be simulated.
pub fn run_idd_campaign_with(
    bench: &TransientTestBench,
    supplies: &[DeviceId],
    faults: &[Fault],
    threshold_rel: f64,
    config: &CampaignConfig,
) -> Result<CampaignReport, AnalysisError> {
    let golden = idd_signature(bench, bench.netlist(), supplies)?;
    let threshold = threshold_rel * idd_stats(&golden).mean.max(1e-12);
    let config = config.clone().threshold(threshold);
    run_campaign_with(bench.netlist(), faults, &config, |nl, settings| {
        idd_signature_with(bench, nl, supplies, settings)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transtest::circuits::circuit1;
    use macrolib::process::ProcessParams;

    #[test]
    fn stats_of_constant_current() {
        let s = idd_stats(&[-1e-3, -1e-3, -1e-3]);
        assert!((s.mean - 1e-3).abs() < 1e-15);
        assert_eq!(s.peak_to_peak, 0.0);
        assert_eq!(s.dynamic_rms, 0.0);
    }

    #[test]
    fn stats_of_square_current() {
        let s = idd_stats(&[1e-3, 3e-3, 1e-3, 3e-3]);
        assert!((s.mean - 2e-3).abs() < 1e-15);
        assert!((s.peak_to_peak - 2e-3).abs() < 1e-15);
        assert!((s.dynamic_rms - 1e-3).abs() < 1e-15);
    }

    #[test]
    fn circuit1_idd_signature_is_live() {
        let c1 = circuit1(&ProcessParams::nominal());
        let vdd = c1
            .bench
            .netlist()
            .find_device("c1:VDD")
            .expect("op1 supply exists");
        let sig = idd_signature(&c1.bench, c1.bench.netlist(), &[vdd]).unwrap();
        let stats = idd_stats(&sig);
        // OP1 draws on the order of 100 uA quiescent and modulates with
        // the stimulus.
        assert!(stats.mean > 10e-6, "mean {:.3e}", stats.mean);
        assert!(stats.mean < 10e-3, "mean {:.3e}", stats.mean);
    }

    #[test]
    fn idd_campaign_detects_supply_path_faults() {
        let c1 = circuit1(&ProcessParams::nominal());
        let vdd = c1.bench.netlist().find_device("c1:VDD").expect("supply");
        // n4 is the PMOS bias gate: stuck-at-0 floods every current
        // source — nearly invisible at the output, glaring in IDD.
        let faults: Vec<_> = c1
            .faults
            .iter()
            .filter(|f| f.name() == "n4-sa0" || f.name() == "n4-sa1")
            .cloned()
            .collect();
        let report = run_idd_campaign(&c1.bench, &[vdd], &faults, 0.05).unwrap();
        for o in &report.outcomes {
            assert!(
                o.figure_pct() > 60.0,
                "{} under-detected in IDD",
                o.fault.name()
            );
        }
    }
}
