//! Figure-4 assembly: detection instances per faulty circuit.

use faultsim::campaign::CampaignReport;

/// One bar of the paper's Figure 4: a faulty circuit variant and the
/// percentage of detection instances its signature showed.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectionEntry {
    /// Which example circuit (1, 2 or 3).
    pub circuit: u8,
    /// Fault label (e.g. `n7-sa0`, `n5-n8-bridge`).
    pub fault: String,
    /// Detection instances, percent.
    pub pct: f64,
}

/// The assembled Figure-4 dataset.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DetectionFigure {
    entries: Vec<DetectionEntry>,
}

impl DetectionFigure {
    /// Creates an empty figure.
    pub fn new() -> Self {
        DetectionFigure::default()
    }

    /// Adds a whole campaign's outcomes under a circuit number.
    pub fn add_campaign(&mut self, circuit: u8, report: &CampaignReport) {
        for outcome in &report.outcomes {
            self.entries.push(DetectionEntry {
                circuit,
                fault: outcome.fault.name().to_string(),
                pct: outcome.figure_pct(),
            });
        }
    }

    /// Adds a single precomputed entry (used by the impulse-response
    /// approach, which scores faults outside a [`CampaignReport`]).
    pub fn add_entry(&mut self, circuit: u8, fault: &str, pct: f64) {
        self.entries.push(DetectionEntry {
            circuit,
            fault: fault.to_string(),
            pct,
        });
    }

    /// All entries in insertion order.
    pub fn entries(&self) -> &[DetectionEntry] {
        &self.entries
    }

    /// Entries for one circuit.
    pub fn circuit(&self, circuit: u8) -> Vec<&DetectionEntry> {
        self.entries
            .iter()
            .filter(|e| e.circuit == circuit)
            .collect()
    }

    /// Minimum detection percentage over a circuit's faults (the
    /// paper highlights circuit 3's ≈70 % floor), or `None` if the
    /// circuit has no entries.
    pub fn floor(&self, circuit: u8) -> Option<f64> {
        self.circuit(circuit)
            .iter()
            .map(|e| e.pct)
            .min_by(|a, b| a.total_cmp(b))
    }

    /// Mean detection percentage for a circuit, or `None` if empty.
    pub fn mean(&self, circuit: u8) -> Option<f64> {
        let pcts: Vec<f64> = self.circuit(circuit).iter().map(|e| e.pct).collect();
        if pcts.is_empty() {
            None
        } else {
            Some(pcts.iter().sum::<f64>() / pcts.len() as f64)
        }
    }

    /// Renders the figure as an aligned text table (one row per faulty
    /// circuit), the form the experiment binaries print.
    pub fn to_table(&self) -> String {
        let mut table = obs::Table::new(&["circuit", "fault", "detection %"]).align(&[
            obs::Align::Center,
            obs::Align::Left,
            obs::Align::Right,
        ]);
        for e in &self.entries {
            table.row(&[
                e.circuit.to_string(),
                e.fault.clone(),
                format!("{:.1}", e.pct),
            ]);
        }
        table.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure() -> DetectionFigure {
        let mut f = DetectionFigure::new();
        f.add_entry(1, "n4-sa0", 95.0);
        f.add_entry(1, "n7-sa1", 88.0);
        f.add_entry(3, "n5-sa0", 70.0);
        f.add_entry(3, "n8-sa1", 91.0);
        f
    }

    #[test]
    fn floor_finds_minimum() {
        let f = figure();
        assert_eq!(f.floor(3), Some(70.0));
        assert_eq!(f.floor(1), Some(88.0));
        assert_eq!(f.floor(2), None);
    }

    #[test]
    fn mean_averages_circuit_entries() {
        let f = figure();
        assert_eq!(f.mean(1), Some(91.5));
        assert_eq!(f.mean(2), None);
    }

    #[test]
    fn circuit_filter() {
        let f = figure();
        assert_eq!(f.circuit(1).len(), 2);
        assert_eq!(f.circuit(3).len(), 2);
    }

    #[test]
    fn table_lists_every_entry() {
        let f = figure();
        let t = f.to_table();
        assert!(t.contains("n4-sa0"));
        assert!(t.contains("70.0"));
        assert_eq!(t.lines().count(), 5);
    }
}
