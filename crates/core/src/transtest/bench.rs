//! The transient-response test bench (approach 1: correlation).

use anasim::devices::Device;
use anasim::netlist::{DeviceId, Netlist, NodeId};
use anasim::robust::SolveSettings;
use anasim::source::SourceWaveform;
use anasim::transient::TransientAnalysis;
use anasim::AnalysisError;
use faultsim::campaign::{run_campaign, run_campaign_with, CampaignConfig, CampaignReport};
use faultsim::model::Fault;
use sigproc::correlation::{cross_correlation, cross_correlation_timed, energy};

use super::stimulus::PrbsStimulus;

/// A self-contained transient-response test bench: a circuit netlist
/// with its PRBS stimulus source, the observed output node, and the
/// sampling configuration.
///
/// The bench can sample raw responses, form correlation signatures and
/// run whole fault campaigns, reproducing the paper's Figure 4 flow.
#[derive(Debug, Clone)]
pub struct TransientTestBench {
    netlist: Netlist,
    stimulus_source: DeviceId,
    output: NodeId,
    stimulus: PrbsStimulus,
    samples_per_bit: usize,
    sim_dt: f64,
    periods: usize,
}

impl TransientTestBench {
    /// Creates a bench around `netlist`.
    ///
    /// `stimulus_source` must be the voltage source playing the PRBS
    /// (its waveform is overwritten with the stimulus), `output` the
    /// observed node.
    ///
    /// # Panics
    ///
    /// Panics if `samples_per_bit` is zero, `sim_dt` is not positive, or
    /// `stimulus_source` is not a voltage source of `netlist`.
    pub fn new(
        mut netlist: Netlist,
        stimulus_source: DeviceId,
        output: NodeId,
        stimulus: PrbsStimulus,
        samples_per_bit: usize,
        sim_dt: f64,
    ) -> Self {
        assert!(samples_per_bit >= 1, "need at least one sample per bit");
        assert!(sim_dt > 0.0, "sim_dt must be positive");
        match netlist.device_mut(stimulus_source) {
            Device::Vsource { wave, .. } => *wave = stimulus.source_waveform(),
            other => panic!("stimulus source must be a vsource, found {other:?}"),
        }
        TransientTestBench {
            netlist,
            stimulus_source,
            output,
            stimulus,
            samples_per_bit,
            sim_dt,
            periods: 1,
        }
    }

    /// Runs the stimulus for `periods` full PRBS sequences instead of
    /// one. Stateful circuits (the SC integrators) need several periods
    /// for their dynamics to traverse the observable range — the paper
    /// simulated 2 ms (≈27 sequence periods at the 5 µs clock).
    ///
    /// # Panics
    ///
    /// Panics if `periods` is zero.
    pub fn with_periods(mut self, periods: usize) -> Self {
        assert!(periods >= 1, "need at least one period");
        self.periods = periods;
        self
    }

    /// The golden netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The stimulus configuration.
    pub fn stimulus(&self) -> &PrbsStimulus {
        &self.stimulus
    }

    /// The stimulus source device.
    pub fn stimulus_source(&self) -> DeviceId {
        self.stimulus_source
    }

    /// The observed output node.
    pub fn output(&self) -> NodeId {
        self.output
    }

    /// Number of response samples a run produces.
    pub fn sample_count(&self) -> usize {
        self.stimulus.bits().len() * self.samples_per_bit * self.periods
    }

    /// Number of PRBS sequence periods a run covers.
    pub fn periods(&self) -> usize {
        self.periods
    }

    /// Simulates a (possibly fault-injected) variant of the bench
    /// netlist and samples the output uniformly.
    ///
    /// # Errors
    ///
    /// Propagates simulator non-convergence.
    pub fn response(&self, netlist: &Netlist) -> Result<Vec<f64>, AnalysisError> {
        self.response_at(netlist, self.output)
    }

    /// Like [`TransientTestBench::response`] but probing an arbitrary
    /// node (e.g. an internal sub-macro output).
    ///
    /// # Errors
    ///
    /// Propagates simulator non-convergence.
    pub fn response_at(
        &self,
        netlist: &Netlist,
        node: NodeId,
    ) -> Result<Vec<f64>, AnalysisError> {
        let t_stop = self.stimulus.total_duration() * self.periods as f64;
        let result = TransientAnalysis::new(t_stop, self.sim_dt).run(netlist)?;
        self.sample_voltage(&result, node)
    }

    /// [`TransientTestBench::response_at`] under explicit
    /// [`SolveSettings`] — the hook the resilient campaign engine uses
    /// to retry extractions down the escalation ladder.
    ///
    /// # Errors
    ///
    /// Propagates simulator non-convergence and budget exhaustion.
    pub fn response_at_with(
        &self,
        netlist: &Netlist,
        node: NodeId,
        settings: &SolveSettings,
    ) -> Result<Vec<f64>, AnalysisError> {
        let t_stop = self.stimulus.total_duration() * self.periods as f64;
        let result = TransientAnalysis::new(t_stop, self.sim_dt)
            .with_settings(settings)
            .run(netlist)?;
        self.sample_voltage(&result, node)
    }

    /// [`TransientTestBench::response`] under explicit [`SolveSettings`].
    ///
    /// # Errors
    ///
    /// Propagates simulator non-convergence and budget exhaustion.
    pub fn response_with(
        &self,
        netlist: &Netlist,
        settings: &SolveSettings,
    ) -> Result<Vec<f64>, AnalysisError> {
        self.response_at_with(netlist, self.output, settings)
    }

    fn sample_voltage(
        &self,
        result: &anasim::transient::TransientResult,
        node: NodeId,
    ) -> Result<Vec<f64>, AnalysisError> {
        let w = result.voltage(node);
        let dt = self.stimulus.sample_period(self.samples_per_bit);
        Ok((0..self.sample_count())
            .map(|k| w.value_at((k as f64 + 0.5) * dt))
            .collect())
    }

    /// Samples the summed branch currents of the given voltage-defined
    /// devices (e.g. all supply sources) on the response grid — the
    /// dynamic supply-current waveform used by IDD testing.
    ///
    /// # Errors
    ///
    /// Propagates simulator non-convergence; returns
    /// [`AnalysisError::UnknownElement`] if a device has no branch
    /// current.
    pub fn current_response(
        &self,
        netlist: &Netlist,
        devices: &[DeviceId],
    ) -> Result<Vec<f64>, AnalysisError> {
        self.current_response_with(netlist, devices, &SolveSettings::default())
    }

    /// [`TransientTestBench::current_response`] under explicit
    /// [`SolveSettings`].
    ///
    /// # Errors
    ///
    /// As [`TransientTestBench::current_response`], plus budget
    /// exhaustion.
    pub fn current_response_with(
        &self,
        netlist: &Netlist,
        devices: &[DeviceId],
        settings: &SolveSettings,
    ) -> Result<Vec<f64>, AnalysisError> {
        let t_stop = self.stimulus.total_duration() * self.periods as f64;
        let result = TransientAnalysis::new(t_stop, self.sim_dt)
            .with_settings(settings)
            .run(netlist)?;
        let mut waves = Vec::with_capacity(devices.len());
        for &d in devices {
            let w = result.branch_current(d).ok_or_else(|| {
                AnalysisError::UnknownElement(format!(
                    "device {} has no branch current",
                    netlist.device_name(d)
                ))
            })?;
            waves.push(w);
        }
        let dt = self.stimulus.sample_period(self.samples_per_bit);
        Ok((0..self.sample_count())
            .map(|k| {
                let t = (k as f64 + 0.5) * dt;
                waves.iter().map(|w| w.value_at(t)).sum()
            })
            .collect())
    }

    /// The correlation signature `R(y, p)` of a netlist variant: the
    /// cross-correlation of the (mean-removed) sampled output with the
    /// stimulus-derived correlation signal, normalised by the
    /// *stimulus* energy only.
    ///
    /// With a PRBS stimulus this approximates the composite impulse
    /// response of the propagating path — including its gain, so faults
    /// that attenuate or rescale the response (bias shifts, stuck
    /// stages) remain visible. Normalising by the response energy as
    /// well would erase exactly those faults, since any scaled copy of
    /// the golden response would produce an identical signature.
    ///
    /// # Errors
    ///
    /// Propagates simulator non-convergence.
    pub fn correlation_signature(&self, netlist: &Netlist) -> Result<Vec<f64>, AnalysisError> {
        self.correlation_signature_with(netlist, &SolveSettings::default())
    }

    /// [`TransientTestBench::correlation_signature`] under explicit
    /// [`SolveSettings`].
    ///
    /// # Errors
    ///
    /// Propagates simulator non-convergence and budget exhaustion.
    pub fn correlation_signature_with(
        &self,
        netlist: &Netlist,
        settings: &SolveSettings,
    ) -> Result<Vec<f64>, AnalysisError> {
        // The raw response is correlated — deliberately without mean
        // removal: a shifted DC operating level is one of the strongest
        // fault signatures (stuck stages, bias faults), and the PRBS's
        // slight bit imbalance carries it into the correlation function.
        let y = self.response_with(netlist, settings)?;
        let one_period = self.stimulus.correlation_signal(self.samples_per_bit);
        let p: Vec<f64> = std::iter::repeat_n(one_period, self.periods)
            .flatten()
            .collect();
        let e_p = energy(&p);
        // Route through the timed variant when the solve settings carry
        // a recorder, so signature cost shows up next to solver cost.
        let r = match settings.metrics.as_ref().and_then(|m| m.recorder()) {
            Some(recorder) => cross_correlation_timed(&y, &p, recorder),
            None => cross_correlation(&y, &p),
        };
        Ok(r.into_iter().map(|v| v / e_p).collect())
    }

    /// Runs a fault campaign with correlation signatures, counting
    /// detection instances against `threshold`.
    ///
    /// # Errors
    ///
    /// Fails only if the golden circuit cannot be simulated; per-fault
    /// failures are recorded in the report.
    pub fn run_correlation_campaign(
        &self,
        faults: &[Fault],
        threshold: f64,
    ) -> Result<CampaignReport, AnalysisError> {
        run_campaign(&self.netlist, faults, threshold, |nl| {
            self.correlation_signature(nl)
        })
    }

    /// Runs a correlation-signature fault campaign on the resilient
    /// engine: escalation ladder, per-fault budgets and optional
    /// parallel workers from `config`.
    ///
    /// # Errors
    ///
    /// Fails only if the golden circuit cannot be simulated; per-fault
    /// failures become typed [`faultsim::campaign::FaultStatus`]es.
    pub fn run_correlation_campaign_with(
        &self,
        faults: &[Fault],
        config: &CampaignConfig,
    ) -> Result<CampaignReport, AnalysisError> {
        run_campaign_with(&self.netlist, faults, config, |nl, settings| {
            self.correlation_signature_with(nl, settings)
        })
    }

    /// The spectral signature of a netlist variant: the one-sided power
    /// spectrum (Hann periodogram) of the sampled response.
    ///
    /// The paper motivates detection in the frequency domain directly:
    /// "possible minor changes to the signal spectrum, indicative of
    /// circuit faults, can be detected". The spectrum is insensitive to
    /// time alignment, trading away the lag localisation the
    /// correlation signature provides.
    ///
    /// # Errors
    ///
    /// Propagates simulator non-convergence.
    pub fn spectral_signature(&self, netlist: &Netlist) -> Result<Vec<f64>, AnalysisError> {
        self.spectral_signature_with(netlist, &SolveSettings::default())
    }

    /// [`TransientTestBench::spectral_signature`] under explicit
    /// [`SolveSettings`].
    ///
    /// # Errors
    ///
    /// Propagates simulator non-convergence and budget exhaustion.
    pub fn spectral_signature_with(
        &self,
        netlist: &Netlist,
        settings: &SolveSettings,
    ) -> Result<Vec<f64>, AnalysisError> {
        let y = self.response_with(netlist, settings)?;
        let sample_hz = 1.0 / self.stimulus.sample_period(self.samples_per_bit);
        let window = sigproc::spectrum::Window::Hann;
        let psd = match settings.metrics.as_ref().and_then(|m| m.recorder()) {
            Some(recorder) => {
                sigproc::spectrum::periodogram_timed(&y, window, sample_hz, recorder)
            }
            None => sigproc::spectrum::periodogram(&y, window, sample_hz),
        };
        Ok(psd.power)
    }

    /// Runs a fault campaign on spectral signatures.
    ///
    /// # Errors
    ///
    /// Fails only if the golden circuit cannot be simulated.
    pub fn run_spectral_campaign(
        &self,
        faults: &[Fault],
        threshold: f64,
    ) -> Result<CampaignReport, AnalysisError> {
        run_campaign(&self.netlist, faults, threshold, |nl| {
            self.spectral_signature(nl)
        })
    }

    /// Runs a spectral-signature fault campaign on the resilient engine.
    ///
    /// # Errors
    ///
    /// Fails only if the golden circuit cannot be simulated.
    pub fn run_spectral_campaign_with(
        &self,
        faults: &[Fault],
        config: &CampaignConfig,
    ) -> Result<CampaignReport, AnalysisError> {
        run_campaign_with(&self.netlist, faults, config, |nl, settings| {
            self.spectral_signature_with(nl, settings)
        })
    }

    /// Runs a fault campaign on raw sampled responses (no correlation) —
    /// the simplest possible signature, used as an ablation baseline.
    ///
    /// # Errors
    ///
    /// Fails only if the golden circuit cannot be simulated.
    pub fn run_raw_campaign(
        &self,
        faults: &[Fault],
        threshold: f64,
    ) -> Result<CampaignReport, AnalysisError> {
        run_campaign(&self.netlist, faults, threshold, |nl| self.response(nl))
    }

    /// Runs a raw-response fault campaign on the resilient engine.
    ///
    /// # Errors
    ///
    /// Fails only if the golden circuit cannot be simulated.
    pub fn run_raw_campaign_with(
        &self,
        faults: &[Fault],
        config: &CampaignConfig,
    ) -> Result<CampaignReport, AnalysisError> {
        run_campaign_with(&self.netlist, faults, config, |nl, settings| {
            self.response_with(nl, settings)
        })
    }

    /// Returns a copy of the golden netlist with the stimulus source
    /// rewritten to `wave` (used by the impulse-response approach).
    pub fn with_input_wave(&self, wave: SourceWaveform) -> Netlist {
        let mut nl = self.netlist.clone();
        match nl.device_mut(self.stimulus_source) {
            Device::Vsource { wave: w, .. } => *w = wave,
            _ => unreachable!("validated at construction"),
        }
        nl
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultsim::model::Fault;

    /// A simple RC low-pass as the circuit under test: fast to simulate
    /// and fully analysable.
    fn rc_bench() -> (TransientTestBench, NodeId) {
        let mut nl = Netlist::new();
        let vin = nl.node("vin");
        let out = nl.node("out");
        let src = nl.vsource("VSTIM", vin, Netlist::GROUND, SourceWaveform::dc(0.0));
        nl.resistor("R1", vin, out, 10e3);
        nl.capacitor("C1", out, Netlist::GROUND, 2e-9); // tau = 20 us
        let stim = PrbsStimulus::paper_circuit1();
        (
            TransientTestBench::new(nl, src, out, stim, 4, 5e-6),
            out,
        )
    }

    #[test]
    fn response_has_expected_length() {
        let (bench, _) = rc_bench();
        let y = bench.response(bench.netlist()).unwrap();
        assert_eq!(y.len(), 60); // 15 bits * 4 samples
    }

    #[test]
    fn response_tracks_stimulus_levels() {
        let (bench, _) = rc_bench();
        let y = bench.response(bench.netlist()).unwrap();
        // tau (20 us) << bit period (250 us): by the last sample of each
        // bit the output has settled to the 0/5 V stimulus level.
        for (k, chunk) in y.chunks(4).enumerate() {
            let v = chunk[3];
            assert!(!(0.3..=4.7).contains(&v), "bit {k} unsettled at {v}");
        }
    }

    #[test]
    fn correlation_signature_scales_with_response_gain() {
        // Halving the response amplitude must halve the signature: the
        // impulse-response estimate keeps gain information.
        let (bench, _) = rc_bench();
        let sig = bench.correlation_signature(bench.netlist()).unwrap();
        assert!(sig.iter().any(|v| v.abs() > 0.1));
        // An attenuated variant: double R1 so the divider halves... use a
        // netlist with an output attenuator instead.
        let mut nl = bench.netlist().clone();
        let out = nl.find_node("out").unwrap();
        let vin = nl.find_node("vin").unwrap();
        nl.resistor("RATT", vin, out, 10e3); // parallel path halves swing? keep simple: load out
        let sig2 = bench.correlation_signature(&nl).unwrap();
        // The loaded circuit has different gain, so the signature differs.
        let diff = sig
            .iter()
            .zip(&sig2)
            .filter(|(a, b)| (*a - *b).abs() > 0.01)
            .count();
        assert!(diff > sig.len() / 4, "only {diff} lags differ");
    }

    #[test]
    fn campaign_detects_output_stuck() {
        let (bench, out) = rc_bench();
        let faults = vec![
            Fault::stuck_at_0("out-sa0", out),
            Fault::stuck_at_1("out-sa1", out),
        ];
        let report = bench.run_correlation_campaign(&faults, 0.01).unwrap();
        for o in &report.outcomes {
            assert!(
                o.figure_pct() > 25.0,
                "{} weakly detected ({:?})",
                o.fault.name(),
                o.detection_pct()
            );
        }
    }

    #[test]
    fn raw_and_correlation_campaigns_agree_on_hard_faults() {
        let (bench, out) = rc_bench();
        let faults = vec![Fault::stuck_at_1("out-sa1", out)];
        let raw = bench.run_raw_campaign(&faults, 0.5).unwrap();
        let cor = bench.run_correlation_campaign(&faults, 0.01).unwrap();
        assert!(raw.outcomes[0].is_detected(50.0));
        // The correlation of this fast RC is concentrated near zero lag,
        // so fewer instances deviate than with raw sampling; it is still
        // a clear detection.
        assert!(cor.outcomes[0].is_detected(25.0));
    }

    #[test]
    fn spectral_signature_detects_dynamics_change() {
        // Doubling the RC time constant moves the response spectrum.
        let (bench, _) = rc_bench();
        let golden = bench.spectral_signature(bench.netlist()).unwrap();
        let mut slow = bench.netlist().clone();
        let c1 = slow.find_device("C1").unwrap();
        match slow.device_mut(c1) {
            Device::Capacitor { farads, .. } => *farads *= 4.0,
            _ => unreachable!(),
        }
        let faulty = bench.spectral_signature(&slow).unwrap();
        assert_eq!(golden.len(), faulty.len());
        let peak = golden.iter().fold(0.0_f64, |m, &v| m.max(v));
        let moved = golden
            .iter()
            .zip(&faulty)
            .filter(|(a, b)| (*a - *b).abs() > 0.001 * peak)
            .count();
        assert!(moved > golden.len() / 8, "only {moved} bins moved");
    }

    #[test]
    fn spectral_campaign_detects_stuck_output() {
        let (bench, out) = rc_bench();
        let golden = bench.spectral_signature(bench.netlist()).unwrap();
        let peak = golden.iter().fold(0.0_f64, |m, &v| m.max(v));
        let faults = vec![Fault::stuck_at_0("out-sa0", out)];
        let report = bench
            .run_spectral_campaign(&faults, 0.001 * peak)
            .unwrap();
        assert!(
            report.outcomes[0].figure_pct() > 25.0,
            "{:?}",
            report.outcomes[0].detection_pct()
        );
    }

    #[test]
    #[should_panic(expected = "vsource")]
    fn non_source_stimulus_rejected() {
        let mut nl = Netlist::new();
        let vin = nl.node("vin");
        let out = nl.node("out");
        let r = nl.resistor("R1", vin, out, 1e3);
        let stim = PrbsStimulus::paper_circuit1();
        let _ = TransientTestBench::new(nl, r, out, stim, 4, 5e-6);
    }
}
