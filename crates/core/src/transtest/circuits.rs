//! The paper's three example circuits, packaged as test benches with
//! their published fault universes.
//!
//! * **Circuit 1**: the OP1 13-transistor op-amp, PRBS of 15 bits at
//!   250 µs / 0–5 V on In+ against a fixed reference on In−. Fault
//!   universe: stuck-at-0/1 on the major nodes 4, 5, 7, 8 and 3
//!   (10 faults) plus both-polarity double stuck-ats on node pairs 8–9,
//!   5–8 and 4–6 (6 faults) — the paper's 16 faulty circuits.
//! * **Circuit 2**: SC integrator followed by a comparator
//!   (28 transistors), clocked at 5 µs.
//! * **Circuit 3**: the SC integrator alone (15 transistors).
//!
//! Circuits 2 and 3 share the paper's integrator fault universe:
//! stuck-at-0/1 on the integrator op-amp's nodes 4, 5, 7, 8 and 9
//! (10 faults) plus bridges 6–7 and 5–8 (2 faults) — 12 faulty circuits
//! each.

use anasim::netlist::Netlist;
use anasim::source::SourceWaveform;
use faultsim::model::{bridge_universe, double_stuck_universe, stuck_at_universe, Fault};
use macrolib::circuit2::{Circuit2, Circuit2Params};
use macrolib::op1::Op1;
use macrolib::process::ProcessParams;
use macrolib::sc_integrator::{ScIntegrator, ScIntegratorParams};

use super::bench::TransientTestBench;
use super::stimulus::PrbsStimulus;

/// A packaged example circuit: its bench plus the paper's fault
/// universe.
#[derive(Debug, Clone)]
pub struct ExampleCircuit {
    /// Paper circuit number (1, 2 or 3).
    pub number: u8,
    /// The transient test bench (golden netlist + stimulus + probe).
    pub bench: TransientTestBench,
    /// The published fault universe.
    pub faults: Vec<Fault>,
    /// Node probed by the impulse-response (approach 2) method: the
    /// linear(isable) sub-macro output — the integrator output for the
    /// SC circuits, the main output otherwise.
    pub impulse_probe: anasim::netlist::NodeId,
    /// The supply sources whose summed current forms the dynamic-IDD
    /// signature.
    pub vdd_sources: Vec<anasim::netlist::DeviceId>,
}

/// Builds circuit 1: OP1 with the paper's 0–5 V PRBS on In+ and a 2.5 V
/// reference on In− (comparator configuration), observing the output.
pub fn circuit1(process: &ProcessParams) -> ExampleCircuit {
    let mut nl = Netlist::new();
    let op1 = Op1::build(&mut nl, "c1", process);
    let src = nl.vsource(
        "c1:VSTIM",
        op1.in_p(),
        Netlist::GROUND,
        SourceWaveform::dc(0.0),
    );
    nl.vsource(
        "c1:VREF",
        op1.in_n(),
        Netlist::GROUND,
        SourceWaveform::dc(2.5),
    );

    let mut faults = stuck_at_universe(&op1.single_fault_nodes());
    faults.extend(double_stuck_universe(&op1.bridge_fault_pairs()));

    let stimulus = PrbsStimulus::paper_circuit1();
    let out = op1.out();
    let vdd_sources = vec![nl.find_device("c1:VDD").expect("op1 supply")];
    let bench = TransientTestBench::new(nl, src, out, stimulus, 8, 2e-6);
    ExampleCircuit {
        number: 1,
        bench,
        faults,
        impulse_probe: out,
        vdd_sources,
    }
}

/// The integrator fault universe shared by circuits 2 and 3: stuck-ats
/// on op-amp nodes 4, 5, 7, 8, 9 and bridges 6–7, 5–8.
fn integrator_faults(op1: &Op1) -> Vec<Fault> {
    let nodes: Vec<(u8, anasim::netlist::NodeId)> = [4u8, 5, 7, 8, 9]
        .into_iter()
        .map(|k| (k, op1.node(k)))
        .collect();
    let mut faults = stuck_at_universe(&nodes);
    faults.extend(bridge_universe(&[
        ((6, op1.node(6)), (7, op1.node(7))),
        ((5, op1.node(5)), (8, op1.node(8))),
    ]));
    faults
}

/// Stimulus shared by the SC circuits: one PRBS bit per SC clock cycle,
/// levels ±0.25 V around analogue ground. The PRBS's 8-vs-7 bit
/// imbalance is oriented so the inverting integrator drifts *upwards*
/// (+37 mV per 15-cycle sequence), sweeping the integrator output
/// through the observable range — and, in circuit 2, through the
/// comparator's 0.64 V reference — over the paper's 2 ms window.
fn sc_stimulus(params: &ScIntegratorParams) -> PrbsStimulus {
    PrbsStimulus::new(4, params.clock_period, 2.5 + 0.25, 2.5 - 0.25)
}

/// PRBS sequence periods the SC circuits run: ≈1.6 ms of the paper's
/// 2 ms window (the remainder would clip the follower output stage).
const SC_PERIODS: usize = 21;

/// Builds circuit 3: the SC integrator alone (15 transistors),
/// observing the integrator output.
pub fn circuit3(process: &ProcessParams) -> ExampleCircuit {
    let params = ScIntegratorParams::paper_defaults();
    let mut nl = Netlist::new();
    let sc = ScIntegrator::build(&mut nl, "c3", process, &params);
    let src = nl.vsource("c3:VSTIM", sc.vin, Netlist::GROUND, SourceWaveform::dc(0.0));
    let op1 = sc.op1().expect("paper defaults use the transistor op-amp");
    let faults = integrator_faults(op1);
    let vdd_sources = vec![nl.find_device("c3:op1:VDD").expect("op1 supply")];
    let bench = TransientTestBench::new(nl, src, sc.out, sc_stimulus(&params), 2, 50e-9)
        .with_periods(SC_PERIODS);
    ExampleCircuit {
        number: 3,
        bench,
        faults,
        impulse_probe: sc.out,
        vdd_sources,
    }
}

/// Builds circuit 2: SC integrator followed by a comparator
/// (28 transistors), observing the comparator output.
pub fn circuit2(process: &ProcessParams) -> ExampleCircuit {
    let params = Circuit2Params::paper_defaults();
    let mut nl = Netlist::new();
    let c2 = Circuit2::build(&mut nl, "c2", process, &params);
    let src = nl.vsource("c2:VSTIM", c2.vin, Netlist::GROUND, SourceWaveform::dc(0.0));
    let op1 = c2
        .integrator()
        .op1()
        .expect("paper defaults use the transistor op-amp")
        .clone();
    let faults = integrator_faults(&op1);
    let vdd_sources = vec![
        nl.find_device("c2:int:op1:VDD").expect("integrator supply"),
        nl.find_device("c2:cmp:VDD").expect("comparator supply"),
    ];
    let bench = TransientTestBench::new(
        nl,
        src,
        c2.out,
        sc_stimulus(&params.integrator),
        2,
        50e-9,
    )
    .with_periods(SC_PERIODS);
    ExampleCircuit {
        number: 2,
        bench,
        faults,
        impulse_probe: c2.integrator_out,
        vdd_sources,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn circuit1_has_sixteen_faults() {
        let c = circuit1(&ProcessParams::nominal());
        assert_eq!(c.faults.len(), 16);
        assert_eq!(c.number, 1);
        assert_eq!(c.bench.netlist().transistor_count(), 13);
    }

    #[test]
    fn circuits_2_and_3_have_twelve_faults() {
        let c3 = circuit3(&ProcessParams::nominal());
        assert_eq!(c3.faults.len(), 12);
        assert_eq!(c3.bench.netlist().transistor_count(), 15);
        let c2 = circuit2(&ProcessParams::nominal());
        assert_eq!(c2.faults.len(), 12);
        assert_eq!(c2.bench.netlist().transistor_count(), 28);
    }

    #[test]
    fn fault_names_follow_paper_node_numbers() {
        let c = circuit1(&ProcessParams::nominal());
        let names: Vec<&str> = c.faults.iter().map(|f| f.name()).collect();
        assert!(names.contains(&"n4-sa0"));
        assert!(names.contains(&"n3-sa1"));
        assert!(names.contains(&"n8-n9-dsa0"));
        assert!(names.contains(&"n4-n6-dsa1"));
    }

    #[test]
    fn circuit1_golden_response_simulates() {
        let c = circuit1(&ProcessParams::nominal());
        let y = c.bench.response(c.bench.netlist()).unwrap();
        assert_eq!(y.len(), 15 * 8);
        // Output must move (the comparator toggles with the PRBS).
        let min = y.iter().fold(f64::INFINITY, |m, &v| m.min(v));
        let max = y.iter().fold(f64::NEG_INFINITY, |m, &v| m.max(v));
        assert!(max - min > 1.0, "range {min}..{max}");
    }
}
