//! Transient-response testing of analogue and mixed-signal sub-macros.
//!
//! The paper's technique: a transient stimulus vector propagating
//! through a mixed-signal circuit emerges as the stimulus convolved with
//! the impulse response of every block on the path,
//! `y(t) = x(t) * h(t) * z(t)`. Faults perturb the path's composite
//! impulse response; they are detected by either of two approaches:
//!
//! 1. **Correlation** ([`mod@bench`]): correlate the transient output with a
//!    correlation signal derived from the applied PRBS stimulus — the
//!    correlation function approximates the composite impulse response —
//!    and count the instances at which the faulty correlation deviates
//!    from the fault-free one.
//! 2. **Impulse-response comparison** ([`impulse`]): obtain each
//!    circuit's (faulty and fault-free) linearised dynamics, build a
//!    state-space model, and compare sampled impulse responses — the
//!    paper did this with HSPICE pole/zero extraction and Matlab.
//!
//! [`idd`] adds the dynamic supply-current signature of the related
//! work the paper cites (Binns & Taylor; Arguelles et al.), and
//! [`detect`] assembles the per-fault detection-instance percentages
//! into the series plotted in the paper's Figure 4.

pub mod bench;
pub mod circuits;
pub mod detect;
pub mod idd;
pub mod impulse;
pub mod stimulus;

pub use bench::TransientTestBench;
pub use stimulus::PrbsStimulus;
