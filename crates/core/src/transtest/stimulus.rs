//! PRBS stimulus for transient-response testing.
//!
//! The paper stimulates circuit 1 with "a pseudo random binary sequence
//! of 15 bits with a step size of 250 µS and amplitude of 0 V or 5 V".

use anasim::source::SourceWaveform;
use sigproc::prbs::Prbs;

/// A PRBS stimulus description.
///
/// # Example
///
/// The paper's circuit-1 stimulus:
///
/// ```
/// use msbist::transtest::PrbsStimulus;
///
/// let stim = PrbsStimulus::paper_circuit1();
/// assert_eq!(stim.bits().len(), 15);
/// assert!((stim.total_duration() - 15.0 * 250e-6).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PrbsStimulus {
    bits: Vec<bool>,
    bit_period: f64,
    low: f64,
    high: f64,
}

impl PrbsStimulus {
    /// The paper's stimulus for circuit 1 (the OP1 op-amp): 15-bit PRBS,
    /// 250 µs steps, 0 V / 5 V levels.
    pub fn paper_circuit1() -> Self {
        PrbsStimulus::new(4, 250e-6, 0.0, 5.0)
    }

    /// A stimulus for the switched-capacitor circuits: the same 15-bit
    /// sequence but one SC clock cycle per bit and levels straddling the
    /// 2.5 V analogue ground, keeping the integrator in range over the
    /// run.
    pub fn paper_sc(clock_period: f64) -> Self {
        PrbsStimulus::new(4, clock_period, 2.5 - 0.25, 2.5 + 0.25)
    }

    /// Builds a stimulus from an LFSR with `stages` stages (period
    /// `2^stages − 1` bits).
    ///
    /// # Panics
    ///
    /// Panics if `bit_period` is not positive, or `stages` is outside
    /// the supported 2..=16.
    pub fn new(stages: u32, bit_period: f64, low: f64, high: f64) -> Self {
        assert!(bit_period > 0.0, "bit period must be positive");
        let bits = Prbs::new(stages).sequence();
        PrbsStimulus {
            bits,
            bit_period,
            low,
            high,
        }
    }

    /// The bit pattern.
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// Bit period, seconds.
    pub fn bit_period(&self) -> f64 {
        self.bit_period
    }

    /// Low level, volts.
    pub fn low(&self) -> f64 {
        self.low
    }

    /// High level, volts.
    pub fn high(&self) -> f64 {
        self.high
    }

    /// Duration of one full sequence, seconds.
    pub fn total_duration(&self) -> f64 {
        self.bits.len() as f64 * self.bit_period
    }

    /// The stimulus as a simulator source waveform (repeats after the
    /// sequence ends).
    pub fn source_waveform(&self) -> SourceWaveform {
        SourceWaveform::BitStream {
            bits: self.bits.clone(),
            bit_period: self.bit_period,
            low: self.low,
            high: self.high,
        }
    }

    /// The correlation signal `p(t)` derived from the stimulus: the
    /// sequence in ±1 form sampled `samples_per_bit` times per bit —
    /// correlating the output with this approximates the path's impulse
    /// response.
    ///
    /// # Panics
    ///
    /// Panics if `samples_per_bit` is zero.
    pub fn correlation_signal(&self, samples_per_bit: usize) -> Vec<f64> {
        assert!(samples_per_bit >= 1, "need at least one sample per bit");
        let mut out = Vec::with_capacity(self.bits.len() * samples_per_bit);
        for &b in &self.bits {
            let v = if b { 1.0 } else { -1.0 };
            out.extend(std::iter::repeat_n(v, samples_per_bit));
        }
        out
    }

    /// The sample period implied by `samples_per_bit`.
    pub fn sample_period(&self, samples_per_bit: usize) -> f64 {
        self.bit_period / samples_per_bit as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_circuit1_matches_publication() {
        let s = PrbsStimulus::paper_circuit1();
        assert_eq!(s.bits().len(), 15);
        assert_eq!(s.bit_period(), 250e-6);
        assert_eq!(s.low(), 0.0);
        assert_eq!(s.high(), 5.0);
    }

    #[test]
    fn waveform_plays_the_bits() {
        let s = PrbsStimulus::new(3, 1e-3, 0.0, 5.0);
        let w = s.source_waveform();
        for (k, &b) in s.bits().iter().enumerate() {
            let t = (k as f64 + 0.5) * 1e-3;
            let expect = if b { 5.0 } else { 0.0 };
            assert_eq!(w.value_at(t), expect, "bit {k}");
        }
    }

    #[test]
    fn correlation_signal_is_pm_one() {
        let s = PrbsStimulus::paper_circuit1();
        let p = s.correlation_signal(4);
        assert_eq!(p.len(), 60);
        assert!(p.iter().all(|&v| v == 1.0 || v == -1.0));
    }

    #[test]
    fn sc_stimulus_straddles_analogue_ground() {
        let s = PrbsStimulus::paper_sc(5e-6);
        assert!((s.low() + s.high() - 5.0).abs() < 1e-12);
        assert_eq!(s.bit_period(), 5e-6);
    }

    #[test]
    fn sample_period_divides_bit() {
        let s = PrbsStimulus::paper_circuit1();
        assert!((s.sample_period(5) - 50e-6).abs() < 1e-18);
    }
}
