//! Model-based testing: critical-parameter extraction across a device
//! population.
//!
//! The paper's background cites Souders & Stenbakken [ref 6]: repeated
//! testing of many devices of one design builds a functional model
//! whose analysis "reveals a critical number of variables in the
//! system" — their 13-bit ADC needed over 8000 tests on 50 devices to
//! find 18 critical parameters, which reduced the production test to 18
//! measurements. This module reproduces that flow at our scale: the
//! INL vectors of a simulated batch are decomposed by principal
//! components, the dominant components *are* the critical parameters,
//! and the test-point selector picks the few codes that observe them.

use linsys::matrix::{top_eigenpairs, Matrix};
use macrolib::process::VariationModel;

use crate::adc::DualSlopeAdc;
use crate::charac::characterise_with_resolution;
use crate::device::{DieBatch, VirtualDie};

/// Result of the critical-parameter analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalParameterAnalysis {
    /// Number of devices analysed.
    pub devices: usize,
    /// Mean INL vector across the population (LSB per code).
    pub mean: Vec<f64>,
    /// Per-component `(variance, component vector)` pairs, strongest
    /// first.
    pub components: Vec<(f64, Vec<f64>)>,
    /// Total variance across all codes.
    pub total_variance: f64,
}

impl CriticalParameterAnalysis {
    /// Fraction (0–1) of the population variance the first `k`
    /// components explain.
    pub fn explained_variance(&self, k: usize) -> f64 {
        if self.total_variance <= 0.0 {
            return 1.0;
        }
        let sum: f64 = self.components.iter().take(k).map(|(l, _)| l.max(0.0)).sum();
        (sum / self.total_variance).min(1.0)
    }

    /// The number of components needed to explain `fraction` of the
    /// variance — the "critical number of variables".
    pub fn critical_count(&self, fraction: f64) -> usize {
        for k in 1..=self.components.len() {
            if self.explained_variance(k) >= fraction {
                return k;
            }
        }
        self.components.len()
    }

    /// Selects one test code per critical component: the code where the
    /// component's magnitude peaks — the reduced production-test set of
    /// the Souders flow.
    pub fn critical_test_codes(&self, k: usize) -> Vec<usize> {
        self.components
            .iter()
            .take(k)
            .map(|(_, v)| {
                v.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.abs().total_cmp(&b.1.abs()))
                    .map(|(idx, _)| idx)
                    .unwrap_or(0)
            })
            .collect()
    }
}

/// Analyses a batch: characterises every die over `codes` codes, forms
/// the centred INL matrix, and extracts the top `k` principal
/// components of its covariance by power iteration.
///
/// Uses each die's own ADC model; see
/// [`critical_parameters_with`] to analyse a different device mapping
/// (e.g. smooth-error-only devices, whose INL population is low rank).
///
/// # Panics
///
/// Panics if `count < 3` or `codes < 8`.
pub fn critical_parameters(
    count: usize,
    variation: &VariationModel,
    seed: u64,
    codes: u64,
    k: usize,
) -> CriticalParameterAnalysis {
    critical_parameters_with(count, variation, seed, codes, k, |die| die.adc)
}

/// Like [`critical_parameters`] but with a custom die→converter
/// mapping.
///
/// # Panics
///
/// Panics if `count < 3` or `codes < 8`.
pub fn critical_parameters_with<F>(
    count: usize,
    variation: &VariationModel,
    seed: u64,
    codes: u64,
    k: usize,
    device: F,
) -> CriticalParameterAnalysis
where
    F: Fn(&VirtualDie) -> DualSlopeAdc,
{
    assert!(count >= 3, "need at least three devices");
    assert!(codes >= 8, "need at least eight codes");
    let batch = DieBatch::fabricate(count, variation, seed);

    // Collect INL vectors at high ramp resolution (the transition
    // quantisation of the default sweep would otherwise swamp the
    // population structure); truncate to the shortest so rows align.
    let mut rows: Vec<Vec<f64>> = batch
        .iter()
        .map(|die| characterise_with_resolution(&device(die), codes, 256).inl)
        .collect();
    let width = rows.iter().map(Vec::len).min().expect("non-empty batch");
    for r in &mut rows {
        r.truncate(width);
    }

    // Centre.
    let mut mean = vec![0.0; width];
    for r in &rows {
        for (m, v) in mean.iter_mut().zip(r) {
            *m += v;
        }
    }
    mean.iter_mut().for_each(|m| *m /= rows.len() as f64);
    for r in &mut rows {
        for (v, m) in r.iter_mut().zip(&mean) {
            *v -= m;
        }
    }

    // Covariance C = X^T X / (n-1).
    let mut cov = Matrix::zeros(width, width);
    for r in &rows {
        for i in 0..width {
            if r[i] == 0.0 {
                continue;
            }
            for j in 0..width {
                cov[(i, j)] += r[i] * r[j];
            }
        }
    }
    let denom = (rows.len() - 1) as f64;
    for i in 0..width {
        for j in 0..width {
            cov[(i, j)] /= denom;
        }
    }
    let total_variance = (0..width).map(|i| cov[(i, i)]).sum();

    let components = top_eigenpairs(&cov, k.min(width), 300);
    CriticalParameterAnalysis {
        devices: count,
        mean,
        components,
        total_variance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smooth_population_is_low_rank() {
        // Devices whose only die-to-die differences are the smooth
        // knobs (offset, gain, leak): the endpoint fit removes offset
        // and gain from INL entirely, leaving the leak bow — a RANK-ONE
        // population, the cleanest case of the Souders result. The
        // sweep must cover enough of the range that the bow survives
        // the endpoint fit.
        let analysis = critical_parameters_with(
            24,
            &VariationModel::loose(),
            1996,
            200,
            4,
            |die| {
                let base = die.adc.errors();
                DualSlopeAdc::with_errors(crate::adc::AdcErrorModel {
                    ripple_v: 0.0,
                    slow_ripple_v: 0.0,
                    noise_v: 0.0,
                    ..*base
                })
            },
        );
        assert_eq!(analysis.devices, 24);
        let critical = analysis.critical_count(0.95);
        assert!(
            critical <= 2,
            "needed {critical} components for 95 % variance"
        );
    }

    #[test]
    fn ripple_interaction_raises_the_rank() {
        // With the full error model, die-dependent offsets re-sample the
        // fixed SC ripple differently on every die — a nonlinear
        // interaction that spreads INL variance across many components.
        // The contrast with the smooth case is the module's finding.
        let full = critical_parameters(24, &VariationModel::typical(), 1996, 200, 6);
        let smooth = critical_parameters_with(
            24,
            &VariationModel::typical(),
            1996,
            200,
            6,
            |die| {
                let base = die.adc.errors();
                DualSlopeAdc::with_errors(crate::adc::AdcErrorModel {
                    ripple_v: 0.0,
                    slow_ripple_v: 0.0,
                    noise_v: 0.0,
                    ..*base
                })
            },
        );
        assert!(
            full.critical_count(0.9) > smooth.critical_count(0.9),
            "full {} vs smooth {}",
            full.critical_count(0.9),
            smooth.critical_count(0.9)
        );
    }

    #[test]
    fn variance_accounting_is_consistent() {
        let analysis = critical_parameters(12, &VariationModel::typical(), 7, 40, 4);
        // Explained variance is monotone non-decreasing and bounded.
        let mut last = 0.0;
        for k in 1..=4 {
            let e = analysis.explained_variance(k);
            assert!(e >= last - 1e-12 && e <= 1.0 + 1e-12, "k={k}: {e}");
            last = e;
        }
        assert!(analysis.total_variance >= 0.0);
    }

    #[test]
    fn critical_codes_are_in_range_and_distinctive() {
        let analysis = critical_parameters(16, &VariationModel::loose(), 42, 50, 3);
        let codes = analysis.critical_test_codes(3);
        assert_eq!(codes.len(), 3);
        for &c in &codes {
            assert!(c < analysis.mean.len());
        }
    }

    #[test]
    fn components_are_orthonormal() {
        let analysis = critical_parameters(16, &VariationModel::typical(), 3, 40, 3);
        for (i, (_, vi)) in analysis.components.iter().enumerate() {
            let norm: f64 = vi.iter().map(|x| x * x).sum();
            assert!((norm - 1.0).abs() < 1e-6, "component {i} norm {norm}");
            for (_, vj) in analysis.components.iter().skip(i + 1) {
                let dot: f64 = vi.iter().zip(vj).map(|(a, b)| a * b).sum();
                assert!(dot.abs() < 1e-4, "components not orthogonal: {dot}");
            }
        }
    }
}
