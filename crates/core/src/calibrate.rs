//! Digital self-calibration from a measured transfer function.
//!
//! The paper's research background gives the converter measurements a
//! second purpose: "This measurement can be used during the final
//! complete ASUT test, to self-calibrate the ADC / DAC macros and
//! formulate the required compensation in the remaining analogue
//! macros." This module closes that loop: a characterisation becomes a
//! per-code correction table, and the wrapped converter presents the
//! corrected transfer.
//!
//! Scope: a lookup table relabels codes but cannot move transition
//! positions, so it corrects the *smooth* error components — offset,
//! gain, integrator-leak bow — down to the ±0.5 LSB relabelling
//! granularity, while sub-code ripple (the DNL saw-tooth) is
//! untouchable digitally and needs analogue trim. Relabelling also
//! redistributes code widths, so post-calibration DNL approaches 1 LSB
//! wherever codes were merged or stretched.

use crate::adc::AdcConverter;
use crate::charac::Characterisation;

/// A per-code digital correction table derived from a characterisation.
///
/// Each raw code maps to the code the *ideal* converter would have
/// produced for the measured transition position — a lookup that
/// removes offset, gain and INL to the resolution of the table.
#[derive(Debug, Clone, PartialEq)]
pub struct CorrectionTable {
    first_code: u64,
    /// `corrected[k]` is the replacement for raw code `first_code + k`.
    corrected: Vec<u64>,
}

impl CorrectionTable {
    /// Builds the table from a characterisation.
    ///
    /// A lookup table can relabel codes but cannot move their
    /// transitions, so each raw code is assigned the ideal code whose
    /// transition is *nearest* the raw code's own measured transition —
    /// minimising the residual INL of the relabelled transfer.
    pub fn from_characterisation(c: &Characterisation) -> Self {
        let lsb = c.lsb;
        let first_code = c.first_code;
        // transitions[i] is the input where code first_code+1+i begins;
        // the ideal converter's code k begins at exactly k·lsb.
        let corrected = c
            .transitions
            .iter()
            .map(|&t| (t / lsb).round().max(0.0) as u64)
            .collect();
        CorrectionTable {
            first_code: first_code + 1,
            corrected,
        }
    }

    /// Corrects a raw code (identity outside the calibrated range).
    pub fn correct(&self, raw: u64) -> u64 {
        if raw < self.first_code {
            return raw;
        }
        let idx = (raw - self.first_code) as usize;
        self.corrected.get(idx).copied().unwrap_or(raw)
    }

    /// Number of calibrated codes.
    pub fn len(&self) -> usize {
        self.corrected.len()
    }

    /// True if no codes were calibrated.
    pub fn is_empty(&self) -> bool {
        self.corrected.is_empty()
    }
}

/// A converter with the digital correction applied after conversion.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibratedAdc<A> {
    inner: A,
    table: CorrectionTable,
}

impl<A: AdcConverter> CalibratedAdc<A> {
    /// Wraps `adc` with the given correction table.
    pub fn new(adc: A, table: CorrectionTable) -> Self {
        CalibratedAdc { inner: adc, table }
    }

    /// Characterises `adc` over `codes` codes and wraps it with the
    /// resulting correction (the full self-calibration flow).
    pub fn self_calibrated(adc: A, codes: u64) -> Self {
        let c = crate::charac::characterise(&adc, codes);
        let table = CorrectionTable::from_characterisation(&c);
        CalibratedAdc { inner: adc, table }
    }

    /// The correction table in use.
    pub fn table(&self) -> &CorrectionTable {
        &self.table
    }

    /// The wrapped converter.
    pub fn into_inner(self) -> A {
        self.inner
    }
}

impl<A: AdcConverter> AdcConverter for CalibratedAdc<A> {
    fn convert(&self, vin: f64) -> u64 {
        self.table.correct(self.inner.convert(vin))
    }

    fn full_scale(&self) -> f64 {
        self.inner.full_scale()
    }

    fn full_count(&self) -> u64 {
        self.inner.full_count()
    }

    fn conversion_time(&self, vin: f64) -> f64 {
        self.inner.conversion_time(vin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adc::spec::AdcSpecification;
    use crate::adc::{AdcErrorModel, DualSlopeAdc};
    use crate::charac::characterise;

    #[test]
    fn identity_on_an_ideal_converter() {
        let adc = DualSlopeAdc::ideal();
        let cal = CalibratedAdc::self_calibrated(adc, 60);
        for k in 1..60u64 {
            let vin = k as f64 * 0.010 + 0.003;
            assert_eq!(cal.convert(vin), adc.convert(vin), "code {k}");
        }
    }

    #[test]
    fn calibration_removes_offset_and_gain() {
        let adc = DualSlopeAdc::with_errors(AdcErrorModel {
            offset_v: 0.02,    // 2 LSB
            gain_error: 0.015, // ~1.5 LSB at code 100
            ..AdcErrorModel::none()
        });
        let cal = CalibratedAdc::self_calibrated(adc, 110);
        let c = characterise(&cal, 100);
        assert!(c.offset_lsb.abs() < 0.6, "offset {}", c.offset_lsb);
        assert!(c.gain_error_lsb.abs() < 0.8, "gain {}", c.gain_error_lsb);
    }

    #[test]
    fn leak_bow_is_substantially_corrected() {
        // The headline application: a macro whose smooth INL bow puts it
        // far out of spec is pulled back to the relabelling floor
        // (~1 LSB: ±0.5 of code reassignment plus the endpoint-fit
        // convention) by the self-calibration the paper's background
        // proposes.
        let raw = DualSlopeAdc::with_errors(AdcErrorModel {
            leak_per_s: 40.0,
            offset_v: 0.003,
            gain_error: -0.01,
            ..AdcErrorModel::none()
        });
        let before = characterise(&raw, 200);
        assert!(
            before.max_inl_lsb() > 2.0,
            "raw INL {} should be far out of spec",
            before.max_inl_lsb()
        );
        assert!(!AdcSpecification::paper().check(&before).passed());

        let cal = CalibratedAdc::self_calibrated(raw, 230);
        let after = characterise(&cal, 200);
        assert!(
            after.max_inl_lsb() < 1.1,
            "INL after calibration {}",
            after.max_inl_lsb()
        );
        assert!(
            after.max_inl_lsb() < before.max_inl_lsb() - 0.8,
            "calibration gained too little: {} -> {}",
            before.max_inl_lsb(),
            after.max_inl_lsb()
        );
    }

    #[test]
    fn ripple_is_beyond_digital_calibration() {
        // Counter-experiment documenting the scope limit: sub-code
        // ripple cannot be relabelled away.
        let raw = DualSlopeAdc::paper_measured();
        let cal = CalibratedAdc::self_calibrated(raw, 110);
        let after = characterise(&cal, 100);
        assert!(
            after.max_dnl_lsb() > 0.8,
            "ripple DNL should remain, got {}",
            after.max_dnl_lsb()
        );
    }

    #[test]
    fn out_of_range_codes_pass_through() {
        let table = CorrectionTable::from_characterisation(&characterise(
            &DualSlopeAdc::ideal(),
            40,
        ));
        assert_eq!(table.correct(0), 0);
        assert_eq!(table.correct(400), 400);
    }

    #[test]
    fn timing_is_unchanged_by_calibration() {
        let adc = DualSlopeAdc::paper_measured();
        let cal = CalibratedAdc::self_calibrated(adc, 60);
        assert_eq!(cal.conversion_time(1.0), adc.conversion_time(1.0));
        assert_eq!(cal.full_count(), adc.full_count());
    }
}
