//! `msbist` — on-chip testing of mixed-signal macros in ASICs.
//!
//! This crate is the primary contribution of the reproduction of
//! R. A. Cobley, *"Approaches to On-chip Testing of Mixed Signal Macros
//! in ASICs"*, ED&TC 1996. It assembles the workspace substrates
//! (`anasim`, `linsys`, `sigproc`, `digisim`, `macrolib`, `faultsim`)
//! into the three systems the paper evaluates:
//!
//! 1. **Quick on-chip tests** of a dual-slope ADC macro using low-cost
//!    analogue test macros — step/ramp generators, a DC level sensor and
//!    signature compression ([`bist`]).
//! 2. **Full specification testing** of the ADC macro — quantisation
//!    error, zero offset, gain error, INL and DNL ([`charac`], Figure 2
//!    of the paper).
//! 3. **Transient-response testing** of analogue sub-macros with PRBS
//!    stimulus, fault injection and correlation/impulse-response
//!    signatures ([`transtest`], Figure 4 of the paper).
//!
//! # Quickstart
//!
//! Convert a voltage with the behavioural dual-slope ADC macro and check
//! it against its specification:
//!
//! ```
//! use msbist::adc::{AdcConverter, DualSlopeAdc};
//!
//! let adc = DualSlopeAdc::ideal();
//! let code = adc.convert(1.25);
//! // 1.25 V of a 2.5 V full scale at 10 mV per code: mid-scale.
//! assert_eq!(code, 125);
//! ```

pub mod adc;
pub mod bist;
pub mod calibrate;
pub mod charac;
pub mod dac_test;
pub mod device;
pub mod model_test;
pub mod self_test;
pub mod sigma_delta;
pub mod transtest;
pub mod yield_analysis;
