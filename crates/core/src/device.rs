//! Virtual dies: the stand-in for the paper's batch of ten fabricated
//! devices.
//!
//! Each die samples the 5 µm process ([`macrolib::process`]) and maps its
//! parameter deviations onto the ADC macro's error model, so a batch of
//! dies behaves like a batch of real chips: every one slightly
//! different, all nominally within specification.

use macrolib::process::{ProcessParams, VariationModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::adc::{AdcErrorModel, DualSlopeAdc};

/// One simulated fabricated device.
#[derive(Debug, Clone, PartialEq)]
pub struct VirtualDie {
    /// Die index within its batch.
    pub index: usize,
    /// The sampled process corner.
    pub process: ProcessParams,
    /// The die's ADC macro.
    pub adc: DualSlopeAdc,
}

impl VirtualDie {
    /// Builds a die from a sampled process corner.
    ///
    /// Mapping from process deviation to macro errors:
    /// * threshold mismatch appears as input-referred offset,
    /// * resistor/capacitor spread perturbs the reference path (gain),
    /// * beta spread weakly modulates integrator leakage.
    pub fn from_process(index: usize, process: ProcessParams) -> Self {
        let base = AdcErrorModel::paper_measured();
        let dvt = process.nmos.vt0 - 1.0;
        let dr = process.resistor_scale - 1.0;
        let dc = process.capacitor_scale - 1.0;
        let dbeta = process.nmos.beta / 40e-6 - 1.0;
        let errors = AdcErrorModel {
            offset_v: base.offset_v + 0.02 * dvt,
            gain_error: base.gain_error + 0.01 * (dr + dc),
            leak_per_s: (base.leak_per_s * (1.0 + 0.5 * dbeta)).max(0.0),
            ..base
        };
        VirtualDie {
            index,
            process,
            adc: DualSlopeAdc::with_errors(errors),
        }
    }
}

/// A batch of virtual dies.
#[derive(Debug, Clone, PartialEq)]
pub struct DieBatch {
    dies: Vec<VirtualDie>,
}

impl DieBatch {
    /// "Fabricates" a batch of `count` dies with the given variation
    /// model and seed (the paper's batch had ten devices).
    pub fn fabricate(count: usize, variation: &VariationModel, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let dies = variation
            .sample_batch(&mut rng, count)
            .into_iter()
            .enumerate()
            .map(|(i, p)| VirtualDie::from_process(i, p))
            .collect();
        DieBatch { dies }
    }

    /// Number of dies.
    pub fn len(&self) -> usize {
        self.dies.len()
    }

    /// True if the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.dies.is_empty()
    }

    /// Iterates over the dies.
    pub fn iter(&self) -> std::slice::Iter<'_, VirtualDie> {
        self.dies.iter()
    }

    /// The dies as a slice.
    pub fn dies(&self) -> &[VirtualDie] {
        &self.dies
    }
}

impl<'a> IntoIterator for &'a DieBatch {
    type Item = &'a VirtualDie;
    type IntoIter = std::slice::Iter<'a, VirtualDie>;

    fn into_iter(self) -> Self::IntoIter {
        self.dies.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adc::AdcConverter;

    #[test]
    fn batch_is_reproducible() {
        let a = DieBatch::fabricate(10, &VariationModel::typical(), 1996);
        let b = DieBatch::fabricate(10, &VariationModel::typical(), 1996);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
    }

    #[test]
    fn dies_differ_from_each_other() {
        let batch = DieBatch::fabricate(10, &VariationModel::typical(), 7);
        let first = &batch.dies()[0];
        assert!(batch
            .iter()
            .skip(1)
            .any(|d| d.adc.errors() != first.adc.errors()));
    }

    #[test]
    fn typical_dies_convert_close_to_nominal() {
        let batch = DieBatch::fabricate(10, &VariationModel::typical(), 42);
        for die in &batch {
            let code = die.adc.convert(1.25);
            assert!(
                (code as i64 - 125).abs() <= 4,
                "die {} gave {code}",
                die.index
            );
        }
    }

    #[test]
    fn indices_are_sequential() {
        let batch = DieBatch::fabricate(5, &VariationModel::typical(), 0);
        for (k, die) in batch.iter().enumerate() {
            assert_eq!(die.index, k);
        }
    }
}
