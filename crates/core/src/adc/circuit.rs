//! Circuit-level dual-slope ADC conversion on an `anasim` netlist.
//!
//! The behavioural model in [`crate::adc::DualSlopeAdc`] captures the
//! macro's error behaviour; this module simulates the actual conversion
//! electrically: an op-amp integrator ramps for the fixed input phase,
//! the reference phase runs it back, and a comparator watching the
//! integrator output ends the conversion. The measured integrator "fall
//! time" of the paper's analogue BIST step test comes straight from this
//! waveform.
//!
//! The macro integrates the *complement* of the input — phase 1
//! accumulates `(v_span + margin − vin)`, phase 2 removes charge at the
//! reference rate — which is why the paper's step-test fall times
//! *decrease* linearly with input amplitude (2.6 ms at 0 V down to
//! 0.1 ms at 2.5 V).

use std::sync::Arc;

use anasim::metrics::SolverMetrics;
use anasim::netlist::Netlist;
use anasim::source::SourceWaveform;
use anasim::transient::TransientAnalysis;
use anasim::waveform::Waveform;
use anasim::AnalysisError;
use macrolib::opamp::{BehavioralOpamp, OpampParams};
use macrolib::process::ProcessParams;
use obs::profile::PhaseProfiler;
use sigproc::measure::{first_crossing_after, CrossingDirection};

use super::AdcConverter;

/// Circuit-level dual-slope ADC.
///
/// # Example
///
/// ```no_run
/// use msbist::adc::circuit::CircuitAdc;
/// use macrolib::process::ProcessParams;
///
/// let adc = CircuitAdc::new(ProcessParams::nominal());
/// let fall = adc.fall_time(1.8).unwrap();
/// assert!((fall - 0.8e-3).abs() < 0.1e-3); // paper: 0.8 ms at 1.8 V
/// ```
#[derive(Debug, Clone)]
pub struct CircuitAdc {
    process: ProcessParams,
    /// Reference (full-scale) voltage.
    vref: f64,
    /// Extra integration margin above full scale, volts (gives the
    /// 0.1 ms residual fall time at full-scale input).
    margin: f64,
    /// Counts in the fixed phase.
    full_count: u64,
    /// Conversion clock.
    clock_hz: f64,
    /// Transient step used for conversion runs.
    sim_dt: f64,
    /// Solver-effort accounting shared across conversion runs.
    metrics: Option<Arc<SolverMetrics>>,
    /// Phase cost-attribution profiler shared across conversion runs.
    profile: Option<Arc<PhaseProfiler>>,
}

impl CircuitAdc {
    /// Creates the nominal macro on the given process corner: 2.5 V
    /// reference, 250 counts, 100 kHz clock.
    pub fn new(process: ProcessParams) -> Self {
        CircuitAdc {
            process,
            vref: 2.5,
            margin: 0.1,
            full_count: 250,
            clock_hz: 100e3,
            sim_dt: 4e-6,
            metrics: None,
            profile: None,
        }
    }

    /// Overrides the simulation timestep (trade accuracy for speed).
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not positive.
    pub fn with_sim_dt(mut self, dt: f64) -> Self {
        assert!(dt > 0.0, "dt must be positive");
        self.sim_dt = dt;
        self
    }

    /// Attaches a shared solver-effort counter: every conversion's
    /// transient run accumulates into it, so callers (the bench
    /// sidecar) can report the macro's true Newton cost instead of 0.
    pub fn with_metrics(mut self, metrics: Arc<SolverMetrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Attaches a shared phase profiler: every conversion's transient
    /// run attributes its wall-clock to solver phases.
    pub fn with_profile(mut self, profile: Arc<PhaseProfiler>) -> Self {
        self.profile = Some(profile);
        self
    }

    /// Duration of the integrator reset phase preceding a conversion.
    const RESET_TIME: f64 = 0.2e-3;

    /// Analogue ground used by the integrator.
    pub fn vag(&self) -> f64 {
        2.5
    }

    /// Fixed input-integration phase duration, seconds.
    pub fn t1(&self) -> f64 {
        self.full_count as f64 / self.clock_hz
    }

    /// Builds and simulates the conversion circuit for input `vin`,
    /// returning the integrator-output waveform.
    ///
    /// # Errors
    ///
    /// Propagates simulator non-convergence.
    pub fn integrator_waveform(&self, vin: f64) -> Result<Waveform, AnalysisError> {
        let t1 = self.t1();
        // RC = 2·T1 halves the swing so the worst-case peak (2.6 V of
        // drive) stays at VAG + 1.3 V, inside the op-amp's output range —
        // the fall-time law t = (v_span + margin − vin)·T1/v_span is RC-
        // independent because both phases share the integrator.
        let rc = 2.0 * t1;
        let r_in = 100e3;
        let c_f = rc / r_in;
        let vag = self.vag();

        let mut nl = Netlist::new();
        let op = BehavioralOpamp::build(&mut nl, "int", &OpampParams::opamp_5um());
        let vin_node = nl.node("vin_eff");
        // Reset phase: input at VAG while a switch shorts CF, defining
        // the starting state (the integrator has no DC feedback path, so
        // the operating point would otherwise rail).
        // Phase 1: effective input below VAG by (v_span + margin − vin),
        // so the inverting integrator ramps UP from VAG.
        // Phase 2: effective input vref above VAG: output falls at the
        // reference slope vref/RC until it recrosses VAG.
        let t_rst = Self::RESET_TIME;
        let drive1 = vag - (self.vref + self.margin - vin);
        let drive2 = vag + self.vref;
        nl.vsource(
            "VIN",
            vin_node,
            Netlist::GROUND,
            SourceWaveform::Pwl(vec![
                (0.0, vag),
                (t_rst, vag),
                (t_rst + 1e-9, drive1),
                (t_rst + t1, drive1),
                (t_rst + t1 + 1e-9, drive2),
            ]),
        );
        let vag_node = nl.node("vag");
        nl.vsource("VAG", vag_node, Netlist::GROUND, SourceWaveform::dc(vag));
        nl.resistor("RVAG", op.in_p, vag_node, 1.0);
        nl.resistor("RIN", vin_node, op.in_n, self.process.resistor(r_in));
        nl.capacitor("CF", op.in_n, op.out, self.process.capacitor(c_f));

        // Reset switch across CF, released as phase 1 begins.
        let rst = nl.node("rst");
        nl.vsource(
            "RSTP",
            rst,
            Netlist::GROUND,
            SourceWaveform::Step {
                initial: self.process.vdd,
                level: 0.0,
                delay: t_rst,
            },
        );
        nl.switch(
            "SRST",
            op.in_n,
            op.out,
            rst,
            Netlist::GROUND,
            anasim::devices::SwitchParams::default(),
        );

        let t_stop = t_rst + t1 * 3.0;
        let mut analysis = TransientAnalysis::new(t_stop, self.sim_dt);
        if let Some(metrics) = &self.metrics {
            analysis = analysis.metrics(Arc::clone(metrics));
        }
        if let Some(profile) = &self.profile {
            analysis = analysis.profile(Arc::clone(profile));
        }
        let res = analysis.run(&nl)?;
        Ok(res.voltage(op.out))
    }

    /// The integrator fall time for a step input of `vin`: the time from
    /// the start of the reference phase until the integrator output
    /// falls back through analogue ground — the quantity the paper's
    /// analogue BIST step test reports (2.6 ms at 0 V … 0.1 ms at
    /// 2.5 V).
    ///
    /// # Errors
    ///
    /// Propagates simulator non-convergence; returns
    /// [`AnalysisError::InvalidParameter`] if the output never crosses
    /// (a dead integrator).
    pub fn fall_time(&self, vin: f64) -> Result<f64, AnalysisError> {
        let w = self.integrator_waveform(vin)?;
        let fall_start = Self::RESET_TIME + self.t1();
        // Threshold slightly below VAG so the phase-1 start (exactly at
        // VAG) is not itself a crossing.
        let cross =
            first_crossing_after(&w, self.vag() - 1e-3, CrossingDirection::Falling, fall_start)
                .ok_or_else(|| {
                    AnalysisError::InvalidParameter("integrator output never fell".into())
                })?;
        Ok(cross - fall_start)
    }

    /// Converts by timing the fall with the conversion counter clock.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn try_convert(&self, vin: f64) -> Result<u64, AnalysisError> {
        let fall = self.fall_time(vin)?;
        let raw = (fall * self.clock_hz).floor() as i64;
        // Complement architecture: large fall time = small input. Map to
        // the conventional increasing code.
        let top = ((self.vref + self.margin) / self.vref * self.full_count as f64).round() as i64;
        Ok((top - raw).clamp(0, 2 * self.full_count as i64) as u64)
    }
}

impl AdcConverter for CircuitAdc {
    /// # Panics
    ///
    /// Panics if the underlying transient simulation fails; use
    /// [`CircuitAdc::try_convert`] to handle errors.
    fn convert(&self, vin: f64) -> u64 {
        self.try_convert(vin)
            .expect("circuit-level conversion failed")
    }

    fn full_scale(&self) -> f64 {
        self.vref
    }

    fn full_count(&self) -> u64 {
        self.full_count
    }

    fn conversion_time(&self, vin: f64) -> f64 {
        match self.fall_time(vin) {
            Ok(fall) => Self::RESET_TIME + self.t1() + fall,
            Err(_) => f64::INFINITY,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adc() -> CircuitAdc {
        // Coarser timestep keeps unit tests quick; benches use default.
        CircuitAdc::new(ProcessParams::nominal()).with_sim_dt(10e-6)
    }

    #[test]
    fn fall_time_tracks_paper_table() {
        let adc = adc();
        // Paper's measured points; tolerances cover the measurement
        // scatter in the published values.
        for (vin, expect_ms, tol_ms) in [
            (0.0, 2.6, 0.1),
            (0.59, 2.01, 0.25),
            (0.96, 1.64, 0.3),
            (1.41, 1.19, 0.15),
            (1.8, 0.8, 0.1),
            (2.5, 0.1, 0.05),
        ] {
            let fall = adc.fall_time(vin).unwrap() * 1e3;
            assert!(
                (fall - expect_ms).abs() < tol_ms,
                "vin = {vin}: fall = {fall:.3} ms, expected ~{expect_ms} ms"
            );
        }
    }

    #[test]
    fn codes_increase_with_input() {
        let adc = adc();
        let c0 = adc.try_convert(0.2).unwrap();
        let c1 = adc.try_convert(1.2).unwrap();
        let c2 = adc.try_convert(2.2).unwrap();
        assert!(c0 < c1 && c1 < c2, "codes {c0}, {c1}, {c2}");
    }

    #[test]
    fn code_scale_matches_10mv_per_lsb() {
        let adc = adc();
        let c = adc.try_convert(1.25).unwrap();
        // 1.25 V at 10 mV/LSB: code 125 (integrator + comparator slop
        // allows a few counts).
        assert!((c as i64 - 125).abs() <= 4, "code {c}");
    }

    #[test]
    fn conversion_time_within_paper_spec() {
        let adc = adc();
        // Worst case is vin = 0 (longest fall): T1 + 2.6 ms ~ 5.1 ms,
        // inside the 5.6 ms specification.
        let t = adc.conversion_time(0.0);
        assert!(t < 5.6e-3, "conversion took {t}");
    }
}
