//! Fault-to-sub-macro diagnosis.
//!
//! The paper partitions the ADC macro at functional level and maps
//! measured failure signatures back onto sub-macros:
//!
//! > "faults in the comparator submacro will contribute to the offset
//! > error and gain error. The integrator submacro faults will affect
//! > the linearity errors, the gain error and the offset error. Counter
//! > submacro faults will show in the INL or DNL error or as regular
//! > missed codes. Faults in the output latch submacro will manifest as
//! > multiple incorrect output codes. Finally control circuit faults
//! > will stop the conversion process."

use crate::adc::spec::SpecReport;
use crate::charac::Characterisation;

/// The five sub-macros of the dual-slope ADC macro.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SubMacro {
    /// Switched-capacitor integrator.
    Integrator,
    /// Comparator.
    Comparator,
    /// Conversion counter.
    Counter,
    /// Output latch.
    OutputLatch,
    /// Control logic.
    Control,
}

/// Symptoms extracted from a characterisation / conversion run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Symptoms {
    /// Zero offset out of specification.
    pub offset_fail: bool,
    /// Gain error out of specification.
    pub gain_fail: bool,
    /// INL out of specification.
    pub inl_fail: bool,
    /// DNL out of specification.
    pub dnl_fail: bool,
    /// Output codes missing at regular intervals.
    pub regular_missed_codes: bool,
    /// Many scattered incorrect output codes.
    pub multiple_incorrect_codes: bool,
    /// Conversion never completes.
    pub conversion_stopped: bool,
}

impl Symptoms {
    /// Derives symptoms from a spec report and characterisation.
    pub fn from_characterisation(report: &SpecReport, c: &Characterisation) -> Self {
        Symptoms {
            offset_fail: !report.offset_ok,
            gain_fail: !report.gain_ok,
            inl_fail: !report.inl_ok,
            dnl_fail: !report.dnl_ok,
            regular_missed_codes: has_regular_gaps(&c.missing_codes),
            multiple_incorrect_codes: c.missing_codes.len() > c.transitions.len() / 4,
            conversion_stopped: false,
        }
    }

    /// The symptom set of a conversion that never finishes.
    pub fn stopped() -> Self {
        Symptoms {
            offset_fail: false,
            gain_fail: false,
            inl_fail: false,
            dnl_fail: false,
            regular_missed_codes: false,
            multiple_incorrect_codes: false,
            conversion_stopped: true,
        }
    }
}

/// True if the missing codes are evenly spaced (the counter-fault
/// signature the paper describes as "regular missed codes").
fn has_regular_gaps(missing: &[u64]) -> bool {
    if missing.len() < 3 {
        return false;
    }
    let d = missing[1] - missing[0];
    // Spacing 1 is a contiguous dead band (range/compression loss), not
    // the counter's periodic skip pattern.
    d >= 2 && missing.windows(2).all(|w| w[1] - w[0] == d)
}

/// Ranks sub-macros by how well their failure signature explains the
/// symptoms, most likely first. Sub-macros with zero matching symptoms
/// are omitted.
pub fn diagnose(symptoms: &Symptoms) -> Vec<(SubMacro, u32)> {
    if symptoms.conversion_stopped {
        return vec![(SubMacro::Control, u32::MAX)];
    }
    let mut scores: Vec<(SubMacro, u32)> = Vec::new();
    let mut add = |m: SubMacro, s: u32| {
        if s > 0 {
            scores.push((m, s));
        }
    };

    add(
        SubMacro::Comparator,
        symptoms.offset_fail as u32 + symptoms.gain_fail as u32,
    );
    add(
        SubMacro::Integrator,
        symptoms.inl_fail as u32
            + symptoms.dnl_fail as u32
            + symptoms.gain_fail as u32
            + symptoms.offset_fail as u32,
    );
    add(
        SubMacro::Counter,
        symptoms.inl_fail as u32
            + symptoms.dnl_fail as u32
            + 3 * symptoms.regular_missed_codes as u32,
    );
    add(
        SubMacro::OutputLatch,
        4 * symptoms.multiple_incorrect_codes as u32,
    );

    scores.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    scores
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_symptoms() -> Symptoms {
        Symptoms {
            offset_fail: false,
            gain_fail: false,
            inl_fail: false,
            dnl_fail: false,
            regular_missed_codes: false,
            multiple_incorrect_codes: false,
            conversion_stopped: false,
        }
    }

    #[test]
    fn stopped_conversion_points_to_control() {
        let d = diagnose(&Symptoms::stopped());
        assert_eq!(d[0].0, SubMacro::Control);
    }

    #[test]
    fn regular_missed_codes_point_to_counter() {
        let d = diagnose(&Symptoms {
            regular_missed_codes: true,
            ..no_symptoms()
        });
        assert_eq!(d[0].0, SubMacro::Counter);
    }

    #[test]
    fn offset_and_gain_implicate_comparator_and_integrator() {
        let d = diagnose(&Symptoms {
            offset_fail: true,
            gain_fail: true,
            ..no_symptoms()
        });
        let macros: Vec<SubMacro> = d.iter().map(|&(m, _)| m).collect();
        assert!(macros.contains(&SubMacro::Comparator));
        assert!(macros.contains(&SubMacro::Integrator));
        assert!(!macros.contains(&SubMacro::OutputLatch));
    }

    #[test]
    fn linearity_failures_favor_integrator() {
        let d = diagnose(&Symptoms {
            inl_fail: true,
            dnl_fail: true,
            gain_fail: true,
            ..no_symptoms()
        });
        assert_eq!(d[0].0, SubMacro::Integrator);
    }

    #[test]
    fn scattered_bad_codes_point_to_latch() {
        let d = diagnose(&Symptoms {
            multiple_incorrect_codes: true,
            ..no_symptoms()
        });
        assert_eq!(d[0].0, SubMacro::OutputLatch);
    }

    #[test]
    fn healthy_symptoms_diagnose_nothing() {
        assert!(diagnose(&no_symptoms()).is_empty());
    }

    #[test]
    fn regular_gap_detector() {
        assert!(has_regular_gaps(&[8, 16, 24, 32]));
        assert!(!has_regular_gaps(&[8, 16, 25]));
        assert!(!has_regular_gaps(&[8, 16]));
        // Contiguous dead band is not the counter signature.
        assert!(!has_regular_gaps(&[98, 99, 100]));
    }
}
