//! Behavioural dual-slope ADC with physically-motivated error sources.

use super::AdcConverter;

/// Error sources of the dual-slope ADC macro.
///
/// An ideal dual-slope converter rejects integrator-capacitor
/// nonlinearity (the same integrator serves both phases, so the charge
/// balance cancels it); what is left — and what the paper measures — are:
///
/// * **zero offset** from comparator and integrator input offsets,
/// * **gain error** from reference-voltage and phase-resistor mismatch,
/// * **INL** from integrator leakage (the de-integration time becomes a
///   logarithmic, not linear, function of the peak) — the integrator
///   sub-macro faults the paper says "affect the linearity errors",
/// * **DNL** structure from switched-capacitor ripple riding on the
///   integrator output as it crosses the comparator threshold,
/// * small **threshold noise**, modelled deterministically so repeated
///   conversions of the same input are reproducible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdcErrorModel {
    /// Input-referred offset in volts (comparator + integrator offsets).
    pub offset_v: f64,
    /// Relative reference/gain error (e.g. `0.002` = +0.2 %).
    pub gain_error: f64,
    /// Integrator leakage rate in 1/s (exponential droop of the
    /// integrator state).
    pub leak_per_s: f64,
    /// Peak SC ripple on the integrator output, in volts, at the
    /// comparator crossing.
    pub ripple_v: f64,
    /// Ripple period expressed in output codes.
    pub ripple_period_codes: f64,
    /// A second, slower disturbance on the crossing (supply/substrate
    /// coupling), volts peak.
    pub slow_ripple_v: f64,
    /// Period of the slow disturbance, output codes.
    pub slow_ripple_period_codes: f64,
    /// RMS-equivalent threshold noise in volts (deterministic
    /// pseudo-noise derived from the input value).
    pub noise_v: f64,
}

impl AdcErrorModel {
    /// No errors at all.
    pub fn none() -> Self {
        AdcErrorModel {
            offset_v: 0.0,
            gain_error: 0.0,
            leak_per_s: 0.0,
            ripple_v: 0.0,
            ripple_period_codes: 16.0,
            slow_ripple_v: 0.0,
            slow_ripple_period_codes: 64.0,
            noise_v: 0.0,
        }
    }

    /// Error magnitudes tuned to reproduce the paper's measured macro:
    /// zero offset < 0.2 LSB, gain error ≈ ±0.5 LSB, max INL ≈ 1.3 LSB
    /// and max DNL ≈ 1.2 LSB (Figure 2).
    pub fn paper_measured() -> Self {
        AdcErrorModel {
            offset_v: 0.0012,
            gain_error: -0.010,
            leak_per_s: 6.0,
            ripple_v: 0.0085,
            ripple_period_codes: 9.0,
            slow_ripple_v: 0.005,
            slow_ripple_period_codes: 67.0,
            noise_v: 0.0004,
        }
    }
}

impl Default for AdcErrorModel {
    fn default() -> Self {
        AdcErrorModel::none()
    }
}

/// Behavioural model of the paper's dual-slope ADC macro.
///
/// Nominal design values follow the paper's digital test results:
/// 100 kHz clock, 10 mV per output code over a 2.5 V range (250 counts
/// per phase), worst-case conversion inside the 5.6 ms specification.
///
/// # Example
///
/// ```
/// use msbist::adc::{AdcConverter, DualSlopeAdc};
///
/// let adc = DualSlopeAdc::ideal();
/// assert_eq!(adc.convert(0.0), 0);
/// assert_eq!(adc.convert(2.5), 250);
/// assert!((adc.lsb() - 0.010).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DualSlopeAdc {
    vref: f64,
    full_count: u64,
    clock_hz: f64,
    errors: AdcErrorModel,
}

impl DualSlopeAdc {
    /// The error-free nominal macro: 2.5 V reference, 250 counts,
    /// 100 kHz clock.
    pub fn ideal() -> Self {
        DualSlopeAdc {
            vref: 2.5,
            full_count: 250,
            clock_hz: 100e3,
            errors: AdcErrorModel::none(),
        }
    }

    /// The macro with the paper's measured error magnitudes.
    pub fn paper_measured() -> Self {
        DualSlopeAdc {
            errors: AdcErrorModel::paper_measured(),
            ..DualSlopeAdc::ideal()
        }
    }

    /// A macro with an explicit error model.
    pub fn with_errors(errors: AdcErrorModel) -> Self {
        DualSlopeAdc {
            errors,
            ..DualSlopeAdc::ideal()
        }
    }

    /// Overrides the clock rate.
    ///
    /// # Panics
    ///
    /// Panics if `hz` is not positive.
    pub fn with_clock(mut self, hz: f64) -> Self {
        assert!(hz > 0.0, "clock must be positive");
        self.clock_hz = hz;
        self
    }

    /// The error model in force.
    pub fn errors(&self) -> &AdcErrorModel {
        &self.errors
    }

    /// Clock frequency in hertz.
    pub fn clock_hz(&self) -> f64 {
        self.clock_hz
    }

    /// The integrator peak voltage reached for input `vin` at the end of
    /// the fixed input-integration phase (exposed for the BIST step test,
    /// which watches the integrator node directly).
    ///
    /// The nominal design integrates to `vin · T1 / tau` with
    /// `tau = T1·v_fs/v_peak_fs` chosen so full scale peaks at 2.5 V.
    pub fn integrator_peak(&self, vin: f64) -> f64 {
        let t1 = self.full_count as f64 / self.clock_hz;
        let v = vin + self.errors.offset_v;
        // tau chosen so that full-scale input peaks at vref.
        let tau = t1; // v_peak(fs) = v_fs * t1/tau = 2.5 V
        if self.errors.leak_per_s == 0.0 {
            v * t1 / tau
        } else {
            // dV/dt = v/tau − leak·V
            let leak = self.errors.leak_per_s;
            v / (tau * leak) * (1.0 - (-leak * t1).exp())
        }
    }

    /// The de-integration time for input `vin`, in seconds (before
    /// quantisation by the counter clock).
    pub fn deintegration_time(&self, vin: f64) -> f64 {
        let t1 = self.full_count as f64 / self.clock_hz;
        let tau = t1;
        let v1 = self.integrator_peak(vin).max(0.0);
        let vref_eff = self.vref * (1.0 + self.errors.gain_error);
        let leak = self.errors.leak_per_s;
        let mut t2 = if leak == 0.0 {
            v1 * tau / vref_eff
        } else {
            // dV/dt = −vref/tau − leak·V from V1 down to 0:
            // t2 = (1/leak)·ln(1 + leak·V1·tau/vref)
            (1.0 / leak) * (1.0 + leak * v1 * tau / vref_eff).ln()
        };
        // SC ripple modulates the exact comparator crossing instant. The
        // phase reference sits at the first code so the ripple does not
        // alias into the zero-offset measurement.
        if self.errors.ripple_v > 0.0 || self.errors.slow_ripple_v > 0.0 {
            let slope = vref_eff / tau; // de-integration slope, V/s
            let code_equiv = t2 * self.clock_hz;
            let phase = 2.0 * std::f64::consts::PI * (code_equiv - 1.0)
                / self.errors.ripple_period_codes;
            let slow_phase = 2.0 * std::f64::consts::PI * (code_equiv - 1.0)
                / self.errors.slow_ripple_period_codes;
            t2 += (self.errors.ripple_v * phase.sin()
                + self.errors.slow_ripple_v * slow_phase.sin())
                / slope;
        }
        // Deterministic pseudo-noise on the crossing.
        if self.errors.noise_v > 0.0 {
            let slope = vref_eff / tau;
            t2 += self.errors.noise_v * pseudo_noise(vin) / slope;
        }
        t2.max(0.0)
    }
}

/// Deterministic noise in [−1, 1] derived from the input bits, so the
/// model is reproducible while still exercising noise-sensitive code.
fn pseudo_noise(vin: f64) -> f64 {
    let mut x = vin.to_bits().wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    (x as f64 / u64::MAX as f64) * 2.0 - 1.0
}

impl AdcConverter for DualSlopeAdc {
    fn convert(&self, vin: f64) -> u64 {
        let t2 = self.deintegration_time(vin);
        let code = (t2 * self.clock_hz).floor();
        (code.max(0.0) as u64).min(2 * self.full_count)
    }

    fn full_scale(&self) -> f64 {
        self.vref
    }

    fn full_count(&self) -> u64 {
        self.full_count
    }

    fn conversion_time(&self, vin: f64) -> f64 {
        let code = self.convert(vin);
        (self.full_count + code) as f64 / self.clock_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_transfer_is_exact() {
        let adc = DualSlopeAdc::ideal();
        for k in [0u64, 1, 50, 125, 249, 250] {
            // Input just above the code's nominal level converts to k.
            let vin = k as f64 * 0.010 + 0.001;
            assert_eq!(adc.convert(vin), k, "at code {k}");
        }
    }

    #[test]
    fn over_range_clamps() {
        let adc = DualSlopeAdc::ideal();
        assert_eq!(adc.convert(100.0), 500);
        assert_eq!(adc.convert(-1.0), 0);
    }

    #[test]
    fn conversion_time_within_spec() {
        // Paper spec: maximum conversion time 5.6 ms at 100 kHz.
        let adc = DualSlopeAdc::paper_measured();
        for k in 0..=250 {
            let vin = k as f64 * 0.010;
            assert!(adc.conversion_time(vin) <= 5.6e-3, "slow at {vin}");
        }
    }

    #[test]
    fn offset_error_shifts_zero() {
        let adc = DualSlopeAdc::with_errors(AdcErrorModel {
            offset_v: 0.025, // 2.5 LSB
            ..AdcErrorModel::none()
        });
        assert_eq!(adc.convert(0.0), 2);
    }

    #[test]
    fn gain_error_scales_full_scale() {
        let adc = DualSlopeAdc::with_errors(AdcErrorModel {
            gain_error: -0.01, // reference 1 % low -> codes 1 % high
            ..AdcErrorModel::none()
        });
        let code = adc.convert(2.5);
        assert!(code >= 252, "code = {code}");
    }

    #[test]
    fn leak_compresses_top_of_range() {
        let leaky = DualSlopeAdc::with_errors(AdcErrorModel {
            leak_per_s: 20.0,
            ..AdcErrorModel::none()
        });
        let ideal = DualSlopeAdc::ideal();
        // Leakage droops the peak, so high inputs read low...
        assert!(leaky.convert(2.4) < ideal.convert(2.4));
        // ...and the effect is progressive (nonlinear), not a pure gain.
        let mid_loss = ideal.convert(1.25) as i64 - leaky.convert(1.25) as i64;
        let top_loss = ideal.convert(2.4) as i64 - leaky.convert(2.4) as i64;
        assert!(top_loss > 2 * mid_loss - 1, "mid {mid_loss}, top {top_loss}");
    }

    #[test]
    fn integrator_peak_is_linear_without_leak() {
        let adc = DualSlopeAdc::ideal();
        let p1 = adc.integrator_peak(1.0);
        let p2 = adc.integrator_peak(2.0);
        assert!((p2 - 2.0 * p1).abs() < 1e-12);
        assert!((adc.integrator_peak(2.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn pseudo_noise_is_deterministic_and_bounded() {
        for v in [0.0, 0.1, 1.2345, 2.5] {
            let a = pseudo_noise(v);
            let b = pseudo_noise(v);
            assert_eq!(a, b);
            assert!((-1.0..=1.0).contains(&a));
        }
        assert_ne!(pseudo_noise(0.1), pseudo_noise(0.2));
    }

    #[test]
    fn paper_measured_is_close_to_ideal_but_not_equal() {
        let ideal = DualSlopeAdc::ideal();
        let real = DualSlopeAdc::paper_measured();
        let mut differs = false;
        for k in 0..=250u64 {
            let vin = k as f64 * 0.010 + 0.005;
            let ci = ideal.convert(vin);
            let cr = real.convert(vin);
            assert!((ci as i64 - cr as i64).abs() <= 3, "code {ci} vs {cr}");
            differs |= ci != cr;
        }
        assert!(differs);
    }
}
