//! Mixed-signal co-simulation of the dual-slope ADC: the analogue
//! integrator/comparator run in `anasim` while the *gate-level*
//! control logic of [`digisim::structural`] clocks alongside, steering
//! the input switches each cycle — the complete macro, both halves
//! live, nothing behavioural in the loop.
//!
//! Each conversion: the controller idles with the integrator reset;
//! `start` launches the fixed input-integration phase (the analogue
//! drive switches to the input); at terminal count the drive flips to
//! the reference; the comparator's recrossing — read from the analogue
//! side at every clock tick — ends the conversion with the code held in
//! the controller's gate-level counter.

use anasim::netlist::{DeviceId, Netlist, NodeId};
use anasim::source::SourceWaveform;
use anasim::transient::TransientSession;
use anasim::AnalysisError;
use digisim::circuit::Circuit;
use digisim::fsm::DualSlopePhase;
use digisim::structural::StructuralDualSlope;
use macrolib::opamp::{BehavioralOpamp, OpampParams};
use macrolib::process::ProcessParams;

/// The co-simulated dual-slope ADC.
#[derive(Debug, Clone)]
pub struct CosimAdc {
    process: ProcessParams,
    /// Counts in the fixed input phase.
    full_count: u64,
    /// Conversion clock, hertz.
    clock_hz: f64,
    /// Reference (full-scale) voltage.
    vref: f64,
    /// Analogue timestep per simulation step.
    sim_dt: f64,
}

/// Outcome of one co-simulated conversion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CosimConversion {
    /// The output code from the gate-level counter.
    pub code: u64,
    /// Total clock ticks the conversion took.
    pub ticks: u64,
    /// True if the reference phase hit its overflow limit.
    pub overflowed: bool,
}

impl CosimAdc {
    /// The nominal macro: 2.5 V reference, 250 counts, 100 kHz clock.
    pub fn new(process: ProcessParams) -> Self {
        CosimAdc {
            process,
            full_count: 250,
            clock_hz: 100e3,
            vref: 2.5,
            sim_dt: 2e-6,
        }
    }

    /// A scaled-down variant for fast tests: fewer counts at a faster
    /// clock (same conversion physics, smaller tick budget).
    ///
    /// # Panics
    ///
    /// Panics if `full_count` is zero.
    pub fn with_resolution(mut self, full_count: u64) -> Self {
        assert!(full_count >= 1, "full count must be positive");
        // Keep T1 constant so the integrator design is unchanged.
        self.clock_hz = full_count as f64 / (250.0 / 100e3);
        self.full_count = full_count;
        self
    }

    /// Analogue ground level.
    pub fn vag(&self) -> f64 {
        2.5
    }

    /// Nominal LSB in volts.
    pub fn lsb(&self) -> f64 {
        self.vref / self.full_count as f64
    }

    fn build_analog(&self) -> (Netlist, NodeId, NodeId, DeviceId, DeviceId) {
        let vag = self.vag();
        let t1 = self.full_count as f64 / self.clock_hz;
        let rc = 2.0 * t1;
        let r_in = 100e3;
        let c_f = rc / r_in;

        let mut nl = Netlist::new();
        let gnd = Netlist::GROUND;
        let op = BehavioralOpamp::build(&mut nl, "int", &OpampParams::opamp_5um());
        let cmp = BehavioralOpamp::build(&mut nl, "cmp", &OpampParams::comparator_5um());

        let vag_node = nl.node("vag");
        nl.vsource("VAG", vag_node, gnd, SourceWaveform::dc(vag));
        nl.resistor("RVAG", op.in_p, vag_node, 1.0);

        // Integrator drive: the co-simulation rewrites this source as
        // the controller's phases change.
        let drive = nl.node("drive");
        let vdrive = nl.vsource("VDRIVE", drive, gnd, SourceWaveform::dc(vag));
        nl.resistor("RIN", drive, op.in_n, self.process.resistor(r_in));
        nl.capacitor("CF", op.in_n, op.out, self.process.capacitor(c_f));

        // Reset switch across CF, controlled by another runtime source.
        let rst = nl.node("rst");
        let vrst = nl.vsource("VRST", rst, gnd, SourceWaveform::dc(self.process.vdd));
        nl.switch(
            "SRST",
            op.in_n,
            op.out,
            rst,
            gnd,
            anasim::devices::SwitchParams::default(),
        );

        // Comparator: fires when the integrator output recrosses VAG
        // from below.
        nl.resistor("RCP", cmp.in_p, op.out, 1.0);
        nl.resistor("RCN", cmp.in_n, vag_node, 1.0);
        nl.resistor("RCL", cmp.out, gnd, 1e6);

        (nl, op.out, cmp.out, vdrive, vrst)
    }

    /// Runs one full co-simulated conversion.
    ///
    /// # Errors
    ///
    /// Propagates analogue non-convergence; returns
    /// [`AnalysisError::InvalidParameter`] if the controller never
    /// reaches `Done` within its overflow budget.
    pub fn convert(&self, vin: f64) -> Result<CosimConversion, AnalysisError> {
        self.convert_inner(vin, None)
    }

    /// Runs a conversion with the controller's comparator input stuck
    /// at `value` — the paper's control-circuit fault class ("control
    /// circuit faults will stop the conversion process").
    ///
    /// Stuck low, the comparator can never end the reference phase and
    /// the gate-level overflow limit terminates the conversion at twice
    /// full count; stuck high, the reference phase ends on its first
    /// tick. Both corrupt the code and the conversion time, which is
    /// how the digital quick tests catch this fault class.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CosimAdc::convert`].
    pub fn convert_with_comparator_stuck(
        &self,
        vin: f64,
        value: bool,
    ) -> Result<CosimConversion, AnalysisError> {
        self.convert_inner(vin, Some(value))
    }

    fn convert_inner(
        &self,
        vin: f64,
        comparator_stuck: Option<bool>,
    ) -> Result<CosimConversion, AnalysisError> {
        let vag = self.vag();
        let (nl, _integ_out, cmp_out, vdrive, vrst) = self.build_analog();
        let mut analog = TransientSession::begin(&nl, self.sim_dt)?;

        let mut digital = Circuit::new();
        let width = (64 - (2 * self.full_count).leading_zeros() as usize + 1).max(4);
        let ctl = StructuralDualSlope::build(&mut digital, "ctl", self.full_count, width);
        ctl.reset(&mut digital);

        // Settle the reset phase: one clock period with the integrator
        // shorted and the drive at analogue ground.
        let tick = 1.0 / self.clock_hz;
        analog.advance_to(tick)?;
        ctl.request_start(&mut digital);

        let budget = 2 + self.full_count + 2 * self.full_count + 2;
        let mut ticks = 0u64;
        let mut last_phase = DualSlopePhase::Idle;
        while ticks < budget {
            // Steer the analogue switches for the *coming* interval
            // according to the controller's present phase.
            let phase = ctl.phase(&digital);
            if phase != last_phase {
                match phase {
                    DualSlopePhase::Idle => {}
                    DualSlopePhase::IntegrateInput => {
                        analog.set_source(vrst, SourceWaveform::dc(0.0))?;
                        analog.set_source(vdrive, SourceWaveform::dc(vag + vin))?;
                    }
                    DualSlopePhase::IntegrateReference => {
                        analog.set_source(vdrive, SourceWaveform::dc(vag - self.vref))?;
                    }
                    DualSlopePhase::Done => break,
                }
                last_phase = phase;
            }
            if phase == DualSlopePhase::Done {
                break;
            }

            // One analogue clock interval, then the digital edge with
            // the comparator sampled at the tick.
            let t_next = analog.time() + tick;
            analog.advance_to(t_next)?;
            let comparator = comparator_stuck.unwrap_or(analog.voltage(cmp_out) > 2.5);
            ticks += 1;
            ctl.step(&mut digital, comparator);
        }

        if ctl.phase(&digital) != DualSlopePhase::Done {
            return Err(AnalysisError::InvalidParameter(
                "co-simulated conversion never completed".into(),
            ));
        }
        let code = ctl
            .result(&digital)
            .expect("done state holds a result");
        Ok(CosimConversion {
            code,
            ticks,
            overflowed: code >= 2 * self.full_count,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adc::{AdcConverter, DualSlopeAdc};

    fn fast() -> CosimAdc {
        // 25 counts: conversions take <= 77 ticks.
        CosimAdc::new(ProcessParams::nominal()).with_resolution(25)
    }

    #[test]
    fn codes_scale_linearly_with_input() {
        let adc = fast();
        // LSB = 100 mV at 25 counts.
        for (vin, expect) in [(0.5, 5i64), (1.25, 12), (2.0, 20)] {
            let conv = adc.convert(vin).unwrap();
            assert!(
                (conv.code as i64 - expect).abs() <= 1,
                "vin {vin}: code {} vs {expect}",
                conv.code
            );
            assert!(!conv.overflowed);
        }
    }

    #[test]
    fn conversion_ticks_match_dual_slope_timing() {
        let adc = fast();
        let conv = adc.convert(1.25).unwrap();
        // full_count input ticks + ~code reference ticks (+start/latch).
        let expect = 25 + conv.code;
        assert!(
            (conv.ticks as i64 - expect as i64).abs() <= 3,
            "ticks {} vs ~{expect}",
            conv.ticks
        );
    }

    #[test]
    fn zero_input_converts_to_zero_ish() {
        let adc = fast();
        let conv = adc.convert(0.0).unwrap();
        assert!(conv.code <= 1, "code {}", conv.code);
    }

    #[test]
    fn stuck_low_comparator_overflows_at_the_gate_level_limit() {
        let adc = fast();
        let conv = adc.convert_with_comparator_stuck(1.25, false).unwrap();
        assert!(conv.overflowed, "code {}", conv.code);
        assert_eq!(conv.code, 50, "overflow terminates at 2x full count");
    }

    #[test]
    fn stuck_high_comparator_ends_the_reference_phase_immediately() {
        let adc = fast();
        let conv = adc.convert_with_comparator_stuck(1.25, true).unwrap();
        assert!(conv.code <= 1, "code {}", conv.code);
        // The corrupted conversion time is what the digital quick test
        // of E3 keys on: far shorter than the healthy conversion.
        let healthy = adc.convert(1.25).unwrap();
        assert!(conv.ticks + 5 < healthy.ticks);
    }

    #[test]
    fn cosim_agrees_with_behavioural_model() {
        // The all-behavioural DualSlopeAdc and the full co-simulation
        // must agree within a couple of codes once scaled to the same
        // resolution.
        let cosim = fast();
        let behavioural = DualSlopeAdc::ideal();
        for vin in [0.6, 1.5, 2.2] {
            let c = cosim.convert(vin).unwrap().code as f64;
            // Behavioural uses 250 counts; scale down by 10.
            let b = behavioural.convert(vin) as f64 / 10.0;
            assert!((c - b).abs() <= 1.5, "vin {vin}: cosim {c} vs model {b}");
        }
    }
}
