//! The ADC macro's datasheet specification and compliance checking.

use crate::charac::Characterisation;

/// The dual-slope ADC macro specification from the paper:
/// max clock 100 kHz, zero offset < 0.3 LSB, gain error < 0.5 LSB,
/// INL < 1 LSB, DNL < 1 LSB.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdcSpecification {
    /// Maximum clock rate in hertz.
    pub max_clock_hz: f64,
    /// Maximum zero offset error magnitude in LSB.
    pub max_offset_lsb: f64,
    /// Maximum gain error magnitude in LSB.
    pub max_gain_error_lsb: f64,
    /// Maximum INL magnitude in LSB.
    pub max_inl_lsb: f64,
    /// Maximum DNL magnitude in LSB.
    pub max_dnl_lsb: f64,
    /// Maximum conversion time in seconds.
    pub max_conversion_time: f64,
}

impl AdcSpecification {
    /// The paper's specification for the dual-slope macro.
    pub fn paper() -> Self {
        AdcSpecification {
            max_clock_hz: 100e3,
            max_offset_lsb: 0.3,
            max_gain_error_lsb: 0.5,
            max_inl_lsb: 1.0,
            max_dnl_lsb: 1.0,
            max_conversion_time: 5.6e-3,
        }
    }

    /// Checks a characterisation against the specification.
    pub fn check(&self, c: &Characterisation) -> SpecReport {
        SpecReport {
            offset_ok: c.offset_lsb.abs() <= self.max_offset_lsb,
            gain_ok: c.gain_error_lsb.abs() <= self.max_gain_error_lsb,
            inl_ok: c.max_inl_lsb() <= self.max_inl_lsb,
            dnl_ok: c.max_dnl_lsb() <= self.max_dnl_lsb,
            no_missing_codes: c.missing_codes.is_empty(),
        }
    }
}

impl Default for AdcSpecification {
    fn default() -> Self {
        AdcSpecification::paper()
    }
}

/// Outcome of checking a characterisation against the specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpecReport {
    /// Zero offset within limit.
    pub offset_ok: bool,
    /// Gain error within limit.
    pub gain_ok: bool,
    /// INL within limit.
    pub inl_ok: bool,
    /// DNL within limit.
    pub dnl_ok: bool,
    /// No missing output codes.
    pub no_missing_codes: bool,
}

impl SpecReport {
    /// True only if every parameter passed.
    pub fn passed(&self) -> bool {
        self.offset_ok && self.gain_ok && self.inl_ok && self.dnl_ok && self.no_missing_codes
    }

    /// Names of the failing parameters.
    pub fn failures(&self) -> Vec<&'static str> {
        let mut out = Vec::new();
        if !self.offset_ok {
            out.push("zero offset");
        }
        if !self.gain_ok {
            out.push("gain error");
        }
        if !self.inl_ok {
            out.push("INL");
        }
        if !self.dnl_ok {
            out.push("DNL");
        }
        if !self.no_missing_codes {
            out.push("missing codes");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adc::DualSlopeAdc;
    use crate::charac::characterise;

    #[test]
    fn ideal_adc_meets_spec() {
        let c = characterise(&DualSlopeAdc::ideal(), 100);
        let report = AdcSpecification::paper().check(&c);
        assert!(report.passed(), "failures: {:?}", report.failures());
    }

    #[test]
    fn failures_list_names() {
        let report = SpecReport {
            offset_ok: true,
            gain_ok: false,
            inl_ok: false,
            dnl_ok: true,
            no_missing_codes: true,
        };
        assert!(!report.passed());
        assert_eq!(report.failures(), vec!["gain error", "INL"]);
    }
}
