//! The dual-slope ADC macro and its sub-macros.
//!
//! The paper's device under test is a CMOS dual-slope ADC gate-array
//! macro (250 gates, ≈1000 transistors) built from five sub-macros:
//! switched-capacitor integrator, comparator, counter, output latch and
//! control logic. This module provides:
//!
//! * [`AdcConverter`] — the converter abstraction the characterisation
//!   and BIST layers test against,
//! * [`DualSlopeAdc`] — a behavioural model with physically-motivated
//!   error sources (leakage, offsets, reference error, switching ripple),
//! * [`circuit`] — a circuit-level realisation that simulates the two
//!   integration phases on an `anasim` netlist,
//! * [`spec`] — the macro's datasheet limits and compliance checking,
//! * [`diagnose`] — the paper's fault-to-sub-macro diagnosis map.

pub mod circuit;
pub mod cosim;
pub mod diagnose;
pub mod spec;

mod behavioral;

pub use behavioral::{AdcErrorModel, DualSlopeAdc};
pub use cosim::{CosimAdc, CosimConversion};

/// An analogue-to-digital converter under test.
///
/// The characterisation machinery ([`crate::charac`]) and the BIST
/// macros ([`crate::bist`]) drive any implementation of this trait —
/// behavioural, circuit-level, or an injected-fault variant.
pub trait AdcConverter {
    /// Converts an input voltage to an output code.
    ///
    /// Out-of-range inputs clamp to the code range.
    fn convert(&self, vin: f64) -> u64;

    /// Nominal full-scale input voltage.
    fn full_scale(&self) -> f64;

    /// The code produced at exactly full scale (the number of nominal
    /// LSB steps across the range).
    fn full_count(&self) -> u64;

    /// Nominal LSB size in volts.
    fn lsb(&self) -> f64 {
        self.full_scale() / self.full_count() as f64
    }

    /// Time one conversion takes, in seconds (input-dependent for
    /// dual-slope converters).
    fn conversion_time(&self, vin: f64) -> f64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trait_default_lsb() {
        let adc = DualSlopeAdc::ideal();
        assert!((adc.lsb() - adc.full_scale() / adc.full_count() as f64).abs() < 1e-18);
    }
}
