//! Production yield analysis over simulated die batches.
//!
//! Extends the paper's 10-device batch to statistically meaningful
//! sample sizes: every die runs the quick on-chip tests and the full
//! characterisation, and the module reports the two yields plus
//! parameter statistics — quantifying the paper's central observation
//! that the quick tests pass parts the full specification rejects.

use macrolib::process::VariationModel;

use crate::adc::spec::AdcSpecification;
use crate::adc::DualSlopeAdc;
use crate::bist::quick_test::{run_quick_tests, QuickTestLimits};
use crate::charac::characterise;
use crate::device::DieBatch;

/// Mean and standard deviation of a measured parameter across a batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParameterStats {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub sigma: f64,
    /// Worst (largest-magnitude) value seen.
    pub worst: f64,
}

impl ParameterStats {
    fn from_samples(samples: &[f64]) -> Self {
        let n = samples.len().max(1) as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let sigma =
            (samples.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n).sqrt();
        let worst = samples
            .iter()
            .copied()
            .max_by(|a, b| a.abs().total_cmp(&b.abs()))
            .unwrap_or(0.0);
        ParameterStats { mean, sigma, worst }
    }
}

/// Result of a batch yield analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct YieldReport {
    /// Number of dies analysed.
    pub tested: usize,
    /// Dies passing the three quick on-chip tests.
    pub quick_pass: usize,
    /// Dies meeting the full datasheet specification.
    pub full_pass: usize,
    /// Dies that pass quick screening but fail full characterisation —
    /// the paper's test-escape class.
    pub escapes: usize,
    /// Offset statistics (LSB).
    pub offset: ParameterStats,
    /// Gain-error statistics (LSB).
    pub gain: ParameterStats,
    /// Max-INL statistics (LSB).
    pub inl: ParameterStats,
    /// Max-DNL statistics (LSB).
    pub dnl: ParameterStats,
}

impl YieldReport {
    /// Quick-test yield, 0–1.
    pub fn quick_yield(&self) -> f64 {
        self.quick_pass as f64 / self.tested.max(1) as f64
    }

    /// Full-specification yield, 0–1.
    pub fn full_yield(&self) -> f64 {
        self.full_pass as f64 / self.tested.max(1) as f64
    }

    /// Test-escape rate among quick passers, 0–1.
    pub fn escape_rate(&self) -> f64 {
        self.escapes as f64 / self.quick_pass.max(1) as f64
    }
}

/// Analyses `count` dies sampled with `variation` and seed `seed`,
/// characterising the first `codes` output codes of each.
///
/// # Panics
///
/// Panics if `count` is zero or `codes < 3`.
pub fn analyse_yield(
    count: usize,
    variation: &VariationModel,
    seed: u64,
    codes: u64,
) -> YieldReport {
    assert!(count >= 1, "need at least one die");
    let golden = run_quick_tests(&DualSlopeAdc::paper_measured(), &QuickTestLimits::paper());
    let limits = QuickTestLimits::paper().with_reference(golden.compressed.digital_signature);
    let spec = AdcSpecification::paper();

    let batch = DieBatch::fabricate(count, variation, seed);
    let mut quick_pass = 0;
    let mut full_pass = 0;
    let mut escapes = 0;
    let mut offsets = Vec::with_capacity(count);
    let mut gains = Vec::with_capacity(count);
    let mut inls = Vec::with_capacity(count);
    let mut dnls = Vec::with_capacity(count);

    for die in &batch {
        let quick = run_quick_tests(&die.adc, &limits).passed();
        let c = characterise(&die.adc, codes);
        let full = spec.check(&c).passed();
        quick_pass += quick as usize;
        full_pass += full as usize;
        escapes += (quick && !full) as usize;
        offsets.push(c.offset_lsb);
        gains.push(c.gain_error_lsb);
        inls.push(c.max_inl_lsb());
        dnls.push(c.max_dnl_lsb());
    }

    YieldReport {
        tested: count,
        quick_pass,
        full_pass,
        escapes,
        offset: ParameterStats::from_samples(&offsets),
        gain: ParameterStats::from_samples(&gains),
        inl: ParameterStats::from_samples(&inls),
        dnl: ParameterStats::from_samples(&dnls),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typical_batch_quick_yield_is_high() {
        let r = analyse_yield(40, &VariationModel::typical(), 1996, 60);
        assert!(r.quick_yield() > 0.9, "quick yield {}", r.quick_yield());
        assert_eq!(r.tested, 40);
    }

    #[test]
    fn paper_macro_population_escapes_full_spec() {
        // The nominal design carries INL/DNL above 1 LSB, so almost the
        // whole population passes quick tests yet fails the datasheet:
        // the paper's headline phenomenon, at population scale.
        let r = analyse_yield(40, &VariationModel::typical(), 7, 100);
        assert!(r.full_yield() < 0.5, "full yield {}", r.full_yield());
        assert!(r.escape_rate() > 0.5, "escape rate {}", r.escape_rate());
    }

    #[test]
    fn loose_variation_reduces_quick_yield() {
        let typical = analyse_yield(60, &VariationModel::typical(), 42, 60);
        let loose = analyse_yield(60, &VariationModel::loose(), 42, 60);
        assert!(
            loose.quick_yield() <= typical.quick_yield(),
            "loose {} vs typical {}",
            loose.quick_yield(),
            typical.quick_yield()
        );
    }

    #[test]
    fn statistics_are_finite_and_centred() {
        let r = analyse_yield(30, &VariationModel::typical(), 3, 60);
        for s in [r.offset, r.gain, r.inl, r.dnl] {
            assert!(s.mean.is_finite() && s.sigma.is_finite() && s.worst.is_finite());
        }
        // Offset spread stays well inside a LSB for typical variation.
        assert!(r.offset.sigma < 0.5, "offset sigma {}", r.offset.sigma);
        // INL mean sits near the design's 1.3 LSB.
        assert!((0.8..1.8).contains(&r.inl.mean), "inl mean {}", r.inl.mean);
    }
}
