//! Full ADC characterisation: quantisation error, zero offset, gain
//! error, INL and DNL.
//!
//! This implements the paper's "full testing of the ADC macro": a fine
//! input sweep locates every code-transition level, from which the
//! static error parameters are derived. Figure 2 of the paper plots the
//! per-code DNL this module produces.

pub mod histogram;

use crate::adc::AdcConverter;

/// Result of a full static characterisation.
#[derive(Debug, Clone, PartialEq)]
pub struct Characterisation {
    /// Nominal LSB in volts.
    pub lsb: f64,
    /// Codes over which the sweep ran (first..=last).
    pub first_code: u64,
    /// Measured transition voltages: `transitions[i]` is the input at
    /// which the output first reaches code `first_code + 1 + i`.
    pub transitions: Vec<f64>,
    /// Zero offset error in LSB (deviation of the first transition from
    /// its ideal half-LSB position).
    pub offset_lsb: f64,
    /// Gain error in LSB (deviation of the last transition from ideal,
    /// after removing offset).
    pub gain_error_lsb: f64,
    /// Per-code DNL in LSB; entry `k` is the width error of code
    /// `first_code + 1 + k`.
    pub dnl: Vec<f64>,
    /// Per-transition INL in LSB against the endpoint-fit line.
    pub inl: Vec<f64>,
    /// Codes that never appeared during the sweep.
    pub missing_codes: Vec<u64>,
    /// RMS quantisation error over the sweep, in LSB (≈ 0.29 LSB for an
    /// ideal uniform quantiser).
    pub quantisation_rms_lsb: f64,
}

impl Characterisation {
    /// Maximum |DNL| in LSB.
    pub fn max_dnl_lsb(&self) -> f64 {
        self.dnl.iter().fold(0.0, |m, &v| m.max(v.abs()))
    }

    /// Maximum |INL| in LSB.
    pub fn max_inl_lsb(&self) -> f64 {
        self.inl.iter().fold(0.0, |m, &v| m.max(v.abs()))
    }

    /// `(code, dnl)` pairs — the series plotted in the paper's Figure 2.
    pub fn dnl_series(&self) -> Vec<(u64, f64)> {
        self.dnl
            .iter()
            .enumerate()
            .map(|(k, &v)| (self.first_code + 1 + k as u64, v))
            .collect()
    }
}

/// Characterises a converter over its first `codes` output codes.
///
/// A fine ramp (32 points per nominal LSB) locates each transition; the
/// static parameters follow the usual endpoint definitions for a
/// truncating (mid-rise) converter whose ideal transition for code `k`
/// sits at exactly `k` LSB:
///
/// * offset = deviation of the first transition from its ideal position,
/// * gain error = deviation of the last transition from ideal after
///   offset removal,
/// * DNL(k) = (T(k+1) − T(k))/LSB − 1,
/// * INL(k) = deviation of T(k) from the line through the first and
///   last transitions.
///
/// # Panics
///
/// Panics if `codes < 3` or larger than the converter's range.
pub fn characterise<A: AdcConverter>(adc: &A, codes: u64) -> Characterisation {
    characterise_with_resolution(adc, codes, 32)
}

/// Like [`characterise`] but with an explicit ramp resolution in steps
/// per LSB — transition positions quantise to `lsb / steps_per_lsb`, so
/// precision-sensitive analyses (e.g. population statistics) use finer
/// sweeps at proportional cost.
///
/// # Panics
///
/// Panics if `codes < 3`, `codes` exceeds the converter range, or
/// `steps_per_lsb` is zero.
pub fn characterise_with_resolution<A: AdcConverter>(
    adc: &A,
    codes: u64,
    steps_per_lsb: u32,
) -> Characterisation {
    assert!(codes >= 3, "need at least 3 codes to characterise");
    assert!(
        codes <= adc.full_count(),
        "codes exceeds the converter range"
    );
    assert!(steps_per_lsb >= 1, "need at least one step per LSB");
    let lsb = adc.lsb();
    let step = lsb / steps_per_lsb as f64;

    // Sweep: find the first input producing each code 1..=codes.
    let mut transitions: Vec<Option<f64>> = vec![None; codes as usize];
    let mut vin = -0.5 * lsb;
    // Sweep 10 % past the nominal top so gain/compression errors of
    // that order still reveal every transition.
    let v_end = (codes as f64 + 2.0) * lsb * 1.10;
    let mut last_code = adc.convert(0.0_f64.max(vin));
    while vin <= v_end {
        let code = adc.convert(vin.max(0.0));
        if code > last_code {
            // Record every code whose threshold this step crossed.
            for c in (last_code + 1)..=code.min(codes) {
                let slot = &mut transitions[(c - 1) as usize];
                if slot.is_none() {
                    *slot = Some(vin);
                }
            }
        }
        last_code = last_code.max(code);
        vin += step;
    }

    let missing_codes: Vec<u64> = transitions
        .iter()
        .enumerate()
        .filter(|(_, t)| t.is_none())
        .map(|(i, _)| i as u64 + 1)
        .collect();

    // Work only with codes that actually appeared, in order.
    let present: Vec<(u64, f64)> = transitions
        .iter()
        .enumerate()
        .filter_map(|(i, t)| t.map(|v| (i as u64 + 1, v)))
        .collect();
    assert!(
        present.len() >= 2,
        "converter produced fewer than two transitions"
    );

    let (first_code_num, t_first) = present[0];
    let (last_code_num, t_last) = *present.last().expect("non-empty");

    // The dual-slope counter truncates, so code k ideally appears at
    // exactly k LSB (mid-rise convention).
    // Offset: deviation of the first transition from its ideal position.
    let offset_lsb = (t_first - first_code_num as f64 * lsb) / lsb;
    // Gain: deviation of the last transition from ideal after removing
    // the measured offset.
    let ideal_last = last_code_num as f64 * lsb + offset_lsb * lsb;
    let gain_error_lsb = (t_last - ideal_last) / lsb;

    // Endpoint-fit line through the first and last transitions.
    let span_codes = (last_code_num - first_code_num) as f64;
    let fit = |code: u64| -> f64 {
        t_first + (t_last - t_first) * (code - first_code_num) as f64 / span_codes
    };

    let inl: Vec<f64> = present
        .iter()
        .map(|&(c, t)| (t - fit(c)) / lsb)
        .collect();

    let dnl: Vec<f64> = present
        .windows(2)
        .map(|w| {
            let (c0, t0) = w[0];
            let (c1, t1) = w[1];
            // Width per code across the gap (gaps flagged separately as
            // missing codes).
            (t1 - t0) / ((c1 - c0) as f64 * lsb) - 1.0
        })
        .collect();

    // Quantisation error: reconstruct each swept input from its code and
    // accumulate the residual.
    let mut sum_sq = 0.0;
    let mut count = 0usize;
    let mut v = 0.0;
    while v <= codes as f64 * lsb {
        let code = adc.convert(v);
        let reconstructed = code as f64 * lsb;
        let residual = (v - reconstructed) / lsb;
        sum_sq += residual * residual;
        count += 1;
        v += step;
    }
    let quantisation_rms_lsb = (sum_sq / count.max(1) as f64).sqrt();

    Characterisation {
        lsb,
        first_code: first_code_num - 1,
        transitions: present.iter().map(|&(_, t)| t).collect(),
        offset_lsb,
        gain_error_lsb,
        dnl,
        inl,
        missing_codes,
        quantisation_rms_lsb,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adc::{AdcErrorModel, DualSlopeAdc};

    #[test]
    fn ideal_adc_characterises_cleanly() {
        let c = characterise(&DualSlopeAdc::ideal(), 100);
        assert!(c.offset_lsb.abs() < 0.05, "offset {}", c.offset_lsb);
        assert!(c.gain_error_lsb.abs() < 0.05, "gain {}", c.gain_error_lsb);
        assert!(c.max_dnl_lsb() < 0.1, "dnl {}", c.max_dnl_lsb());
        assert!(c.max_inl_lsb() < 0.1, "inl {}", c.max_inl_lsb());
        assert!(c.missing_codes.is_empty());
    }

    #[test]
    fn quantisation_error_near_theoretical() {
        let c = characterise(&DualSlopeAdc::ideal(), 50);
        // Uniform quantiser: RMS error 1/sqrt(12) ~ 0.289 LSB. The
        // dual-slope truncates (floor), so residuals span [0, 1) LSB and
        // RMS is 1/sqrt(3) ~ 0.577.
        assert!(
            (c.quantisation_rms_lsb - 1.0 / 3.0_f64.sqrt()).abs() < 0.05,
            "rms {}",
            c.quantisation_rms_lsb
        );
    }

    #[test]
    fn offset_is_recovered() {
        let adc = DualSlopeAdc::with_errors(AdcErrorModel {
            offset_v: 0.002, // 0.2 LSB
            ..AdcErrorModel::none()
        });
        let c = characterise(&adc, 50);
        // Input-referred offset makes codes appear EARLY: offset ≈ -0.2.
        assert!(
            (c.offset_lsb + 0.2).abs() < 0.08,
            "offset {}",
            c.offset_lsb
        );
    }

    #[test]
    fn gain_error_is_recovered() {
        let adc = DualSlopeAdc::with_errors(AdcErrorModel {
            gain_error: 0.005, // reference 0.5 % high -> transitions late
            ..AdcErrorModel::none()
        });
        let c = characterise(&adc, 100);
        // Expected: transitions stretch by 0.5 % -> at code 100 that is
        // +0.5 LSB.
        assert!(
            (c.gain_error_lsb - 0.5).abs() < 0.1,
            "gain {}",
            c.gain_error_lsb
        );
    }

    #[test]
    fn ripple_creates_dnl_without_inl_growth() {
        let adc = DualSlopeAdc::with_errors(AdcErrorModel {
            ripple_v: 0.006,
            ripple_period_codes: 8.0,
            ..AdcErrorModel::none()
        });
        let c = characterise(&adc, 100);
        assert!(c.max_dnl_lsb() > 0.3, "dnl {}", c.max_dnl_lsb());
        // Ripple is zero-mean: INL stays bounded (roughly twice the
        // 0.6 LSB ripple amplitude), unlike a leak-induced bow which
        // accumulates.
        assert!(c.max_inl_lsb() < 1.3, "inl {}", c.max_inl_lsb());
    }

    #[test]
    fn leak_creates_inl_bow() {
        let adc = DualSlopeAdc::with_errors(AdcErrorModel {
            leak_per_s: 15.0,
            ..AdcErrorModel::none()
        });
        let c = characterise(&adc, 200);
        assert!(c.max_inl_lsb() > 0.5, "inl {}", c.max_inl_lsb());
    }

    #[test]
    fn dnl_series_is_indexed_by_code() {
        let c = characterise(&DualSlopeAdc::ideal(), 10);
        let series = c.dnl_series();
        assert_eq!(series.len(), c.dnl.len());
        assert_eq!(series[0].0, c.first_code + 1);
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn too_few_codes_rejected() {
        let _ = characterise(&DualSlopeAdc::ideal(), 2);
    }
}
