//! Histogram (code-density) characterisation.
//!
//! The industry-standard alternative to the transition-level sweep the
//! paper's "full manual test" performed: apply an input of known
//! amplitude density (a slow linear ramp gives a uniform density),
//! record how often each output code occurs, and derive DNL from the
//! bin counts and INL by accumulation. On-chip, this needs only the
//! BIST ramp generator plus a counter per code — the natural production
//! follow-on to the bench characterisation of [`super::characterise`].

use crate::adc::AdcConverter;

/// Result of a histogram characterisation.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramCharacterisation {
    /// First interior code analysed.
    pub first_code: u64,
    /// Occurrence count per analysed code.
    pub counts: Vec<u64>,
    /// Per-code DNL in LSB (`counts/mean − 1`).
    pub dnl: Vec<f64>,
    /// INL in LSB by DNL accumulation (endpoint-corrected).
    pub inl: Vec<f64>,
    /// Codes with zero hits (missing codes).
    pub missing_codes: Vec<u64>,
}

impl HistogramCharacterisation {
    /// Maximum |DNL| in LSB.
    pub fn max_dnl_lsb(&self) -> f64 {
        self.dnl.iter().fold(0.0, |m, &v| m.max(v.abs()))
    }

    /// Maximum |INL| in LSB.
    pub fn max_inl_lsb(&self) -> f64 {
        self.inl.iter().fold(0.0, |m, &v| m.max(v.abs()))
    }

    /// `(code, dnl)` pairs.
    pub fn dnl_series(&self) -> Vec<(u64, f64)> {
        self.dnl
            .iter()
            .enumerate()
            .map(|(k, &v)| (self.first_code + k as u64, v))
            .collect()
    }
}

/// Characterises a converter by code density over its first `codes`
/// codes, sampling the ramp `samples_per_code` times per nominal LSB.
///
/// The first and last analysed codes absorb the ramp's end effects and
/// are excluded, as is standard for histogram testing.
///
/// # Panics
///
/// Panics if `codes < 5`, `samples_per_code == 0`, or `codes` exceeds
/// the converter range.
pub fn characterise_histogram<A: AdcConverter>(
    adc: &A,
    codes: u64,
    samples_per_code: usize,
) -> HistogramCharacterisation {
    assert!(codes >= 5, "need at least 5 codes");
    assert!(samples_per_code >= 1, "need at least one sample per code");
    assert!(
        codes <= adc.full_count(),
        "codes exceeds the converter range"
    );
    let lsb = adc.lsb();

    // Uniform-density ramp over [0, codes·lsb) with end margin.
    let total = codes as usize * samples_per_code;
    let mut hist = vec![0u64; codes as usize + 2];
    for k in 0..total {
        // Sample mid-step to avoid systematic alignment with transitions.
        let vin = (k as f64 + 0.5) / samples_per_code as f64 * lsb;
        let code = adc.convert(vin).min(codes + 1) as usize;
        hist[code] += 1;
    }

    // Interior codes only (1..codes-1): the ends absorb offset/clipping.
    let first_code = 1u64;
    let interior = &hist[1..codes as usize - 1];
    let counts: Vec<u64> = interior.to_vec();
    let missing_codes: Vec<u64> = counts
        .iter()
        .enumerate()
        .filter(|(_, &c)| c == 0)
        .map(|(k, _)| first_code + k as u64)
        .collect();

    let mean = counts.iter().sum::<u64>() as f64 / counts.len().max(1) as f64;
    let dnl: Vec<f64> = counts.iter().map(|&c| c as f64 / mean - 1.0).collect();

    // INL by accumulation, endpoint-corrected so INL starts and ends at 0.
    let mut inl = Vec::with_capacity(dnl.len());
    let mut acc = 0.0;
    for &d in &dnl {
        acc += d;
        inl.push(acc);
    }
    let n = inl.len().max(1);
    let end = *inl.last().unwrap_or(&0.0);
    for (k, v) in inl.iter_mut().enumerate() {
        *v -= end * (k + 1) as f64 / n as f64;
    }

    HistogramCharacterisation {
        first_code,
        counts,
        dnl,
        inl,
        missing_codes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adc::{AdcErrorModel, DualSlopeAdc};
    use crate::charac::characterise;

    #[test]
    fn ideal_adc_has_flat_histogram() {
        let h = characterise_histogram(&DualSlopeAdc::ideal(), 50, 64);
        assert!(h.max_dnl_lsb() < 0.05, "dnl {}", h.max_dnl_lsb());
        assert!(h.max_inl_lsb() < 0.1, "inl {}", h.max_inl_lsb());
        assert!(h.missing_codes.is_empty());
        // Every interior bin holds roughly samples_per_code hits.
        for &c in &h.counts {
            assert!((c as i64 - 64).abs() <= 3, "count {c}");
        }
    }

    #[test]
    fn histogram_and_sweep_agree_on_dnl() {
        // The two independent methods must produce the same DNL profile
        // for the paper-measured macro.
        let adc = DualSlopeAdc::paper_measured();
        let h = characterise_histogram(&adc, 100, 64);
        let s = characterise(&adc, 100);
        let sweep: std::collections::HashMap<u64, f64> = s.dnl_series().into_iter().collect();
        let mut compared = 0;
        for (code, dnl_h) in h.dnl_series() {
            if let Some(&dnl_s) = sweep.get(&code) {
                assert!(
                    (dnl_h - dnl_s).abs() < 0.15,
                    "code {code}: histogram {dnl_h:.3} vs sweep {dnl_s:.3}"
                );
                compared += 1;
            }
        }
        assert!(compared > 80, "only {compared} codes compared");
    }

    #[test]
    fn histogram_flags_starved_bins() {
        // A violent ripple makes the transfer non-monotone: some code
        // bins starve (strongly negative DNL) while neighbours bloat.
        let adc = DualSlopeAdc::with_errors(AdcErrorModel {
            ripple_v: 0.02,
            ripple_period_codes: 7.0,
            ..AdcErrorModel::none()
        });
        let h = characterise_histogram(&adc, 60, 32);
        // Non-monotone transfer redistributes hits, so bins starve
        // without fully closing.
        assert!(
            h.dnl.iter().any(|&d| d < -0.5),
            "no starved bins: min {}",
            h.dnl.iter().fold(f64::INFINITY, |m, &v| m.min(v))
        );
        assert!(h.max_dnl_lsb() >= 1.0);
    }

    #[test]
    fn inl_is_endpoint_corrected() {
        let adc = DualSlopeAdc::paper_measured();
        let h = characterise_histogram(&adc, 80, 32);
        let last = *h.inl.last().expect("non-empty");
        assert!(last.abs() < 1e-9, "endpoint INL {last}");
    }

    #[test]
    #[should_panic(expected = "at least 5")]
    fn too_few_codes_rejected() {
        let _ = characterise_histogram(&DualSlopeAdc::ideal(), 3, 8);
    }
}
