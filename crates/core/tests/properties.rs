//! Property-based tests for the ADC macro, characterisation identities
//! and the sigma-delta extension.

use msbist::adc::{AdcConverter, AdcErrorModel, DualSlopeAdc};
use msbist::charac::characterise;
use msbist::sigma_delta::{decimate, SigmaDeltaModulator};
use proptest::prelude::*;

/// Strategy: smooth (ripple- and noise-free) error models, for which the
/// converter transfer curve is monotone.
fn smooth_errors() -> impl Strategy<Value = AdcErrorModel> {
    (
        -0.005..0.005f64, // offset_v
        -0.01..0.01f64,   // gain_error
        0.0..20.0f64,     // leak_per_s
    )
        .prop_map(|(offset_v, gain_error, leak_per_s)| AdcErrorModel {
            offset_v,
            gain_error,
            leak_per_s,
            ..AdcErrorModel::none()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn conversion_is_monotone_for_smooth_models(
        errors in smooth_errors(),
        v1 in 0.0..2.5f64,
        v2 in 0.0..2.5f64,
    ) {
        let adc = DualSlopeAdc::with_errors(errors);
        let (lo, hi) = if v1 <= v2 { (v1, v2) } else { (v2, v1) };
        prop_assert!(adc.convert(lo) <= adc.convert(hi));
    }

    #[test]
    fn codes_are_bounded(errors in smooth_errors(), vin in -10.0..10.0f64) {
        let adc = DualSlopeAdc::with_errors(errors);
        prop_assert!(adc.convert(vin) <= 2 * adc.full_count());
    }

    #[test]
    fn conversion_time_bounded_by_worst_case(
        errors in smooth_errors(),
        vin in 0.0..2.5f64,
    ) {
        let adc = DualSlopeAdc::with_errors(errors);
        let t = adc.conversion_time(vin);
        // T1 plus at most the 2x overflow reference phase.
        let worst = 3.0 * adc.full_count() as f64 / adc.clock_hz();
        prop_assert!(t > 0.0 && t <= worst + 1e-12);
    }

    #[test]
    fn dnl_inl_identity(errors in smooth_errors()) {
        // INL(k+1) − INL(k) = DNL(k): the endpoint-fit removes only a
        // linear term, whose difference is constant; DNL is computed as
        // transition spacing, so the identity holds up to that constant.
        let adc = DualSlopeAdc::with_errors(errors);
        let c = characterise(&adc, 40);
        prop_assume!(c.missing_codes.is_empty());
        // The endpoint line's per-code slope error.
        let n = c.inl.len();
        prop_assert_eq!(c.dnl.len(), n - 1);
        let slope = (c.inl[n - 1] - c.inl[0]) / (n as f64 - 1.0);
        for k in 0..n - 1 {
            let lhs = c.inl[k + 1] - c.inl[k];
            // DNL measured vs LSB includes the fit slope offset.
            let rhs = c.dnl[k] + slope
                - (c.transitions[k + 1] - c.transitions[k]).mul_add(0.0, 0.0);
            // dnl[k] = spacing/lsb - 1; inl diff = spacing/lsb - fitstep/lsb.
            // fitstep/lsb = 1 + gain-ish constant; so lhs - dnl[k] is the
            // same constant for every k.
            let _ = rhs;
            if k > 0 {
                let prev = c.inl[k] - c.inl[k - 1] - c.dnl[k - 1];
                let cur = lhs - c.dnl[k];
                prop_assert!((cur - prev).abs() < 1e-9, "identity broke at {k}");
            }
        }
    }

    #[test]
    fn quantisation_error_scales_with_error_budget(
        errors in smooth_errors(),
        vin in 0.05..1.0f64,
    ) {
        // Reconstruction error = quantisation (≤1 LSB) plus the smooth
        // error terms: offset, gain and leak compression (first order
        // ~leak·T1 of the reading).
        let adc = DualSlopeAdc::with_errors(errors);
        let code = adc.convert(vin);
        let reconstructed = code as f64 * adc.lsb();
        let t1 = adc.full_count() as f64 / adc.clock_hz();
        let budget_lsb = 1.5
            + errors.offset_v.abs() / adc.lsb()
            + (errors.gain_error.abs() + errors.leak_per_s * t1) * vin / adc.lsb();
        prop_assert!(
            (vin - reconstructed).abs() < budget_lsb * adc.lsb(),
            "error {} LSB vs budget {budget_lsb}",
            (vin - reconstructed).abs() / adc.lsb()
        );
    }

    #[test]
    fn sigma_delta_density_tracks_dc(dc in -0.9..0.9f64) {
        let mut sd = SigmaDeltaModulator::new(1.0 / 6.8);
        let bits = sd.modulate_dc(dc, 4096);
        let density = bits.iter().filter(|&&b| b).count() as f64 / 4096.0;
        let expect = (dc + 1.0) / 2.0;
        prop_assert!((density - expect).abs() < 0.03, "{density} vs {expect}");
    }

    #[test]
    fn decimation_preserves_mean(
        bits in proptest::collection::vec(any::<bool>(), 64..256),
        osr in 2usize..16,
    ) {
        let n = (bits.len() / osr) * osr;
        prop_assume!(n > 0);
        let out = decimate(&bits[..n], osr);
        let mean_bits =
            bits[..n].iter().map(|&b| if b { 1.0 } else { -1.0 }).sum::<f64>() / n as f64;
        let mean_out = out.iter().sum::<f64>() / out.len() as f64;
        prop_assert!((mean_bits - mean_out).abs() < 1e-9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Self-calibration never makes the smooth-error INL worse, and is
    /// the identity on an already-ideal converter.
    #[test]
    fn calibration_is_monotone_improvement(errors in smooth_errors()) {
        use msbist::calibrate::CalibratedAdc;

        let raw = DualSlopeAdc::with_errors(errors);
        let before = characterise(&raw, 80);
        prop_assume!(before.missing_codes.is_empty());
        let cal = CalibratedAdc::self_calibrated(raw, 100);
        let after = characterise(&cal, 80);
        // Allow the relabelling floor (±0.5 LSB + endpoint convention).
        prop_assert!(
            after.max_inl_lsb() <= before.max_inl_lsb().max(1.05) + 1e-9,
            "INL worsened: {} -> {}",
            before.max_inl_lsb(),
            after.max_inl_lsb()
        );
    }

    /// A smooth (ripple-free) converter always passes the ramp
    /// monotonicity BIST.
    #[test]
    fn smooth_converters_are_monotone(errors in smooth_errors()) {
        use msbist::bist::monotonicity::paper_monotonicity_test;

        let adc = DualSlopeAdc::with_errors(errors);
        let report = paper_monotonicity_test(&adc);
        prop_assert!(report.passed(), "{:?}", report.violations);
    }

    /// The scan-bus session always reports exactly what direct
    /// conversion would, for any smooth device.
    #[test]
    fn scan_session_is_transparent(errors in smooth_errors()) {
        use msbist::bist::scan_access::SerialTestBus;

        let adc = DualSlopeAdc::with_errors(errors);
        let mut bus = SerialTestBus::new();
        for (level, code) in bus.run_session(&adc) {
            prop_assert_eq!(code, adc.convert(level), "level {}", level);
        }
    }

    /// Loopback of an ideal DAC into any smooth converter bounds the
    /// code error by the converter's own error budget.
    #[test]
    fn loopback_error_tracks_error_budget(errors in smooth_errors()) {
        use macrolib::dac::BinaryDac;
        use msbist::dac_test::loopback_test;

        let adc = DualSlopeAdc::with_errors(errors);
        let dac = BinaryDac::ideal(8, 2.5);
        let report = loopback_test(&dac, &adc, 16);
        let t1 = adc.full_count() as f64 / 100e3;
        let budget = 2.0
            + errors.offset_v.abs() / adc.lsb()
            + (errors.gain_error.abs() + errors.leak_per_s * t1) * 2.5 / adc.lsb();
        prop_assert!(
            report.max_code_error <= budget,
            "error {} vs budget {budget}",
            report.max_code_error
        );
    }
}
