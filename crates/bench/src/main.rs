//! The `experiments` binary: regenerates every table and figure of the
//! paper and prints paper-vs-measured reports.
//!
//! Usage:
//!
//! ```text
//! experiments [profile] [e1|e2|e3|e4|e5|e6|e6c1|e7|e8|ablation|diverge|all]
//!             [--workers N] [--backend dense|sparse]
//!             [--metrics-json PATH] [--canonical-metrics]
//!             [--bench-json PATH] [--trace-json PATH]
//!             [--journal PATH | --resume PATH]
//!             [--chaos SPEC] [--numeric-chaos SPEC]
//!             [--degrade abort|continue] [--telemetry DIR]
//! experiments check-report PATH
//! experiments explain PATH [--fault N]
//! experiments watch DIR|JOURNAL [--once] [--json] [--interval MS]
//! experiments bench-diff OLD NEW [--tolerance PCT] [--count-tolerance PCT]
//!             [--reuse-tolerance PCT] [--counts-only]
//! ```
//!
//! With `--metrics-json` the run also writes a machine-readable
//! [`obs::RunReport`] (schema `mixsig.run-report/1`) covering every
//! experiment that ran: detection coverage, solver counters, the
//! escalation-rung histogram, wall-clock percentiles, and any solver
//! postmortems frozen by armed flight recorders.
//! `--canonical-metrics` zeroes the wall-clock milliseconds (keeping
//! sample counts) so the bytes are identical for any `--workers` value.
//! `--bench-json` writes a `mixsig.solver-bench/3` sidecar with each
//! experiment's wall-clock, Newton-iteration totals, factorisation
//! reuse counters and solver-phase cost breakdown (the committed
//! `BENCH_solver.json` snapshot); writing it arms the phase profiler
//! for the whole run. `--backend` selects the linear-solver core
//! (sparse by default); both backends produce bit-identical solutions,
//! so canonical metrics do not depend on the choice.
//!
//! The `profile` subcommand runs the selected experiments with the
//! phase profiler armed and prints a cost-attribution table: per-phase
//! self-time, call count and share of attributed time. `--trace-json`
//! additionally writes a Chrome Trace Event timeline
//! (`chrome://tracing` / Perfetto) of every campaign the run executed:
//! one process lane per campaign, one thread lane per worker, per-fault
//! spans with solver-phase sub-spans. Phase wall-times never enter the
//! canonical metrics: `--canonical-metrics` output is byte-identical
//! with or without profiling armed.
//!
//! `--journal` checkpoints every campaign-backed experiment (`e6`,
//! `e6c1`, `diverge`) to an append-only `mixsig.campaign-journal/1`
//! file, one fsync'd record per completed fault; `--resume` replays
//! such a journal first and only re-simulates what is missing, landing
//! on byte-identical canonical metrics. Both install a SIGINT handler:
//! Ctrl-C stops at the next fault boundary, leaves a clean partial
//! journal, and exits 130.
//! `--chaos` arms deterministic journal fault injection (for example
//! `write@4..7` or `seed@7:20`, see [`obs::chaos::FaultPlan::parse`])
//! against every campaign journal of the run, and `--degrade` picks
//! what a persistent journal failure does: `abort` (default) stops at
//! the next fault boundary with a clean partial journal, `continue`
//! finishes the campaign journal-less and marks the run degraded.
//! `--numeric-chaos` arms deterministic *solver* fault injection (for
//! example `pivot@0`, `nan@2..4`, `denom@0`, `perturb@1`, `seed@7:10`,
//! see [`obs::chaos::NumericChaosPlan::parse`]) into every fault
//! extraction of every campaign: forced pivot breakdowns, corrupted
//! factors, poisoned solutions and degenerate rank-1 denominators
//! exercise the hazard taxonomy and tier-demotion ladder end to end.
//! It needs no journal, golden extractions always run clean, and
//! `hazard.*` / `demote.*` counters land in the metrics, the bench
//! sidecar and the canonical `[hazard … → demote …]` markers.
//! `check-report` validates a previously written report (the CI smoke
//! test), including the structure of any postmortems it carries; given
//! a journal it validates the record stream instead, given a
//! `--trace-json` timeline it validates the Chrome-trace structure
//! (mandatory fields, finite non-negative durations, balanced duration
//! events), and given a `--bench-json` sidecar it validates any
//! schema version, lints phase attribution against wall-clock and (v3)
//! factorisation counts against Newton iterations. Degraded runs are
//! reported in both forms: the report summary carries a
//! `journal_degraded` count and the journal's terminal `degraded`
//! record names how many fault outcomes went unjournaled and why.
//! `explain` renders a report's solver postmortems as a narrative
//! diagnosis: the escalation-ladder path, the worst-offending nodes and
//! the last recorded Newton iterations (`--fault` selects one by
//! zero-based index or fault label). Given a journal it renders
//! per-campaign checkpoint progress instead. The `diverge` experiment
//! is a deliberately non-convergent campaign that demonstrates the
//! pipeline.
//!
//! `--telemetry DIR` arms live, strictly advisory campaign telemetry:
//! per-worker heartbeats append to `DIR/heartbeats.jsonl` and a
//! `mixsig.campaign-status/1` snapshot is atomically rewritten at
//! `DIR/status.json` while campaigns run (canonical output stays
//! byte-identical, armed or not). `watch` tails that directory — or a
//! checkpoint journal directly — as a refreshing console: progress bar,
//! throughput and ETA, outcome rollup, per-worker lanes with stall
//! flags and phase hot spots. `--once` renders a single frame,
//! `--json` emits the raw snapshot for machines; a dead campaign is
//! reconstructed from its journal. `bench-diff` compares two
//! `--bench-json` sidecars as a perf-regression gate (timing, solver
//! counts and factorisation-reuse rate, each with its own tolerance)
//! and exits nonzero on regression; `--counts-only` skips the timing
//! comparisons for cross-machine diffs.

use std::env;
use std::fs;
use std::process::ExitCode;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use anasim::robust::CancelToken;
use anasim::solver::Backend;
use anasim::AnalysisError;
use faultsim::campaign::DegradePolicy;
use faultsim::trace::CampaignTrace;
use msbist_bench::hooks::CampaignHooks;
use msbist_bench::solver_bench::{self, BenchEntry};
use msbist_bench::{bench_diff, experiments, explain, watch};
use obs::json::JsonValue;
use obs::profile::{Phase, PhaseProfiler, PhaseSnapshot};
use obs::{Align, RunReport, Section, Table};

/// Exit code for a run stopped by SIGINT, per shell convention
/// (128 + signal 2).
const EXIT_INTERRUPTED: u8 = 130;

/// The token the SIGINT handler raises. Installed once, before any
/// campaign starts; the handler itself only touches an atomic, which is
/// async-signal-safe.
static SIGINT_CANCEL: OnceLock<CancelToken> = OnceLock::new();

extern "C" fn sigint_handler(_signum: i32) {
    if let Some(token) = SIGINT_CANCEL.get() {
        token.cancel();
    }
}

/// Installs the SIGINT → [`CancelToken`] bridge and returns the token.
/// On non-Unix platforms the token exists but nothing raises it.
fn install_sigint_cancel() -> CancelToken {
    let token = SIGINT_CANCEL.get_or_init(CancelToken::new).clone();
    #[cfg(unix)]
    unsafe {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        signal(2, sigint_handler as extern "C" fn(i32) as usize);
    }
    token
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("check-report") {
        return match args.get(1) {
            Some(path) => check_report(path),
            None => {
                eprintln!("usage: experiments check-report PATH");
                ExitCode::FAILURE
            }
        };
    }
    if args.first().map(String::as_str) == Some("explain") {
        return explain_command(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("watch") {
        return watch_command(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("bench-diff") {
        return bench_diff_command(&args[1..]);
    }
    // `experiments profile <tag> ...` is the run command with the phase
    // profiler armed and a cost-attribution table printed at the end.
    let profile_mode = args.first().map(String::as_str) == Some("profile");
    let args = if profile_mode { &args[1..] } else { &args[..] };

    let mut which: Option<String> = None;
    let mut metrics_json: Option<String> = None;
    let mut bench_json: Option<String> = None;
    let mut trace_json: Option<String> = None;
    let mut canonical = false;
    let mut journal: Option<String> = None;
    let mut resume: Option<String> = None;
    let mut chaos: Option<obs::FaultPlan> = None;
    let mut numeric_chaos: Option<obs::NumericChaosPlan> = None;
    let mut degrade = DegradePolicy::Abort;
    let mut telemetry: Option<String> = None;
    let mut workers = experiments::e6::E6_WORKERS;
    let mut backend = Backend::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--metrics-json" => match it.next() {
                Some(path) => metrics_json = Some(path.clone()),
                None => return usage_error("--metrics-json needs a path"),
            },
            "--bench-json" => match it.next() {
                Some(path) => bench_json = Some(path.clone()),
                None => return usage_error("--bench-json needs a path"),
            },
            "--trace-json" => match it.next() {
                Some(path) => trace_json = Some(path.clone()),
                None => return usage_error("--trace-json needs a path"),
            },
            "--canonical-metrics" => canonical = true,
            "--journal" => match it.next() {
                Some(path) => journal = Some(path.clone()),
                None => return usage_error("--journal needs a path"),
            },
            "--resume" => match it.next() {
                Some(path) => resume = Some(path.clone()),
                None => return usage_error("--resume needs a path"),
            },
            "--chaos" => match it.next() {
                Some(spec) => match obs::FaultPlan::parse(spec) {
                    Ok(plan) => chaos = Some(plan),
                    Err(err) => return usage_error(&format!("--chaos: {err}")),
                },
                None => {
                    return usage_error(
                        "--chaos needs a fault spec (e.g. write@4..7, sync@2, seed@7:20)",
                    )
                }
            },
            "--numeric-chaos" => match it.next() {
                Some(spec) => match obs::NumericChaosPlan::parse(spec) {
                    Ok(plan) => numeric_chaos = Some(plan),
                    Err(err) => return usage_error(&format!("--numeric-chaos: {err}")),
                },
                None => {
                    return usage_error(
                        "--numeric-chaos needs a site spec (e.g. pivot@0, nan@2, seed@7:20)",
                    )
                }
            },
            "--degrade" => match it.next().map(String::as_str) {
                Some("abort") => degrade = DegradePolicy::Abort,
                Some("continue") => degrade = DegradePolicy::Continue,
                _ => return usage_error("--degrade needs 'abort' or 'continue'"),
            },
            "--telemetry" => match it.next() {
                Some(dir) => telemetry = Some(dir.clone()),
                None => return usage_error("--telemetry needs a directory"),
            },
            "--workers" => match it.next().and_then(|w| w.parse::<usize>().ok()) {
                Some(w) if w >= 1 => workers = w,
                _ => return usage_error("--workers needs a positive integer"),
            },
            "--backend" => match it.next().and_then(|b| Backend::parse(b)) {
                Some(b) => backend = b,
                None => return usage_error("--backend needs 'dense' or 'sparse'"),
            },
            tag if !tag.starts_with('-') && which.is_none() => which = Some(tag.to_owned()),
            other => return usage_error(&format!("unknown argument '{other}'")),
        }
    }
    let which = which.unwrap_or_else(|| "all".to_owned());
    if journal.is_some() && resume.is_some() {
        return usage_error("--journal and --resume are mutually exclusive");
    }
    if chaos.is_some() && journal.is_none() && resume.is_none() {
        return usage_error("--chaos injects journal faults and needs --journal or --resume");
    }

    // --journal starts a fresh checkpoint stream (the engine itself
    // only ever appends, so the CLI truncates here, once); --resume
    // keeps the file and replays it. Both arm SIGINT cancellation.
    let hooks = match (&journal, &resume) {
        (Some(path), None) => {
            if let Err(err) = fs::write(path, "") {
                eprintln!("cannot start journal at {path}: {err}");
                return ExitCode::FAILURE;
            }
            CampaignHooks::journaled(path, false).with_cancel(install_sigint_cancel())
        }
        (None, Some(path)) => {
            CampaignHooks::journaled(path, true).with_cancel(install_sigint_cancel())
        }
        _ => CampaignHooks::none(),
    };
    let hooks = match chaos {
        Some(plan) => hooks.with_chaos(plan).with_degrade(degrade),
        None => hooks.with_degrade(degrade),
    };
    // Unlike --chaos (journal I/O faults), --numeric-chaos targets the
    // solver itself and needs no journal to inject into.
    let hooks = match numeric_chaos {
        Some(plan) => hooks.with_numeric_chaos(plan),
        None => hooks,
    };
    let hooks = hooks.with_backend(backend);
    let hooks = match telemetry {
        Some(dir) => hooks.with_telemetry(dir),
        None => hooks,
    };

    // Phase profiling arms for the `profile` subcommand, for a trace,
    // and for the bench sidecar (whose v2 schema carries the phase
    // breakdown). Plain runs stay disarmed: no clock reads on the hot
    // path, and canonical output proven byte-identical either way.
    let profiler = (profile_mode || trace_json.is_some() || bench_json.is_some())
        .then(|| Arc::new(PhaseProfiler::new()));
    let trace = trace_json
        .as_ref()
        .map(|_| Arc::new(Mutex::new(CampaignTrace::new())));
    let mut hooks = hooks;
    if let Some(profiler) = &profiler {
        hooks = hooks.with_profile(Arc::clone(profiler));
    }
    if let Some(trace) = &trace {
        hooks = hooks.with_trace(Arc::clone(trace));
    }

    let mut report = RunReport::new();
    let mut bench_entries: Vec<BenchEntry> = Vec::new();
    let ran = match run_experiments(
        &which,
        workers,
        &hooks,
        profiler.as_ref(),
        &mut report,
        &mut bench_entries,
    ) {
        Ok(ran) => ran,
        Err(AnalysisError::Cancelled) => {
            let path = journal.or(resume).unwrap_or_default();
            eprintln!(
                "interrupted: campaign cancelled at a fault boundary; \
                 journal {path} holds a clean checkpoint — rerun with --resume {path}"
            );
            return ExitCode::from(EXIT_INTERRUPTED);
        }
        Err(err) => {
            eprintln!("experiment failed: {err}");
            return ExitCode::FAILURE;
        }
    };

    if !ran {
        eprintln!("unknown experiment '{which}'; expected e1..e8, e6c1, ablation, diverge or all");
        return ExitCode::FAILURE;
    }

    if profile_mode {
        let snapshot = profiler
            .as_ref()
            .map(|p| p.snapshot())
            .unwrap_or_default();
        println!("{}", render_profile_table(&snapshot, &bench_entries));
    }
    if let Some(path) = trace_json {
        let trace = trace.expect("trace allocated with --trace-json");
        let trace = trace.lock().expect("campaign trace lock");
        if trace.is_empty() {
            eprintln!(
                "warning: no campaign ran ('{which}' has no campaign-backed experiment); \
                 {path} not written"
            );
        } else {
            if let Err(err) = fs::write(&path, trace.render()) {
                eprintln!("cannot write trace to {path}: {err}");
                return ExitCode::FAILURE;
            }
            println!(
                "trace written to {path} ({} campaign(s), {} event(s))",
                trace.campaigns(),
                trace.events().len()
            );
        }
    }
    if let Some(path) = metrics_json {
        let text = if canonical {
            report.canonical_json_string()
        } else {
            report.to_json_string()
        };
        if let Err(err) = fs::write(&path, text) {
            eprintln!("cannot write metrics to {path}: {err}");
            return ExitCode::FAILURE;
        }
        println!("metrics written to {path}");
    }
    if let Some(path) = bench_json {
        let text = solver_bench::render(&bench_entries);
        if let Err(err) = fs::write(&path, text) {
            eprintln!("cannot write solver bench to {path}: {err}");
            return ExitCode::FAILURE;
        }
        println!("solver bench written to {path}");
    }
    ExitCode::SUCCESS
}

/// Runs every experiment selected by `which`, filling `report` and
/// `bench_entries`. Returns whether any experiment matched.
/// Campaign-backed experiments receive the crash-safety `hooks`; the
/// rest ignore them (they have no campaign to checkpoint). When
/// `profiler` is armed, each experiment's slice of the shared phase
/// accounting (a snapshot delta around its run) lands in its bench
/// entry.
/// Sums every counter of `section` whose name starts with `prefix`.
/// The hazard/demotion counters are published per category
/// (`solver.hazard.*`, `solver.demote.*`); the bench sidecar tracks the
/// totals.
fn prefix_sum(section: &Section, prefix: &str) -> u64 {
    section
        .counters
        .iter()
        .filter(|(name, _)| name.starts_with(prefix))
        .map(|(_, count)| *count)
        .sum()
}

fn run_experiments(
    which: &str,
    workers: usize,
    hooks: &CampaignHooks,
    profiler: Option<&Arc<PhaseProfiler>>,
    report: &mut RunReport,
    bench_entries: &mut Vec<BenchEntry>,
) -> Result<bool, AnalysisError> {
    let mut ran = false;
    // Each experiment prints its human report, contributes one section
    // (timed under `bench.<experiment>`) to the run report, and one
    // cost line to the solver-bench sidecar. An experiment that never
    // publishes `solver.*` counters runs no solver at all
    // (`linear_only`): its zero Newton count is by construction.
    let mut run_one = |name: &str,
                       run: &dyn Fn(usize) -> Result<(String, Section), AnalysisError>|
     -> Result<(), AnalysisError> {
        ran = true;
        let before = profiler.map(|p| p.snapshot()).unwrap_or_default();
        let started = Instant::now();
        let (text, mut section) = run(workers)?;
        let wall_ms = started.elapsed().as_secs_f64() * 1e3;
        let phases = profiler
            .map(|p| p.snapshot().saturating_sub(&before))
            .unwrap_or_default();
        section.timing_ms(&format!("bench.{name}"), wall_ms);
        bench_entries.push(BenchEntry {
            name: name.to_owned(),
            wall_ms,
            newton_iterations: section
                .counters
                .get("solver.newton_iterations")
                .copied()
                .unwrap_or(0),
            linear_only: !section.counters.contains_key("solver.newton_iterations"),
            workers,
            factor_reuse_hits: section
                .counters
                .get("solver.factor_reuse_hits")
                .copied()
                .unwrap_or(0),
            factor_reuse_misses: section
                .counters
                .get("solver.factor_reuse_misses")
                .copied()
                .unwrap_or(0),
            hazards: prefix_sum(&section, "solver.hazard."),
            demotions: prefix_sum(&section, "solver.demote."),
            refinement_rounds: section
                .counters
                .get("solver.refinement.rounds")
                .copied()
                .unwrap_or(0),
            phases,
        });
        println!("{text}\n");
        report.push(section);
        Ok(())
    };
    let want = |tag: &str| which == tag || which == "all";

    if want("e1") {
        run_one("e1", &|_| {
            let r = experiments::e1::run_instrumented(4e-6, profiler.cloned());
            Ok((r.to_string(), r.to_section()))
        })?;
    }
    if want("e2") {
        run_one("e2", &|_| {
            let r = experiments::e2::run(0.05);
            Ok((r.to_string(), r.to_section()))
        })?;
    }
    if want("e3") {
        run_one("e3", &|_| {
            let r = experiments::e3::run();
            Ok((r.to_string(), r.to_section()))
        })?;
    }
    if want("e4") {
        run_one("e4", &|_| {
            let r = experiments::e4::run(10, 1996);
            Ok((r.to_string(), r.to_section()))
        })?;
    }
    if want("e5") {
        run_one("e5", &|_| {
            let r = experiments::e5::run(100);
            Ok((r.to_string(), r.to_section()))
        })?;
    }
    if want("e6") {
        run_one("e6", &|w| {
            let r = experiments::e6::run_with_hooks(w, hooks)?;
            Ok((r.to_string(), r.to_section()))
        })?;
    }
    if which == "e6c1" {
        run_one("e6c1", &|w| {
            let r = experiments::e6::run_circuit1_only_with_hooks(w, hooks)?;
            Ok((r.to_string(), r.to_section()))
        })?;
    }
    if want("e7") {
        run_one("e7", &|_| {
            let r = experiments::e7::run(0.1);
            Ok((r.to_string(), r.to_section()))
        })?;
    }
    if want("e8") {
        run_one("e8", &|_| {
            let r = experiments::e8::run(50, 1996);
            Ok((r.to_string(), r.to_section()))
        })?;
    }
    if want("ablation") {
        run_one("ablation", &|w| {
            let r = experiments::ablation::run_with_hooks(w, hooks);
            Ok((r.to_string(), r.to_section()))
        })?;
    }
    if which == "diverge" {
        run_one("diverge", &|w| {
            let r = experiments::diverge::run_with_hooks(w, hooks)?;
            Ok((r.to_string(), r.to_section()))
        })?;
    }
    Ok(ran)
}

/// Renders the `profile` subcommand's cost-attribution table: per-phase
/// self-time, call count and share of all attributed time, followed by
/// a per-experiment attribution summary.
fn render_profile_table(snapshot: &PhaseSnapshot, entries: &[BenchEntry]) -> String {
    let total_ns = snapshot.total_ns();
    let mut table = Table::new(&["phase", "self (ms)", "calls", "share"])
        .align(&[Align::Left, Align::Right, Align::Right, Align::Right]);
    for &phase in Phase::ALL.iter() {
        let ns = snapshot.ns(phase);
        let share = if total_ns == 0 {
            0.0
        } else {
            100.0 * ns as f64 / total_ns as f64
        };
        table.row(&[
            phase.label().to_owned(),
            format!("{:.3}", ns as f64 / 1e6),
            snapshot.calls(phase).to_string(),
            format!("{share:.1} %"),
        ]);
    }
    let mut out = String::from("solver phase cost attribution\n");
    out.push_str(&table.render());
    out.push_str(&format!(
        "total attributed: {:.3} ms\n",
        total_ns as f64 / 1e6
    ));
    for e in entries {
        let attributed_ms = e.phases.total_ns() as f64 / 1e6;
        let line = if e.linear_only {
            format!("{}: linear only (no solver work to attribute)\n", e.name)
        } else {
            format!(
                "{}: {:.3} of {:.3} ms attributed ({:.1} %)\n",
                e.name,
                attributed_ms,
                e.wall_ms,
                if e.wall_ms > 0.0 {
                    100.0 * attributed_ms / e.wall_ms
                } else {
                    0.0
                }
            )
        };
        out.push_str(&line);
        // Factorisation-reuse economy: how many Newton iterations were
        // served by an existing factorisation, and how many of those by
        // a golden Sherman–Morrison rank-1 update.
        let decisions = e.factor_reuse_hits + e.factor_reuse_misses;
        if decisions > 0 {
            out.push_str(&format!(
                "{}: factor reuse {}/{} ({:.1} %), {} rank-1 update(s)\n",
                e.name,
                e.factor_reuse_hits,
                decisions,
                100.0 * e.factor_reuse_hits as f64 / decisions as f64,
                e.phases.calls(Phase::Rank1Update),
            ));
        }
    }
    out
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!(
        "{message}\nusage: experiments [profile] [e1..e8|e6c1|ablation|diverge|all] \
         [--workers N] [--backend dense|sparse] [--metrics-json PATH] \
         [--canonical-metrics] [--bench-json PATH]\n\
         \x20      [--trace-json PATH] [--journal PATH | --resume PATH] [--chaos SPEC] \
         [--numeric-chaos SPEC] [--degrade abort|continue] [--telemetry DIR]\n\
         \x20      experiments check-report PATH\n\
         \x20      experiments explain PATH [--fault N]\n\
         \x20      experiments watch DIR|JOURNAL [--once] [--json] [--interval MS]\n\
         \x20      experiments bench-diff OLD NEW [--tolerance PCT] \
         [--count-tolerance PCT] [--reuse-tolerance PCT] [--counts-only]"
    );
    ExitCode::FAILURE
}

/// The `explain` subcommand: reads a `--metrics-json` report and renders
/// every solver postmortem it carries as a narrative diagnosis.
fn explain_command(args: &[String]) -> ExitCode {
    let mut path: Option<&String> = None;
    let mut fault: Option<&String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--fault" => match it.next() {
                Some(selector) => fault = Some(selector),
                None => return usage_error("--fault needs an index or fault label"),
            },
            tag if !tag.starts_with('-') && path.is_none() => path = Some(arg),
            other => return usage_error(&format!("unknown argument '{other}'")),
        }
    }
    let Some(path) = path else {
        return usage_error("explain needs a report path");
    };
    let text = match fs::read_to_string(path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("cannot read {path}: {err}");
            return ExitCode::FAILURE;
        }
    };
    let explained = if explain::looks_like_journal(&text) {
        explain::explain_journal(&text, fault.map(String::as_str))
    } else {
        explain::explain_report(&text, fault.map(String::as_str))
    };
    match explained {
        Ok(rendered) => {
            println!("{rendered}");
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("{path}: {err}");
            ExitCode::FAILURE
        }
    }
}

/// Milliseconds since the Unix epoch, for judging snapshot freshness.
fn unix_ms() -> f64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0.0, |d| d.as_secs_f64() * 1e3)
}

/// The `watch` subcommand: tails a telemetry directory (or a checkpoint
/// journal) as a refreshing console. `--once` renders a single frame,
/// `--json` emits the raw `mixsig.campaign-status/1` snapshot, and the
/// live loop refreshes every `--interval MS` until the campaign reaches
/// a terminal state.
fn watch_command(args: &[String]) -> ExitCode {
    let mut target: Option<&String> = None;
    let mut once = false;
    let mut json = false;
    let mut interval_ms: u64 = 500;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--once" => once = true,
            "--json" => json = true,
            "--interval" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(ms) if ms >= 1 => interval_ms = ms,
                _ => return usage_error("--interval needs a positive millisecond count"),
            },
            tag if !tag.starts_with('-') && target.is_none() => target = Some(arg),
            other => return usage_error(&format!("unknown argument '{other}'")),
        }
    }
    let Some(target) = target else {
        return usage_error("watch needs a telemetry directory or journal path");
    };
    let target = std::path::Path::new(target);
    let mut waiting = false;
    loop {
        let view = match watch::observe(target, unix_ms()) {
            Ok(view) => view,
            Err(err) => {
                eprintln!("{}: {err}", target.display());
                return ExitCode::FAILURE;
            }
        };
        match view {
            Some(view) => {
                if json {
                    println!("{}", view.status.to_json().to_json_pretty());
                } else {
                    if !once {
                        // Clear and rehome for the refreshing console.
                        print!("\x1b[2J\x1b[H");
                    }
                    print!("{}", watch::render(&view));
                }
                if once || view.status.is_terminal() {
                    return ExitCode::SUCCESS;
                }
            }
            None if once => {
                eprintln!(
                    "{}: no status snapshot or campaign journal to watch",
                    target.display()
                );
                return ExitCode::FAILURE;
            }
            None => {
                if !waiting {
                    println!("waiting for telemetry in {} ...", target.display());
                    waiting = true;
                }
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }
}

/// The `bench-diff` subcommand: compares two `--bench-json` sidecars
/// and exits nonzero when NEW regresses past the tolerances.
fn bench_diff_command(args: &[String]) -> ExitCode {
    let mut paths: Vec<&String> = Vec::new();
    let mut tol = bench_diff::Tolerances::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let pct = |name: &str, it: &mut std::slice::Iter<String>| {
            it.next()
                .and_then(|v| v.parse::<f64>().ok())
                .filter(|p| p.is_finite() && *p >= 0.0)
                .ok_or_else(|| format!("{name} needs a non-negative percentage"))
        };
        match arg.as_str() {
            "--tolerance" => match pct("--tolerance", &mut it) {
                Ok(p) => tol.timing_pct = p,
                Err(e) => return usage_error(&e),
            },
            "--count-tolerance" => match pct("--count-tolerance", &mut it) {
                Ok(p) => tol.count_pct = p,
                Err(e) => return usage_error(&e),
            },
            "--reuse-tolerance" => match pct("--reuse-tolerance", &mut it) {
                Ok(p) => tol.reuse_drop_pct = p,
                Err(e) => return usage_error(&e),
            },
            "--counts-only" => tol.counts_only = true,
            tag if !tag.starts_with('-') && paths.len() < 2 => paths.push(arg),
            other => return usage_error(&format!("unknown argument '{other}'")),
        }
    }
    if paths.len() != 2 {
        return usage_error("bench-diff needs OLD and NEW sidecar paths");
    }
    let read = |path: &String| {
        fs::read_to_string(path).map_err(|err| format!("cannot read {path}: {err}"))
    };
    let (old_text, new_text) = match (read(paths[0]), read(paths[1])) {
        (Ok(old), Ok(new)) => (old, new),
        (Err(err), _) | (_, Err(err)) => {
            eprintln!("{err}");
            return ExitCode::FAILURE;
        }
    };
    match bench_diff::diff(&old_text, &new_text, &tol) {
        Ok(cmp) => {
            print!("{}", bench_diff::render(&cmp));
            if cmp.regressed() {
                eprintln!("bench-diff: {} regression(s) past tolerance", cmp.regressions.len());
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(err) => {
            eprintln!("{err}");
            ExitCode::FAILURE
        }
    }
}

/// Validates a run report written by `--metrics-json` (it must parse,
/// carry the expected schema and expose the headline summary keys), or
/// — when the file is a campaign journal — the journal's record stream.
fn check_report(path: &str) -> ExitCode {
    let text = match fs::read_to_string(path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("cannot read {path}: {err}");
            return ExitCode::FAILURE;
        }
    };
    if explain::looks_like_journal(&text) {
        return check_journal(path, &text);
    }
    let parsed = match obs::json::parse(&text) {
        Ok(parsed) => parsed,
        Err(err) => {
            eprintln!("{path} is not valid JSON: {err}");
            return ExitCode::FAILURE;
        }
    };
    // Chrome-trace timelines (--trace-json) and solver-bench sidecars
    // (--bench-json) have their own validators.
    if obs::trace::looks_like_trace(&parsed) {
        return match obs::trace::validate_trace(&text) {
            Ok(events) => {
                println!("{path}: ok (chrome trace, {events} event(s))");
                ExitCode::SUCCESS
            }
            Err(err) => {
                eprintln!("{path}: invalid trace: {err}");
                ExitCode::FAILURE
            }
        };
    }
    if parsed
        .get("schema")
        .and_then(JsonValue::as_str)
        .is_some_and(|s| s.starts_with("mixsig.campaign-status/"))
    {
        return match obs::status::parse_status(&text) {
            Ok(status) => {
                println!(
                    "{path}: ok (campaign status, {} {}/{} {}, {} worker lane(s))",
                    status.label,
                    status.done,
                    status.total,
                    status.state,
                    status.workers.len()
                );
                ExitCode::SUCCESS
            }
            Err(err) => {
                eprintln!("{path}: invalid campaign status: {err}");
                ExitCode::FAILURE
            }
        };
    }
    if parsed
        .get("schema")
        .and_then(JsonValue::as_str)
        .is_some_and(|s| s.starts_with("mixsig.solver-bench/"))
    {
        return match solver_bench::validate(&text) {
            Ok(entries) => {
                println!("{path}: ok (solver bench, {entries} experiment(s))");
                ExitCode::SUCCESS
            }
            Err(err) => {
                eprintln!("{path}: invalid solver bench: {err}");
                ExitCode::FAILURE
            }
        };
    }
    let mut failures = Vec::new();
    if parsed.get("schema").and_then(JsonValue::as_str) != Some(obs::report::SCHEMA) {
        failures.push(format!("schema is not {}", obs::report::SCHEMA));
    }
    match parsed.get("summary") {
        None => failures.push("summary block missing".to_owned()),
        Some(summary) => {
            for key in [
                "coverage",
                "newton_iterations",
                "rung_histogram",
                "wall_ms",
                "journal_degraded",
            ] {
                if summary.get(key).is_none() {
                    failures.push(format!("summary.{key} missing"));
                }
            }
            if let Some(wall) = summary.get("wall_ms") {
                if wall.get("count").and_then(JsonValue::as_f64).is_none() {
                    failures.push("summary.wall_ms.count missing".to_owned());
                }
            }
        }
    }
    match parsed.get("sections").and_then(JsonValue::as_array) {
        Some(sections) if !sections.is_empty() => {}
        _ => failures.push("sections missing or empty".to_owned()),
    }
    // Any postmortems the report carries must decode: a frozen trace,
    // a named worst node and a ladder are what `explain` renders, so a
    // structurally broken one fails the smoke test here rather than at
    // diagnosis time.
    let postmortems = match explain::collect_postmortems(&parsed) {
        Ok(postmortems) => {
            for (label, pm) in &postmortems {
                if pm.trace.is_empty() {
                    failures.push(format!("postmortem {label}: empty iteration trace"));
                }
                if pm.worst_nodes.is_empty() {
                    failures.push(format!("postmortem {label}: no worst-node histogram"));
                }
                if pm.ladder.is_empty() {
                    failures.push(format!("postmortem {label}: empty escalation ladder"));
                }
            }
            postmortems.len()
        }
        Err(err) => {
            failures.push(format!("postmortems invalid: {err}"));
            0
        }
    };
    if failures.is_empty() {
        let summary = parsed.get("summary").expect("checked above");
        let degraded = summary
            .get("journal_degraded")
            .and_then(JsonValue::as_f64)
            .unwrap_or(0.0);
        let degraded_note = if degraded > 0.0 {
            format!("; JOURNAL DEGRADED: {degraded} fault outcome(s) unjournaled")
        } else {
            String::new()
        };
        println!(
            "{path}: ok (coverage {:?}, {} Newton iterations, {postmortems} postmortem(s){degraded_note})",
            summary.get("coverage").and_then(JsonValue::as_f64),
            summary
                .get("newton_iterations")
                .and_then(JsonValue::as_f64)
                .unwrap_or(0.0)
        );
        ExitCode::SUCCESS
    } else {
        for failure in &failures {
            eprintln!("{path}: {failure}");
        }
        ExitCode::FAILURE
    }
}

/// Validates a `mixsig.campaign-journal/1` file: every record must
/// decode, and every journaled fault must be consistent with its
/// campaign's fault universe. A torn trailing line is fine (that is the
/// format's crash contract); anything else structurally wrong fails.
fn check_journal(path: &str, text: &str) -> ExitCode {
    let replay = match obs::journal::parse_journal(text)
        .and_then(|contents| faultsim::journal::replay(&contents))
    {
        Ok(replay) => replay,
        Err(err) => {
            eprintln!("{path}: invalid journal: {err}");
            return ExitCode::FAILURE;
        }
    };
    let mut failures = Vec::new();
    if replay.campaigns.is_empty() {
        failures.push("journal has no campaign start record".to_owned());
    }
    for (label, campaign) in &replay.campaigns {
        for fault in campaign.faults.values() {
            match campaign.names.get(fault.index) {
                None => failures.push(format!(
                    "campaign {label}: fault index {} outside universe of {}",
                    fault.index,
                    campaign.names.len()
                )),
                Some(name) if *name != fault.name => failures.push(format!(
                    "campaign {label}: fault {} journaled as '{}' but universe says '{name}'",
                    fault.index, fault.name
                )),
                Some(_) => {}
            }
        }
    }
    if failures.is_empty() {
        let summary: Vec<String> = replay
            .campaigns
            .iter()
            .map(|(label, c)| {
                let state = if let Some(d) = &c.degraded {
                    format!("degraded ({} unjournaled: {})", d.unjournaled, d.reason)
                } else if c.complete {
                    "complete".to_owned()
                } else if c.cancelled {
                    "cancelled".to_owned()
                } else {
                    "interrupted".to_owned()
                };
                // The same fold the live status snapshot uses, so the
                // two progress views cannot disagree.
                let rollup = msbist_bench::watch::fold_campaign(label, c, None);
                format!(
                    "{label} {}/{} {state} ({} detected, {} undetected, {} failed)",
                    c.faults.len(),
                    c.names.len(),
                    rollup.detected,
                    rollup.undetected,
                    rollup.failed
                )
            })
            .collect();
        println!(
            "{path}: ok ({}{})",
            summary.join(", "),
            if replay.torn_tail { "; torn tail" } else { "" }
        );
        ExitCode::SUCCESS
    } else {
        for failure in &failures {
            eprintln!("{path}: {failure}");
        }
        ExitCode::FAILURE
    }
}
