//! The `experiments` binary: regenerates every table and figure of the
//! paper and prints paper-vs-measured reports.
//!
//! Usage: `experiments [e1|e2|e3|e4|e5|e6|e7|ablation|all]`

use std::env;
use std::process::ExitCode;

use msbist_bench::experiments;

fn main() -> ExitCode {
    let which = env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let mut ran = false;
    let want = |tag: &str| which == tag || which == "all";

    if want("e1") {
        ran = true;
        println!("{}\n", experiments::e1::run(4e-6));
    }
    if want("e2") {
        ran = true;
        println!("{}\n", experiments::e2::run(0.05));
    }
    if want("e3") {
        ran = true;
        println!("{}\n", experiments::e3::run());
    }
    if want("e4") {
        ran = true;
        println!("{}\n", experiments::e4::run(10, 1996));
    }
    if want("e5") {
        ran = true;
        println!("{}\n", experiments::e5::run(100));
    }
    if want("e6") {
        ran = true;
        println!("{}\n", experiments::e6::run());
    }
    if want("e7") {
        ran = true;
        println!("{}\n", experiments::e7::run(0.1));
    }
    if want("e8") {
        ran = true;
        println!("{}\n", experiments::e8::run(50, 1996));
    }
    if want("ablation") {
        ran = true;
        println!("{}\n", experiments::ablation::run());
    }

    if !ran {
        eprintln!("unknown experiment '{which}'; expected e1..e8, ablation or all");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
