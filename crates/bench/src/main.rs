//! The `experiments` binary: regenerates every table and figure of the
//! paper and prints paper-vs-measured reports.
//!
//! Usage:
//!
//! ```text
//! experiments [e1|e2|e3|e4|e5|e6|e6c1|e7|e8|ablation|diverge|all]
//!             [--workers N] [--metrics-json PATH] [--canonical-metrics]
//!             [--bench-json PATH]
//! experiments check-report PATH
//! experiments explain PATH [--fault N]
//! ```
//!
//! With `--metrics-json` the run also writes a machine-readable
//! [`obs::RunReport`] (schema `mixsig.run-report/1`) covering every
//! experiment that ran: detection coverage, solver counters, the
//! escalation-rung histogram, wall-clock percentiles, and any solver
//! postmortems frozen by armed flight recorders.
//! `--canonical-metrics` zeroes the wall-clock milliseconds (keeping
//! sample counts) so the bytes are identical for any `--workers` value.
//! `--bench-json` writes a `mixsig.solver-bench/1` sidecar with each
//! experiment's wall-clock and Newton-iteration totals (the committed
//! `BENCH_solver.json` snapshot).
//! `check-report` validates a previously written report (the CI smoke
//! test), including the structure of any postmortems it carries.
//! `explain` renders a report's solver postmortems as a narrative
//! diagnosis: the escalation-ladder path, the worst-offending nodes and
//! the last recorded Newton iterations (`--fault` selects one by
//! zero-based index or fault label). The `diverge` experiment is a
//! deliberately non-convergent campaign that demonstrates the pipeline.

use std::env;
use std::fs;
use std::process::ExitCode;
use std::time::Instant;

use msbist_bench::solver_bench::{self, BenchEntry};
use msbist_bench::{experiments, explain};
use obs::json::JsonValue;
use obs::{RunReport, Section};

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("check-report") {
        return match args.get(1) {
            Some(path) => check_report(path),
            None => {
                eprintln!("usage: experiments check-report PATH");
                ExitCode::FAILURE
            }
        };
    }
    if args.first().map(String::as_str) == Some("explain") {
        return explain_command(&args[1..]);
    }

    let mut which: Option<String> = None;
    let mut metrics_json: Option<String> = None;
    let mut bench_json: Option<String> = None;
    let mut canonical = false;
    let mut workers = experiments::e6::E6_WORKERS;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--metrics-json" => match it.next() {
                Some(path) => metrics_json = Some(path.clone()),
                None => return usage_error("--metrics-json needs a path"),
            },
            "--bench-json" => match it.next() {
                Some(path) => bench_json = Some(path.clone()),
                None => return usage_error("--bench-json needs a path"),
            },
            "--canonical-metrics" => canonical = true,
            "--workers" => match it.next().and_then(|w| w.parse::<usize>().ok()) {
                Some(w) if w >= 1 => workers = w,
                _ => return usage_error("--workers needs a positive integer"),
            },
            tag if !tag.starts_with('-') && which.is_none() => which = Some(tag.to_owned()),
            other => return usage_error(&format!("unknown argument '{other}'")),
        }
    }
    let which = which.unwrap_or_else(|| "all".to_owned());

    let mut report = RunReport::new();
    let mut bench_entries: Vec<BenchEntry> = Vec::new();
    let mut ran = false;
    {
        // Each experiment prints its human report, contributes one
        // section (timed under `bench.<experiment>`) to the run report,
        // and one cost line to the solver-bench sidecar.
        let mut run_one = |name: &str, run: &dyn Fn(usize) -> (String, Section)| {
            ran = true;
            let started = Instant::now();
            let (text, mut section) = run(workers);
            let wall_ms = started.elapsed().as_secs_f64() * 1e3;
            section.timing_ms(&format!("bench.{name}"), wall_ms);
            bench_entries.push(BenchEntry {
                name: name.to_owned(),
                wall_ms,
                newton_iterations: section
                    .counters
                    .get("solver.newton_iterations")
                    .copied()
                    .unwrap_or(0),
            });
            println!("{text}\n");
            report.push(section);
        };
        let want = |tag: &str| which == tag || which == "all";

        if want("e1") {
            run_one("e1", &|_| {
                let r = experiments::e1::run(4e-6);
                (r.to_string(), r.to_section())
            });
        }
        if want("e2") {
            run_one("e2", &|_| {
                let r = experiments::e2::run(0.05);
                (r.to_string(), r.to_section())
            });
        }
        if want("e3") {
            run_one("e3", &|_| {
                let r = experiments::e3::run();
                (r.to_string(), r.to_section())
            });
        }
        if want("e4") {
            run_one("e4", &|_| {
                let r = experiments::e4::run(10, 1996);
                (r.to_string(), r.to_section())
            });
        }
        if want("e5") {
            run_one("e5", &|_| {
                let r = experiments::e5::run(100);
                (r.to_string(), r.to_section())
            });
        }
        if want("e6") {
            run_one("e6", &|w| {
                let r = experiments::e6::run_with(w);
                (r.to_string(), r.to_section())
            });
        }
        if which == "e6c1" {
            run_one("e6c1", &|w| {
                let r = experiments::e6::run_circuit1_only_with(w);
                (r.to_string(), r.to_section())
            });
        }
        if want("e7") {
            run_one("e7", &|_| {
                let r = experiments::e7::run(0.1);
                (r.to_string(), r.to_section())
            });
        }
        if want("e8") {
            run_one("e8", &|_| {
                let r = experiments::e8::run(50, 1996);
                (r.to_string(), r.to_section())
            });
        }
        if want("ablation") {
            run_one("ablation", &|w| {
                let r = experiments::ablation::run_with(w);
                (r.to_string(), r.to_section())
            });
        }
        if which == "diverge" {
            run_one("diverge", &|w| {
                let r = experiments::diverge::run_with(w);
                (r.to_string(), r.to_section())
            });
        }
    }

    if !ran {
        eprintln!("unknown experiment '{which}'; expected e1..e8, e6c1, ablation, diverge or all");
        return ExitCode::FAILURE;
    }

    if let Some(path) = metrics_json {
        let text = if canonical {
            report.canonical_json_string()
        } else {
            report.to_json_string()
        };
        if let Err(err) = fs::write(&path, text) {
            eprintln!("cannot write metrics to {path}: {err}");
            return ExitCode::FAILURE;
        }
        println!("metrics written to {path}");
    }
    if let Some(path) = bench_json {
        let text = solver_bench::render(&bench_entries);
        if let Err(err) = fs::write(&path, text) {
            eprintln!("cannot write solver bench to {path}: {err}");
            return ExitCode::FAILURE;
        }
        println!("solver bench written to {path}");
    }
    ExitCode::SUCCESS
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!(
        "{message}\nusage: experiments [e1..e8|e6c1|ablation|diverge|all] \
         [--workers N] [--metrics-json PATH] [--canonical-metrics] [--bench-json PATH]\n\
         \x20      experiments check-report PATH\n\
         \x20      experiments explain PATH [--fault N]"
    );
    ExitCode::FAILURE
}

/// The `explain` subcommand: reads a `--metrics-json` report and renders
/// every solver postmortem it carries as a narrative diagnosis.
fn explain_command(args: &[String]) -> ExitCode {
    let mut path: Option<&String> = None;
    let mut fault: Option<&String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--fault" => match it.next() {
                Some(selector) => fault = Some(selector),
                None => return usage_error("--fault needs an index or fault label"),
            },
            tag if !tag.starts_with('-') && path.is_none() => path = Some(arg),
            other => return usage_error(&format!("unknown argument '{other}'")),
        }
    }
    let Some(path) = path else {
        return usage_error("explain needs a report path");
    };
    let text = match fs::read_to_string(path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("cannot read {path}: {err}");
            return ExitCode::FAILURE;
        }
    };
    match explain::explain_report(&text, fault.map(String::as_str)) {
        Ok(rendered) => {
            println!("{rendered}");
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("{path}: {err}");
            ExitCode::FAILURE
        }
    }
}

/// Validates a run report written by `--metrics-json`: it must parse,
/// carry the expected schema and expose the headline summary keys.
fn check_report(path: &str) -> ExitCode {
    let text = match fs::read_to_string(path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("cannot read {path}: {err}");
            return ExitCode::FAILURE;
        }
    };
    let parsed = match obs::json::parse(&text) {
        Ok(parsed) => parsed,
        Err(err) => {
            eprintln!("{path} is not valid JSON: {err}");
            return ExitCode::FAILURE;
        }
    };
    let mut failures = Vec::new();
    if parsed.get("schema").and_then(JsonValue::as_str) != Some(obs::report::SCHEMA) {
        failures.push(format!("schema is not {}", obs::report::SCHEMA));
    }
    match parsed.get("summary") {
        None => failures.push("summary block missing".to_owned()),
        Some(summary) => {
            for key in ["coverage", "newton_iterations", "rung_histogram", "wall_ms"] {
                if summary.get(key).is_none() {
                    failures.push(format!("summary.{key} missing"));
                }
            }
            if let Some(wall) = summary.get("wall_ms") {
                if wall.get("count").and_then(JsonValue::as_f64).is_none() {
                    failures.push("summary.wall_ms.count missing".to_owned());
                }
            }
        }
    }
    match parsed.get("sections").and_then(JsonValue::as_array) {
        Some(sections) if !sections.is_empty() => {}
        _ => failures.push("sections missing or empty".to_owned()),
    }
    // Any postmortems the report carries must decode: a frozen trace,
    // a named worst node and a ladder are what `explain` renders, so a
    // structurally broken one fails the smoke test here rather than at
    // diagnosis time.
    let postmortems = match explain::collect_postmortems(&parsed) {
        Ok(postmortems) => {
            for (label, pm) in &postmortems {
                if pm.trace.is_empty() {
                    failures.push(format!("postmortem {label}: empty iteration trace"));
                }
                if pm.worst_nodes.is_empty() {
                    failures.push(format!("postmortem {label}: no worst-node histogram"));
                }
                if pm.ladder.is_empty() {
                    failures.push(format!("postmortem {label}: empty escalation ladder"));
                }
            }
            postmortems.len()
        }
        Err(err) => {
            failures.push(format!("postmortems invalid: {err}"));
            0
        }
    };
    if failures.is_empty() {
        let summary = parsed.get("summary").expect("checked above");
        println!(
            "{path}: ok (coverage {:?}, {} Newton iterations, {postmortems} postmortem(s))",
            summary.get("coverage").and_then(JsonValue::as_f64),
            summary
                .get("newton_iterations")
                .and_then(JsonValue::as_f64)
                .unwrap_or(0.0)
        );
        ExitCode::SUCCESS
    } else {
        for failure in &failures {
            eprintln!("{path}: {failure}");
        }
        ExitCode::FAILURE
    }
}
