//! `experiments explain` — renders solver-failure postmortems from a
//! machine-readable run report as a human-oriented diagnosis.
//!
//! A run report written with `--metrics-json` carries, per section, the
//! postmortems frozen by armed convergence flight recorders (see
//! `anasim::flight`). This module turns those back into narrative: what
//! was being solved when the solver died, which escalation rungs were
//! tried and how each ended, which circuit nodes dominated the Newton
//! update, and the last recorded iterations of the trace. Everything
//! rendered is deterministic — the same report bytes always explain to
//! the same text.
//!
//! The same command also reads campaign *journals*
//! (`mixsig.campaign-journal/1`, written with `--journal`/`--resume`):
//! [`explain_journal`] renders per-campaign progress — how many faults
//! checkpointed, how each ended, which panicked or were cancelled — and
//! any postmortems riding the journaled telemetry. [`looks_like_journal`]
//! sniffs which of the two formats a file is.

use std::fmt::Write as _;

use faultsim::campaign::FaultStatus;
use faultsim::journal::{JournalReplay, ReplayedCampaign};
use obs::json::JsonValue;
use obs::postmortem::Postmortem;
use obs::table::{Align, Table};

/// Extracts every postmortem from a parsed run report, paired with the
/// name of the section that carried it, in report order.
///
/// # Errors
///
/// Returns a message when the document has no `sections` array or a
/// postmortem entry is structurally invalid.
pub fn collect_postmortems(report: &JsonValue) -> Result<Vec<(String, Postmortem)>, String> {
    let sections = report
        .get("sections")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| "report has no sections array".to_owned())?;
    let mut out = Vec::new();
    for section in sections {
        let name = section
            .get("name")
            .and_then(JsonValue::as_str)
            .unwrap_or("?")
            .to_owned();
        let Some(pms) = section.get("postmortems").and_then(JsonValue::as_array) else {
            continue;
        };
        for (i, pm) in pms.iter().enumerate() {
            let pm = Postmortem::from_json(pm)
                .map_err(|e| format!("section '{name}' postmortem {i}: {e}"))?;
            out.push((name.clone(), pm));
        }
    }
    Ok(out)
}

/// Renders one postmortem as an indented narrative block: headline,
/// escalation-ladder path, worst-offending nodes and the retained
/// iteration trace.
pub fn render_postmortem(section: &str, pm: &Postmortem) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "postmortem: {} (section {section})", pm.label);
    let _ = writeln!(out, "  error: {}", pm.error);
    let _ = writeln!(
        out,
        "  died at t = {:.3e} s, residual {:.3e}, {} Newton iterations total",
        pm.time, pm.residual, pm.total_iterations
    );
    if let Some(steps) = pm.budget_steps {
        let _ = writeln!(out, "  budget: {steps} steps charged at death");
    }

    if !pm.ladder.is_empty() {
        let _ = writeln!(out, "\n  escalation ladder:");
        let mut t = Table::new(&["rung", "settings", "outcome"])
            .align(&[Align::Right, Align::Left, Align::Left]);
        for step in &pm.ladder {
            t.row(&[step.rung.to_string(), step.label.clone(), step.outcome.clone()]);
        }
        out.push_str(&indent(&t.render(), "    "));
    }

    if !pm.hazards.is_empty() {
        let _ = writeln!(out, "\n  numerical hazards (detection order):");
        let mut t = Table::new(&["t [s]", "hazard", "solver response"])
            .align(&[Align::Right, Align::Left, Align::Left]);
        for h in &pm.hazards {
            t.row(&[format!("{:.3e}", h.time), h.hazard.clone(), h.action.clone()]);
        }
        out.push_str(&indent(&t.render(), "    "));
    }

    if !pm.worst_nodes.is_empty() {
        let full = pm.worst_nodes.first().map_or(1, |(_, c)| *c) as f64;
        let _ = writeln!(out, "\n  worst-offending nodes (iterations dominated):");
        let mut t = Table::new(&["node", "count", ""])
            .align(&[Align::Left, Align::Right, Align::Left]);
        for (node, count) in &pm.worst_nodes {
            t.row(&[
                node.clone(),
                count.to_string(),
                obs::table::bar(*count as f64, full, 24),
            ]);
        }
        out.push_str(&indent(&t.render(), "    "));
    }

    if !pm.trace.is_empty() {
        let _ = writeln!(out, "\n  last {} recorded iterations:", pm.trace.len());
        let mut t = Table::new(&["phase", "t [s]", "dt [s]", "iter", "residual", "worst node"])
            .align(&[
                Align::Left,
                Align::Right,
                Align::Right,
                Align::Right,
                Align::Right,
                Align::Left,
            ]);
        for it in &pm.trace {
            t.row(&[
                it.phase.clone(),
                format!("{:.3e}", it.time),
                format!("{:.3e}", it.dt),
                it.iteration.to_string(),
                format!("{:.3e}", it.residual),
                it.worst_node.clone(),
            ]);
        }
        out.push_str(&indent(&t.render(), "    "));
    }
    out
}

/// Campaign-level rollup across a set of postmortems: which nodes
/// dominated the Newton update most often, descending by count then
/// name.
pub fn top_offending_nodes(postmortems: &[(String, Postmortem)]) -> Vec<(String, u64)> {
    let mut counts: std::collections::BTreeMap<&str, u64> = std::collections::BTreeMap::new();
    for (_, pm) in postmortems {
        for (node, count) in &pm.worst_nodes {
            *counts.entry(node.as_str()).or_default() += count;
        }
    }
    let mut out: Vec<(String, u64)> = counts
        .into_iter()
        .map(|(node, count)| (node.to_owned(), count))
        .collect();
    out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    out
}

/// Explains a run-report JSON document: every postmortem (or only the
/// one selected by `fault` — a zero-based index or an exact fault
/// label), plus a top-offending-nodes rollup when more than one is
/// shown.
///
/// # Errors
///
/// Returns a message for unparseable reports, invalid postmortems, or a
/// `fault` selector matching nothing.
pub fn explain_report(text: &str, fault: Option<&str>) -> Result<String, String> {
    let parsed = obs::json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let all = collect_postmortems(&parsed)?;
    if all.is_empty() {
        return Ok(
            "no postmortems in this report: every solve converged, or no flight \
             recorder was armed (run a campaign with CampaignConfig::flight)\n"
                .to_owned(),
        );
    }

    let selected: Vec<&(String, Postmortem)> = match fault {
        None => all.iter().collect(),
        Some(sel) => {
            let picked: Vec<&(String, Postmortem)> = match sel.parse::<usize>() {
                Ok(idx) => all.get(idx).into_iter().collect(),
                Err(_) => all.iter().filter(|(_, pm)| pm.label == sel).collect(),
            };
            if picked.is_empty() {
                return Err(format!(
                    "no postmortem matches --fault {sel} (report has {}: {})",
                    all.len(),
                    all.iter()
                        .map(|(_, pm)| pm.label.as_str())
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            }
            picked
        }
    };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} of {} postmortem(s):\n",
        selected.len(),
        all.len()
    );
    for (i, (section, pm)) in selected.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&render_postmortem(section, pm));
    }
    if selected.len() > 1 {
        let owned: Vec<(String, Postmortem)> =
            selected.iter().map(|&(s, pm)| (s.clone(), pm.clone())).collect();
        let top = top_offending_nodes(&owned);
        let _ = writeln!(out, "\ntop offending nodes across all postmortems:");
        let full = top.first().map_or(1, |(_, c)| *c) as f64;
        let mut t = Table::new(&["node", "count", ""])
            .align(&[Align::Left, Align::Right, Align::Left]);
        for (node, count) in top.iter().take(10) {
            t.row(&[
                node.clone(),
                count.to_string(),
                obs::table::bar(*count as f64, full, 24),
            ]);
        }
        out.push_str(&indent(&t.render(), "  "));
    }
    Ok(out)
}

/// True when `text` is a campaign journal (JSONL whose first non-blank
/// line is an object with a `record` member) rather than a run report.
pub fn looks_like_journal(text: &str) -> bool {
    text.lines()
        .find(|l| !l.trim().is_empty())
        .and_then(|l| obs::json::parse(l).ok())
        .is_some_and(|v| v.get("record").is_some())
}

/// Renders one replayed campaign's progress block: the checkpoint
/// headline, a status rollup, and the faults that did not come back
/// clean.
fn render_campaign_progress(label: &str, campaign: &ReplayedCampaign) -> String {
    let mut out = String::new();
    let total = campaign.names.len();
    let state = if let Some(d) = &campaign.degraded {
        format!(
            "journal degraded ({} journaled, {} unjournaled)",
            d.journaled, d.unjournaled
        )
    } else if campaign.complete {
        "complete".to_owned()
    } else if campaign.cancelled {
        format!("cancelled after {}", campaign.faults.len())
    } else {
        "interrupted (no terminal record)".to_owned()
    };
    let _ = writeln!(
        out,
        "campaign {label}: {}/{} faults checkpointed — {state}",
        campaign.faults.len(),
        total
    );
    if let Some(d) = &campaign.degraded {
        let _ = writeln!(
            out,
            "  journal gave out mid-campaign: {}; the campaign itself finished, \
             and a plain resume re-simulates the unjournaled faults",
            d.reason
        );
    }

    let mut counts: std::collections::BTreeMap<&str, usize> = std::collections::BTreeMap::new();
    for fault in campaign.faults.values() {
        *counts.entry(fault.status.tag()).or_default() += 1;
    }
    if !counts.is_empty() {
        let rollup: Vec<String> = counts
            .iter()
            .map(|(tag, n)| format!("{n} {tag}"))
            .collect();
        let _ = writeln!(out, "  outcomes: {}", rollup.join(", "));
    }

    // Numerical-resilience rollup across the checkpointed faults: which
    // hazards the solver hit and how far down the recovery ladder it
    // had to demote. Silent for healthy campaigns.
    let mut hazards: Vec<(&'static str, u64)> = Vec::new();
    let mut demotions: Vec<(&'static str, u64)> = Vec::new();
    let mut refinement = 0_u64;
    for fault in campaign.faults.values() {
        for (label, n) in fault.telemetry.solver.hazards() {
            match hazards.iter_mut().find(|(l, _)| *l == label) {
                Some((_, total)) => *total += n,
                None => hazards.push((label, n)),
            }
        }
        for (label, n) in fault.telemetry.solver.demotions() {
            match demotions.iter_mut().find(|(l, _)| *l == label) {
                Some((_, total)) => *total += n,
                None => demotions.push((label, n)),
            }
        }
        refinement += fault.telemetry.solver.refinement_rounds;
    }
    let join = |pairs: &[(&'static str, u64)]| -> String {
        pairs
            .iter()
            .filter(|(_, n)| *n > 0)
            .map(|(label, n)| format!("{label} x {n}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let hazard_text = join(&hazards);
    let demote_text = join(&demotions);
    if !hazard_text.is_empty() {
        let _ = writeln!(out, "  numerical hazards: {hazard_text}");
    }
    if !demote_text.is_empty() {
        let _ = writeln!(out, "  tier demotions: {demote_text}");
    }
    if refinement > 0 {
        let _ = writeln!(out, "  iterative-refinement rounds: {refinement}");
    }

    // Per-worker progress, through the same fold the live status
    // snapshot uses (`experiments watch`): which lane simulated what,
    // for how long, and where its solver time went.
    let folded = crate::watch::fold_campaign(label, campaign, None);
    if folded.done > 0 && !folded.workers.is_empty() {
        let _ = writeln!(out, "  worker lanes:");
        let mut t = Table::new(&["lane", "done", "busy (ms)", "hot phase"])
            .align(&[Align::Right, Align::Right, Align::Right, Align::Left]);
        for w in &folded.workers {
            t.row(&[
                w.lane.to_string(),
                w.completed.to_string(),
                format!("{:.1}", w.busy_ms),
                w.hot_phase.clone().unwrap_or_default(),
            ]);
        }
        out.push_str(&indent(&t.render(), "    "));
    }

    for fault in campaign.faults.values() {
        match &fault.status {
            FaultStatus::Panicked { payload } => {
                let _ = writeln!(
                    out,
                    "  {}: panicked — {}",
                    fault.name,
                    payload.lines().next().unwrap_or("")
                );
            }
            FaultStatus::SimFailed { error, rungs_tried } => {
                let _ = writeln!(
                    out,
                    "  {}: sim-failed after {rungs_tried} rung(s) — {error}",
                    fault.name
                );
            }
            FaultStatus::BudgetExceeded { rungs_tried } => {
                let _ = writeln!(
                    out,
                    "  {}: budget exceeded after {rungs_tried} rung(s)",
                    fault.name
                );
            }
            FaultStatus::SignatureMismatch { got, want } => {
                let _ = writeln!(
                    out,
                    "  {}: signature length mismatch ({got} vs {want})",
                    fault.name
                );
            }
            FaultStatus::Detected { .. } | FaultStatus::Undetected { .. } => {}
        }
    }
    if !campaign.complete {
        let missing: Vec<&str> = campaign
            .names
            .iter()
            .enumerate()
            .filter(|(i, _)| !campaign.faults.contains_key(i))
            .map(|(_, name)| name.as_str())
            .collect();
        if !missing.is_empty() {
            let _ = writeln!(out, "  pending on resume: {}", missing.join(", "));
        }
    }
    out
}

/// Explains a campaign journal: per-campaign checkpoint progress plus
/// every postmortem riding the journaled telemetry (`fault` selects one
/// by zero-based index or fault label, as in [`explain_report`]).
///
/// # Errors
///
/// Returns a message for unreadable journals, structurally invalid
/// records, or a `fault` selector matching nothing.
pub fn explain_journal(text: &str, fault: Option<&str>) -> Result<String, String> {
    let replay: JournalReplay =
        faultsim::journal::replay(&obs::journal::parse_journal(text)?)?;
    let mut out = String::new();
    if replay.campaigns.is_empty() {
        return Ok("journal is empty: no campaign start record survived\n".to_owned());
    }
    if replay.torn_tail {
        let _ = writeln!(
            out,
            "journal ends in a torn line (hard kill mid-append); the torn record \
             will be re-simulated on resume\n"
        );
    }
    for (i, (label, campaign)) in replay.campaigns.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&render_campaign_progress(label, campaign));
    }

    let all: Vec<(String, Postmortem)> = replay
        .campaigns
        .iter()
        .flat_map(|(label, campaign)| {
            campaign.faults.values().filter_map(move |f| {
                f.telemetry
                    .postmortem
                    .as_ref()
                    .map(|pm| (label.clone(), pm.clone()))
            })
        })
        .collect();
    let selected: Vec<&(String, Postmortem)> = match fault {
        None => all.iter().collect(),
        Some(sel) => {
            let picked: Vec<&(String, Postmortem)> = match sel.parse::<usize>() {
                Ok(idx) => all.get(idx).into_iter().collect(),
                Err(_) => all.iter().filter(|(_, pm)| pm.label == sel).collect(),
            };
            if picked.is_empty() {
                return Err(format!(
                    "no journaled postmortem matches --fault {sel} (journal has {})",
                    all.len()
                ));
            }
            picked
        }
    };
    if !selected.is_empty() {
        let _ = writeln!(out, "\n{} journaled postmortem(s):\n", selected.len());
        for (i, (label, pm)) in selected.iter().enumerate() {
            if i > 0 {
                out.push('\n');
            }
            out.push_str(&render_postmortem(label, pm));
        }
    }
    Ok(out)
}

fn indent(text: &str, pad: &str) -> String {
    text.lines()
        .map(|l| {
            if l.is_empty() {
                String::from("\n")
            } else {
                format!("{pad}{l}\n")
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::postmortem::{LadderStep, PostmortemIteration};
    use obs::{RunReport, Section};

    fn sample_report() -> String {
        let pm = |label: &str, node: &str| Postmortem {
            label: label.to_owned(),
            error: "newton iteration failed to converge at t = 1.000e-6 s".to_owned(),
            time: 1e-6,
            residual: 3.75,
            total_iterations: 24,
            trace: vec![PostmortemIteration {
                phase: "transient".to_owned(),
                time: 1e-6,
                dt: 1e-6,
                iteration: 6,
                residual: 3.75,
                worst_index: 2,
                worst_node: node.to_owned(),
            }],
            worst_nodes: vec![(node.to_owned(), 24)],
            ladder: vec![
                LadderStep {
                    rung: 0,
                    label: "nominal".to_owned(),
                    outcome: "no-convergence".to_owned(),
                },
                LadderStep {
                    rung: 1,
                    label: "dt*0.5".to_owned(),
                    outcome: "no-convergence".to_owned(),
                },
            ],
            hazards: vec![obs::postmortem::HazardStep {
                hazard: "rank1-breakdown".to_owned(),
                action: "demote:refactor".to_owned(),
                time: 9e-7,
            }],
            budget_steps: None,
        };
        let mut section = Section::new("campaign.diverge");
        section.postmortem(pm("f1", "gen1")).postmortem(pm("f2", "gen2"));
        let mut report = RunReport::new();
        report.push(section);
        report.canonical_json_string()
    }

    #[test]
    fn explains_every_postmortem_with_rollup() {
        let text = explain_report(&sample_report(), None).unwrap();
        assert!(text.contains("2 of 2 postmortem(s)"), "{text}");
        assert!(text.contains("postmortem: f1 (section campaign.diverge)"));
        assert!(text.contains("postmortem: f2"));
        assert!(text.contains("escalation ladder"));
        assert!(text.contains("no-convergence"));
        assert!(text.contains("numerical hazards (detection order)"), "{text}");
        assert!(text.contains("rank1-breakdown"), "{text}");
        assert!(text.contains("demote:refactor"), "{text}");
        assert!(text.contains("gen1"));
        assert!(text.contains("top offending nodes across all postmortems"));
    }

    #[test]
    fn fault_selector_picks_by_index_and_label() {
        let report = sample_report();
        let by_index = explain_report(&report, Some("1")).unwrap();
        assert!(by_index.contains("postmortem: f2"), "{by_index}");
        assert!(!by_index.contains("postmortem: f1"));
        let by_label = explain_report(&report, Some("f1")).unwrap();
        assert!(by_label.contains("postmortem: f1"));
        assert!(!by_label.contains("postmortem: f2"));
    }

    #[test]
    fn unmatched_selector_is_an_error_listing_candidates() {
        let err = explain_report(&sample_report(), Some("nope")).unwrap_err();
        assert!(err.contains("--fault nope"), "{err}");
        assert!(err.contains("f1, f2"));
    }

    #[test]
    fn report_without_postmortems_explains_why() {
        let mut report = RunReport::new();
        report.push(Section::new("e1"));
        let text = explain_report(&report.canonical_json_string(), None).unwrap();
        assert!(text.contains("no postmortems"), "{text}");
    }

    #[test]
    fn invalid_json_and_structure_are_reported() {
        assert!(explain_report("{not json", None).is_err());
        assert!(explain_report("{\"schema\": \"x\"}", None)
            .unwrap_err()
            .contains("sections"));
    }

    fn sample_journal(with_terminal: bool) -> String {
        use faultsim::campaign::{FaultStatus, FaultTelemetry};
        use faultsim::journal::{cancelled_record, fault_record, start_record};
        use faultsim::model::Fault;
        let mut nl = anasim::netlist::Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        let faults = [Fault::stuck_at_0("f0", a), Fault::stuck_at_1("f1", b)];
        let telemetry = FaultTelemetry {
            rung: Some(0),
            rungs_tried: 1,
            wall: std::time::Duration::from_millis(1),
            solver: anasim::metrics::SolverSnapshot {
                hazard_rank1_breakdown: 2,
                demote_refactor: 1,
                refinement_rounds: 3,
                ..anasim::metrics::SolverSnapshot::default()
            },
            ..FaultTelemetry::default()
        };
        let mut text = start_record("rc", &faults, 0.05, 4).to_json();
        text.push('\n');
        text += &fault_record(
            "rc",
            0,
            "f0",
            Some(&[1.0]),
            &FaultStatus::Detected { pct: 100.0 },
            &telemetry,
        )
        .to_json();
        text.push('\n');
        if with_terminal {
            text += &fault_record(
                "rc",
                1,
                "f1",
                None,
                &FaultStatus::Panicked {
                    payload: "boom: solver invariant".to_owned(),
                },
                &telemetry,
            )
            .to_json();
            text.push('\n');
            text += &cancelled_record("rc", 2).to_json();
            text.push('\n');
        }
        text
    }

    #[test]
    fn journal_sniffing_tells_the_formats_apart() {
        assert!(looks_like_journal(&sample_journal(true)));
        assert!(!looks_like_journal(&sample_report()));
        assert!(!looks_like_journal(""));
        assert!(!looks_like_journal("not json at all"));
    }

    #[test]
    fn journal_progress_names_panics_and_terminal_state() {
        let text = explain_journal(&sample_journal(true), None).unwrap();
        assert!(
            text.contains("campaign rc: 2/2 faults checkpointed — cancelled after 2"),
            "{text}"
        );
        assert!(text.contains("1 detected, 1 panicked"), "{text}");
        assert!(text.contains("f1: panicked — boom: solver invariant"), "{text}");
        // Per-worker progress rides the same fold the watch console uses.
        assert!(text.contains("worker lanes:"), "{text}");
        assert!(text.contains("lane"), "{text}");
        // Both faults carried hazard telemetry: the rollup sums it.
        assert!(text.contains("numerical hazards: rank1-breakdown x 4"), "{text}");
        assert!(text.contains("tier demotions: refactor x 2"), "{text}");
        assert!(text.contains("iterative-refinement rounds: 6"), "{text}");
    }

    #[test]
    fn interrupted_journal_lists_pending_faults() {
        let text = explain_journal(&sample_journal(false), None).unwrap();
        assert!(
            text.contains("campaign rc: 1/2 faults checkpointed — interrupted"),
            "{text}"
        );
        assert!(text.contains("pending on resume: f1"), "{text}");
    }

    #[test]
    fn degraded_journal_explains_the_outage_and_pending_faults() {
        use faultsim::journal::degraded_record;
        let mut text = sample_journal(false);
        text += &degraded_record("rc", 1, 1, "injected write fault at op 3").to_json();
        text.push('\n');
        let rendered = explain_journal(&text, None).unwrap();
        assert!(
            rendered.contains("campaign rc: 1/2 faults checkpointed — journal degraded (1 journaled, 1 unjournaled)"),
            "{rendered}"
        );
        assert!(
            rendered.contains("injected write fault at op 3"),
            "{rendered}"
        );
        assert!(rendered.contains("pending on resume: f1"), "{rendered}");
    }

    #[test]
    fn torn_journal_tail_is_called_out() {
        let full = sample_journal(false);
        let torn = &full[..full.len() - 10];
        let text = explain_journal(torn, None).unwrap();
        assert!(text.contains("torn line"), "{text}");
    }

    #[test]
    fn rendering_is_deterministic() {
        let report = sample_report();
        assert_eq!(
            explain_report(&report, None).unwrap(),
            explain_report(&report, None).unwrap()
        );
    }
}
