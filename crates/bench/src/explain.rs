//! `experiments explain` — renders solver-failure postmortems from a
//! machine-readable run report as a human-oriented diagnosis.
//!
//! A run report written with `--metrics-json` carries, per section, the
//! postmortems frozen by armed convergence flight recorders (see
//! `anasim::flight`). This module turns those back into narrative: what
//! was being solved when the solver died, which escalation rungs were
//! tried and how each ended, which circuit nodes dominated the Newton
//! update, and the last recorded iterations of the trace. Everything
//! rendered is deterministic — the same report bytes always explain to
//! the same text.

use std::fmt::Write as _;

use obs::json::JsonValue;
use obs::postmortem::Postmortem;
use obs::table::{Align, Table};

/// Extracts every postmortem from a parsed run report, paired with the
/// name of the section that carried it, in report order.
///
/// # Errors
///
/// Returns a message when the document has no `sections` array or a
/// postmortem entry is structurally invalid.
pub fn collect_postmortems(report: &JsonValue) -> Result<Vec<(String, Postmortem)>, String> {
    let sections = report
        .get("sections")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| "report has no sections array".to_owned())?;
    let mut out = Vec::new();
    for section in sections {
        let name = section
            .get("name")
            .and_then(JsonValue::as_str)
            .unwrap_or("?")
            .to_owned();
        let Some(pms) = section.get("postmortems").and_then(JsonValue::as_array) else {
            continue;
        };
        for (i, pm) in pms.iter().enumerate() {
            let pm = Postmortem::from_json(pm)
                .map_err(|e| format!("section '{name}' postmortem {i}: {e}"))?;
            out.push((name.clone(), pm));
        }
    }
    Ok(out)
}

/// Renders one postmortem as an indented narrative block: headline,
/// escalation-ladder path, worst-offending nodes and the retained
/// iteration trace.
pub fn render_postmortem(section: &str, pm: &Postmortem) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "postmortem: {} (section {section})", pm.label);
    let _ = writeln!(out, "  error: {}", pm.error);
    let _ = writeln!(
        out,
        "  died at t = {:.3e} s, residual {:.3e}, {} Newton iterations total",
        pm.time, pm.residual, pm.total_iterations
    );
    if let Some(steps) = pm.budget_steps {
        let _ = writeln!(out, "  budget: {steps} steps charged at death");
    }

    if !pm.ladder.is_empty() {
        let _ = writeln!(out, "\n  escalation ladder:");
        let mut t = Table::new(&["rung", "settings", "outcome"])
            .align(&[Align::Right, Align::Left, Align::Left]);
        for step in &pm.ladder {
            t.row(&[step.rung.to_string(), step.label.clone(), step.outcome.clone()]);
        }
        out.push_str(&indent(&t.render(), "    "));
    }

    if !pm.worst_nodes.is_empty() {
        let full = pm.worst_nodes.first().map_or(1, |(_, c)| *c) as f64;
        let _ = writeln!(out, "\n  worst-offending nodes (iterations dominated):");
        let mut t = Table::new(&["node", "count", ""])
            .align(&[Align::Left, Align::Right, Align::Left]);
        for (node, count) in &pm.worst_nodes {
            t.row(&[
                node.clone(),
                count.to_string(),
                obs::table::bar(*count as f64, full, 24),
            ]);
        }
        out.push_str(&indent(&t.render(), "    "));
    }

    if !pm.trace.is_empty() {
        let _ = writeln!(out, "\n  last {} recorded iterations:", pm.trace.len());
        let mut t = Table::new(&["phase", "t [s]", "dt [s]", "iter", "residual", "worst node"])
            .align(&[
                Align::Left,
                Align::Right,
                Align::Right,
                Align::Right,
                Align::Right,
                Align::Left,
            ]);
        for it in &pm.trace {
            t.row(&[
                it.phase.clone(),
                format!("{:.3e}", it.time),
                format!("{:.3e}", it.dt),
                it.iteration.to_string(),
                format!("{:.3e}", it.residual),
                it.worst_node.clone(),
            ]);
        }
        out.push_str(&indent(&t.render(), "    "));
    }
    out
}

/// Campaign-level rollup across a set of postmortems: which nodes
/// dominated the Newton update most often, descending by count then
/// name.
pub fn top_offending_nodes(postmortems: &[(String, Postmortem)]) -> Vec<(String, u64)> {
    let mut counts: std::collections::BTreeMap<&str, u64> = std::collections::BTreeMap::new();
    for (_, pm) in postmortems {
        for (node, count) in &pm.worst_nodes {
            *counts.entry(node.as_str()).or_default() += count;
        }
    }
    let mut out: Vec<(String, u64)> = counts
        .into_iter()
        .map(|(node, count)| (node.to_owned(), count))
        .collect();
    out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    out
}

/// Explains a run-report JSON document: every postmortem (or only the
/// one selected by `fault` — a zero-based index or an exact fault
/// label), plus a top-offending-nodes rollup when more than one is
/// shown.
///
/// # Errors
///
/// Returns a message for unparseable reports, invalid postmortems, or a
/// `fault` selector matching nothing.
pub fn explain_report(text: &str, fault: Option<&str>) -> Result<String, String> {
    let parsed = obs::json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let all = collect_postmortems(&parsed)?;
    if all.is_empty() {
        return Ok(
            "no postmortems in this report: every solve converged, or no flight \
             recorder was armed (run a campaign with CampaignConfig::flight)\n"
                .to_owned(),
        );
    }

    let selected: Vec<&(String, Postmortem)> = match fault {
        None => all.iter().collect(),
        Some(sel) => {
            let picked: Vec<&(String, Postmortem)> = match sel.parse::<usize>() {
                Ok(idx) => all.get(idx).into_iter().collect(),
                Err(_) => all.iter().filter(|(_, pm)| pm.label == sel).collect(),
            };
            if picked.is_empty() {
                return Err(format!(
                    "no postmortem matches --fault {sel} (report has {}: {})",
                    all.len(),
                    all.iter()
                        .map(|(_, pm)| pm.label.as_str())
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            }
            picked
        }
    };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} of {} postmortem(s):\n",
        selected.len(),
        all.len()
    );
    for (i, (section, pm)) in selected.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&render_postmortem(section, pm));
    }
    if selected.len() > 1 {
        let owned: Vec<(String, Postmortem)> =
            selected.iter().map(|&(s, pm)| (s.clone(), pm.clone())).collect();
        let top = top_offending_nodes(&owned);
        let _ = writeln!(out, "\ntop offending nodes across all postmortems:");
        let full = top.first().map_or(1, |(_, c)| *c) as f64;
        let mut t = Table::new(&["node", "count", ""])
            .align(&[Align::Left, Align::Right, Align::Left]);
        for (node, count) in top.iter().take(10) {
            t.row(&[
                node.clone(),
                count.to_string(),
                obs::table::bar(*count as f64, full, 24),
            ]);
        }
        out.push_str(&indent(&t.render(), "  "));
    }
    Ok(out)
}

fn indent(text: &str, pad: &str) -> String {
    text.lines()
        .map(|l| {
            if l.is_empty() {
                String::from("\n")
            } else {
                format!("{pad}{l}\n")
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::postmortem::{LadderStep, PostmortemIteration};
    use obs::{RunReport, Section};

    fn sample_report() -> String {
        let pm = |label: &str, node: &str| Postmortem {
            label: label.to_owned(),
            error: "newton iteration failed to converge at t = 1.000e-6 s".to_owned(),
            time: 1e-6,
            residual: 3.75,
            total_iterations: 24,
            trace: vec![PostmortemIteration {
                phase: "transient".to_owned(),
                time: 1e-6,
                dt: 1e-6,
                iteration: 6,
                residual: 3.75,
                worst_index: 2,
                worst_node: node.to_owned(),
            }],
            worst_nodes: vec![(node.to_owned(), 24)],
            ladder: vec![
                LadderStep {
                    rung: 0,
                    label: "nominal".to_owned(),
                    outcome: "no-convergence".to_owned(),
                },
                LadderStep {
                    rung: 1,
                    label: "dt*0.5".to_owned(),
                    outcome: "no-convergence".to_owned(),
                },
            ],
            budget_steps: None,
        };
        let mut section = Section::new("campaign.diverge");
        section.postmortem(pm("f1", "gen1")).postmortem(pm("f2", "gen2"));
        let mut report = RunReport::new();
        report.push(section);
        report.canonical_json_string()
    }

    #[test]
    fn explains_every_postmortem_with_rollup() {
        let text = explain_report(&sample_report(), None).unwrap();
        assert!(text.contains("2 of 2 postmortem(s)"), "{text}");
        assert!(text.contains("postmortem: f1 (section campaign.diverge)"));
        assert!(text.contains("postmortem: f2"));
        assert!(text.contains("escalation ladder"));
        assert!(text.contains("no-convergence"));
        assert!(text.contains("gen1"));
        assert!(text.contains("top offending nodes across all postmortems"));
    }

    #[test]
    fn fault_selector_picks_by_index_and_label() {
        let report = sample_report();
        let by_index = explain_report(&report, Some("1")).unwrap();
        assert!(by_index.contains("postmortem: f2"), "{by_index}");
        assert!(!by_index.contains("postmortem: f1"));
        let by_label = explain_report(&report, Some("f1")).unwrap();
        assert!(by_label.contains("postmortem: f1"));
        assert!(!by_label.contains("postmortem: f2"));
    }

    #[test]
    fn unmatched_selector_is_an_error_listing_candidates() {
        let err = explain_report(&sample_report(), Some("nope")).unwrap_err();
        assert!(err.contains("--fault nope"), "{err}");
        assert!(err.contains("f1, f2"));
    }

    #[test]
    fn report_without_postmortems_explains_why() {
        let mut report = RunReport::new();
        report.push(Section::new("e1"));
        let text = explain_report(&report.canonical_json_string(), None).unwrap();
        assert!(text.contains("no postmortems"), "{text}");
    }

    #[test]
    fn invalid_json_and_structure_are_reported() {
        assert!(explain_report("{not json", None).is_err());
        assert!(explain_report("{\"schema\": \"x\"}", None)
            .unwrap_err()
            .contains("sections"));
    }

    #[test]
    fn rendering_is_deterministic() {
        let report = sample_report();
        assert_eq!(
            explain_report(&report, None).unwrap(),
            explain_report(&report, None).unwrap()
        );
    }
}
