//! Crash-safety hooks threaded from the `experiments` CLI into the
//! campaign-backed experiments.
//!
//! One [`CampaignHooks`] value carries the `--journal` / `--resume`
//! checkpoint file and the SIGINT [`CancelToken`] down to every
//! campaign an experiment runs. Each campaign gets its own label inside
//! the shared journal (`e6.c1.correlation`, `e6.c2.idd`, `diverge`,
//! ...), so a single journal file checkpoints a whole `experiments`
//! invocation and a resumed run replays exactly the campaigns that
//! completed.
//!
//! The same value carries the cost-attribution side: an invocation-wide
//! [`PhaseProfiler`] (`profile` subcommand / `--bench-json`) and a
//! shared [`CampaignTrace`] (`--trace-json`). Experiments call
//! [`CampaignHooks::observe`] after each completed campaign to fold its
//! phase rollup into the profiler and append its timeline to the trace.

use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use anasim::robust::{CancelToken, SolveSettings};
use anasim::solver::Backend;
use faultsim::campaign::{CampaignConfig, CampaignReport, DegradePolicy, JournalConfig};
use faultsim::telemetry::TelemetryConfig;
use faultsim::trace::CampaignTrace;
use obs::chaos::{FaultPlan, NumericChaosPlan};
use obs::profile::PhaseProfiler;

/// Where a journaled experiment run checkpoints to.
#[derive(Debug, Clone)]
pub struct JournalSpec {
    /// Journal file shared by every campaign of the invocation.
    pub path: PathBuf,
    /// True to replay completed faults from the journal (`--resume`);
    /// false to journal without replaying (`--journal`, after the CLI
    /// truncated the file).
    pub resume: bool,
}

/// Checkpointing and cancellation context for experiment campaigns.
///
/// The default ([`CampaignHooks::none`]) is inert: campaigns run
/// exactly as they would without the crash-safety machinery.
#[derive(Debug, Clone, Default)]
pub struct CampaignHooks {
    /// Journal file and mode, when `--journal`/`--resume` was given.
    pub journal: Option<JournalSpec>,
    /// Cooperative cancellation token, raised by the CLI's SIGINT
    /// handler.
    pub cancel: Option<CancelToken>,
    /// Deterministic journal fault-injection plan (`--chaos`), applied
    /// to every campaign journal of the invocation.
    pub chaos: Option<FaultPlan>,
    /// Persistent-journal-failure policy (`--degrade`).
    pub degrade: DegradePolicy,
    /// Invocation-wide phase profiler: arms campaign profiling and
    /// accumulates every campaign's phase rollup.
    pub profile: Option<Arc<PhaseProfiler>>,
    /// Shared Chrome-trace timeline (`--trace-json`): arms campaign
    /// profiling and collects every campaign's worker/fault spans.
    pub trace: Option<Arc<Mutex<CampaignTrace>>>,
    /// Linear-solver backend (`--backend`). Both backends produce
    /// bit-identical solutions, so this only changes speed.
    pub backend: Backend,
    /// Live-telemetry directory (`--telemetry`): every campaign of the
    /// invocation arms heartbeat/status sidecars there, sequentially —
    /// `status.json` always shows the campaign currently running.
    pub telemetry: Option<PathBuf>,
    /// Deterministic solver arithmetic fault-injection plan
    /// (`--numeric-chaos`), armed on every campaign of the invocation.
    /// Unlike `--chaos` (journal I/O faults) this needs no journal: it
    /// injects into the linear-solver tiers of each fault extraction.
    pub numeric_chaos: Option<NumericChaosPlan>,
}

impl CampaignHooks {
    /// Hooks that change nothing — the non-journaled default.
    pub fn none() -> Self {
        CampaignHooks::default()
    }

    /// Hooks journaling to `path`, replaying existing records when
    /// `resume` is set.
    pub fn journaled(path: impl Into<PathBuf>, resume: bool) -> Self {
        CampaignHooks {
            journal: Some(JournalSpec {
                path: path.into(),
                resume,
            }),
            ..CampaignHooks::default()
        }
    }

    /// Adds a cancellation token (builder style).
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// Adds a journal fault-injection plan (builder style, `--chaos`).
    pub fn with_chaos(mut self, plan: FaultPlan) -> Self {
        self.chaos = Some(plan);
        self
    }

    /// Sets the persistent-journal-failure policy (builder style,
    /// `--degrade`).
    pub fn with_degrade(mut self, degrade: DegradePolicy) -> Self {
        self.degrade = degrade;
        self
    }

    /// Attaches the invocation-wide phase profiler (builder style).
    /// Campaigns run by these hooks arm per-fault phase accounting.
    pub fn with_profile(mut self, profile: Arc<PhaseProfiler>) -> Self {
        self.profile = Some(profile);
        self
    }

    /// Attaches the shared Chrome-trace timeline (builder style,
    /// `--trace-json`). Campaigns run by these hooks arm per-fault
    /// phase accounting so fault spans carry phase sub-spans.
    pub fn with_trace(mut self, trace: Arc<Mutex<CampaignTrace>>) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Selects the linear-solver backend (builder style, `--backend`).
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Arms live telemetry into `dir` (builder style, `--telemetry`).
    pub fn with_telemetry(mut self, dir: impl Into<PathBuf>) -> Self {
        self.telemetry = Some(dir.into());
        self
    }

    /// Adds a solver numeric-chaos plan (builder style,
    /// `--numeric-chaos`).
    pub fn with_numeric_chaos(mut self, plan: NumericChaosPlan) -> Self {
        self.numeric_chaos = Some(plan);
        self
    }

    /// True when campaigns should arm per-fault phase accounting.
    pub fn profiling(&self) -> bool {
        self.profile.is_some() || self.trace.is_some()
    }

    /// Solve settings for simulations an experiment runs *outside* any
    /// campaign (golden references, impulse-response fits), armed with
    /// the invocation-wide profiler so that solver time is attributed
    /// too instead of silently widening the unattributed gap.
    pub fn solve_settings(&self) -> SolveSettings {
        let mut settings = SolveSettings::default().backend(self.backend);
        if let Some(profile) = &self.profile {
            settings = settings.profile(Arc::clone(profile));
        }
        settings
    }

    /// Applies the hooks to one campaign's config: the journal under
    /// the campaign's `label` (with any chaos plan and degrade policy),
    /// the shared cancellation token, and phase-profiler arming.
    pub fn apply(&self, mut config: CampaignConfig, label: &str) -> CampaignConfig {
        if let Some(spec) = &self.journal {
            let mut jc = if spec.resume {
                JournalConfig::resume(&spec.path, label)
            } else {
                JournalConfig::fresh(&spec.path, label)
            };
            if let Some(plan) = &self.chaos {
                jc = jc.chaos(plan.clone());
            }
            config = config.journal(jc).degrade(self.degrade);
        }
        if let Some(cancel) = &self.cancel {
            config = config.cancel(cancel.clone());
        }
        if self.profiling() {
            config = config.profile(true);
        }
        if let Some(dir) = &self.telemetry {
            config = config.telemetry(TelemetryConfig::new(dir.clone()));
        }
        if let Some(plan) = &self.numeric_chaos {
            config = config.numeric_chaos(plan.clone());
        }
        config.backend(self.backend)
    }

    /// Folds one completed campaign into the cost-attribution side:
    /// its phase rollup into the invocation-wide profiler, and its
    /// timeline (labelled `label`) onto the shared trace.
    pub fn observe(&self, label: &str, report: &CampaignReport) {
        if let Some(profile) = &self.profile {
            profile.add_snapshot(&report.stats.total_solver().phases);
        }
        if let Some(trace) = &self.trace {
            trace
                .lock()
                .expect("campaign trace lock")
                .add_campaign(label, report);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_hooks_leave_the_config_unchanged() {
        let hooks = CampaignHooks::none();
        let config = hooks.apply(CampaignConfig::new(0.5), "e6.c1.correlation");
        assert!(config.journal.is_none());
        assert!(config.cancel.is_none());
    }

    #[test]
    fn journaled_hooks_label_each_campaign() {
        let hooks = CampaignHooks::journaled("/tmp/j.jsonl", true).with_cancel(CancelToken::new());
        let config = hooks.apply(CampaignConfig::new(0.5), "e6.c2.idd");
        let jc = config.journal.expect("journal configured");
        assert_eq!(jc.label, "e6.c2.idd");
        assert!(jc.resume);
        assert!(jc.chaos.is_none());
        assert!(config.cancel.is_some());
        assert_eq!(config.degrade, DegradePolicy::Abort);
    }

    #[test]
    fn profiling_hooks_arm_every_campaign() {
        let hooks = CampaignHooks::none();
        assert!(!hooks.profiling());
        assert!(!hooks.apply(CampaignConfig::new(0.5), "e6.c1.correlation").profile);

        let profiler = Arc::new(PhaseProfiler::new());
        let trace = Arc::new(Mutex::new(CampaignTrace::new()));
        let hooks = CampaignHooks::none()
            .with_profile(Arc::clone(&profiler))
            .with_trace(Arc::clone(&trace));
        assert!(hooks.profiling());
        assert!(hooks.apply(CampaignConfig::new(0.5), "e6.c1.correlation").profile);
    }

    #[test]
    fn backend_reaches_campaigns_and_standalone_solves() {
        let hooks = CampaignHooks::none();
        assert_eq!(
            hooks.apply(CampaignConfig::new(0.5), "e6.c1.correlation").backend,
            Backend::Sparse
        );
        let hooks = hooks.with_backend(Backend::Dense);
        assert_eq!(
            hooks.apply(CampaignConfig::new(0.5), "e6.c1.correlation").backend,
            Backend::Dense
        );
        assert_eq!(hooks.solve_settings().backend, Backend::Dense);
    }

    #[test]
    fn telemetry_hooks_arm_every_campaign() {
        let config = CampaignHooks::none().apply(CampaignConfig::new(0.5), "e6.c1.correlation");
        assert!(config.telemetry.is_none());
        let hooks = CampaignHooks::none().with_telemetry("/tmp/tele");
        let config = hooks.apply(CampaignConfig::new(0.5), "e6.c1.correlation");
        let tc = config.telemetry.expect("telemetry configured");
        assert_eq!(tc.dir, PathBuf::from("/tmp/tele"));
    }

    #[test]
    fn numeric_chaos_reaches_every_campaign_without_a_journal() {
        let config = CampaignHooks::none().apply(CampaignConfig::new(0.5), "e6.c1.correlation");
        assert!(config.numeric_chaos.is_none());
        let plan = NumericChaosPlan::parse("pivot@0,nan@2").unwrap();
        let hooks = CampaignHooks::none().with_numeric_chaos(plan.clone());
        let config = hooks.apply(CampaignConfig::new(0.5), "e6.c1.correlation");
        assert_eq!(config.numeric_chaos, Some(plan));
        assert!(config.journal.is_none(), "numeric chaos must not require a journal");
    }

    #[test]
    fn chaos_and_degrade_reach_every_campaign_journal() {
        let hooks = CampaignHooks::journaled("/tmp/j.jsonl", false)
            .with_chaos(FaultPlan::parse("write@4..7").unwrap())
            .with_degrade(DegradePolicy::Continue);
        let config = hooks.apply(CampaignConfig::new(0.5), "e6.c1.correlation");
        let jc = config.journal.expect("journal configured");
        assert_eq!(jc.chaos, Some(FaultPlan::parse("write@4..7").unwrap()));
        assert_eq!(config.degrade, DegradePolicy::Continue);
    }
}
