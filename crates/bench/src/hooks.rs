//! Crash-safety hooks threaded from the `experiments` CLI into the
//! campaign-backed experiments.
//!
//! One [`CampaignHooks`] value carries the `--journal` / `--resume`
//! checkpoint file and the SIGINT [`CancelToken`] down to every
//! campaign an experiment runs. Each campaign gets its own label inside
//! the shared journal (`e6.c1.correlation`, `e6.c2.idd`, `diverge`,
//! ...), so a single journal file checkpoints a whole `experiments`
//! invocation and a resumed run replays exactly the campaigns that
//! completed.

use std::path::PathBuf;

use anasim::robust::CancelToken;
use faultsim::campaign::{CampaignConfig, DegradePolicy, JournalConfig};
use obs::chaos::FaultPlan;

/// Where a journaled experiment run checkpoints to.
#[derive(Debug, Clone)]
pub struct JournalSpec {
    /// Journal file shared by every campaign of the invocation.
    pub path: PathBuf,
    /// True to replay completed faults from the journal (`--resume`);
    /// false to journal without replaying (`--journal`, after the CLI
    /// truncated the file).
    pub resume: bool,
}

/// Checkpointing and cancellation context for experiment campaigns.
///
/// The default ([`CampaignHooks::none`]) is inert: campaigns run
/// exactly as they would without the crash-safety machinery.
#[derive(Debug, Clone, Default)]
pub struct CampaignHooks {
    /// Journal file and mode, when `--journal`/`--resume` was given.
    pub journal: Option<JournalSpec>,
    /// Cooperative cancellation token, raised by the CLI's SIGINT
    /// handler.
    pub cancel: Option<CancelToken>,
    /// Deterministic journal fault-injection plan (`--chaos`), applied
    /// to every campaign journal of the invocation.
    pub chaos: Option<FaultPlan>,
    /// Persistent-journal-failure policy (`--degrade`).
    pub degrade: DegradePolicy,
}

impl CampaignHooks {
    /// Hooks that change nothing — the non-journaled default.
    pub fn none() -> Self {
        CampaignHooks::default()
    }

    /// Hooks journaling to `path`, replaying existing records when
    /// `resume` is set.
    pub fn journaled(path: impl Into<PathBuf>, resume: bool) -> Self {
        CampaignHooks {
            journal: Some(JournalSpec {
                path: path.into(),
                resume,
            }),
            ..CampaignHooks::default()
        }
    }

    /// Adds a cancellation token (builder style).
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// Adds a journal fault-injection plan (builder style, `--chaos`).
    pub fn with_chaos(mut self, plan: FaultPlan) -> Self {
        self.chaos = Some(plan);
        self
    }

    /// Sets the persistent-journal-failure policy (builder style,
    /// `--degrade`).
    pub fn with_degrade(mut self, degrade: DegradePolicy) -> Self {
        self.degrade = degrade;
        self
    }

    /// Applies the hooks to one campaign's config: the journal under
    /// the campaign's `label` (with any chaos plan and degrade policy),
    /// and the shared cancellation token.
    pub fn apply(&self, mut config: CampaignConfig, label: &str) -> CampaignConfig {
        if let Some(spec) = &self.journal {
            let mut jc = if spec.resume {
                JournalConfig::resume(&spec.path, label)
            } else {
                JournalConfig::fresh(&spec.path, label)
            };
            if let Some(plan) = &self.chaos {
                jc = jc.chaos(plan.clone());
            }
            config = config.journal(jc).degrade(self.degrade);
        }
        if let Some(cancel) = &self.cancel {
            config = config.cancel(cancel.clone());
        }
        config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_hooks_leave_the_config_unchanged() {
        let hooks = CampaignHooks::none();
        let config = hooks.apply(CampaignConfig::new(0.5), "e6.c1.correlation");
        assert!(config.journal.is_none());
        assert!(config.cancel.is_none());
    }

    #[test]
    fn journaled_hooks_label_each_campaign() {
        let hooks = CampaignHooks::journaled("/tmp/j.jsonl", true).with_cancel(CancelToken::new());
        let config = hooks.apply(CampaignConfig::new(0.5), "e6.c2.idd");
        let jc = config.journal.expect("journal configured");
        assert_eq!(jc.label, "e6.c2.idd");
        assert!(jc.resume);
        assert!(jc.chaos.is_none());
        assert!(config.cancel.is_some());
        assert_eq!(config.degrade, DegradePolicy::Abort);
    }

    #[test]
    fn chaos_and_degrade_reach_every_campaign_journal() {
        let hooks = CampaignHooks::journaled("/tmp/j.jsonl", false)
            .with_chaos(FaultPlan::parse("write@4..7").unwrap())
            .with_degrade(DegradePolicy::Continue);
        let config = hooks.apply(CampaignConfig::new(0.5), "e6.c1.correlation");
        let jc = config.journal.expect("journal configured");
        assert_eq!(jc.chaos, Some(FaultPlan::parse("write@4..7").unwrap()));
        assert_eq!(config.degrade, DegradePolicy::Continue);
    }
}
