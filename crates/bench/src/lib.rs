//! `msbist-bench` — the experiment harness regenerating every table and
//! figure of the paper.
//!
//! Each experiment module reproduces one published artefact:
//!
//! | module | paper artefact |
//! |---|---|
//! | [`experiments::e1`] | analogue test results: step levels → integrator fall times |
//! | [`experiments::e2`] | ramp test and its gain-masking blind spot |
//! | [`experiments::e3`] | digital test results: conversion timing, 10 mV/code |
//! | [`experiments::e4`] | compressed tests over the batch of ten devices |
//! | [`experiments::e5`] | Figure 2: full characterisation (offset/gain/INL/DNL) |
//! | [`experiments::e6`] | Figure 4: transient-response fault detection |
//! | [`experiments::e7`] | future-work ΣΔ architecture study |
//! | [`experiments::ablation`] | design-choice ablations (integration rule, signature kind, overhead) |
//!
//! The `experiments` binary prints each experiment's paper-vs-measured
//! report; the Criterion benches under `benches/` time reduced versions
//! of the same code paths.
//!
//! Campaign-backed experiments (`e6`, `e6c1`, `diverge`) accept
//! [`hooks::CampaignHooks`]: the `--journal`/`--resume` checkpoint file
//! and the SIGINT cancellation token the `experiments` binary threads
//! through, so long runs are kill-safe and resumable. The same hooks
//! carry `--telemetry DIR`, arming live heartbeat/status sidecars that
//! the [`watch`] module (the `experiments watch` console) tails; the
//! [`bench_diff`] module is the `bench-diff` perf-regression gate over
//! `--bench-json` sidecars.

pub mod bench_diff;
pub mod experiments;
pub mod explain;
pub mod hooks;
pub mod solver_bench;
pub mod watch;
