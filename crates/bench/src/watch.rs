//! `experiments watch <dir>` — the live campaign console.
//!
//! A campaign run with `--telemetry DIR` leaves two advisory sidecars
//! behind (see `faultsim::telemetry`): the atomically replaced
//! `status.json` snapshot and the `heartbeats.jsonl` append stream.
//! This module is the *pull* half of that telemetry: [`observe`] reads
//! the freshest consistent view of a campaign — live or dead — and
//! [`render`] turns it into the refreshing console.
//!
//! Sources, in order of preference:
//!
//! 1. **The status snapshot.** A running campaign rewrites it every
//!    interval; [`obs::status::read_status`] tolerates every state a
//!    concurrent writer can leave behind.
//! 2. **The checkpoint journal.** When the snapshot is missing, or has
//!    gone stale while claiming `running` (the campaign process died
//!    between snapshots), the journal named in the snapshot — or any
//!    journal found in the directory — is replayed and folded into a
//!    synthesized snapshot by [`fold_campaign`]. The fold is the same
//!    rollup a live `StatusEmitter` maintains, so `explain` and
//!    `check-report` reuse it for their in-flight-journal progress
//!    views.
//!
//! Everything here is read-only and wall-clock quarantined: watching a
//! campaign cannot change what it produces.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

use anasim::metrics::SolverSnapshot;
use faultsim::journal::ReplayedCampaign;
use obs::json::JsonValue;
use obs::profile::Phase;
use obs::status::{self, CampaignStatus, WorkerLane};
use obs::table::{bar, Align, Table};

/// Age past which a `running` snapshot is treated as abandoned and the
/// journal (when one is resolvable) becomes the source of truth.
pub const STALE_AFTER_MS: f64 = 10_000.0;

/// One observation of a campaign: the snapshot plus where it came from.
#[derive(Debug, Clone, PartialEq)]
pub struct WatchView {
    /// The snapshot — read from `status.json` or synthesized from the
    /// journal.
    pub status: CampaignStatus,
    /// Human-readable provenance (`status.json`, `journal …`).
    pub source: String,
    /// Set when the snapshot claims `running` but has not been
    /// rewritten for [`STALE_AFTER_MS`]: its age in milliseconds.
    pub stale_ms: Option<f64>,
}

/// Folds a replayed campaign into the same `mixsig.campaign-status/1`
/// rollup a live `StatusEmitter` maintains: outcome counts from the
/// journaled statuses, per-lane completion and busy time from the
/// journaled fault telemetry, solver counters and phase hot spots from
/// the accumulated [`SolverSnapshot`]s.
///
/// Rates and ETA are zero/absent (a journal has no wall-clock epoch)
/// and `elapsed_ms` is the summed per-fault busy time. Every journaled
/// outcome counts as `replayed` — that is exactly what a resume would
/// do with it. Worker lanes are scheduling metadata the journal
/// deliberately never records, so a replayed journal folds to a single
/// aggregate lane 0; [`overlay_heartbeats`] recovers real lanes from
/// the heartbeat sidecar when one is available.
pub fn fold_campaign(
    label: &str,
    campaign: &ReplayedCampaign,
    journal: Option<&str>,
) -> CampaignStatus {
    let mut detected = 0u64;
    let mut undetected = 0u64;
    let mut failed = 0u64;
    let mut solver = SolverSnapshot::default();
    // lane → (completed, busy_ms, phase rollup)
    let mut lanes: BTreeMap<usize, (u64, f64, obs::profile::PhaseSnapshot)> = BTreeMap::new();
    for fault in campaign.faults.values() {
        match fault.status.tag() {
            "detected" => detected += 1,
            "undetected" => undetected += 1,
            _ => failed += 1,
        }
        solver += fault.telemetry.solver;
        let entry = lanes.entry(fault.telemetry.lane).or_default();
        entry.0 += 1;
        entry.1 += fault.telemetry.wall.as_secs_f64() * 1e3;
        entry.2 += fault.telemetry.solver.phases;
    }
    let state = if campaign.degraded.is_some() {
        "degraded"
    } else if campaign.complete {
        "complete"
    } else if campaign.cancelled {
        "cancelled"
    } else {
        "interrupted"
    };
    let done = campaign.faults.len() as u64;
    let counters = SolverSnapshot::FIELDS
        .iter()
        .zip(solver.as_array())
        .map(|(name, value)| ((*name).to_owned(), value))
        .collect();
    let phases = Phase::ALL
        .iter()
        .filter(|&&p| solver.phases.ns(p) > 0 || solver.phases.calls(p) > 0)
        .map(|&p| (p.label().to_owned(), solver.phases.ns(p), solver.phases.calls(p)))
        .collect();
    let workers = lanes
        .into_iter()
        .map(|(lane, (completed, busy_ms, phases))| WorkerLane {
            lane: lane as u64,
            completed,
            busy_ms,
            hot_phase: hot_phase_of(&phases),
            ..WorkerLane::default()
        })
        .collect();
    let elapsed_ms = campaign
        .faults
        .values()
        .map(|f| f.telemetry.wall.as_secs_f64() * 1e3)
        .sum();
    CampaignStatus {
        label: label.to_owned(),
        state: state.to_owned(),
        total: campaign.names.len() as u64,
        done,
        replayed: done,
        detected,
        undetected,
        failed,
        elapsed_ms,
        counters,
        phases,
        workers,
        journal: journal.map(str::to_owned),
        ..CampaignStatus::default()
    }
}

/// The phase with the most attributed self-time, if any time was
/// attributed at all.
fn hot_phase_of(phases: &obs::profile::PhaseSnapshot) -> Option<String> {
    Phase::ALL
        .iter()
        .max_by_key(|&&p| phases.ns(p))
        .filter(|&&p| phases.ns(p) > 0)
        .map(|&p| p.label().to_owned())
}

/// Replays the journal at `path` and folds every campaign it holds, in
/// journal (label) order.
///
/// # Errors
///
/// Unreadable files and structurally invalid journals.
pub fn fold_journal(path: &Path) -> Result<Vec<(String, CampaignStatus)>, String> {
    let text =
        fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let replay = obs::journal::parse_journal(&text).and_then(|c| faultsim::journal::replay(&c))?;
    let shown = path.display().to_string();
    Ok(replay
        .campaigns
        .iter()
        .map(|(label, c)| (label.clone(), fold_campaign(label, c, Some(&shown))))
        .collect())
}

/// Picks the campaign a watcher most wants to see from a multi-campaign
/// journal: the first one that did not run to completion, else the last.
pub fn pick_campaign(mut folded: Vec<(String, CampaignStatus)>) -> Option<CampaignStatus> {
    if folded.is_empty() {
        return None;
    }
    let incomplete = folded.iter().position(|(_, s)| s.state != "complete");
    let index = incomplete.unwrap_or(folded.len() - 1);
    Some(folded.swap_remove(index).1)
}

/// Replaces a synthesized snapshot's worker lanes with the per-lane
/// truth from the heartbeat sidecar, when the directory has one with
/// records for this campaign label. Journals never record lanes, but
/// heartbeats do — including which fault each lane was holding when the
/// campaign died, which is the first thing a postmortem wants to know.
pub fn overlay_heartbeats(dir: &Path, status: &mut CampaignStatus) {
    let path = dir.join(status::HEARTBEAT_FILE);
    let Ok(contents) = obs::journal::read_journal(&path) else {
        return;
    };
    let mut lanes: BTreeMap<u64, WorkerLane> = BTreeMap::new();
    for rec in &contents.records {
        if rec.get("record").and_then(JsonValue::as_str) != Some("heartbeat")
            || rec.get("label").and_then(JsonValue::as_str) != Some(status.label.as_str())
        {
            continue;
        }
        let Some(lane) = rec.get("lane").and_then(JsonValue::as_f64) else {
            continue;
        };
        let entry = lanes.entry(lane as u64).or_default();
        entry.lane = lane as u64;
        // The record's own `completed` field is the campaign-global
        // done count (a progress stamp), so per-lane completion is
        // derived by counting this lane's `done` events instead.
        match rec.get("event").and_then(JsonValue::as_str) {
            Some("claim") => {
                entry.fault = rec.get("fault").and_then(JsonValue::as_f64).map(|f| f as u64);
                entry.fault_name = rec
                    .get("name")
                    .and_then(JsonValue::as_str)
                    .map(str::to_owned);
            }
            Some("done") => {
                entry.fault = None;
                entry.fault_name = None;
                entry.completed += 1;
            }
            Some("abandon") => {
                entry.fault = None;
                entry.fault_name = None;
            }
            _ => {}
        }
    }
    if !lanes.is_empty() {
        status.workers = lanes.into_values().collect();
    }
}

/// Finds a checkpoint journal for a telemetry directory: the path named
/// in the snapshot (as written, then relative to the directory), else
/// any readable journal file inside the directory other than the
/// telemetry sidecars themselves.
pub fn find_journal(dir: &Path, snapshot: Option<&CampaignStatus>) -> Option<PathBuf> {
    if let Some(named) = snapshot.and_then(|s| s.journal.as_deref()) {
        let as_written = PathBuf::from(named);
        if as_written.is_file() {
            return Some(as_written);
        }
        if let Some(name) = as_written.file_name() {
            let local = dir.join(name);
            if local.is_file() {
                return Some(local);
            }
        }
    }
    let mut candidates: Vec<PathBuf> = fs::read_dir(dir)
        .ok()?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.is_file()
                && p.file_name().is_some_and(|n| {
                    n != status::STATUS_FILE && n != status::HEARTBEAT_FILE
                })
        })
        .filter(|p| {
            fs::read_to_string(p)
                .is_ok_and(|text| crate::explain::looks_like_journal(&text))
        })
        .collect();
    candidates.sort();
    candidates.into_iter().next()
}

/// Observes the campaign behind `target` — a telemetry directory, or a
/// journal file directly. `now_unix_ms` is the caller's clock, used
/// only to judge snapshot freshness.
///
/// Returns `Ok(None)` when there is nothing to watch *yet* (no
/// snapshot, no journal): live watchers keep polling through that.
///
/// # Errors
///
/// A target that exists but is structurally broken (unreadable
/// directory, invalid journal file given directly).
pub fn observe(target: &Path, now_unix_ms: f64) -> Result<Option<WatchView>, String> {
    if target.is_file() {
        return Ok(pick_campaign(fold_journal(target)?).map(|status| WatchView {
            source: format!("journal {}", target.display()),
            status,
            stale_ms: None,
        }));
    }
    let status_path = target.join(status::STATUS_FILE);
    let snapshot = status::read_status(&status_path)
        .map_err(|e| format!("cannot read {}: {e}", status_path.display()))?;
    if let Some(snapshot) = snapshot {
        let age = (now_unix_ms - snapshot.updated_at_ms).max(0.0);
        if snapshot.is_terminal() || age <= STALE_AFTER_MS {
            return Ok(Some(WatchView {
                status: snapshot,
                source: "status.json".to_owned(),
                stale_ms: None,
            }));
        }
        // The snapshot claims `running` but nobody has rewritten it for
        // a while: the campaign process is gone. The journal, if there
        // is one, knows how far it actually got.
        if let Some(path) = find_journal(target, Some(&snapshot)) {
            if let Some(mut status) = fold_journal(&path).ok().and_then(pick_campaign) {
                overlay_heartbeats(target, &mut status);
                return Ok(Some(WatchView {
                    status,
                    source: format!("journal {} (status.json stale)", path.display()),
                    stale_ms: Some(age),
                }));
            }
        }
        return Ok(Some(WatchView {
            status: snapshot,
            source: "status.json".to_owned(),
            stale_ms: Some(age),
        }));
    }
    let Some(path) = find_journal(target, None) else {
        return Ok(None);
    };
    Ok(pick_campaign(fold_journal(&path)?).map(|mut status| {
        overlay_heartbeats(target, &mut status);
        WatchView {
            source: format!("journal {}", path.display()),
            status,
            stale_ms: None,
        }
    }))
}

/// Formats a millisecond quantity for the console.
fn fmt_ms(ms: f64) -> String {
    // Round to whole seconds before splitting so 119 950 ms renders as
    // 2m00s, never 1m60s.
    let secs = (ms / 1e3).round();
    if secs >= 60.0 {
        format!("{:.0}m{:02.0}s", (secs / 60.0).floor(), secs % 60.0)
    } else if ms >= 1_000.0 {
        format!("{:.1}s", ms / 1e3)
    } else {
        format!("{ms:.0}ms")
    }
}

/// Looks a counter up by name.
fn counter(status: &CampaignStatus, name: &str) -> u64 {
    status
        .counters
        .iter()
        .find(|(n, _)| n == name)
        .map_or(0, |(_, v)| *v)
}

/// Renders one observation as the console frame: headline, progress
/// bar, throughput/ETA, outcome rollup, solver economy, per-worker
/// lanes and phase hot spots.
pub fn render(view: &WatchView) -> String {
    let s = &view.status;
    let mut out = String::new();
    let _ = writeln!(out, "campaign {} — {}  [{}]", s.label, s.state, view.source);

    let pct = if s.total > 0 {
        100.0 * s.done as f64 / s.total as f64
    } else {
        0.0
    };
    let replayed = if s.replayed > 0 {
        format!(", {} replayed", s.replayed)
    } else {
        String::new()
    };
    let _ = writeln!(
        out,
        "  [{:<32}] {}/{} ({pct:.1} %{replayed})",
        bar(s.done as f64, s.total.max(1) as f64, 32),
        s.done,
        s.total,
    );
    let eta = s.eta_ms.map_or_else(|| "—".to_owned(), fmt_ms);
    let _ = writeln!(
        out,
        "  {:.2} faults/s (ewma {:.2}), ETA {eta}, elapsed {}",
        s.faults_per_sec,
        s.ewma_faults_per_sec,
        fmt_ms(s.elapsed_ms),
    );
    let _ = writeln!(
        out,
        "  outcomes: {} detected, {} undetected, {} failed",
        s.detected, s.undetected, s.failed
    );
    let newton = counter(s, "newton_iterations");
    if newton > 0 {
        let hits = counter(s, "factor_reuse_hits");
        let decisions = hits + counter(s, "factor_reuse_misses");
        let reuse = if decisions > 0 {
            format!(", factor reuse {hits}/{decisions}")
        } else {
            String::new()
        };
        let _ = writeln!(out, "  solver: {newton} Newton iterations{reuse}");
    }
    let drops = counter(s, "heartbeat_drops") + counter(s, "status_drops");
    if drops > 0 {
        let _ = writeln!(out, "  telemetry drops: {drops} (advisory writes failed)");
    }
    if let Some(age) = view.stale_ms {
        let _ = writeln!(
            out,
            "  WARNING: snapshot is {} old — the campaign process looks dead",
            fmt_ms(age)
        );
    }

    if !s.workers.is_empty() {
        let _ = writeln!(out, "\n  worker lanes:");
        let mut t = Table::new(&["lane", "fault", "busy", "hb age", "done", "hot phase", ""])
            .align(&[
                Align::Right,
                Align::Left,
                Align::Right,
                Align::Right,
                Align::Right,
                Align::Left,
                Align::Left,
            ]);
        for w in &s.workers {
            let fault = match (&w.fault, &w.fault_name) {
                (Some(i), Some(name)) => format!("#{i} {name}"),
                (Some(i), None) => format!("#{i}"),
                _ => "idle".to_owned(),
            };
            t.row(&[
                w.lane.to_string(),
                fault,
                fmt_ms(w.busy_ms),
                fmt_ms(w.heartbeat_age_ms),
                w.completed.to_string(),
                w.hot_phase.clone().unwrap_or_default(),
                if w.stalled { "STALLED".to_owned() } else { String::new() },
            ]);
        }
        out.push_str(&indent(&t.render(), "  "));
        if let Some(limit) = s.stall_after_ms {
            for w in s.workers.iter().filter(|w| w.stalled) {
                let _ = writeln!(
                    out,
                    "  STALLED: lane {} heartbeat age {} exceeds {}",
                    w.lane,
                    fmt_ms(w.heartbeat_age_ms),
                    fmt_ms(limit)
                );
            }
        }
    }

    if !s.phases.is_empty() {
        let mut ranked: Vec<&(String, u64, u64)> = s.phases.iter().collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let _ = writeln!(out, "\n  phase hot spots:");
        let mut t = Table::new(&["phase", "self (ms)", "calls"])
            .align(&[Align::Left, Align::Right, Align::Right]);
        for (label, ns, calls) in ranked.into_iter().take(5) {
            t.row(&[
                label.clone(),
                format!("{:.3}", *ns as f64 / 1e6),
                calls.to_string(),
            ]);
        }
        out.push_str(&indent(&t.render(), "  "));
    }
    out
}

fn indent(text: &str, pad: &str) -> String {
    text.lines()
        .map(|l| {
            if l.is_empty() {
                String::from("\n")
            } else {
                format!("{pad}{l}\n")
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultsim::campaign::{FaultStatus, FaultTelemetry};
    use faultsim::journal::{complete_record, fault_record, start_record};
    use faultsim::model::Fault;
    use std::time::Duration;

    fn journal_text(complete: bool) -> String {
        let mut nl = anasim::netlist::Netlist::new();
        let a = nl.node("a");
        let b = nl.node("b");
        let faults = [
            Fault::stuck_at_0("f0", a),
            Fault::stuck_at_1("f1", b),
            Fault::stuck_at_0("f2", b),
        ];
        let telemetry = |lane: usize, iters: u64| {
            let mut t = FaultTelemetry {
                rung: Some(0),
                rungs_tried: 1,
                wall: Duration::from_millis(40),
                lane,
                ..FaultTelemetry::default()
            };
            t.solver.newton_iterations = iters;
            t
        };
        let mut text = start_record("rc", &faults, 0.05, 4).to_json();
        text.push('\n');
        text += &fault_record(
            "rc",
            0,
            "f0",
            Some(&[1.0]),
            &FaultStatus::Detected { pct: 100.0 },
            &telemetry(0, 12),
        )
        .to_json();
        text.push('\n');
        text += &fault_record(
            "rc",
            1,
            "f1",
            Some(&[0.0]),
            &FaultStatus::Undetected { pct: 1.0 },
            &telemetry(1, 7),
        )
        .to_json();
        text.push('\n');
        if complete {
            text += &fault_record(
                "rc",
                2,
                "f2",
                None,
                &FaultStatus::Panicked {
                    payload: "boom".to_owned(),
                },
                &telemetry(0, 0),
            )
            .to_json();
            text.push('\n');
            text += &complete_record("rc").to_json();
            text.push('\n');
        }
        text
    }

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("bench-watch-tests").join(name);
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn replayed(text: &str) -> faultsim::journal::JournalReplay {
        faultsim::journal::replay(&obs::journal::parse_journal(text).unwrap()).unwrap()
    }

    #[test]
    fn fold_rolls_up_outcomes_lanes_and_counters() {
        let replay = replayed(&journal_text(true));
        let status = fold_campaign("rc", &replay.campaigns["rc"], Some("j.jsonl"));
        assert_eq!(status.state, "complete");
        assert_eq!((status.total, status.done, status.replayed), (3, 3, 3));
        assert_eq!(
            (status.detected, status.undetected, status.failed),
            (1, 1, 1)
        );
        assert_eq!(status.journal.as_deref(), Some("j.jsonl"));
        // Lanes are never journaled, so a replayed journal collapses to
        // the single aggregate lane 0 (heartbeats recover real lanes).
        assert_eq!(status.workers.len(), 1);
        assert_eq!(status.workers[0].lane, 0);
        assert_eq!(status.workers[0].completed, 3);
        assert!(status.workers[0].busy_ms > 0.0);
        assert_eq!(counter(&status, "newton_iterations"), 19);
        // The fold is a structurally valid status snapshot.
        let text = status.to_json().to_json_pretty();
        assert_eq!(obs::status::parse_status(&text).unwrap(), status);
    }

    #[test]
    fn interrupted_journals_fold_to_a_terminal_state() {
        let replay = replayed(&journal_text(false));
        let status = fold_campaign("rc", &replay.campaigns["rc"], None);
        assert_eq!(status.state, "interrupted");
        assert!(status.is_terminal());
        assert_eq!((status.total, status.done), (3, 2));
    }

    #[test]
    fn observe_prefers_the_status_snapshot() {
        let dir = temp_dir("prefers-status");
        fs::write(dir.join("campaign.jsonl"), journal_text(false)).unwrap();
        let mut snapshot = fold_campaign(
            "rc",
            &replayed(&journal_text(true)).campaigns["rc"],
            None,
        );
        snapshot.state = "running".to_owned();
        snapshot.failed = 0;
        snapshot.done = 2;
        snapshot.updated_at_ms = 5_000.0;
        obs::status::write_atomic(&dir.join(status::STATUS_FILE), &snapshot).unwrap();
        // Fresh snapshot wins over the journal.
        let view = observe(&dir, 5_100.0).unwrap().unwrap();
        assert_eq!(view.source, "status.json");
        assert_eq!(view.status, snapshot);
        assert_eq!(view.stale_ms, None);
    }

    #[test]
    fn stale_running_snapshots_fall_back_to_the_journal() {
        let dir = temp_dir("stale-status");
        fs::write(dir.join("campaign.jsonl"), journal_text(false)).unwrap();
        let mut snapshot = fold_campaign(
            "rc",
            &replayed(&journal_text(false)).campaigns["rc"],
            None,
        );
        snapshot.state = "running".to_owned();
        snapshot.updated_at_ms = 1_000.0;
        obs::status::write_atomic(&dir.join(status::STATUS_FILE), &snapshot).unwrap();
        // 20 s later with no rewrite: the journal becomes the source.
        let view = observe(&dir, 21_000.0).unwrap().unwrap();
        assert!(view.source.contains("journal"), "{}", view.source);
        assert!(view.source.contains("stale"), "{}", view.source);
        assert_eq!(view.status.state, "interrupted");
        assert!(view.stale_ms.is_some());
    }

    #[test]
    fn observe_without_a_snapshot_synthesizes_from_the_journal() {
        let dir = temp_dir("journal-only");
        fs::write(dir.join("campaign.jsonl"), journal_text(true)).unwrap();
        let view = observe(&dir, 0.0).unwrap().unwrap();
        assert!(view.source.contains("journal"), "{}", view.source);
        assert_eq!(view.status.state, "complete");
        // An empty directory is "nothing yet", not an error.
        let empty = temp_dir("empty");
        assert_eq!(observe(&empty, 0.0).unwrap(), None);
    }

    #[test]
    fn heartbeats_recover_lanes_the_journal_cannot() {
        use faultsim::telemetry::heartbeat_record;
        let dir = temp_dir("heartbeat-overlay");
        fs::write(dir.join("campaign.jsonl"), journal_text(false)).unwrap();
        let mut lines = String::new();
        // The `completed` stamp on each record is the campaign-global
        // done count — the overlay must count per-lane `done` events
        // instead of copying it into a lane.
        for rec in [
            heartbeat_record("rc", 0, "claim", Some((0, "f0")), 0, 1.0),
            heartbeat_record("rc", 1, "claim", Some((1, "f1")), 0, 2.0),
            heartbeat_record("rc", 0, "done", Some((0, "f0")), 1, 3.0),
            heartbeat_record("rc", 1, "done", Some((1, "f1")), 2, 4.0),
            heartbeat_record("rc", 0, "claim", Some((2, "f2")), 2, 5.0),
            // Records for another campaign must not leak in.
            heartbeat_record("other", 7, "claim", Some((9, "x")), 0, 6.0),
        ] {
            lines += &rec.to_json();
            lines.push('\n');
        }
        fs::write(dir.join(status::HEARTBEAT_FILE), lines).unwrap();
        let view = observe(&dir, 0.0).unwrap().unwrap();
        // Lane 0 died holding f2; lane 1 had finished f1 and sat idle.
        assert_eq!(view.status.workers.len(), 2);
        assert_eq!(view.status.workers[0].lane, 0);
        assert_eq!(view.status.workers[0].fault, Some(2));
        assert_eq!(view.status.workers[0].fault_name.as_deref(), Some("f2"));
        assert_eq!(view.status.workers[0].completed, 1);
        assert_eq!(view.status.workers[1].lane, 1);
        assert_eq!(view.status.workers[1].fault, None);
        assert_eq!(view.status.workers[1].completed, 1);
    }

    #[test]
    fn observe_accepts_a_journal_file_directly() {
        let dir = temp_dir("direct-file");
        let path = dir.join("campaign.jsonl");
        fs::write(&path, journal_text(false)).unwrap();
        let view = observe(&path, 0.0).unwrap().unwrap();
        assert_eq!(view.status.done, 2);
    }

    #[test]
    fn render_shows_progress_outcomes_and_stalls() {
        let mut status = fold_campaign(
            "rc",
            &replayed(&journal_text(true)).campaigns["rc"],
            Some("j.jsonl"),
        );
        status.faults_per_sec = 2.5;
        status.ewma_faults_per_sec = 2.0;
        status.eta_ms = Some(1_500.0);
        status.stall_after_ms = Some(2_000.0);
        status.workers.push(WorkerLane {
            lane: 1,
            fault: Some(1),
            fault_name: Some("f1".to_owned()),
            heartbeat_age_ms: 9_000.0,
            stalled: true,
            ..WorkerLane::default()
        });
        let text = render(&WatchView {
            status,
            source: "status.json".to_owned(),
            stale_ms: None,
        });
        assert!(text.contains("campaign rc — complete"), "{text}");
        assert!(text.contains("3/3 (100.0 %"), "{text}");
        assert!(text.contains("1 detected, 1 undetected, 1 failed"), "{text}");
        assert!(text.contains("ETA 1.5s"), "{text}");
        assert!(text.contains("#1 f1"), "{text}");
        assert!(text.contains("STALLED: lane 1"), "{text}");
        assert!(text.contains("19 Newton iterations"), "{text}");
    }

    #[test]
    fn fmt_ms_carries_rounded_seconds_into_minutes() {
        assert_eq!(fmt_ms(119_950.0), "2m00s");
        assert_eq!(fmt_ms(59_999.0), "1m00s");
        assert_eq!(fmt_ms(90_000.0), "1m30s");
        assert_eq!(fmt_ms(1_500.0), "1.5s");
        assert_eq!(fmt_ms(250.0), "250ms");
    }

    #[test]
    fn pick_prefers_unfinished_campaigns() {
        let done = fold_campaign("a", &replayed(&journal_text(true)).campaigns["rc"], None);
        let part = fold_campaign("b", &replayed(&journal_text(false)).campaigns["rc"], None);
        let picked = pick_campaign(vec![
            ("a".to_owned(), done.clone()),
            ("b".to_owned(), part.clone()),
        ])
        .unwrap();
        assert_eq!(picked.label, part.label);
        let picked = pick_campaign(vec![("a".to_owned(), done.clone())]).unwrap();
        assert_eq!(picked.label, done.label);
        assert_eq!(pick_campaign(Vec::new()), None);
    }
}
