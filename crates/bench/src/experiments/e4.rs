//! E4 — Compressed test results across the batch of devices.
//!
//! Paper: "A batch of 10 devices were fabricated. These comprised the
//! built-in self test macros described and the ADC system. All devices
//! passed the analogue, digital and compressed tests."

use std::fmt;

use macrolib::process::VariationModel;
use msbist::adc::DualSlopeAdc;
use msbist::bist::quick_test::{run_quick_tests, QuickTestLimits, QuickTestReport};
use msbist::device::DieBatch;

/// One die's quick-test outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct DieResult {
    /// Die index.
    pub die: usize,
    /// Full quick-test report.
    pub report: QuickTestReport,
}

/// The E4 report.
#[derive(Debug, Clone, PartialEq)]
pub struct E4Report {
    /// Reference (golden) digital signature.
    pub reference_signature: u16,
    /// Per-die outcomes.
    pub dies: Vec<DieResult>,
}

impl E4Report {
    /// Number of dies that passed all three tests.
    pub fn pass_count(&self) -> usize {
        self.dies.iter().filter(|d| d.report.passed()).count()
    }

    /// True if the whole batch passed (the paper's result).
    pub fn all_passed(&self) -> bool {
        self.pass_count() == self.dies.len()
    }

    /// Renders the report as an `e4` [`obs::Section`].
    pub fn to_section(&self) -> obs::Section {
        let mut section = obs::Section::new("e4");
        section
            .counter("dies", self.dies.len() as u64)
            .counter("passed", self.pass_count() as u64)
            .value(
                "pass_rate_pct",
                100.0 * self.pass_count() as f64 / self.dies.len().max(1) as f64,
            );
        section
    }
}

impl fmt::Display for E4Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "E4 — compressed tests over the fabricated batch")?;
        writeln!(
            f,
            "reference digital signature: {:#06x}",
            self.reference_signature
        )?;
        writeln!(f, "die   analogue  digital  compressed  signature  2-bit")?;
        for d in &self.dies {
            writeln!(
                f,
                "{:>3}   {:^8}  {:^7}  {:^10}  {:#06x}    0b{:02b}",
                d.die,
                pass(d.report.analog.passed),
                pass(d.report.digital.passed),
                pass(d.report.compressed.passed),
                d.report.compressed.digital_signature,
                d.report.compressed.analog_code,
            )?;
        }
        writeln!(
            f,
            "{}/{} devices passed all tests (paper: 10/10)",
            self.pass_count(),
            self.dies.len()
        )
    }
}

fn pass(ok: bool) -> &'static str {
    if ok {
        "pass"
    } else {
        "FAIL"
    }
}

/// Runs E4: fabricates `count` virtual dies, takes the golden signature
/// from the nominal macro, and applies all three quick tests to every
/// die.
pub fn run(count: usize, seed: u64) -> E4Report {
    // Golden reference from the nominal device.
    let golden = run_quick_tests(&DualSlopeAdc::paper_measured(), &QuickTestLimits::paper());
    let reference_signature = golden.compressed.digital_signature;
    let limits = QuickTestLimits::paper().with_reference(reference_signature);

    let batch = DieBatch::fabricate(count, &VariationModel::typical(), seed);
    let dies = batch
        .iter()
        .map(|die| DieResult {
            die: die.index,
            report: run_quick_tests(&die.adc, &limits),
        })
        .collect();
    E4Report {
        reference_signature,
        dies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msbist::adc::AdcErrorModel;

    #[test]
    fn batch_of_ten_all_pass() {
        // Paper seed: the 1996 batch. All typical-variation dies pass.
        let report = run(10, 1996);
        assert!(report.all_passed(), "{report}");
    }

    #[test]
    fn different_seeds_also_pass() {
        for seed in [1, 42, 7777] {
            let report = run(10, seed);
            assert!(report.all_passed(), "seed {seed}: {report}");
        }
    }

    #[test]
    fn gross_fault_would_be_caught() {
        // Control experiment: the signature reference must catch a badly
        // faulty device that variation alone cannot produce.
        let golden = run_quick_tests(&DualSlopeAdc::paper_measured(), &QuickTestLimits::paper());
        let limits =
            QuickTestLimits::paper().with_reference(golden.compressed.digital_signature);
        let broken = DualSlopeAdc::with_errors(AdcErrorModel {
            gain_error: 0.25,
            ..AdcErrorModel::paper_measured()
        });
        let report = run_quick_tests(&broken, &limits);
        assert!(!report.passed());
    }
}
