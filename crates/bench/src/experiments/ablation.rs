//! Design-choice ablations.
//!
//! Three choices DESIGN.md calls out are quantified here:
//!
//! 1. **Integration rule** — backward Euler vs trapezoidal accuracy on
//!    the switching-heavy SC integrator.
//! 2. **Signature kind** — raw sampled response vs normalised
//!    correlation for fault detection quality on circuit 1.
//! 3. **BIST overhead** — the transistor cost of the on-chip test
//!    macros against the fault classes the quick tests catch.

use std::fmt;

use anasim::mna::Integrator;
use anasim::netlist::Netlist;
use anasim::source::SourceWaveform;
use anasim::transient::TransientAnalysis;
use macrolib::process::ProcessParams;
use macrolib::sc_integrator::{ScIntegrator, ScIntegratorParams};
use msbist::adc::{AdcErrorModel, DualSlopeAdc};
use msbist::bist::overhead::OverheadBudget;
use msbist::bist::quick_test::{run_quick_tests, QuickTestLimits};
use msbist::transtest::circuits::circuit1;

/// Ablation 1 result: integration-rule accuracy on the SC integrator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntegrationAblation {
    /// Per-cycle step error of backward Euler vs the ideal, volts.
    pub backward_euler_err: f64,
    /// Per-cycle step error of trapezoidal vs the ideal, volts.
    pub trapezoidal_err: f64,
    /// Steps the backward-Euler run took.
    pub backward_euler_steps: usize,
    /// Steps the trapezoidal run took.
    pub trapezoidal_steps: usize,
}

/// Runs the integration-rule ablation: 8 cycles of the behavioural SC
/// integrator at a +0.5 V input; the ideal output steps −73.5 mV per
/// cycle.
pub fn integration_rule(sim_dt: f64) -> IntegrationAblation {
    integration_rule_with(sim_dt, &anasim::robust::SolveSettings::default())
}

/// [`integration_rule`] under explicit [`anasim::robust::SolveSettings`]
/// (so a profiled invocation attributes these sweeps too).
pub fn integration_rule_with(
    sim_dt: f64,
    settings: &anasim::robust::SolveSettings,
) -> IntegrationAblation {
    let run = |method: Integrator| -> (f64, usize) {
        let mut nl = Netlist::new();
        let params = ScIntegratorParams::behavioral();
        let sc = ScIntegrator::build(&mut nl, "sc", &ProcessParams::nominal(), &params);
        nl.vsource(
            "VIN",
            sc.vin,
            Netlist::GROUND,
            SourceWaveform::dc(params.vag + 0.5),
        );
        let cycles = 8usize;
        let res = TransientAnalysis::new(params.clock_period * cycles as f64, sim_dt)
            .integrator(method)
            .with_settings(settings)
            .run(&nl)
            .expect("sc integrator must simulate");
        let w = res.voltage(sc.out);
        let ideal_step = 0.5 / 6.8;
        let mut worst: f64 = 0.0;
        for k in 1..=cycles {
            let expect = 2.5 - k as f64 * ideal_step;
            let got = w.value_at(k as f64 * params.clock_period);
            worst = worst.max((got - expect).abs());
        }
        (worst, res.len())
    };
    let (backward_euler_err, backward_euler_steps) = run(Integrator::BackwardEuler);
    let (trapezoidal_err, trapezoidal_steps) = run(Integrator::Trapezoidal);
    IntegrationAblation {
        backward_euler_err,
        trapezoidal_err,
        backward_euler_steps,
        trapezoidal_steps,
    }
}

/// Ablation 2 result: raw vs correlation vs spectral signatures on
/// circuit 1.
#[derive(Debug, Clone, PartialEq)]
pub struct SignatureAblation {
    /// Detection percentages per fault with raw sampling.
    pub raw: Vec<(String, f64)>,
    /// Detection percentages per fault with normalised correlation.
    pub correlation: Vec<(String, f64)>,
    /// Detection percentages per fault with the power-spectrum
    /// signature.
    pub spectral: Vec<(String, f64)>,
    /// Solver telemetry aggregated over the three campaigns.
    pub solver: super::e6::SolverSummary,
}

impl SignatureAblation {
    /// Coverage (fraction of faults above `min_pct`) for
    /// (raw, correlation, spectral).
    pub fn coverage(&self, min_pct: f64) -> (f64, f64, f64) {
        let frac = |v: &[(String, f64)]| {
            v.iter().filter(|(_, p)| *p >= min_pct).count() as f64 / v.len().max(1) as f64
        };
        (
            frac(&self.raw),
            frac(&self.correlation),
            frac(&self.spectral),
        )
    }
}

/// Runs the signature ablation with the default worker count.
pub fn signature_kind() -> SignatureAblation {
    signature_kind_with(super::e6::E6_WORKERS)
}

/// Runs the signature ablation without hooks (no journal, no profiler).
pub fn signature_kind_with(workers: usize) -> SignatureAblation {
    signature_kind_hooked(workers, &crate::hooks::CampaignHooks::none())
}

/// Runs the signature ablation on circuit 1's full fault universe,
/// using the resilient campaign engine so every fault yields a typed
/// outcome even when an extraction fails at nominal solver settings.
/// The three campaigns run under `hooks` (journal labels
/// `ablation.raw` / `.correlation` / `.spectral`, phase profiling,
/// trace lanes).
pub fn signature_kind_hooked(
    workers: usize,
    hooks: &crate::hooks::CampaignHooks,
) -> SignatureAblation {
    use faultsim::campaign::CampaignConfig;
    let c1 = circuit1(&ProcessParams::nominal());
    let raw_report = c1
        .bench
        .run_raw_campaign_with(
            &c1.faults,
            &hooks.apply(CampaignConfig::new(0.1).workers(workers), "ablation.raw"),
        )
        .expect("golden must simulate");
    hooks.observe("ablation.raw", &raw_report);
    let cor_report = c1
        .bench
        .run_correlation_campaign_with(
            &c1.faults,
            &hooks.apply(
                CampaignConfig::new(0.01).workers(workers),
                "ablation.correlation",
            ),
        )
        .expect("golden must simulate");
    hooks.observe("ablation.correlation", &cor_report);
    let golden_psd = c1
        .bench
        .spectral_signature_with(c1.bench.netlist(), &hooks.solve_settings())
        .expect("golden must simulate");
    let psd_peak = golden_psd.iter().fold(0.0_f64, |m, &v| m.max(v));
    let spec_report = c1
        .bench
        .run_spectral_campaign_with(
            &c1.faults,
            &hooks.apply(
                CampaignConfig::new(0.002 * psd_peak).workers(workers),
                "ablation.spectral",
            ),
        )
        .expect("golden must simulate");
    hooks.observe("ablation.spectral", &spec_report);
    let series = |report: &faultsim::campaign::CampaignReport| {
        report
            .outcomes
            .iter()
            .map(|o| (o.fault.name().to_string(), o.figure_pct()))
            .collect()
    };
    let mut solver = super::e6::SolverSummary::default();
    solver.absorb(&raw_report);
    solver.absorb(&cor_report);
    solver.absorb(&spec_report);
    SignatureAblation {
        raw: series(&raw_report),
        correlation: series(&cor_report),
        spectral: series(&spec_report),
        solver,
    }
}

/// Ablation 3 result: BIST overhead vs quick-test catch rate.
#[derive(Debug, Clone, PartialEq)]
pub struct OverheadAblation {
    /// The paper's transistor budget.
    pub budget: OverheadBudget,
    /// `(fault description, caught by quick tests)` over a gross-fault
    /// set.
    pub catches: Vec<(String, bool)>,
}

impl OverheadAblation {
    /// Fraction of the gross faults the quick tests catch.
    pub fn catch_rate(&self) -> f64 {
        if self.catches.is_empty() {
            return 1.0;
        }
        self.catches.iter().filter(|(_, c)| *c).count() as f64 / self.catches.len() as f64
    }
}

/// Runs the overhead ablation: the 636-transistor test macros against a
/// set of gross (catastrophic-leaning) macro faults.
pub fn bist_overhead() -> OverheadAblation {
    let golden = run_quick_tests(&DualSlopeAdc::paper_measured(), &QuickTestLimits::paper());
    let limits = QuickTestLimits::paper().with_reference(golden.compressed.digital_signature);

    let gross_faults: Vec<(String, AdcErrorModel)> = vec![
        (
            "reference 20 % low".into(),
            AdcErrorModel {
                gain_error: -0.20,
                ..AdcErrorModel::paper_measured()
            },
        ),
        (
            "offset 5 LSB".into(),
            AdcErrorModel {
                offset_v: 0.05,
                ..AdcErrorModel::paper_measured()
            },
        ),
        (
            "integrator leak 100/s".into(),
            AdcErrorModel {
                leak_per_s: 100.0,
                ..AdcErrorModel::paper_measured()
            },
        ),
        (
            "severe ripple".into(),
            AdcErrorModel {
                ripple_v: 0.08,
                ..AdcErrorModel::paper_measured()
            },
        ),
    ];

    let catches = gross_faults
        .into_iter()
        .map(|(name, errors)| {
            let report = run_quick_tests(&DualSlopeAdc::with_errors(errors), &limits);
            (name, !report.passed())
        })
        .collect();

    OverheadAblation {
        budget: OverheadBudget::paper(),
        catches,
    }
}

/// Combined ablation report.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationReport {
    /// Integration-rule ablation.
    pub integration: IntegrationAblation,
    /// Signature-kind ablation.
    pub signature: SignatureAblation,
    /// Overhead ablation.
    pub overhead: OverheadAblation,
}

impl AblationReport {
    /// Renders the report as an `ablation` [`obs::Section`]: the
    /// integration-rule errors, the three coverage figures, the
    /// overhead numbers, plus the solver telemetry of the signature
    /// campaigns.
    pub fn to_section(&self) -> obs::Section {
        let mut section = self.signature.solver.to_section("ablation");
        let (raw_cov, cor_cov, spec_cov) = self.signature.coverage(40.0);
        section
            .counter("gross_faults", self.overhead.catches.len() as u64)
            .counter(
                "gross_faults_caught",
                self.overhead.catches.iter().filter(|(_, c)| *c).count() as u64,
            )
            .value(
                "backward_euler_err_mv",
                self.integration.backward_euler_err * 1e3,
            )
            .value("trapezoidal_err_mv", self.integration.trapezoidal_err * 1e3)
            .value("raw_coverage_pct", raw_cov * 100.0)
            .value("correlation_coverage_pct", cor_cov * 100.0)
            .value("spectral_coverage_pct", spec_cov * 100.0)
            .value("catch_rate_pct", self.overhead.catch_rate() * 100.0);
        section
    }
}

impl fmt::Display for AblationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Ablation 1 — integration rule on the SC integrator")?;
        let mut rules = obs::Table::new(&["rule", "worst cycle error (mV)", "steps"])
            .align(&[obs::Align::Left, obs::Align::Right, obs::Align::Right]);
        rules.row(&[
            "backward Euler".into(),
            format!("{:.1}", self.integration.backward_euler_err * 1e3),
            self.integration.backward_euler_steps.to_string(),
        ]);
        rules.row(&[
            "trapezoidal".into(),
            format!("{:.1}", self.integration.trapezoidal_err * 1e3),
            self.integration.trapezoidal_steps.to_string(),
        ]);
        write!(f, "{}", rules.render())?;
        let (raw_cov, cor_cov, spec_cov) = self.signature.coverage(40.0);
        writeln!(f, "\nAblation 2 — signature kind on circuit 1 (16 faults)")?;
        writeln!(
            f,
            "coverage at 40 % instances: raw {:.0} %, correlation {:.0} %, spectral {:.0} %",
            raw_cov * 100.0,
            cor_cov * 100.0,
            spec_cov * 100.0
        )?;
        writeln!(
            f,
            "campaign cost: {} Newton iterations, rung histogram {:?}",
            self.signature.solver.newton_iterations(),
            self.signature.solver.rung_histogram
        )?;
        writeln!(f, "\nAblation 3 — BIST overhead vs gross-fault catches")?;
        writeln!(
            f,
            "test transistors: {} analogue + {} digital = {} ({:.0} % of the ADC macro)",
            self.overhead.budget.analog_test_transistors,
            self.overhead.budget.digital_test_transistors,
            self.overhead.budget.test_total(),
            self.overhead.budget.overhead_fraction() * 100.0
        )?;
        let mut catches = obs::Table::new(&["gross fault", "quick tests"]);
        for (name, caught) in &self.overhead.catches {
            catches.row(&[
                name.clone(),
                if *caught { "caught" } else { "MISSED" }.into(),
            ]);
        }
        write!(f, "{}", catches.render())?;
        writeln!(
            f,
            "gross-fault catch rate: {:.0} %",
            self.overhead.catch_rate() * 100.0
        )
    }
}

/// Runs all three ablations with the default worker count.
pub fn run() -> AblationReport {
    run_with(super::e6::E6_WORKERS)
}

/// Runs all three ablations, the signature campaigns on `workers`
/// threads.
pub fn run_with(workers: usize) -> AblationReport {
    run_with_hooks(workers, &crate::hooks::CampaignHooks::none())
}

/// [`run_with`] under campaign hooks: the signature campaigns journal,
/// profile and trace through `hooks`, and the integration-rule sweeps
/// run under profiler-armed solve settings.
pub fn run_with_hooks(workers: usize, hooks: &crate::hooks::CampaignHooks) -> AblationReport {
    AblationReport {
        integration: integration_rule_with(50e-9, &hooks.solve_settings()),
        signature: signature_kind_hooked(workers, hooks),
        overhead: bist_overhead(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integration_rules_both_track_the_ideal() {
        let a = integration_rule(50e-9);
        assert!(a.backward_euler_err < 0.05, "BE err {}", a.backward_euler_err);
        assert!(a.trapezoidal_err < 0.05, "trap err {}", a.trapezoidal_err);
    }

    #[test]
    fn overhead_ablation_catches_gross_faults() {
        let a = bist_overhead();
        assert!(a.catch_rate() >= 0.75, "catch rate {}", a.catch_rate());
    }
}
