//! E8 (extension) — population-scale yield analysis.
//!
//! The paper's batch of ten devices all passed the quick tests yet the
//! macro design fails its own INL/DNL specification; this experiment
//! scales the batch up to show that this is not a sampling accident:
//! nearly the whole population passes the quick screen while failing
//! the datasheet — the test-escape class the quick tests trade for
//! their low cost.

use std::fmt;

use macrolib::process::VariationModel;
use msbist::yield_analysis::{analyse_yield, YieldReport};

/// The E8 report.
#[derive(Debug, Clone, PartialEq)]
pub struct E8Report {
    /// Yield with typical process variation.
    pub typical: YieldReport,
    /// Yield with loose (marginal-process) variation.
    pub loose: YieldReport,
}

impl E8Report {
    /// Renders the report as an `e8` [`obs::Section`].
    pub fn to_section(&self) -> obs::Section {
        let mut section = obs::Section::new("e8");
        for (tag, r) in [("typical", &self.typical), ("loose", &self.loose)] {
            section
                .counter(&format!("{tag}_tested"), r.tested as u64)
                .value(&format!("{tag}_quick_yield_pct"), r.quick_yield() * 100.0)
                .value(&format!("{tag}_full_yield_pct"), r.full_yield() * 100.0)
                .value(&format!("{tag}_escape_rate_pct"), r.escape_rate() * 100.0);
        }
        section
    }
}

impl fmt::Display for E8Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "E8 — batch yield analysis (extension)")?;
        for (tag, r) in [("typical", &self.typical), ("loose", &self.loose)] {
            writeln!(
                f,
                "{tag:>8}: {} dies; quick yield {:.0} %, full-spec yield {:.0} %, \
                 escape rate {:.0} %",
                r.tested,
                r.quick_yield() * 100.0,
                r.full_yield() * 100.0,
                r.escape_rate() * 100.0
            )?;
            writeln!(
                f,
                "          offset {:.2}±{:.2} LSB, gain {:.2}±{:.2} LSB, \
                 INL {:.2}±{:.2} LSB, DNL {:.2}±{:.2} LSB",
                r.offset.mean,
                r.offset.sigma,
                r.gain.mean,
                r.gain.sigma,
                r.inl.mean,
                r.inl.sigma,
                r.dnl.mean,
                r.dnl.sigma
            )?;
        }
        Ok(())
    }
}

/// Runs E8 over `count` dies per variation model.
pub fn run(count: usize, seed: u64) -> E8Report {
    E8Report {
        typical: analyse_yield(count, &VariationModel::typical(), seed, 100),
        loose: analyse_yield(count, &VariationModel::loose(), seed, 100),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typical_population_escapes() {
        let r = run(30, 1996);
        assert!(r.typical.quick_yield() > 0.9);
        assert!(r.typical.escape_rate() > 0.5);
    }

    #[test]
    fn loose_process_hurts_quick_yield() {
        let r = run(40, 42);
        assert!(r.loose.quick_yield() <= r.typical.quick_yield());
    }
}
