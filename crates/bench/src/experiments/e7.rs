//! E7 — the future-work sigma-delta architecture study.
//!
//! The paper's conclusions point the on-chip testing work at "larger
//! full-custom ADC devices designed with sigma-delta modulation
//! architecture, where the switched capacitor integrator forms a major
//! part of the circuit". This experiment quantifies that architecture's
//! behaviour and shows the SC-integrator fault mechanisms (leakage,
//! gain) are observable in the modulator's SNR — the hook for the same
//! BIST machinery.

use std::fmt;

use msbist::sigma_delta::{measure_snr_db, SecondOrderModulator, SigmaDeltaModulator};

/// SNR at one oversampling ratio for clean and leaky integrators.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SnrPoint {
    /// Oversampling ratio.
    pub osr: usize,
    /// SNR of the fault-free first-order modulator, dB.
    pub clean_db: f64,
    /// SNR with a leaky integrator, dB.
    pub leaky_db: f64,
    /// SNR of the second-order modulator (PSD-based estimate), dB.
    pub second_order_db: f64,
}

/// The E7 report.
#[derive(Debug, Clone, PartialEq)]
pub struct E7Report {
    /// SNR sweep over oversampling ratios.
    pub points: Vec<SnrPoint>,
    /// The integrator leak used for the faulty variant.
    pub leak: f64,
}

impl E7Report {
    /// Average SNR improvement per octave of OSR for the clean
    /// modulator (first-order ideal: ~9 dB).
    pub fn db_per_octave(&self) -> f64 {
        if self.points.len() < 2 {
            return 0.0;
        }
        let first = self.points.first().expect("non-empty");
        let last = self.points.last().expect("non-empty");
        let octaves = (last.osr as f64 / first.osr as f64).log2();
        (last.clean_db - first.clean_db) / octaves
    }

    /// Worst SNR penalty of the leak across the sweep, dB.
    pub fn worst_leak_penalty_db(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.clean_db - p.leaky_db)
            .fold(0.0, f64::max)
    }

    /// Renders the report as an `e7` [`obs::Section`].
    pub fn to_section(&self) -> obs::Section {
        let mut section = obs::Section::new("e7");
        section
            .counter("osr_points", self.points.len() as u64)
            .value("db_per_octave", self.db_per_octave())
            .value("worst_leak_penalty_db", self.worst_leak_penalty_db())
            .value("leak", self.leak);
        section
    }
}

impl fmt::Display for E7Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "E7 — sigma-delta modulator (future-work architecture)")?;
        writeln!(
            f,
            "OSR    1st-order SNR   leaky SNR   penalty   2nd-order SNR (dB)"
        )?;
        for p in &self.points {
            writeln!(
                f,
                "{:>4}   {:>11.1}   {:>9.1}   {:>7.1}   {:>14.1}",
                p.osr,
                p.clean_db,
                p.leaky_db,
                p.clean_db - p.leaky_db,
                p.second_order_db
            )?;
        }
        writeln!(
            f,
            "noise shaping: {:.1} dB/octave (1st-order ideal ≈ 9); worst leak \
             penalty {:.1} dB at leak = {}",
            self.db_per_octave(),
            self.worst_leak_penalty_db(),
            self.leak
        )
    }
}

/// Runs E7: sweeps the oversampling ratio for the fault-free modulator
/// and for one with integrator leakage `leak`.
pub fn run(leak: f64) -> E7Report {
    let osrs = [8usize, 16, 32, 64, 128];
    let points = osrs
        .iter()
        .map(|&osr| {
            let mut clean = SigmaDeltaModulator::new(1.0 / 6.8);
            let mut leaky = SigmaDeltaModulator::new(1.0 / 6.8).with_leak(leak);
            let second_order_db = msbist::sigma_delta::measure_snr_psd(
                |x| {
                    let mut m = SecondOrderModulator::new();
                    m.modulate(x)
                },
                0.5,
                osr,
                16384,
            );
            SnrPoint {
                osr,
                clean_db: measure_snr_db(&mut clean, 0.5, osr),
                leaky_db: measure_snr_db(&mut leaky, 0.5, osr),
                second_order_db,
            }
        })
        .collect();
    E7Report { points, leak }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snr_grows_with_osr() {
        let report = run(0.1);
        assert!(
            report.db_per_octave() > 5.0,
            "only {:.1} dB/octave\n{report}",
            report.db_per_octave()
        );
    }

    #[test]
    fn leak_costs_snr_at_high_osr() {
        let report = run(0.1);
        assert!(
            report.worst_leak_penalty_db() > 5.0,
            "penalty {:.1} dB\n{report}",
            report.worst_leak_penalty_db()
        );
    }
}
