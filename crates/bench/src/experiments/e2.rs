//! E2 — the ramp test and its gain-masking blind spot.
//!
//! Paper: "The ramp signal generator varied from 0 to 2.5 volts over a
//! 1 Sec period, allowing time for 6 measurements at 200 mSec
//! intervals. If there was a gain error in the ADC, which was
//! compensated by a gain error in the ramp input, there will be no
//! indication of an error at the output."

use std::fmt;

use msbist::adc::{AdcConverter, AdcErrorModel, DualSlopeAdc};
use msbist::bist::RampGenerator;

/// Codes read at the six ramp sample instants.
#[derive(Debug, Clone, PartialEq)]
pub struct RampReading {
    /// Sample instants, seconds.
    pub times: Vec<f64>,
    /// ADC output codes at those instants.
    pub codes: Vec<u64>,
}

/// The E2 report: the golden ramp test plus the masking demonstration.
#[derive(Debug, Clone, PartialEq)]
pub struct E2Report {
    /// Golden ADC, golden ramp.
    pub golden: RampReading,
    /// Gain-faulty ADC, golden ramp (fault visible).
    pub faulty_adc: RampReading,
    /// Gain-faulty ADC, ramp with the *compensating* gain error (fault
    /// masked — the paper's caveat).
    pub masked: RampReading,
}

impl E2Report {
    /// Number of sample slots at which the faulty ADC differs from
    /// golden when driven by the correct ramp.
    pub fn visible_deviations(&self) -> usize {
        count_differences(&self.golden.codes, &self.faulty_adc.codes)
    }

    /// Number of sample slots at which the faulty ADC differs from
    /// golden when the ramp error compensates (should be ~0: masked).
    pub fn masked_deviations(&self) -> usize {
        count_differences(&self.golden.codes, &self.masked.codes)
    }

    /// Renders the report as an `e2` [`obs::Section`].
    pub fn to_section(&self) -> obs::Section {
        let mut section = obs::Section::new("e2");
        section
            .counter("slots", self.golden.codes.len() as u64)
            .counter("visible_deviations", self.visible_deviations() as u64)
            .counter("masked_deviations", self.masked_deviations() as u64);
        section
    }
}

fn count_differences(a: &[u64], b: &[u64]) -> usize {
    a.iter()
        .zip(b)
        .filter(|(x, y)| (**x as i64 - **y as i64).abs() > 1)
        .count()
}

impl fmt::Display for E2Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "E2 — ramp test (0→2.5 V in 1 s, 6 samples at 200 ms)")?;
        writeln!(f, "t (ms)    golden   faulty-adc   masked")?;
        for (k, &t) in self.golden.times.iter().enumerate() {
            writeln!(
                f,
                "{:>6.0}   {:>6}   {:>10}   {:>6}",
                t * 1e3,
                self.golden.codes[k],
                self.faulty_adc.codes[k],
                self.masked.codes[k]
            )?;
        }
        writeln!(
            f,
            "gain fault visible at {}/6 slots with a true ramp; masked to {}/6 \
             when the ramp gain error compensates (the paper's caveat)",
            self.visible_deviations(),
            self.masked_deviations()
        )
    }
}

fn read_ramp(adc: &DualSlopeAdc, ramp: &RampGenerator) -> RampReading {
    let times = ramp.sample_times();
    let codes = times.iter().map(|&t| adc.convert(ramp.value_at(t))).collect();
    RampReading { times, codes }
}

/// Runs E2 with a `gain_error` magnitude (relative; the paper's caveat
/// is exercised by giving the ramp the same error).
pub fn run(gain_error: f64) -> E2Report {
    let golden_adc = DualSlopeAdc::ideal();
    // A reference error of -g scales codes by ~1/(1-g); a ramp slowed by
    // g compensates.
    let faulty_adc = DualSlopeAdc::with_errors(AdcErrorModel {
        gain_error: -gain_error,
        ..AdcErrorModel::none()
    });
    let true_ramp = RampGenerator::paper();
    let compensating_ramp = RampGenerator::paper().with_gain_error(-gain_error);

    E2Report {
        golden: read_ramp(&golden_adc, &true_ramp),
        faulty_adc: read_ramp(&faulty_adc, &true_ramp),
        masked: read_ramp(&faulty_adc, &compensating_ramp),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gain_fault_is_visible_with_true_ramp() {
        let report = run(0.05);
        assert!(report.visible_deviations() >= 4, "{report}");
    }

    #[test]
    fn compensating_ramp_masks_the_fault() {
        let report = run(0.05);
        assert_eq!(report.masked_deviations(), 0, "{report}");
    }

    #[test]
    fn golden_codes_track_the_ramp() {
        let report = run(0.02);
        // 0, 0.5, 1.0 ... 2.5 V at 10 mV/code.
        assert_eq!(report.golden.codes.len(), 6);
        for (k, &code) in report.golden.codes.iter().enumerate() {
            let expect = (k as f64 * 0.5 / 0.010) as i64;
            assert!(
                (code as i64 - expect).abs() <= 1,
                "slot {k}: {code} vs {expect}"
            );
        }
    }
}
