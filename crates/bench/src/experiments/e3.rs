//! E3 — Digital test results: conversion timing and code resolution.
//!
//! Paper: "The conversion time for the control logic was specified as a
//! maximum of 5.6 msec. The counter macro was run at 100 kHz clock speed
//! as recommended. The measured time difference in fall time was 10 µsec.
//! This represented 10 mV input for each incremented output code
//! change."

use std::fmt;

use digisim::circuit::Circuit;
use digisim::components::Counter;
use digisim::fsm::{DualSlopeController, DualSlopePhase};
use msbist::adc::{AdcConverter, DualSlopeAdc};

/// The E3 report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct E3Report {
    /// Worst-case conversion time over the input range, seconds.
    pub max_conversion_time: f64,
    /// The specification limit (5.6 ms).
    pub spec_conversion_time: f64,
    /// Measured fall-time difference for one LSB of input, seconds
    /// (paper: 10 µs).
    pub fall_time_per_code: f64,
    /// Input step per output code, volts (paper: 10 mV).
    pub volts_per_code: f64,
    /// Clocks consumed by the gate-level counter counting one full
    /// phase (validates the structural counter at the 100 kHz cadence).
    pub counter_clocks: u64,
    /// Clocks the control FSM took for a mid-scale conversion.
    pub fsm_clocks: u64,
}

impl E3Report {
    /// True if every digital parameter is within specification.
    pub fn passed(&self) -> bool {
        self.max_conversion_time <= self.spec_conversion_time
            && (self.fall_time_per_code - 10e-6).abs() < 2e-6
            && (self.volts_per_code - 0.010).abs() < 1e-3
    }

    /// Renders the report as an `e3` [`obs::Section`].
    pub fn to_section(&self) -> obs::Section {
        let mut section = obs::Section::new("e3");
        section
            .counter("counter_clocks", self.counter_clocks)
            .counter("fsm_clocks", self.fsm_clocks)
            .counter("passed", u64::from(self.passed()))
            .value("max_conversion_time_ms", self.max_conversion_time * 1e3)
            .value("fall_time_per_code_us", self.fall_time_per_code * 1e6)
            .value("volts_per_code_mv", self.volts_per_code * 1e3);
        section
    }
}

impl fmt::Display for E3Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "E3 — digital test results (100 kHz clock)")?;
        writeln!(
            f,
            "max conversion time : {:.2} ms (spec {:.1} ms)   paper: within spec",
            self.max_conversion_time * 1e3,
            self.spec_conversion_time * 1e3
        )?;
        writeln!(
            f,
            "fall time per code  : {:.1} µs               paper: 10 µs",
            self.fall_time_per_code * 1e6
        )?;
        writeln!(
            f,
            "input per code      : {:.1} mV               paper: 10 mV",
            self.volts_per_code * 1e3
        )?;
        writeln!(
            f,
            "counter clocks (gate level): {}; control FSM clocks (mid-scale): {}",
            self.counter_clocks, self.fsm_clocks
        )?;
        writeln!(f, "digital test {}", if self.passed() { "PASSED" } else { "FAILED" })
    }
}

/// Runs E3 on the behavioural macro plus the gate-level digital
/// sub-macros.
pub fn run() -> E3Report {
    let adc = DualSlopeAdc::ideal();

    // Worst conversion time across the range.
    let max_conversion_time = (0..=25)
        .map(|k| adc.conversion_time(k as f64 * 0.1))
        .fold(0.0, f64::max);

    // Fall-time delta for one LSB of input.
    let mid = 1.25;
    let fall_time_per_code =
        adc.deintegration_time(mid + adc.lsb()) - adc.deintegration_time(mid);

    // Gate-level counter: count one full input phase (250 clocks) and
    // verify it lands on the expected value.
    let mut circuit = Circuit::new();
    let counter = Counter::build(&mut circuit, "conv", 9);
    counter.reset(&mut circuit);
    let mut counter_clocks = 0;
    for _ in 0..250 {
        counter.clock_pulse(&mut circuit, 5);
        counter_clocks += 1;
    }
    assert_eq!(counter.read(&circuit), Some(250), "counter miscounted");

    // Control FSM: a mid-scale conversion (comparator fires at half the
    // reference phase).
    let mut ctl = DualSlopeController::new(250);
    ctl.start();
    let mut fsm_clocks = 0;
    while ctl.phase() != DualSlopePhase::Done {
        let comparator = ctl.phase() == DualSlopePhase::IntegrateReference && ctl.counter() >= 125;
        ctl.clock(comparator);
        fsm_clocks += 1;
    }

    E3Report {
        max_conversion_time,
        spec_conversion_time: 5.6e-3,
        fall_time_per_code,
        volts_per_code: adc.lsb(),
        counter_clocks,
        fsm_clocks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e3_passes_all_digital_checks() {
        let report = run();
        assert!(report.passed(), "{report}");
    }

    #[test]
    fn fall_time_per_code_is_ten_microseconds() {
        let report = run();
        assert!(
            (report.fall_time_per_code - 10e-6).abs() < 1e-7,
            "{}",
            report.fall_time_per_code
        );
    }

    #[test]
    fn fsm_takes_expected_clocks() {
        let report = run();
        // 250 input-phase clocks + 125 reference + 1 to latch.
        assert_eq!(report.fsm_clocks, 376);
    }
}
