//! E1 — Analogue test results: the step-input macro and integrator fall
//! times.
//!
//! Paper: "The step input macro produced voltage steps of 0, 0.59, 0.96,
//! 1.41, 1.8 and 2.5 volts. This gave a measured integrator fall time of
//! 2.6, 2.2, 1.9, 1.2, 0.8, and 0.1 msec."

use std::fmt;
use std::sync::Arc;

use anasim::metrics::{SolverMetrics, SolverSnapshot, COUNTER_NAMES};
use macrolib::process::ProcessParams;
use msbist::adc::circuit::CircuitAdc;
use msbist::bist::StepGenerator;
use obs::profile::PhaseProfiler;

/// The paper's published fall times (ms), index-aligned with the step
/// levels.
pub const PAPER_FALL_TIMES_MS: [f64; 6] = [2.6, 2.2, 1.9, 1.2, 0.8, 0.1];

/// One row of the E1 table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct E1Row {
    /// Step level, volts.
    pub level: f64,
    /// Paper's measured fall time, milliseconds.
    pub paper_ms: f64,
    /// Our simulated fall time, milliseconds (`None` on simulation
    /// failure).
    pub measured_ms: Option<f64>,
}

/// The E1 report.
#[derive(Debug, Clone, PartialEq)]
pub struct E1Report {
    /// One row per step level.
    pub rows: Vec<E1Row>,
    /// Solver effort spent across every fall-time simulation. E1 runs
    /// real circuit transients, so this is non-zero — the bench sidecar
    /// reads its `newton_iterations` instead of reporting 0.
    pub solver: SolverSnapshot,
}

impl E1Report {
    /// True if the measured series is monotonically decreasing with
    /// level, like the paper's.
    pub fn monotone_decreasing(&self) -> bool {
        self.rows
            .windows(2)
            .all(|w| match (w[0].measured_ms, w[1].measured_ms) {
                (Some(a), Some(b)) => a > b,
                _ => false,
            })
    }

    /// Worst absolute deviation from the paper's values, milliseconds.
    pub fn worst_deviation_ms(&self) -> f64 {
        self.rows
            .iter()
            .map(|r| {
                r.measured_ms
                    .map(|m| (m - r.paper_ms).abs())
                    .unwrap_or(f64::INFINITY)
            })
            .fold(0.0, f64::max)
    }

    /// Renders the report as an `e1` [`obs::Section`].
    pub fn to_section(&self) -> obs::Section {
        let mut section = obs::Section::new("e1");
        section
            .counter("levels", self.rows.len() as u64)
            .counter(
                "simulated",
                self.rows.iter().filter(|r| r.measured_ms.is_some()).count() as u64,
            )
            .counter("monotone_decreasing", u64::from(self.monotone_decreasing()))
            .value("worst_deviation_ms", self.worst_deviation_ms());
        for (counter, value) in COUNTER_NAMES.iter().zip(self.solver.as_array()) {
            section.counter(counter, value);
        }
        section
    }
}

impl fmt::Display for E1Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "E1 — step input levels vs integrator fall time")?;
        writeln!(f, "level (V)   paper (ms)   measured (ms)")?;
        for r in &self.rows {
            match r.measured_ms {
                Some(m) => writeln!(f, "{:>8.2}   {:>9.1}   {:>12.2}", r.level, r.paper_ms, m)?,
                None => writeln!(f, "{:>8.2}   {:>9.1}   {:>12}", r.level, r.paper_ms, "fail")?,
            }
        }
        writeln!(
            f,
            "monotone decreasing: {}; worst |Δ| = {:.2} ms",
            self.monotone_decreasing(),
            self.worst_deviation_ms()
        )
    }
}

/// Runs E1: simulates the circuit-level integrator for each of the step
/// generator's levels and measures the fall time.
///
/// `sim_dt` trades accuracy for speed (4 µs default in the binary,
/// coarser in the Criterion bench).
pub fn run(sim_dt: f64) -> E1Report {
    run_instrumented(sim_dt, None)
}

/// Runs E1 with solver-effort accounting, and — when `profile` is
/// given — phase cost attribution, threaded into every conversion
/// transient.
pub fn run_instrumented(sim_dt: f64, profile: Option<Arc<PhaseProfiler>>) -> E1Report {
    let mut metrics = SolverMetrics::new();
    if let Some(p) = &profile {
        metrics = metrics.with_profile(Arc::clone(p));
    }
    let metrics = Arc::new(metrics);
    let mut adc = CircuitAdc::new(ProcessParams::nominal())
        .with_sim_dt(sim_dt)
        .with_metrics(Arc::clone(&metrics));
    if let Some(p) = profile {
        adc = adc.with_profile(p);
    }
    let generator = StepGenerator::paper();
    let rows = generator
        .levels()
        .iter()
        .zip(PAPER_FALL_TIMES_MS)
        .map(|(&level, paper_ms)| E1Row {
            level,
            paper_ms,
            measured_ms: adc.fall_time(level).ok().map(|s| s * 1e3),
        })
        .collect();
    E1Report {
        rows,
        solver: metrics.snapshot(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_reproduces_the_fall_time_shape() {
        let report = run(10e-6);
        assert!(report.monotone_decreasing(), "{report}");
        // The measured-data scatter in the paper is a few hundred µs;
        // our simulated macro should stay within that envelope.
        assert!(report.worst_deviation_ms() < 0.35, "{report}");
    }

    #[test]
    fn e1_accounts_its_solver_effort() {
        let report = run(20e-6);
        assert!(
            report.solver.newton_iterations > 0,
            "circuit transients must spend Newton iterations"
        );
        let section = report.to_section();
        assert_eq!(
            section.counters.get("solver.newton_iterations"),
            Some(&report.solver.newton_iterations)
        );
        // Disarmed run: no profiler attached, no phase wall-time.
        assert!(report.solver.phases.is_empty());

        let profiler = Arc::new(PhaseProfiler::new());
        let armed = run_instrumented(20e-6, Some(Arc::clone(&profiler)));
        assert!(!armed.solver.phases.is_empty());
        assert_eq!(profiler.snapshot(), armed.solver.phases);
        // Canonical counters are wall-clock-free: armed and disarmed
        // runs agree exactly.
        assert_eq!(armed.solver.as_array(), report.solver.as_array());
    }

    #[test]
    fn display_renders_all_rows() {
        let report = run(20e-6);
        let text = report.to_string();
        assert!(text.contains("2.6"));
        assert_eq!(text.lines().count(), 9);
    }
}
