//! E6 — Figure 4: transient-response fault detection on the three
//! example circuits.
//!
//! Paper: the normalised cross-correlations of the fault-free and the 16
//! faulty variants of circuit 1 were compared, and the impulse responses
//! of circuits 2 and 3 against their 12 faulty variants; Figure 4 plots
//! the percentage of detection instances per faulty circuit (roughly
//! 60–100 %, with circuit 3 dipping to ≈70 % for some faults).

use std::fmt;

use anasim::metrics::SolverSnapshot;
use anasim::AnalysisError;
use faultsim::campaign::{CampaignConfig, CampaignReport};

use crate::hooks::CampaignHooks;
use macrolib::process::ProcessParams;
use obs::{Histogram, Section};
use msbist::transtest::circuits::{circuit1, circuit2, circuit3, ExampleCircuit};
use msbist::transtest::detect::DetectionFigure;
use msbist::transtest::idd::run_idd_campaign_with;
use msbist::transtest::impulse::{fit_first_order_discrete, impulse_detection_instances};

/// Detection threshold as a fraction of the golden signature's peak
/// magnitude — each circuit's comparator resolution scales with its
/// signal, as a real windowed comparator would be designed.
pub const RELATIVE_THRESHOLD: f64 = 0.02;

/// Worker threads for the E6 campaigns. Reports are deterministic for
/// any worker count, so this only affects wall-clock time.
pub const E6_WORKERS: usize = 4;

/// Aggregated solver and detection telemetry over every campaign E6
/// runs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SolverSummary {
    /// Solver counters summed across golden and fault extractions.
    pub solver: SolverSnapshot,
    /// Histogram of the escalation rung each successful extraction
    /// settled on (index 0 = nominal solver settings).
    pub rung_histogram: Vec<usize>,
    /// Faults simulated across all campaigns.
    pub faults: u64,
    /// Faults with a non-`Undetected` outcome.
    pub detected: u64,
    /// Golden-extraction wall times, one sample per campaign (ms).
    pub golden_wall: Histogram,
    /// Per-fault wall times across all campaigns (ms).
    pub fault_wall: Histogram,
    /// Fault outcomes that went unjournaled because a campaign's
    /// journal degraded (zero on healthy runs).
    pub journal_degraded: u64,
    /// Journal append retries absorbed across all campaigns.
    pub journal_retries: u64,
}

impl SolverSummary {
    /// Newton iterations across golden and fault extractions.
    pub fn newton_iterations(&self) -> u64 {
        self.solver.newton_iterations
    }

    /// Folds one campaign report into the summary.
    pub fn absorb(&mut self, report: &CampaignReport) {
        let stats = &report.stats;
        self.solver += stats.total_solver();
        self.faults += report.outcomes.len() as u64;
        self.detected += report.detected_count() as u64;
        self.golden_wall.record(stats.golden_wall.as_secs_f64() * 1e3);
        self.fault_wall.merge(&stats.fault_wall_ms());
        self.journal_degraded += report
            .degradation
            .as_ref()
            .map_or(0, |d| d.unjournaled as u64);
        self.journal_retries += stats.journal_retries;
        let h = stats.rung_histogram();
        if self.rung_histogram.len() < h.len() {
            self.rung_histogram.resize(h.len(), 0);
        }
        for (i, n) in h.iter().enumerate() {
            self.rung_histogram[i] += n;
        }
    }

    /// Renders the summary as a [`Section`] carrying the headline keys
    /// ([`obs::RunReport`] summaries look for `coverage`, `faults`,
    /// `solver.*` counters, `escalation_rungs` and the campaign
    /// timings).
    pub fn to_section(&self, name: &str) -> Section {
        let mut section = Section::new(name);
        section
            .counter("faults", self.faults)
            .counter("detected", self.detected)
            .value(
                "coverage",
                if self.faults == 0 {
                    100.0
                } else {
                    100.0 * self.detected as f64 / self.faults as f64
                },
            );
        for (counter, value) in anasim::metrics::COUNTER_NAMES.iter().zip(self.solver.as_array())
        {
            section.counter(counter, value);
        }
        section
            .counter("journal_degraded.faults", self.journal_degraded)
            .counter("journal.retries", self.journal_retries);
        section.histogram(
            "escalation_rungs",
            self.rung_histogram.iter().map(|&n| n as u64).collect(),
        );
        section
            .timings
            .insert("campaign.golden".to_owned(), self.golden_wall.clone());
        section
            .timings
            .insert("campaign.fault".to_owned(), self.fault_wall.clone());
        section
    }
}

/// The E6 report: the assembled Figure-4 dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct E6Report {
    /// Correlation-method results for every circuit.
    pub correlation: DetectionFigure,
    /// Impulse-response-method results for circuits 2 and 3.
    pub impulse: DetectionFigure,
    /// Dynamic supply-current results (extension: the paper's refs
    /// [10, 11]).
    pub idd: DetectionFigure,
    /// Solver telemetry from the correlation and IDD campaigns.
    pub solver: SolverSummary,
}

impl E6Report {
    /// Minimum detection over all entries of a circuit (correlation
    /// method).
    pub fn correlation_floor(&self, circuit: u8) -> Option<f64> {
        self.correlation.floor(circuit)
    }

    /// Renders the report as an `e6` [`Section`]: detection coverage,
    /// solver counters, rung histogram and campaign timings, plus the
    /// per-circuit correlation floors.
    pub fn to_section(&self) -> Section {
        let mut section = self.solver.to_section("e6");
        for c in [1u8, 2, 3] {
            if let Some(floor) = self.correlation.floor(c) {
                section.value(&format!("circuit{c}_floor_pct"), floor);
            }
        }
        section
    }
}

impl fmt::Display for E6Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "E6 — Figure 4: detection instances for faulty circuits")?;
        writeln!(f, "\ncorrelation method (approach 1):")?;
        write!(f, "{}", self.correlation.to_table())?;
        writeln!(f, "\nimpulse-response method (approach 2, circuits 2 & 3):")?;
        write!(f, "{}", self.impulse.to_table())?;
        writeln!(f, "\ndynamic supply-current monitoring (extension, refs [10, 11]):")?;
        write!(f, "{}", self.idd.to_table())?;
        for c in [1u8, 2, 3] {
            if let (Some(floor), Some(mean)) =
                (self.correlation.floor(c), self.correlation.mean(c))
            {
                writeln!(
                    f,
                    "circuit {c}: correlation floor {floor:.0} %, mean {mean:.0} %"
                )?;
            }
        }
        writeln!(
            f,
            "solver: {} Newton iterations, escalation-rung histogram {:?}",
            self.solver.newton_iterations(),
            self.solver.rung_histogram
        )?;
        Ok(())
    }
}

/// Runs the correlation campaign for one example circuit on the
/// resilient engine and adds it to the figure. The campaign journals
/// under `e6.c<N>.correlation` when the hooks carry a journal.
fn correlation_campaign(
    figure: &mut DetectionFigure,
    solver: &mut SolverSummary,
    circuit: &ExampleCircuit,
    workers: usize,
    hooks: &CampaignHooks,
) -> Result<(), AnalysisError> {
    let golden = circuit
        .bench
        .correlation_signature(circuit.bench.netlist())
        .expect("golden circuit must simulate");
    let peak = golden.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
    let label = format!("e6.c{}.correlation", circuit.number);
    let config = hooks.apply(
        CampaignConfig::new(RELATIVE_THRESHOLD * peak).workers(workers),
        &label,
    );
    let report = circuit
        .bench
        .run_correlation_campaign_with(&circuit.faults, &config)?;
    solver.absorb(&report);
    figure.add_campaign(circuit.number, &report);
    hooks.observe(&label, &report);
    Ok(())
}

/// Runs the impulse-response (approach 2) comparison for an SC circuit:
/// the golden and each faulty variant are identified as first-order
/// discrete systems from their cycle-sampled PRBS responses, and the
/// fitted impulse responses are compared.
fn impulse_campaign(figure: &mut DetectionFigure, circuit: &ExampleCircuit, hooks: &CampaignHooks) {
    let one_period: Vec<f64> = stimulus_levels(circuit).iter().map(|&v| v - 2.5).collect();
    let p: Vec<f64> = std::iter::repeat_n(one_period, circuit.bench.periods())
        .flatten()
        .collect();

    // Not a resilient campaign — but its solves are real solver time,
    // so they run under profiler-armed settings when the hooks carry
    // one.
    let settings = hooks.solve_settings();
    let impulse_of = |netlist: &anasim::netlist::Netlist| -> Option<Vec<f64>> {
        let y = circuit
            .bench
            .response_at_with(netlist, circuit.impulse_probe, &settings)
            .ok()?;
        // One sample per cycle: take the last sample of each bit.
        let spb = y.len() / p.len();
        let cycle_y: Vec<f64> = y
            .chunks(spb)
            .map(|c| c.last().copied().unwrap_or(0.0) - 2.5)
            .collect();
        let fit = fit_first_order_discrete(&p, &cycle_y);
        Some(fit.impulse_response(circuit.bench.stimulus().bit_period(), 32))
    };

    let golden = impulse_of(circuit.bench.netlist()).expect("golden circuit must simulate");
    let peak = golden.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
    for fault in &circuit.faults {
        let faulty_nl = faultsim::inject::inject(circuit.bench.netlist(), fault);
        let pct = match impulse_of(&faulty_nl) {
            Some(h) => impulse_detection_instances(&golden, &h, RELATIVE_THRESHOLD * peak),
            None => 100.0,
        };
        figure.add_entry(circuit.number, fault.name(), pct);
    }
}

/// Runs the dynamic-IDD campaign for one example circuit on the
/// resilient engine, journaling under `e6.c<N>.idd`.
fn idd_campaign(
    figure: &mut DetectionFigure,
    solver: &mut SolverSummary,
    circuit: &ExampleCircuit,
    workers: usize,
    hooks: &CampaignHooks,
) -> Result<(), AnalysisError> {
    let label = format!("e6.c{}.idd", circuit.number);
    let config = hooks.apply(CampaignConfig::new(0.0).workers(workers), &label);
    let report = run_idd_campaign_with(
        &circuit.bench,
        &circuit.vdd_sources,
        &circuit.faults,
        RELATIVE_THRESHOLD,
        &config,
    )?;
    solver.absorb(&report);
    figure.add_campaign(circuit.number, &report);
    hooks.observe(&label, &report);
    Ok(())
}

/// The stimulus levels, one per bit (helper for system identification).
fn stimulus_levels(circuit: &ExampleCircuit) -> Vec<f64> {
    let s = circuit.bench.stimulus();
    s.bits()
        .iter()
        .map(|&b| if b { s.high() } else { s.low() })
        .collect()
}

/// Runs E6 across all three example circuits with the default worker
/// count.
pub fn run() -> E6Report {
    run_with(E6_WORKERS)
}

/// Runs E6 across all three example circuits on `workers` threads. The
/// report (and its canonical metrics) is identical for any worker
/// count.
pub fn run_with(workers: usize) -> E6Report {
    run_with_hooks(workers, &CampaignHooks::none()).expect("golden circuit must simulate")
}

/// [`run_with`] with crash-safety hooks: each campaign journals under
/// its own label (`e6.c1.correlation` ... `e6.c3.idd`) and polls the
/// shared cancellation token at fault boundaries.
///
/// # Errors
///
/// [`AnalysisError::Cancelled`] when the token was raised mid-campaign
/// (the journal then holds a clean partial checkpoint), or any error of
/// the golden extraction.
pub fn run_with_hooks(workers: usize, hooks: &CampaignHooks) -> Result<E6Report, AnalysisError> {
    let process = ProcessParams::nominal();
    let c1 = circuit1(&process);
    let c2 = circuit2(&process);
    let c3 = circuit3(&process);

    let mut solver = SolverSummary::default();
    let mut correlation = DetectionFigure::new();
    correlation_campaign(&mut correlation, &mut solver, &c1, workers, hooks)?;
    correlation_campaign(&mut correlation, &mut solver, &c2, workers, hooks)?;
    correlation_campaign(&mut correlation, &mut solver, &c3, workers, hooks)?;

    let mut impulse = DetectionFigure::new();
    impulse_campaign(&mut impulse, &c2, hooks);
    impulse_campaign(&mut impulse, &c3, hooks);

    let mut idd = DetectionFigure::new();
    idd_campaign(&mut idd, &mut solver, &c1, workers, hooks)?;
    idd_campaign(&mut idd, &mut solver, &c2, workers, hooks)?;
    idd_campaign(&mut idd, &mut solver, &c3, workers, hooks)?;

    Ok(E6Report {
        correlation,
        impulse,
        idd,
        solver,
    })
}

/// Runs only circuit 1's correlation campaign (the cheap part, used by
/// the Criterion bench and the CI metrics smoke test).
pub fn run_circuit1_only() -> E6Report {
    run_circuit1_only_with(E6_WORKERS)
}

/// [`run_circuit1_only`] on `workers` threads.
pub fn run_circuit1_only_with(workers: usize) -> E6Report {
    run_circuit1_only_with_hooks(workers, &CampaignHooks::none())
        .expect("golden circuit must simulate")
}

/// [`run_circuit1_only`] with crash-safety hooks. The campaign journals
/// under the same `e6.c1.correlation` label as the full E6 run, so an
/// interrupted `e6` invocation can be partially resumed through `e6c1`
/// and vice versa.
///
/// # Errors
///
/// [`AnalysisError::Cancelled`] on cooperative cancellation, or any
/// golden-extraction error.
pub fn run_circuit1_only_with_hooks(
    workers: usize,
    hooks: &CampaignHooks,
) -> Result<E6Report, AnalysisError> {
    let c1 = circuit1(&ProcessParams::nominal());
    let mut solver = SolverSummary::default();
    let mut correlation = DetectionFigure::new();
    correlation_campaign(&mut correlation, &mut solver, &c1, workers, hooks)?;
    Ok(E6Report {
        correlation,
        impulse: DetectionFigure::new(),
        idd: DetectionFigure::new(),
        solver,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_metrics_are_byte_identical_across_worker_counts() {
        let serial = run_circuit1_only_with(1);
        let parallel = run_circuit1_only_with(4);
        let canonical = |r: &E6Report| {
            let mut report = obs::RunReport::new();
            report.push(r.to_section());
            report.canonical_json_string()
        };
        assert_eq!(canonical(&serial), canonical(&parallel));
        // The canonical report carries real telemetry, not just zeros.
        let parsed = obs::json::parse(&canonical(&serial)).unwrap();
        let summary = parsed.get("summary").unwrap();
        assert!(summary.get("coverage").and_then(obs::json::JsonValue::as_f64) > Some(0.0));
        assert!(
            summary
                .get("newton_iterations")
                .and_then(obs::json::JsonValue::as_f64)
                > Some(0.0)
        );
    }

    #[test]
    fn circuit1_faults_are_broadly_detected() {
        let report = run_circuit1_only();
        let entries = report.correlation.circuit(1);
        assert_eq!(entries.len(), 16);
        // Paper shape: high detection across the board.
        let detected = entries.iter().filter(|e| e.pct > 40.0).count();
        assert!(
            detected >= 14,
            "only {detected}/16 strongly detected:\n{}",
            report.correlation.to_table()
        );
    }
}
