//! Experiment implementations, one module per table/figure.

pub mod ablation;
pub mod diverge;
pub mod e1;
pub mod e2;
pub mod e3;
pub mod e4;
pub mod e5;
pub mod e6;
pub mod e7;
pub mod e8;
