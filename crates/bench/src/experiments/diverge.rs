//! Diverge — a deliberately non-convergent fault campaign that
//! exercises the convergence flight recorder end to end.
//!
//! This is not a paper artefact: it is the diagnostics demo and the CI
//! smoke fixture for solver postmortems. The golden circuit is a mild
//! resistive divider with a reverse-biased diode — nonlinear (so the
//! Newton path is exercised, not the linear fast path) yet trivially
//! convergent. Each stuck-at-1 fault injects a 5 V generator node the
//! solver cannot reach under the deliberately tight
//! `max_iterations × vstep_limit` product, a `Uic` start keeps the DC
//! homotopies from rescuing the clamp, and `min_dt = dt` forbids the
//! halving rescue — so every escalation rung fails, every fault
//! freezes a postmortem, and `experiments explain` has something real
//! to narrate.

use std::fmt;

use anasim::flight::FlightRecorder;
use anasim::mna::NewtonOptions;
use anasim::netlist::Netlist;
use anasim::robust::SolveSettings;
use anasim::source::SourceWaveform;
use anasim::transient::{StartCondition, TransientAnalysis};
use anasim::AnalysisError;
use faultsim::campaign::{run_campaign_with, CampaignConfig, CampaignReport, FaultStatus};
use faultsim::model::Fault;
use obs::Section;

use crate::hooks::CampaignHooks;

/// Newton ceiling for the divergent extraction; together with
/// [`VSTEP_LIMIT`] it bounds Newton movement to 1.5 V per solve —
/// short of the 5 V the injected stuck-at generator demands.
pub const MAX_ITERATIONS: usize = 6;

/// Per-iteration voltage-update clamp for the divergent extraction.
pub const VSTEP_LIMIT: f64 = 0.25;

/// The golden circuit and its deliberately unsolvable fault universe.
pub fn fixture() -> (Netlist, Vec<Fault>) {
    let mut nl = Netlist::new();
    let a = nl.node("in");
    let b = nl.node("out");
    nl.vsource("V1", a, Netlist::GROUND, SourceWaveform::dc(0.2));
    nl.resistor("R1", a, b, 1e3);
    nl.resistor("R2", b, Netlist::GROUND, 1e3);
    nl.diode(
        "D1",
        Netlist::GROUND,
        b,
        anasim::devices::DiodeParams::default(),
    );
    let faults = vec![
        Fault::stuck_at_1("out-sa1", b),
        Fault::stuck_at_1("in-sa1", a),
    ];
    (nl, faults)
}

/// The transient extraction with the tight Newton settings described in
/// the module docs. Converges for the golden circuit, fails every rung
/// for the fixture's faults.
pub fn tight_extract(
    nl: &Netlist,
    settings: &SolveSettings,
) -> Result<Vec<f64>, AnalysisError> {
    let out = nl.find_node("out").expect("node out");
    let newton = NewtonOptions {
        max_iterations: MAX_ITERATIONS,
        vstep_limit: VSTEP_LIMIT,
        ..NewtonOptions::default()
    };
    let result = TransientAnalysis::new(1e-5, 1e-6)
        .start_condition(StartCondition::Uic)
        .newton_options(newton)
        .min_dt(1e-6)
        .with_settings(settings)
        .run(nl)?;
    let w = result.voltage(out);
    Ok((0..10).map(|k| w.value_at(k as f64 * 1e-6)).collect())
}

/// The diverge report: a campaign whose every fault carries a frozen
/// postmortem.
#[derive(Debug, Clone)]
pub struct DivergeReport {
    /// The underlying campaign report.
    pub campaign: CampaignReport,
}

impl DivergeReport {
    /// Number of faults that failed terminally (all of them, by
    /// construction).
    pub fn failed(&self) -> usize {
        self.campaign
            .outcomes
            .iter()
            .filter(|o| matches!(o.status, FaultStatus::SimFailed { .. }))
            .count()
    }

    /// Renders the campaign as a `diverge` [`Section`] — the section
    /// carries the frozen postmortems and the `worst_node.*` rollup, so
    /// a `--metrics-json` report written from it is what
    /// `experiments explain` consumes.
    pub fn to_section(&self) -> Section {
        self.campaign.to_section("diverge")
    }
}

impl fmt::Display for DivergeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Diverge — flight-recorder demo: {} faults, {} failed terminally",
            self.campaign.outcomes.len(),
            self.failed()
        )?;
        writeln!(f, "{}", self.campaign.canonical_text())?;
        for (name, pm) in self.campaign.postmortems() {
            writeln!(
                f,
                "{name}: {} total Newton iterations, worst node {}, ladder {} rungs",
                pm.total_iterations,
                pm.worst_nodes
                    .first()
                    .map_or("?", |(node, _)| node.as_str()),
                pm.ladder.len()
            )?;
        }
        let top = self.campaign.top_offending_nodes();
        if !top.is_empty() {
            writeln!(f, "top offending nodes:")?;
            for (node, count) in top.iter().take(5) {
                writeln!(f, "  {node}: {count}")?;
            }
        }
        Ok(())
    }
}

/// Runs the divergent campaign with the flight recorder armed, serial.
pub fn run() -> DivergeReport {
    run_with(1)
}

/// [`run`] on `workers` threads. The report and its canonical metrics
/// are byte-identical for any worker count.
pub fn run_with(workers: usize) -> DivergeReport {
    run_with_hooks(workers, &CampaignHooks::none()).expect("golden fixture must simulate")
}

/// [`run`] with crash-safety hooks: the campaign journals its frozen
/// postmortems under the `diverge` label and polls the cancellation
/// token at fault boundaries.
///
/// # Errors
///
/// [`AnalysisError`](anasim::AnalysisError)`::Cancelled` on cooperative
/// cancellation, or any golden-extraction error.
pub fn run_with_hooks(
    workers: usize,
    hooks: &CampaignHooks,
) -> Result<DivergeReport, AnalysisError> {
    let (golden, faults) = fixture();
    let config = hooks.apply(
        CampaignConfig::new(0.05)
            .workers(workers)
            .flight(FlightRecorder::DEFAULT_CAPACITY),
        "diverge",
    );
    let campaign = run_campaign_with(&golden, &faults, &config, tight_extract)?;
    hooks.observe("diverge", &campaign);
    Ok(DivergeReport { campaign })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_fault_fails_with_a_postmortem() {
        let report = run();
        assert_eq!(report.campaign.outcomes.len(), 2);
        assert_eq!(report.failed(), 2);
        let pms: Vec<_> = report.campaign.postmortems().collect();
        assert_eq!(pms.len(), 2);
        for (_, pm) in &pms {
            assert!(!pm.trace.is_empty());
            assert!(pm.worst_nodes[0].0.contains(":gen"));
            assert_eq!(pm.ladder.len(), 4);
        }
        // The printed narrative names the offenders.
        let text = report.to_string();
        assert!(text.contains("top offending nodes"), "{text}");
        assert!(text.contains(":gen"));
    }

    #[test]
    fn section_feeds_explain() {
        let report = run();
        let mut run_report = obs::RunReport::new();
        run_report.push(report.to_section());
        let json = run_report.canonical_json_string();
        let explained = crate::explain::explain_report(&json, None).unwrap();
        assert!(explained.contains("postmortem: out-sa1 (section diverge)"), "{explained}");
        assert!(explained.contains("escalation ladder"));
        assert!(explained.contains("fault:out-sa1:gen"));
        let one = crate::explain::explain_report(&json, Some("in-sa1")).unwrap();
        assert!(one.contains("postmortem: in-sa1"));
        assert!(!one.contains("postmortem: out-sa1"));
    }
}
