//! E5 — Figure 2 and the full ADC characterisation.
//!
//! Paper: specification max clock 100 kHz, zero offset < 0.3 LSB, gain
//! error < 0.5 LSB, INL < 1 LSB, DNL < 1 LSB. Measured: gain error
//! ±0.5 LSB, zero offset < 0.2 LSB, **max INL 1.3 LSB and max DNL
//! 1.2 LSB** (out of specification) — Figure 2 plots the DNL over input
//! codes 0–100.

use std::fmt;

use msbist::adc::spec::{AdcSpecification, SpecReport};
use msbist::adc::DualSlopeAdc;
use msbist::charac::histogram::{characterise_histogram, HistogramCharacterisation};
use msbist::charac::{characterise, Characterisation};

/// The E5 report.
#[derive(Debug, Clone, PartialEq)]
pub struct E5Report {
    /// The measured characterisation (transition-level sweep, the
    /// paper's bench method).
    pub charac: Characterisation,
    /// The same macro measured by code-density histogram (the on-chip
    /// production method).
    pub histogram: HistogramCharacterisation,
    /// Spec compliance.
    pub spec: SpecReport,
}

impl E5Report {
    /// Worst disagreement between the sweep and histogram DNL series,
    /// LSB — the two independent methods must corroborate each other.
    pub fn method_disagreement_lsb(&self) -> f64 {
        let sweep: std::collections::HashMap<u64, f64> =
            self.charac.dnl_series().into_iter().collect();
        self.histogram
            .dnl_series()
            .into_iter()
            .filter_map(|(code, h)| sweep.get(&code).map(|s| (h - s).abs()))
            .fold(0.0, f64::max)
    }
}

impl E5Report {
    /// The Figure-2 series: `(code, dnl)` over the characterised range.
    pub fn figure2_series(&self) -> Vec<(u64, f64)> {
        self.charac.dnl_series()
    }

    /// Renders the report as an `e5` [`obs::Section`].
    pub fn to_section(&self) -> obs::Section {
        let mut section = obs::Section::new("e5");
        section
            .counter("offset_ok", u64::from(self.spec.offset_ok))
            .counter("gain_ok", u64::from(self.spec.gain_ok))
            .counter("inl_ok", u64::from(self.spec.inl_ok))
            .counter("dnl_ok", u64::from(self.spec.dnl_ok))
            .value("offset_lsb", self.charac.offset_lsb)
            .value("gain_error_lsb", self.charac.gain_error_lsb)
            .value("max_inl_lsb", self.charac.max_inl_lsb())
            .value("max_dnl_lsb", self.charac.max_dnl_lsb())
            .value("histogram_max_dnl_lsb", self.histogram.max_dnl_lsb())
            .value("method_disagreement_lsb", self.method_disagreement_lsb());
        section
    }

    /// ASCII rendering of Figure 2 (DNL vs code).
    pub fn figure2_ascii(&self, width: usize) -> String {
        let mut out = String::new();
        out.push_str("DNL (LSB) vs ADC output code — Figure 2\n");
        let scale = width as f64 / 3.0; // columns per LSB, range ±1.5
        for (code, dnl) in self.figure2_series() {
            if code % 4 != 0 {
                continue; // decimate for terminal width
            }
            let centre = width / 2;
            let pos = (centre as f64 + dnl * scale)
                .round()
                .clamp(0.0, width as f64 - 1.0) as usize;
            let mut line: Vec<char> = vec![' '; width];
            line[centre] = '|';
            line[pos] = '*';
            out.push_str(&format!("{:>4} {}\n", code, line.iter().collect::<String>()));
        }
        out
    }
}

impl fmt::Display for E5Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "E5 — full ADC characterisation (Figure 2)")?;
        writeln!(f, "parameter        measured    paper      spec")?;
        writeln!(
            f,
            "zero offset    {:>7.2} LSB   <0.2 LSB   <0.3 LSB  [{}]",
            self.charac.offset_lsb,
            pass(self.spec.offset_ok)
        )?;
        writeln!(
            f,
            "gain error     {:>7.2} LSB   ±0.5 LSB   <0.5 LSB  [{}]",
            self.charac.gain_error_lsb,
            pass(self.spec.gain_ok)
        )?;
        writeln!(
            f,
            "max INL        {:>7.2} LSB    1.3 LSB   <1.0 LSB  [{}]",
            self.charac.max_inl_lsb(),
            pass(self.spec.inl_ok)
        )?;
        writeln!(
            f,
            "max DNL        {:>7.2} LSB    1.2 LSB   <1.0 LSB  [{}]",
            self.charac.max_dnl_lsb(),
            pass(self.spec.dnl_ok)
        )?;
        writeln!(
            f,
            "quantisation   {:>7.2} LSB rms (truncating converter ideal: 0.58)",
            self.charac.quantisation_rms_lsb
        )?;
        writeln!(
            f,
            "histogram method: max DNL {:.2} LSB, max INL {:.2} LSB \
             (sweep-vs-histogram worst Δ {:.2} LSB)",
            self.histogram.max_dnl_lsb(),
            self.histogram.max_inl_lsb(),
            self.method_disagreement_lsb()
        )?;
        write!(f, "{}", self.figure2_ascii(61))
    }
}

fn pass(ok: bool) -> &'static str {
    if ok {
        "ok"
    } else {
        "EXCEEDED"
    }
}

/// Runs E5: characterises the paper-measured macro over the first
/// `codes` output codes (the paper's Figure 2 covers 0–100).
pub fn run(codes: u64) -> E5Report {
    let adc = DualSlopeAdc::paper_measured();
    let charac = characterise(&adc, codes);
    let histogram = characterise_histogram(&adc, codes, 64);
    let spec = AdcSpecification::paper().check(&charac);
    E5Report {
        charac,
        histogram,
        spec,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e5_reproduces_the_paper_shape() {
        let report = run(100);
        // Offset and gain within spec...
        assert!(report.spec.offset_ok, "{report}");
        assert!(report.spec.gain_ok, "{report}");
        // ...but INL and DNL exceed 1 LSB like the paper's macro.
        assert!(!report.spec.inl_ok, "{report}");
        assert!(!report.spec.dnl_ok, "{report}");
    }

    #[test]
    fn magnitudes_near_paper_values() {
        let report = run(200);
        let inl = report.charac.max_inl_lsb();
        let dnl = report.charac.max_dnl_lsb();
        assert!((1.0..1.8).contains(&inl), "INL {inl}");
        assert!((1.0..1.8).contains(&dnl), "DNL {dnl}");
        assert!(report.charac.offset_lsb.abs() < 0.3);
        assert!(report.charac.gain_error_lsb.abs() < 0.6);
    }

    #[test]
    fn figure2_has_sawtooth_character() {
        // The ripple error source must produce alternating-sign DNL.
        let report = run(100);
        let series = report.figure2_series();
        let sign_changes = series
            .windows(2)
            .filter(|w| (w[0].1 > 0.0) != (w[1].1 > 0.0))
            .count();
        assert!(sign_changes > 10, "only {sign_changes} sign changes");
    }

    #[test]
    fn methods_corroborate() {
        let report = run(100);
        assert!(
            report.method_disagreement_lsb() < 0.2,
            "methods disagree by {} LSB",
            report.method_disagreement_lsb()
        );
    }

    #[test]
    fn ascii_plot_renders() {
        let report = run(50);
        let plot = report.figure2_ascii(41);
        assert!(plot.contains('*'));
        assert!(plot.lines().count() > 5);
    }
}
