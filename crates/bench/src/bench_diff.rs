//! `experiments bench-diff OLD NEW` — the perf-regression gate over
//! `mixsig.solver-bench/*` sidecars.
//!
//! Both documents are validated by [`solver_bench::validate`] first,
//! then compared experiment-by-experiment (matched on `name`). Three
//! families of comparison, each with its own tolerance, because they
//! drift for different reasons:
//!
//! * **Timing** (`wall_ms`, per-phase `ns`) varies with the machine and
//!   its load, so the tolerance is percentage-based *plus* an absolute
//!   slack floor — a 0.2 ms experiment doubling is noise, a 2 s one
//!   doubling is not. `--counts-only` disables timing comparisons
//!   entirely for cross-machine gates (committed snapshot vs CI).
//! * **Counts** (`newton_iterations`, per-phase `calls`) are
//!   deterministic for a given build, so their tolerance is tight: a
//!   count regression means the solver is doing more work, not that the
//!   machine is slower.
//! * **Factorisation reuse** — the hit rate
//!   `hits / (hits + misses)` must not drop by more than the tolerance
//!   in percentage points: the reuse economy eroding is exactly the
//!   regression the sparse-solver work guards against.
//! * **Numerical resilience** — the demotion rate
//!   `demotions / newton_iterations` must not grow by more than the
//!   tolerance in percentage points: a build that starts demoting
//!   healthy solves down the recovery ladder is numerically regressing
//!   even if it still converges. Compared only when *both* documents
//!   carry the `/4` resilience counters, so a `/3` baseline (like the
//!   committed snapshot) diffs cleanly against a `/4` candidate.
//!
//! Experiments present in only one document are reported as notes, not
//! regressions (the experiment roster is allowed to grow). Any
//! regression makes [`Comparison::regressed`] true; the CLI exits
//! nonzero on it, which is what wires the gate into CI.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use obs::json::JsonValue;
use obs::table::{Align, Table};

use crate::solver_bench;

/// Tolerances for one diff run.
#[derive(Debug, Clone, PartialEq)]
pub struct Tolerances {
    /// Allowed relative growth of wall-clock and phase self-times, in
    /// percent.
    pub timing_pct: f64,
    /// Absolute timing slack in milliseconds, added on top of the
    /// relative allowance so sub-millisecond entries cannot flap.
    pub timing_slack_ms: f64,
    /// Allowed relative growth of deterministic counts, in percent.
    pub count_pct: f64,
    /// Absolute count slack, added on top of the relative allowance.
    pub count_slack: f64,
    /// Allowed drop of the factorisation reuse rate, in percentage
    /// points.
    pub reuse_drop_pct: f64,
    /// Allowed growth of the tier-demotion rate
    /// (`demotions / newton_iterations`), in percentage points. Only
    /// gates when both documents carry the `/4` resilience counters.
    pub demotion_growth_pp: f64,
    /// When set, timing comparisons are skipped entirely (counts and
    /// reuse still gate) — for diffs across machines.
    pub counts_only: bool,
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances {
            timing_pct: 25.0,
            timing_slack_ms: 5.0,
            count_pct: 5.0,
            count_slack: 16.0,
            reuse_drop_pct: 10.0,
            demotion_growth_pp: 0.5,
            counts_only: false,
        }
    }
}

/// One experiment's numbers, pulled out of a parsed document.
#[derive(Debug, Clone, Default)]
struct Entry {
    wall_ms: f64,
    newton: f64,
    hits: f64,
    misses: f64,
    /// `Some(total demotions)` when the document carries the `/4`
    /// resilience counters; `None` for older schemas.
    demotions: Option<f64>,
    /// phase label → (ns, calls); empty for `/1` documents.
    phases: Vec<(String, f64, f64)>,
}

/// The outcome of one diff.
#[derive(Debug, Clone, Default)]
pub struct Comparison {
    /// Table rows: experiment, metric, old, new, delta, verdict.
    pub rows: Vec<[String; 6]>,
    /// One line per regression (subset of the rows).
    pub regressions: Vec<String>,
    /// Roster differences and skipped comparisons.
    pub notes: Vec<String>,
}

impl Comparison {
    /// True when any comparison exceeded its tolerance.
    pub fn regressed(&self) -> bool {
        !self.regressions.is_empty()
    }
}

fn entries_of(which: &str, text: &str) -> Result<BTreeMap<String, Entry>, String> {
    solver_bench::validate(text).map_err(|e| format!("{which}: {e}"))?;
    let parsed = obs::json::parse(text).map_err(|e| format!("{which}: {e}"))?;
    let mut out = BTreeMap::new();
    for row in parsed
        .get("experiments")
        .and_then(JsonValue::as_array)
        .into_iter()
        .flatten()
    {
        let name = row
            .get("name")
            .and_then(JsonValue::as_str)
            .unwrap_or_default()
            .to_owned();
        let num = |key: &str| row.get(key).and_then(JsonValue::as_f64).unwrap_or(0.0);
        let phases = match row.get("phases") {
            Some(JsonValue::Obj(entries)) => entries
                .iter()
                .map(|(label, p)| {
                    (
                        label.clone(),
                        p.get("ns").and_then(JsonValue::as_f64).unwrap_or(0.0),
                        p.get("calls").and_then(JsonValue::as_f64).unwrap_or(0.0),
                    )
                })
                .collect(),
            _ => Vec::new(),
        };
        out.insert(
            name,
            Entry {
                wall_ms: num("wall_ms"),
                newton: num("newton_iterations"),
                hits: num("factor_reuse_hits"),
                misses: num("factor_reuse_misses"),
                demotions: row.get("demotions").and_then(JsonValue::as_f64),
                phases,
            },
        );
    }
    Ok(out)
}

fn delta_pct(old: f64, new: f64) -> String {
    if old == 0.0 {
        if new == 0.0 {
            "—".to_owned()
        } else {
            "new".to_owned()
        }
    } else {
        format!("{:+.1} %", 100.0 * (new - old) / old)
    }
}

/// Compares two solver-bench documents.
///
/// # Errors
///
/// Either document failing [`solver_bench::validate`] or JSON parsing.
pub fn diff(old_text: &str, new_text: &str, tol: &Tolerances) -> Result<Comparison, String> {
    let old = entries_of("OLD", old_text)?;
    let new = entries_of("NEW", new_text)?;
    let mut cmp = Comparison::default();

    for name in old.keys() {
        if !new.contains_key(name) {
            cmp.notes.push(format!("{name}: only in OLD (dropped from roster?)"));
        }
    }
    for name in new.keys() {
        if !old.contains_key(name) {
            cmp.notes.push(format!("{name}: only in NEW (no baseline, not compared)"));
        }
    }
    if tol.counts_only {
        cmp.notes
            .push("timing comparisons skipped (--counts-only)".to_owned());
    }

    let timing_limit =
        |old: f64| old * (1.0 + tol.timing_pct / 100.0) + tol.timing_slack_ms;
    let count_limit = |old: f64| old * (1.0 + tol.count_pct / 100.0) + tol.count_slack;

    for (name, o) in &old {
        let Some(n) = new.get(name) else { continue };
        let mut row = |metric: &str, old_v: String, new_v: String, regressed: bool, why: String| {
            let verdict = if regressed { "REGRESSION" } else { "ok" };
            cmp.rows.push([
                name.clone(),
                metric.to_owned(),
                old_v,
                new_v,
                why,
                verdict.to_owned(),
            ]);
            if regressed {
                let r = cmp.rows.last().expect("just pushed");
                cmp.regressions.push(format!(
                    "{name}: {metric} {} -> {} ({})",
                    r[2], r[3], r[4]
                ));
            }
        };

        if !tol.counts_only {
            row(
                "wall_ms",
                format!("{:.3}", o.wall_ms),
                format!("{:.3}", n.wall_ms),
                n.wall_ms > timing_limit(o.wall_ms),
                delta_pct(o.wall_ms, n.wall_ms),
            );
        }
        row(
            "newton_iterations",
            format!("{:.0}", o.newton),
            format!("{:.0}", n.newton),
            n.newton > count_limit(o.newton),
            delta_pct(o.newton, n.newton),
        );

        let o_decisions = o.hits + o.misses;
        let n_decisions = n.hits + n.misses;
        if o_decisions > 0.0 && n_decisions > 0.0 {
            let o_rate = 100.0 * o.hits / o_decisions;
            let n_rate = 100.0 * n.hits / n_decisions;
            row(
                "factor_reuse_rate",
                format!("{o_rate:.1} %"),
                format!("{n_rate:.1} %"),
                o_rate - n_rate > tol.reuse_drop_pct,
                format!("{:+.1} pp", n_rate - o_rate),
            );
        }

        // Demotion rate: only gated when both documents carry the /4
        // resilience counters — a /3 baseline simply skips the row.
        if let (Some(o_dem), Some(n_dem)) = (o.demotions, n.demotions) {
            if o.newton > 0.0 && n.newton > 0.0 {
                let o_rate = 100.0 * o_dem / o.newton;
                let n_rate = 100.0 * n_dem / n.newton;
                row(
                    "demotion_rate",
                    format!("{o_rate:.2} %"),
                    format!("{n_rate:.2} %"),
                    n_rate - o_rate > tol.demotion_growth_pp,
                    format!("{:+.2} pp", n_rate - o_rate),
                );
            }
        }

        // Phases: compared only where both documents carry the label;
        // rows are emitted only for regressions to keep the table
        // readable (ten phases × ten experiments of "ok" says nothing).
        let new_phases: BTreeMap<&str, (f64, f64)> = n
            .phases
            .iter()
            .map(|(l, ns, calls)| (l.as_str(), (*ns, *calls)))
            .collect();
        for (label, o_ns, o_calls) in &o.phases {
            let Some(&(n_ns, n_calls)) = new_phases.get(label.as_str()) else {
                continue;
            };
            if !tol.counts_only {
                let o_ms = o_ns / 1e6;
                let n_ms = n_ns / 1e6;
                if n_ms > timing_limit(o_ms) {
                    row(
                        &format!("phases.{label}.ns"),
                        format!("{o_ms:.3} ms"),
                        format!("{n_ms:.3} ms"),
                        true,
                        delta_pct(o_ms, n_ms),
                    );
                }
            }
            if n_calls > count_limit(*o_calls) {
                row(
                    &format!("phases.{label}.calls"),
                    format!("{o_calls:.0}"),
                    format!("{n_calls:.0}"),
                    true,
                    delta_pct(*o_calls, n_calls),
                );
            }
        }
    }
    Ok(cmp)
}

/// Renders the comparison for the console: the per-metric table, the
/// notes, and a verdict line.
pub fn render(cmp: &Comparison) -> String {
    let mut out = String::new();
    if cmp.rows.is_empty() {
        out.push_str("no comparable experiments (disjoint rosters?)\n");
    } else {
        let mut t = Table::new(&["experiment", "metric", "old", "new", "delta", "verdict"])
            .align(&[
                Align::Left,
                Align::Left,
                Align::Right,
                Align::Right,
                Align::Right,
                Align::Left,
            ]);
        for row in &cmp.rows {
            t.row(row);
        }
        out.push_str(&t.render());
    }
    for note in &cmp.notes {
        let _ = writeln!(out, "note: {note}");
    }
    if cmp.regressed() {
        let _ = writeln!(out, "\nPERF REGRESSION ({}):", cmp.regressions.len());
        for r in &cmp.regressions {
            let _ = writeln!(out, "  {r}");
        }
    } else {
        let _ = writeln!(out, "\nno perf regressions");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver_bench::BenchEntry;
    use obs::profile::{Phase, PhaseSnapshot};

    fn entry(name: &str, wall_ms: f64, newton: u64, hits: u64, misses: u64) -> BenchEntry {
        let mut phases = PhaseSnapshot::default();
        if newton > 0 {
            phases.ns[Phase::Factor as usize] = 20_000_000;
            phases.calls[Phase::Factor as usize] = newton / 10;
        }
        BenchEntry {
            name: name.to_owned(),
            wall_ms,
            newton_iterations: newton,
            linear_only: newton == 0,
            workers: 1,
            factor_reuse_hits: hits,
            factor_reuse_misses: misses,
            hazards: 0,
            demotions: 0,
            refinement_rounds: 0,
            phases,
        }
    }

    fn doc(entries: &[BenchEntry]) -> String {
        solver_bench::render(entries)
    }

    #[test]
    fn identical_documents_do_not_regress() {
        let text = doc(&[entry("e6c1", 400.0, 10_000, 9_000, 1_000)]);
        let cmp = diff(&text, &text, &Tolerances::default()).unwrap();
        assert!(!cmp.regressed(), "{:?}", cmp.regressions);
        assert!(render(&cmp).contains("no perf regressions"));
    }

    #[test]
    fn wall_clock_growth_beyond_tolerance_regresses() {
        let old = doc(&[entry("e6c1", 400.0, 10_000, 9_000, 1_000)]);
        let slow = doc(&[entry("e6c1", 600.0, 10_000, 9_000, 1_000)]);
        let cmp = diff(&old, &slow, &Tolerances::default()).unwrap();
        assert!(cmp.regressed());
        assert!(cmp.regressions[0].contains("wall_ms"), "{:?}", cmp.regressions);
        // Within tolerance (25 % + 5 ms): fine.
        let ok = doc(&[entry("e6c1", 490.0, 10_000, 9_000, 1_000)]);
        assert!(!diff(&old, &ok, &Tolerances::default()).unwrap().regressed());
        // --counts-only waves the same slowdown through.
        let tol = Tolerances {
            counts_only: true,
            ..Tolerances::default()
        };
        let cmp = diff(&old, &slow, &tol).unwrap();
        assert!(!cmp.regressed(), "{:?}", cmp.regressions);
        assert!(render(&cmp).contains("counts-only"));
    }

    #[test]
    fn tiny_entries_ride_the_absolute_slack() {
        // 0.5 ms → 4 ms is an 8× slowdown but under the 5 ms slack:
        // timing noise on a sub-millisecond experiment, not a signal.
        let old = doc(&[entry("e2", 0.5, 0, 0, 0)]);
        let new = doc(&[entry("e2", 4.0, 0, 0, 0)]);
        assert!(!diff(&old, &new, &Tolerances::default()).unwrap().regressed());
    }

    #[test]
    fn count_growth_is_gated_tightly() {
        let old = doc(&[entry("e6c1", 400.0, 10_000, 9_000, 1_000)]);
        // +3 % Newton iterations rides the 5 % tolerance...
        let ok = doc(&[entry("e6c1", 400.0, 10_300, 9_300, 1_000)]);
        assert!(!diff(&old, &ok, &Tolerances::default()).unwrap().regressed());
        // ...+20 % does not, even with timing unchanged.
        let bad = doc(&[entry("e6c1", 400.0, 12_000, 11_000, 1_000)]);
        let cmp = diff(&old, &bad, &Tolerances::default()).unwrap();
        assert!(cmp.regressed());
        assert!(
            cmp.regressions.iter().any(|r| r.contains("newton_iterations")),
            "{:?}",
            cmp.regressions
        );
    }

    #[test]
    fn reuse_rate_erosion_regresses() {
        let old = doc(&[entry("e6c1", 400.0, 10_000, 9_000, 1_000)]); // 90 %
        let eroded = doc(&[entry("e6c1", 400.0, 10_000, 7_000, 3_000)]); // 70 %
        let cmp = diff(&old, &eroded, &Tolerances::default()).unwrap();
        assert!(cmp.regressed());
        assert!(
            cmp.regressions.iter().any(|r| r.contains("factor_reuse_rate")),
            "{:?}",
            cmp.regressions
        );
        // A 5-point drop rides the 10-point tolerance.
        let mild = doc(&[entry("e6c1", 400.0, 10_000, 8_500, 1_500)]); // 85 %
        assert!(!diff(&old, &mild, &Tolerances::default()).unwrap().regressed());
    }

    #[test]
    fn demotion_rate_growth_regresses() {
        let old = doc(&[entry("e6c1", 400.0, 10_000, 9_000, 1_000)]); // 0 %
        let mut worse = entry("e6c1", 400.0, 10_000, 9_000, 1_000);
        worse.hazards = 150;
        worse.demotions = 150; // 1.5 % of the Newton iterations
        let cmp = diff(&old, &doc(&[worse]), &Tolerances::default()).unwrap();
        assert!(cmp.regressed());
        assert!(
            cmp.regressions.iter().any(|r| r.contains("demotion_rate")),
            "{:?}",
            cmp.regressions
        );
        // A whiff of demotions (0.3 %) rides the 0.5-point tolerance.
        let mut mild = entry("e6c1", 400.0, 10_000, 9_000, 1_000);
        mild.demotions = 30;
        assert!(!diff(&old, &doc(&[mild]), &Tolerances::default())
            .unwrap()
            .regressed());
    }

    #[test]
    fn v3_baseline_skips_the_demotion_gate() {
        // A /3 baseline has no resilience counters; even a demotion-
        // heavy /4 candidate must diff without a demotion_rate row.
        let phases: Vec<String> = Phase::ALL
            .iter()
            .map(|p| {
                // Match the candidate fixture's lu_factor numbers so the
                // only difference between the documents is the counters.
                if *p == Phase::Factor {
                    format!("\"{}\": {{\"ns\": 20000000, \"calls\": 1000}}", p.label())
                } else {
                    format!("\"{}\": {{\"ns\": 0, \"calls\": 0}}", p.label())
                }
            })
            .collect();
        let old = format!(
            "{{\"schema\": \"mixsig.solver-bench/3\", \"experiments\": [\
             {{\"name\": \"e6c1\", \"wall_ms\": 400.0, \
             \"newton_iterations\": 10000, \"linear_only\": false, \
             \"workers\": 1, \"factor_reuse_hits\": 9000, \
             \"factor_reuse_misses\": 1000, \"phases\": {{{}}}}}]}}",
            phases.join(", ")
        );
        let mut new = entry("e6c1", 400.0, 10_000, 9_000, 1_000);
        new.demotions = 500;
        let cmp = diff(&old, &doc(&[new]), &Tolerances::default()).unwrap();
        assert!(!cmp.regressed(), "{:?}", cmp.regressions);
        assert!(
            !cmp.rows.iter().any(|r| r[1] == "demotion_rate"),
            "demotion_rate row emitted against a /3 baseline"
        );
    }

    #[test]
    fn roster_differences_are_notes_not_regressions() {
        let old = doc(&[entry("e1", 10.0, 0, 0, 0)]);
        let new = doc(&[entry("e1", 10.0, 0, 0, 0), entry("e9", 5.0, 0, 0, 0)]);
        let cmp = diff(&old, &new, &Tolerances::default()).unwrap();
        assert!(!cmp.regressed());
        assert!(cmp.notes.iter().any(|n| n.contains("e9")), "{:?}", cmp.notes);
        let back = diff(&new, &old, &Tolerances::default()).unwrap();
        assert!(back.notes.iter().any(|n| n.contains("only in OLD")));
    }

    #[test]
    fn invalid_documents_are_rejected_by_name() {
        let good = doc(&[entry("e1", 10.0, 0, 0, 0)]);
        let err = diff("{not json", &good, &Tolerances::default()).unwrap_err();
        assert!(err.starts_with("OLD:"), "{err}");
        let err = diff(&good, "{\"schema\": \"nope\"}", &Tolerances::default()).unwrap_err();
        assert!(err.starts_with("NEW:"), "{err}");
    }

    #[test]
    fn phase_call_growth_names_the_phase() {
        let old = doc(&[entry("e6c1", 400.0, 10_000, 9_000, 1_000)]);
        let mut worse = entry("e6c1", 400.0, 10_000, 8_000, 2_000);
        worse.phases.calls[Phase::Factor as usize] = 2_000;
        let cmp = diff(&old, &doc(&[worse]), &Tolerances::default()).unwrap();
        assert!(cmp.regressed());
        assert!(
            cmp.regressions
                .iter()
                .any(|r| r.contains("phases.lu_factor.calls")),
            "{:?}",
            cmp.regressions
        );
    }
}
