//! The `--bench-json` sidecar: per-experiment wall-clock and solver
//! effort, written as a small schema-versioned JSON document so CI can
//! track solver-performance drift between commits (the committed
//! `BENCH_solver.json` snapshot at the repository root is one of these).

use obs::json::JsonValue;

/// Schema tag written into every solver-bench document.
pub const SCHEMA: &str = "mixsig.solver-bench/1";

/// One experiment's cost line.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Experiment tag (`e1` … `e8`, `e6c1`, `ablation`, `diverge`).
    pub name: String,
    /// Wall-clock time of the whole experiment in milliseconds.
    pub wall_ms: f64,
    /// Newton iterations the experiment spent (0 for experiments that
    /// never enter the nonlinear solver).
    pub newton_iterations: u64,
}

/// Renders the document. Entries appear in the order given (the order
/// experiments ran); wall-clock values are rounded to microsecond
/// precision so the file diffs readably.
pub fn render(entries: &[BenchEntry]) -> String {
    let mut obj = Vec::new();
    obj.push(("schema".to_owned(), JsonValue::Str(SCHEMA.to_owned())));
    let rows = entries
        .iter()
        .map(|e| {
            JsonValue::Obj(vec![
                ("name".to_owned(), JsonValue::Str(e.name.clone())),
                (
                    "wall_ms".to_owned(),
                    JsonValue::Num((e.wall_ms * 1e3).round() / 1e3),
                ),
                (
                    "newton_iterations".to_owned(),
                    JsonValue::Num(e.newton_iterations as f64),
                ),
            ])
        })
        .collect();
    obj.push(("experiments".to_owned(), JsonValue::Arr(rows)));
    JsonValue::Obj(obj).to_json_pretty()
}

/// Validates a previously written solver-bench document: schema tag,
/// non-empty experiment list, finite wall-clock values.
///
/// # Errors
///
/// Returns a message naming the first structural problem found.
pub fn validate(text: &str) -> Result<usize, String> {
    let parsed = obs::json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    if parsed.get("schema").and_then(JsonValue::as_str) != Some(SCHEMA) {
        return Err(format!("schema is not {SCHEMA}"));
    }
    let entries = parsed
        .get("experiments")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| "experiments array missing".to_owned())?;
    if entries.is_empty() {
        return Err("experiments array is empty".to_owned());
    }
    for (i, e) in entries.iter().enumerate() {
        if e.get("name").and_then(JsonValue::as_str).is_none() {
            return Err(format!("experiments[{i}].name missing"));
        }
        match e.get("wall_ms").and_then(JsonValue::as_f64) {
            Some(w) if w.is_finite() && w >= 0.0 => {}
            _ => return Err(format!("experiments[{i}].wall_ms missing or invalid")),
        }
        if e.get("newton_iterations").and_then(JsonValue::as_f64).is_none() {
            return Err(format!("experiments[{i}].newton_iterations missing"));
        }
    }
    Ok(entries.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entries() -> Vec<BenchEntry> {
        vec![
            BenchEntry {
                name: "e1".to_owned(),
                wall_ms: 12.3456789,
                newton_iterations: 0,
            },
            BenchEntry {
                name: "e6c1".to_owned(),
                wall_ms: 456.7,
                newton_iterations: 12345,
            },
        ]
    }

    #[test]
    fn rendered_document_validates_and_round_trips() {
        let text = render(&entries());
        assert_eq!(validate(&text), Ok(2));
        let parsed = obs::json::parse(&text).unwrap();
        assert_eq!(
            parsed.get("schema").and_then(JsonValue::as_str),
            Some(SCHEMA)
        );
        let rows = parsed.get("experiments").and_then(JsonValue::as_array).unwrap();
        assert_eq!(rows[0].get("name").and_then(JsonValue::as_str), Some("e1"));
        assert_eq!(
            rows[1]
                .get("newton_iterations")
                .and_then(JsonValue::as_f64),
            Some(12345.0)
        );
        // Wall-clock rounded to µs precision.
        assert_eq!(
            rows[0].get("wall_ms").and_then(JsonValue::as_f64),
            Some(12.346)
        );
    }

    #[test]
    fn validation_names_the_failure() {
        assert!(validate("{oops").is_err());
        assert!(validate("{\"schema\": \"wrong\"}").unwrap_err().contains("schema"));
        let no_rows = format!("{{\"schema\": \"{SCHEMA}\", \"experiments\": []}}");
        assert!(validate(&no_rows).unwrap_err().contains("empty"));
    }
}
