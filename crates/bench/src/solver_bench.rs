//! The `--bench-json` sidecar: per-experiment wall-clock, solver effort
//! and phase cost attribution, written as a small schema-versioned JSON
//! document so CI can track solver-performance drift between commits
//! (the committed `BENCH_solver.json` snapshot at the repository root is
//! one of these).
//!
//! Schema `mixsig.solver-bench/2` extends `/1` with three members per
//! experiment:
//!
//! * `linear_only` — true when the experiment never entered the Newton
//!   solver (purely behavioural models), so its `newton_iterations: 0`
//!   is a statement rather than a plumbing gap;
//! * `workers` — the campaign worker count the run used (phase times
//!   are per-thread, so this is the attribution ceiling multiplier);
//! * `phases` — the experiment's solver-phase self-time breakdown, one
//!   `{"ns", "calls"}` object per [`Phase`] label. The key set is the
//!   full phase taxonomy regardless of which phases ran, so documents
//!   diff structurally.
//!
//! Schema `mixsig.solver-bench/3` extends `/2` with the
//! factorisation-reuse economy of the sparse solver core:
//!
//! * `factor_reuse_hits` / `factor_reuse_misses` — how often a Newton
//!   iteration was served by an existing factorisation (cached, stale
//!   modified-Newton, or golden Sherman–Morrison) versus how often one
//!   had to be computed;
//! * the `phases` key set grows to the full 10-phase taxonomy
//!   (`symbolic`, `refactor`, `rank1_update` join the legacy seven).
//!
//! Schema `mixsig.solver-bench/4` extends `/3` with the numerical
//! resilience economy:
//!
//! * `hazards` — total numerical hazards the solver detected (pivot
//!   breakdowns, rank-1 denominators, non-finite iterates, refinement
//!   stalls, advisory growth/conditioning flags);
//! * `demotions` — how often a hazard demoted the solve down the
//!   recovery ladder (stale → refactor → symbolic → dense);
//! * `refinement_rounds` — iterative-refinement rounds spent vetting
//!   reused factorisations at the residual acceptance gate.
//!
//! [`validate`] accepts all four schema versions. For `/2` it checks
//! the legacy seven-phase key set; for `/3`+ the full taxonomy plus the
//! reuse members, and lints the solver-economy invariant directly: an
//! experiment that entered the Newton loop must not have factorised
//! more often than it iterated (`lu_factor.calls ≤
//! newton_iterations`) — if it did, factorisation reuse is not working.
//! The lint survives `/4` unchanged: every demotion-ladder retry
//! consumes one Newton iteration (`continue 'newton`), so even a solve
//! that demotes all the way to dense never factorises more often than
//! it iterates. For `/4` the resilience members must be present and
//! well-formed. Every version ≥ `/2` gets the
//! physically-impossible-attribution lint: phase nanoseconds must fit
//! in `workers` threads of wall-clock.

use obs::json::JsonValue;
use obs::profile::{Phase, PhaseSnapshot};

/// Schema tag written into every new solver-bench document.
pub const SCHEMA: &str = "mixsig.solver-bench/4";

/// The previous schema (full phase taxonomy and reuse counters, no
/// numerical-resilience counters), still accepted by [`validate`].
pub const SCHEMA_V3: &str = "mixsig.solver-bench/3";

/// The seven-phase-taxonomy schema without reuse counters, still
/// accepted by [`validate`].
pub const SCHEMA_V2: &str = "mixsig.solver-bench/2";

/// The original schema, still accepted by [`validate`].
pub const SCHEMA_V1: &str = "mixsig.solver-bench/1";

/// One experiment's cost line.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Experiment tag (`e1` … `e8`, `e6c1`, `ablation`, `diverge`).
    pub name: String,
    /// Wall-clock time of the whole experiment in milliseconds.
    pub wall_ms: f64,
    /// Newton iterations the experiment spent (0 for experiments that
    /// never enter the nonlinear solver).
    pub newton_iterations: u64,
    /// True when the experiment runs no Newton solves at all — its
    /// zero `newton_iterations` is by construction, not a measurement.
    pub linear_only: bool,
    /// Campaign worker threads the run used; bounds how far the phase
    /// totals can legitimately exceed the wall-clock.
    pub workers: usize,
    /// Newton iterations served by an existing factorisation (cached
    /// direct solve, accepted stale modified-Newton step, or golden
    /// Sherman–Morrison update).
    pub factor_reuse_hits: u64,
    /// Newton iterations that had to (re)factorise.
    pub factor_reuse_misses: u64,
    /// Numerical hazards detected across every solve of the experiment
    /// (all `solver.hazard.*` categories summed).
    pub hazards: u64,
    /// Tier demotions the hazards forced (all `solver.demote.*`
    /// rungs summed).
    pub demotions: u64,
    /// Iterative-refinement rounds spent at the residual acceptance
    /// gate when vetting reused factorisations.
    pub refinement_rounds: u64,
    /// Solver-phase self-times attributed to this experiment.
    pub phases: PhaseSnapshot,
}

/// Renders the document. Entries appear in the order given (the order
/// experiments ran); wall-clock values are rounded to microsecond
/// precision so the file diffs readably.
pub fn render(entries: &[BenchEntry]) -> String {
    let mut obj = Vec::new();
    obj.push(("schema".to_owned(), JsonValue::Str(SCHEMA.to_owned())));
    let rows = entries
        .iter()
        .map(|e| {
            let phases = Phase::ALL
                .iter()
                .map(|&phase| {
                    (
                        phase.label().to_owned(),
                        JsonValue::Obj(vec![
                            ("ns".to_owned(), JsonValue::Num(e.phases.ns(phase) as f64)),
                            (
                                "calls".to_owned(),
                                JsonValue::Num(e.phases.calls(phase) as f64),
                            ),
                        ]),
                    )
                })
                .collect();
            JsonValue::Obj(vec![
                ("name".to_owned(), JsonValue::Str(e.name.clone())),
                (
                    "wall_ms".to_owned(),
                    JsonValue::Num((e.wall_ms * 1e3).round() / 1e3),
                ),
                (
                    "newton_iterations".to_owned(),
                    JsonValue::Num(e.newton_iterations as f64),
                ),
                ("linear_only".to_owned(), JsonValue::Bool(e.linear_only)),
                ("workers".to_owned(), JsonValue::Num(e.workers as f64)),
                (
                    "factor_reuse_hits".to_owned(),
                    JsonValue::Num(e.factor_reuse_hits as f64),
                ),
                (
                    "factor_reuse_misses".to_owned(),
                    JsonValue::Num(e.factor_reuse_misses as f64),
                ),
                ("hazards".to_owned(), JsonValue::Num(e.hazards as f64)),
                ("demotions".to_owned(), JsonValue::Num(e.demotions as f64)),
                (
                    "refinement_rounds".to_owned(),
                    JsonValue::Num(e.refinement_rounds as f64),
                ),
                ("phases".to_owned(), JsonValue::Obj(phases)),
            ])
        })
        .collect();
    obj.push(("experiments".to_owned(), JsonValue::Arr(rows)));
    JsonValue::Obj(obj).to_json_pretty()
}

/// Validates a previously written solver-bench document (any accepted
/// schema version): schema tag, non-empty experiment list, finite
/// wall-clock values; for `/2`+ well-formed `linear_only` and `phases`
/// members and the impossible-attribution lint; for `/3`+ the reuse
/// counters and the factorisation-economy lint (`lu_factor.calls ≤
/// newton_iterations` whenever the experiment entered the Newton
/// loop — demotion retries consume an iteration each, so the lint holds
/// even for hazard-heavy runs); for `/4` the numerical-resilience
/// counters (`hazards`, `demotions`, `refinement_rounds`).
///
/// # Errors
///
/// Returns a message naming the first structural problem found.
pub fn validate(text: &str) -> Result<usize, String> {
    let parsed = obs::json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let version = match parsed.get("schema").and_then(JsonValue::as_str) {
        Some(s) if s == SCHEMA => 4,
        Some(s) if s == SCHEMA_V3 => 3,
        Some(s) if s == SCHEMA_V2 => 2,
        Some(s) if s == SCHEMA_V1 => 1,
        _ => {
            return Err(format!(
                "schema is none of {SCHEMA_V1}, {SCHEMA_V2}, {SCHEMA_V3}, {SCHEMA}"
            ))
        }
    };
    let entries = parsed
        .get("experiments")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| "experiments array missing".to_owned())?;
    if entries.is_empty() {
        return Err("experiments array is empty".to_owned());
    }
    for (i, e) in entries.iter().enumerate() {
        if e.get("name").and_then(JsonValue::as_str).is_none() {
            return Err(format!("experiments[{i}].name missing"));
        }
        let wall_ms = match e.get("wall_ms").and_then(JsonValue::as_f64) {
            Some(w) if w.is_finite() && w >= 0.0 => w,
            _ => return Err(format!("experiments[{i}].wall_ms missing or invalid")),
        };
        let newton = match e.get("newton_iterations").and_then(JsonValue::as_f64) {
            Some(n) if n.is_finite() && n >= 0.0 => n,
            _ => return Err(format!("experiments[{i}].newton_iterations missing")),
        };
        if version < 2 {
            continue;
        }
        if e.get("linear_only").and_then(JsonValue::as_bool).is_none() {
            return Err(format!("experiments[{i}].linear_only missing"));
        }
        let workers = match e.get("workers").and_then(JsonValue::as_f64) {
            Some(w) if w.is_finite() && w >= 1.0 => w,
            _ => return Err(format!("experiments[{i}].workers missing or invalid")),
        };
        if version >= 3 {
            for key in ["factor_reuse_hits", "factor_reuse_misses"] {
                match e.get(key).and_then(JsonValue::as_f64) {
                    Some(v) if v.is_finite() && v >= 0.0 => {}
                    _ => return Err(format!("experiments[{i}].{key} missing or invalid")),
                }
            }
        }
        if version >= 4 {
            for key in ["hazards", "demotions", "refinement_rounds"] {
                match e.get(key).and_then(JsonValue::as_f64) {
                    Some(v) if v.is_finite() && v >= 0.0 => {}
                    _ => return Err(format!("experiments[{i}].{key} missing or invalid")),
                }
            }
        }
        // `/2` documents predate the reuse phases: only the legacy
        // seven-phase prefix of the taxonomy is required of them.
        let required = if version >= 3 {
            &Phase::ALL[..]
        } else {
            &Phase::ALL[..Phase::LEGACY_COUNT]
        };
        let phases = e
            .get("phases")
            .ok_or_else(|| format!("experiments[{i}].phases missing"))?;
        let mut total_ns = 0.0;
        let mut lu_factor_calls = 0.0;
        for &phase in required {
            let label = phase.label();
            let entry = phases.get(label).ok_or_else(|| {
                format!("experiments[{i}].phases.{label} missing")
            })?;
            let ns = match entry.get("ns").and_then(JsonValue::as_f64) {
                Some(ns) if ns.is_finite() && ns >= 0.0 => ns,
                _ => return Err(format!("experiments[{i}].phases.{label}.ns invalid")),
            };
            let calls = match entry.get("calls").and_then(JsonValue::as_f64) {
                Some(c) if c.is_finite() && c >= 0.0 => c,
                _ => return Err(format!("experiments[{i}].phases.{label}.calls invalid")),
            };
            if phase == Phase::Factor {
                lu_factor_calls = calls;
            }
            total_ns += ns;
        }
        // Impossible attribution: phase self-times are disjoint slices
        // of per-thread execution, so `workers` threads can attribute
        // at most `workers × wall_ms` between them (modulo the µs
        // rounding of wall_ms).
        if total_ns / 1e6 > wall_ms * workers + 1e-3 {
            return Err(format!(
                "experiments[{i}]: phase total {:.3} ms exceeds wall_ms {wall_ms} \
                 across {workers} worker(s) (impossible attribution)",
                total_ns / 1e6
            ));
        }
        // Factorisation economy: with reuse working, at most one fresh
        // factorisation per Newton iteration — any more means the solver
        // is factorising outside its own iteration accounting.
        if version >= 3 && newton > 0.0 && lu_factor_calls > newton {
            return Err(format!(
                "experiments[{i}]: lu_factor.calls {lu_factor_calls} exceeds \
                 newton_iterations {newton} (factorisation reuse is not engaging)"
            ));
        }
    }
    Ok(entries.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entries() -> Vec<BenchEntry> {
        let mut phases = PhaseSnapshot::default();
        phases.ns[Phase::Factor as usize] = 200_000_000; // 200 ms
        phases.calls[Phase::Factor as usize] = 12_000;
        vec![
            BenchEntry {
                name: "e2".to_owned(),
                wall_ms: 12.3456789,
                newton_iterations: 0,
                linear_only: true,
                workers: 1,
                factor_reuse_hits: 0,
                factor_reuse_misses: 0,
                hazards: 0,
                demotions: 0,
                refinement_rounds: 0,
                phases: PhaseSnapshot::default(),
            },
            BenchEntry {
                name: "e6c1".to_owned(),
                wall_ms: 456.7,
                newton_iterations: 12345,
                linear_only: false,
                workers: 1,
                factor_reuse_hits: 345,
                factor_reuse_misses: 12_000,
                hazards: 7,
                demotions: 3,
                refinement_rounds: 4,
                phases,
            },
        ]
    }

    #[test]
    fn rendered_document_validates_and_round_trips() {
        let text = render(&entries());
        assert_eq!(validate(&text), Ok(2));
        let parsed = obs::json::parse(&text).unwrap();
        assert_eq!(
            parsed.get("schema").and_then(JsonValue::as_str),
            Some(SCHEMA)
        );
        let rows = parsed.get("experiments").and_then(JsonValue::as_array).unwrap();
        assert_eq!(rows[0].get("name").and_then(JsonValue::as_str), Some("e2"));
        assert_eq!(
            rows[1]
                .get("newton_iterations")
                .and_then(JsonValue::as_f64),
            Some(12345.0)
        );
        assert_eq!(
            rows[0].get("linear_only").and_then(JsonValue::as_bool),
            Some(true)
        );
        assert_eq!(
            rows[1].get("factor_reuse_hits").and_then(JsonValue::as_f64),
            Some(345.0)
        );
        assert_eq!(
            rows[1]
                .get("factor_reuse_misses")
                .and_then(JsonValue::as_f64),
            Some(12000.0)
        );
        assert_eq!(rows[1].get("hazards").and_then(JsonValue::as_f64), Some(7.0));
        assert_eq!(
            rows[1].get("demotions").and_then(JsonValue::as_f64),
            Some(3.0)
        );
        assert_eq!(
            rows[1]
                .get("refinement_rounds")
                .and_then(JsonValue::as_f64),
            Some(4.0)
        );
        // Wall-clock rounded to µs precision.
        assert_eq!(
            rows[0].get("wall_ms").and_then(JsonValue::as_f64),
            Some(12.346)
        );
        // Full phase key set even for entries that ran no phases.
        let phases = rows[0].get("phases").unwrap();
        for phase in Phase::ALL {
            assert!(phases.get(phase.label()).is_some(), "{}", phase.label());
        }
        assert_eq!(
            rows[1]
                .get("phases")
                .and_then(|p| p.get("lu_factor"))
                .and_then(|p| p.get("calls"))
                .and_then(JsonValue::as_f64),
            Some(12000.0)
        );
    }

    #[test]
    fn v1_documents_still_validate() {
        let text = format!(
            "{{\"schema\": \"{SCHEMA_V1}\", \"experiments\": [\
             {{\"name\": \"e1\", \"wall_ms\": 5.0, \"newton_iterations\": 0}}]}}"
        );
        assert_eq!(validate(&text), Ok(1));
    }

    #[test]
    fn v2_documents_validate_with_the_legacy_phase_set() {
        // A /2 document carries only the legacy seven phases and no
        // reuse counters; it must keep validating as-is.
        let phases: Vec<String> = Phase::ALL[..Phase::LEGACY_COUNT]
            .iter()
            .map(|p| format!("\"{}\": {{\"ns\": 0, \"calls\": 0}}", p.label()))
            .collect();
        let text = format!(
            "{{\"schema\": \"{SCHEMA_V2}\", \"experiments\": [\
             {{\"name\": \"e1\", \"wall_ms\": 5.0, \"newton_iterations\": 3, \
             \"linear_only\": false, \"workers\": 1, \
             \"phases\": {{{}}}}}]}}",
            phases.join(", ")
        );
        assert_eq!(validate(&text), Ok(1));
    }

    #[test]
    fn v3_documents_validate_without_resilience_counters() {
        // A /3 document carries the full phase taxonomy and the reuse
        // counters but predates the hazard/demotion members; it must
        // keep validating as-is (the committed BENCH_solver.json
        // baseline is one of these).
        let phases: Vec<String> = Phase::ALL
            .iter()
            .map(|p| format!("\"{}\": {{\"ns\": 0, \"calls\": 0}}", p.label()))
            .collect();
        let text = format!(
            "{{\"schema\": \"{SCHEMA_V3}\", \"experiments\": [\
             {{\"name\": \"e1\", \"wall_ms\": 5.0, \"newton_iterations\": 3, \
             \"linear_only\": false, \"workers\": 1, \
             \"factor_reuse_hits\": 2, \"factor_reuse_misses\": 1, \
             \"phases\": {{{}}}}}]}}",
            phases.join(", ")
        );
        assert_eq!(validate(&text), Ok(1));
    }

    #[test]
    fn impossible_attribution_is_flagged() {
        let mut rows = entries();
        // 200 ms of lu_factor inside a 10 ms experiment: impossible.
        rows[1].wall_ms = 10.0;
        let err = validate(&render(&rows)).unwrap_err();
        assert!(err.contains("impossible attribution"), "{err}");
    }

    #[test]
    fn parallel_attribution_is_bounded_by_worker_count() {
        // 200 ms of phase time in a 150 ms experiment: impossible on
        // one thread, fine across two campaign workers.
        let mut rows = entries();
        rows[1].wall_ms = 150.0;
        assert!(validate(&render(&rows)).is_err());
        rows[1].workers = 2;
        assert_eq!(validate(&render(&rows)), Ok(2));
    }

    #[test]
    fn factorising_more_than_iterating_is_flagged() {
        let mut rows = entries();
        // 12 000 factorisations against 11 999 Newton iterations: the
        // solver factorised outside its own iteration accounting.
        rows[1].newton_iterations = 11_999;
        let err = validate(&render(&rows)).unwrap_err();
        assert!(err.contains("reuse is not engaging"), "{err}");
        // Linear-only experiments (newton_iterations 0) are exempt.
        rows[1].newton_iterations = 0;
        assert_eq!(validate(&render(&rows)), Ok(2));
    }

    #[test]
    fn validation_names_the_failure() {
        assert!(validate("{oops").is_err());
        assert!(validate("{\"schema\": \"wrong\"}").unwrap_err().contains("schema"));
        let no_rows = format!("{{\"schema\": \"{SCHEMA}\", \"experiments\": []}}");
        assert!(validate(&no_rows).unwrap_err().contains("empty"));
        // Current-schema entry without the reuse members.
        let missing = format!(
            "{{\"schema\": \"{SCHEMA}\", \"experiments\": [\
             {{\"name\": \"e1\", \"wall_ms\": 5.0, \"newton_iterations\": 0, \
             \"linear_only\": true, \"workers\": 1}}]}}"
        );
        assert!(validate(&missing).unwrap_err().contains("factor_reuse_hits"));
        // /4 entry with reuse counters but no resilience counters.
        let missing = format!(
            "{{\"schema\": \"{SCHEMA}\", \"experiments\": [\
             {{\"name\": \"e1\", \"wall_ms\": 5.0, \"newton_iterations\": 0, \
             \"linear_only\": true, \"workers\": 1, \
             \"factor_reuse_hits\": 0, \"factor_reuse_misses\": 0}}]}}"
        );
        assert!(validate(&missing).unwrap_err().contains("hazards"));
    }
}
