//! E1 bench: regenerates the step-level → integrator-fall-time table
//! (the paper's "Analogue test results") and times the circuit-level
//! measurement.

use criterion::{criterion_group, criterion_main, Criterion};
use msbist_bench::experiments::e1;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_step_response");
    group.sample_size(10);
    group.bench_function("six_level_fall_time_table", |b| {
        b.iter(|| {
            let report = e1::run(20e-6);
            assert!(report.monotone_decreasing());
            report
        })
    });
    group.finish();

    // Print the regenerated table once per bench run.
    println!("\n{}", e1::run(10e-6));
}

criterion_group!(benches, bench);
criterion_main!(benches);
