//! E3 bench: regenerates the digital test results (conversion timing,
//! 10 mV per code) and times the mixed behavioural/gate-level checks.

use criterion::{criterion_group, criterion_main, Criterion};
use msbist_bench::experiments::e3;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_conversion");
    group.bench_function("digital_test_suite", |b| {
        b.iter(|| {
            let report = e3::run();
            assert!(report.passed());
            report
        })
    });
    group.finish();

    println!("\n{}", e3::run());
}

criterion_group!(benches, bench);
criterion_main!(benches);
