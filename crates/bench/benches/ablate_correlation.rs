//! Ablation bench: direct vs FFT convolution crossover, plus the
//! raw-vs-correlation signature quality comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use msbist_bench::experiments::ablation;
use sigproc::convolution::{convolve, convolve_fft};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_correlation");
    for n in [64usize, 256, 1024, 4096] {
        let a: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin()).collect();
        let b_sig: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).cos()).collect();
        group.bench_with_input(BenchmarkId::new("direct", n), &n, |bch, _| {
            bch.iter(|| convolve(&a, &b_sig))
        });
        group.bench_with_input(BenchmarkId::new("fft", n), &n, |bch, _| {
            bch.iter(|| convolve_fft(&a, &b_sig))
        });
    }
    group.finish();

    let s = ablation::signature_kind();
    let (raw_cov, cor_cov, spec_cov) = s.coverage(40.0);
    println!(
        "\nsignature ablation (circuit 1): raw {:.0} %, correlation {:.0} %, spectral {:.0} %",
        raw_cov * 100.0,
        cor_cov * 100.0,
        spec_cov * 100.0
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
