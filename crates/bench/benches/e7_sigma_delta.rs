//! E7 bench: regenerates the sigma-delta SNR-vs-OSR study and times a
//! full sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use msbist_bench::experiments::e7;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_sigma_delta");
    group.bench_function("snr_sweep", |b| {
        b.iter(|| {
            let report = e7::run(0.1);
            assert!(report.db_per_octave() > 5.0);
            report
        })
    });
    group.finish();

    println!("\n{}", e7::run(0.1));
}

criterion_group!(benches, bench);
criterion_main!(benches);
