//! Ablation bench: the transistor-budget accounting of the BIST macros
//! against their gross-fault catch rate.

use criterion::{criterion_group, criterion_main, Criterion};
use msbist_bench::experiments::ablation;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_bist_overhead");
    group.bench_function("gross_fault_screen", |b| {
        b.iter(|| {
            let a = ablation::bist_overhead();
            assert!(a.catch_rate() >= 0.75);
            a
        })
    });
    group.finish();

    let a = ablation::bist_overhead();
    println!(
        "\noverhead ablation: {} test transistors ({:.0} % of macro), catch rate {:.0} %",
        a.budget.test_total(),
        a.budget.overhead_fraction() * 100.0,
        a.catch_rate() * 100.0
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
