//! Ablation bench: backward Euler vs trapezoidal integration on the
//! switching-heavy SC integrator — accuracy printed, cost timed.

use criterion::{criterion_group, criterion_main, Criterion};
use msbist_bench::experiments::ablation;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_integration");
    group.sample_size(10);
    group.bench_function("sc_integrator_both_rules", |b| {
        b.iter(|| ablation::integration_rule(100e-9))
    });
    group.finish();

    let a = ablation::integration_rule(50e-9);
    println!(
        "\nintegration ablation: BE err {:.2} mV / {} steps, trap err {:.2} mV / {} steps",
        a.backward_euler_err * 1e3,
        a.backward_euler_steps,
        a.trapezoidal_err * 1e3,
        a.trapezoidal_steps
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
