//! E5 bench: regenerates Figure 2 (per-code DNL) and the full static
//! characterisation, and times the transition-level sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use msbist_bench::experiments::e5;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_characterisation");
    group.sample_size(20);
    group.bench_function("characterise_100_codes", |b| {
        b.iter(|| {
            let report = e5::run(100);
            assert!(!report.spec.dnl_ok); // the paper's macro exceeds DNL spec
            report
        })
    });
    group.finish();

    println!("\n{}", e5::run(100));
}

criterion_group!(benches, bench);
criterion_main!(benches);
