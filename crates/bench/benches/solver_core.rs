//! Solver-core bench: dense vs sparse LU factor+solve on MNA-style
//! conductance matrices across the circuit sizes the test macros
//! actually produce (8) up to the scale where dense O(n³) becomes
//! untenable (512). The sparse core replays the dense pivot order, so
//! the two backends produce bit-identical solutions — this bench
//! measures the *cost* gap, and the assertion inside each iteration
//! keeps the comparison honest.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use linsys::matrix::{Lu, Matrix};
use linsys::sparse::{SparseLu, SparseMatrix, SparseStructure, SparseWorkspace};

/// Node counts swept: a small macro, a board-level block, and two
/// campaign-scale sizes.
const SIZES: [usize; 4] = [8, 32, 128, 512];

/// An MNA-style grounded conductance network: every node leaks to
/// ground (diagonal dominance ⇒ invertibility) and couples to a few
/// deterministic "neighbour" nodes, giving the ~4 entries/row sparsity
/// a real netlist stamps.
struct MnaFixture {
    n: usize,
    branches: Vec<(usize, usize, f64)>,
    rhs: Vec<f64>,
}

impl MnaFixture {
    fn new(n: usize) -> Self {
        // Deterministic pseudo-random conductances (xorshift), so the
        // bench is reproducible without a random-number dependency.
        let mut state = 0x9e3779b97f4a7c15u64 ^ n as u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            // Map to a conductance in [0.1, 10) — a 100Ω–10kΩ resistor.
            0.1 + (state >> 11) as f64 / (1u64 << 53) as f64 * 9.9
        };
        let mut branches = Vec::new();
        for a in 0..n {
            // Chain + skip links: roughly the connectivity of a ladder
            // network with occasional bridges.
            branches.push((a, (a + 1) % n, next()));
            if a % 5 == 0 {
                branches.push((a, (a + 7) % n, next()));
            }
        }
        branches.retain(|&(a, b, _)| a != b);
        let rhs = (0..n).map(|_| next()).collect();
        MnaFixture { n, branches, rhs }
    }

    fn stamp(&self, mut add: impl FnMut(usize, usize, f64)) {
        for k in 0..self.n {
            add(k, k, 1e-3); // ground leak
        }
        for &(a, b, g) in &self.branches {
            add(a, a, g);
            add(b, b, g);
            add(a, b, -g);
            add(b, a, -g);
        }
    }

    fn dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.n, self.n);
        self.stamp(|r, c, v| m.add(r, c, v));
        m
    }

    fn structure(&self) -> Arc<SparseStructure> {
        let mut pos: Vec<(usize, usize)> = (0..self.n).map(|k| (k, k)).collect();
        for &(a, b, _) in &self.branches {
            pos.extend([(a, a), (b, b), (a, b), (b, a)]);
        }
        SparseStructure::from_positions(self.n, &pos)
    }

    fn sparse(&self) -> SparseMatrix {
        let mut m = SparseMatrix::zeros(self.structure());
        self.stamp(|r, c, v| m.add(r, c, v));
        m
    }
}

fn bench(c: &mut Criterion) {
    for n in SIZES {
        let fixture = MnaFixture::new(n);
        let dense = fixture.dense();
        let sparse = fixture.sparse();

        // Cross-check once per size: the backends must agree bit for
        // bit, or the speed comparison is comparing different answers.
        let xd = Lu::factor(&dense).expect("dominant").solve(&fixture.rhs);
        let xs = SparseLu::factor(&sparse)
            .expect("dominant")
            .solve(&fixture.rhs);
        assert!(
            xd.iter().zip(&xs).all(|(d, s)| d.to_bits() == s.to_bits()),
            "backends disagree at n={n}"
        );

        let name = format!("solver_core_n{n}");
        let mut group = c.benchmark_group(&name);
        // Dense factorisation is O(n³); keep the large sizes affordable.
        group.sample_size(if n >= 128 { 10 } else { 30 });

        group.bench_function("dense_factor_solve", |b| {
            let mut x = vec![0.0; n];
            b.iter(|| {
                let lu = Lu::factor(&dense).expect("dominant");
                lu.solve_into(&fixture.rhs, &mut x);
                x[0]
            })
        });

        group.bench_function("sparse_factor_solve", |b| {
            let mut x = vec![0.0; n];
            b.iter(|| {
                let lu = SparseLu::factor(&sparse).expect("dominant");
                lu.solve_into(&fixture.rhs, &mut x);
                x[0]
            })
        });

        // The campaign hot path: symbolic structure and allocations
        // amortised, numeric-only refactorisation each Newton iteration.
        group.bench_function("sparse_refactor_solve", |b| {
            let mut ws = SparseWorkspace::new(n);
            let mut lu = SparseLu::factor(&sparse).expect("dominant");
            let mut x = vec![0.0; n];
            b.iter(|| {
                lu.refactor(&sparse, &mut ws).expect("dominant");
                lu.solve_into(&fixture.rhs, &mut x);
                x[0]
            })
        });

        // Back-substitution alone — what a reused factorisation pays.
        group.bench_function("sparse_solve_only", |b| {
            let lu = SparseLu::factor(&sparse).expect("dominant");
            let mut x = vec![0.0; n];
            b.iter(|| {
                lu.solve_into(&fixture.rhs, &mut x);
                x[0]
            })
        });

        group.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
