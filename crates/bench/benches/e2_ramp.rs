//! E2 bench: regenerates the ramp test table and the gain-masking
//! demonstration.

use criterion::{criterion_group, criterion_main, Criterion};
use msbist_bench::experiments::e2;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_ramp");
    group.bench_function("ramp_test_with_masking", |b| {
        b.iter(|| {
            let report = e2::run(0.05);
            assert_eq!(report.masked_deviations(), 0);
            report
        })
    });
    group.finish();

    println!("\n{}", e2::run(0.05));
}

criterion_group!(benches, bench);
criterion_main!(benches);
