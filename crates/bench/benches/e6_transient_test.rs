//! E6 bench: regenerates Figure 4 (detection instances per faulty
//! circuit). The timed portion covers circuit 1's 16-fault correlation
//! campaign; the full three-circuit figure is printed once.

use criterion::{criterion_group, criterion_main, Criterion};
use msbist_bench::experiments::e6;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_transient_test");
    group.sample_size(10);
    group.bench_function("circuit1_correlation_campaign", |b| {
        b.iter(|| {
            let report = e6::run_circuit1_only();
            assert_eq!(report.correlation.circuit(1).len(), 16);
            report
        })
    });
    group.finish();

    println!("\n{}", e6::run());
}

criterion_group!(benches, bench);
criterion_main!(benches);
