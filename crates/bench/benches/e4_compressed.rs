//! E4 bench: regenerates the compressed-test batch table (10 devices,
//! all passing) and times a full batch screening.

use criterion::{criterion_group, criterion_main, Criterion};
use msbist_bench::experiments::e4;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_compressed");
    group.bench_function("batch_of_ten_screening", |b| {
        b.iter(|| {
            let report = e4::run(10, 1996);
            assert!(report.all_passed());
            report
        })
    });
    group.finish();

    println!("\n{}", e4::run(10, 1996));
}

criterion_group!(benches, bench);
criterion_main!(benches);
