//! Property tests for the cost-attribution layer: Chrome-trace JSON
//! escaping round-trips, and the [`PhaseProfiler`]'s accounting
//! invariants (self-times sum to no more than the enclosing wall-clock,
//! nesting never double-counts, snapshot arithmetic is consistent).

use std::time::Instant;

use obs::json::{parse, JsonValue};
use obs::profile::{Phase, PhaseProfiler, PhaseSnapshot};
use obs::trace::{render_trace, validate_trace, TraceEvent};
use proptest::prelude::*;

/// Picks a phase from an arbitrary byte.
fn phase_of(byte: u8) -> Phase {
    Phase::ALL[byte as usize % Phase::COUNT]
}

/// A little non-trivial work so spans have measurable extent without
/// sleeping (the assertions below never depend on the amount).
fn spin() -> u64 {
    let mut acc = 0u64;
    for i in 0..100 {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
    }
    acc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn trace_text_round_trips_through_json(
        (name, value, ts, dur) in (
            "[ -~\\n\\t]{0,40}",
            "[ -~\\n\\t]{0,40}",
            0.0..1e9,
            0.0..1e6,
        ),
    ) {
        let events = vec![
            TraceEvent::thread_name(3, name.clone()),
            TraceEvent::complete(name.clone(), ts, dur, 3)
                .cat("fault")
                .arg("detail", JsonValue::Str(value.clone())),
        ];
        let text = render_trace(&events);
        // Whatever characters the name contained — quotes, backslashes,
        // control characters — the rendered document stays valid.
        prop_assert_eq!(validate_trace(&text).map_err(TestCaseError::Fail)?, 2);
        let doc = parse(&text).map_err(|e| TestCaseError::Fail(format!("reparse: {e}")))?;
        let rendered = doc.get("traceEvents").unwrap().as_array().unwrap();
        prop_assert_eq!(rendered[1].get("name").and_then(JsonValue::as_str), Some(name.as_str()));
        prop_assert_eq!(
            rendered[1].get("args").and_then(|a| a.get("detail")).and_then(JsonValue::as_str),
            Some(value.as_str())
        );
        prop_assert_eq!(
            rendered[0].get("args").and_then(|a| a.get("name")).and_then(JsonValue::as_str),
            Some(name.as_str())
        );
        let got_dur = rendered[1].get("dur").and_then(JsonValue::as_f64).unwrap();
        prop_assert!((got_dur - dur).abs() <= 1e-9 * dur.abs().max(1.0));
    }

    #[test]
    fn nested_self_times_never_exceed_the_enclosing_wall(
        pairs in collection::vec((0u8..255, 0u8..255), 0..12),
    ) {
        let profiler = PhaseProfiler::new();
        let started = Instant::now();
        let mut sink = 0u64;
        for &(outer, inner) in &pairs {
            let _outer = profiler.enter(phase_of(outer));
            sink ^= spin();
            {
                let _inner = profiler.enter(phase_of(inner));
                sink ^= spin();
            }
        }
        let wall_ns = started.elapsed().as_nanos() as u64;
        let snapshot = profiler.snapshot();
        // Self-time attribution: a nested guard's elapsed time is
        // subtracted from its parent, so the phase totals partition the
        // real wall-clock — they can never sum past it, no matter how
        // spans nest (including a phase nested inside itself).
        prop_assert!(
            snapshot.total_ns() <= wall_ns,
            "attributed {} ns inside {} ns of wall time (sink {sink})",
            snapshot.total_ns(),
            wall_ns
        );
        // Every guard is one call, attributed to its own phase.
        let mut calls = [0u64; Phase::COUNT];
        for &(outer, inner) in &pairs {
            calls[phase_of(outer) as usize] += 1;
            calls[phase_of(inner) as usize] += 1;
        }
        prop_assert_eq!(snapshot.calls, calls);
    }

    #[test]
    fn snapshot_arithmetic_is_consistent(
        (a_ns, b_ns) in (
            collection::vec(0u64..1_000_000, Phase::COUNT),
            collection::vec(0u64..1_000_000, Phase::COUNT),
        ),
    ) {
        let mut a = PhaseSnapshot::default();
        let mut b = PhaseSnapshot::default();
        for (i, &phase) in Phase::ALL.iter().enumerate() {
            a.ns[phase as usize] = a_ns[i];
            a.calls[phase as usize] = a_ns[i] / 7;
            b.ns[phase as usize] = b_ns[i];
            b.calls[phase as usize] = b_ns[i] / 3;
        }
        let sum = a + b;
        prop_assert_eq!(sum.total_ns(), a.total_ns() + b.total_ns());
        // Subtracting one addend gives back the other, field by field.
        prop_assert_eq!(sum.saturating_sub(&b), a);
        prop_assert_eq!(sum.saturating_sub(&a), b);
        // Saturation: subtracting more than is there floors at zero.
        let floored = a.saturating_sub(&sum);
        prop_assert!(floored.is_empty() || floored.total_ns() == 0);
        // Accumulating a snapshot into a profiler and reading it back
        // is lossless.
        let profiler = PhaseProfiler::new();
        profiler.add_snapshot(&a);
        profiler.add_snapshot(&b);
        prop_assert_eq!(profiler.snapshot(), sum);
    }
}

/// A scripted deep-nesting check kept outside `proptest!` for a
/// readable failure: with every phase open at once, each level's
/// self-time excludes all its descendants.
#[test]
fn deep_nesting_attributes_each_level_once() {
    let profiler = PhaseProfiler::new();
    let started = Instant::now();
    {
        let _a = profiler.enter(Phase::StepControl);
        let _b = profiler.enter(Phase::DcSolve);
        let _c = profiler.enter(Phase::Stamp);
        let _d = profiler.enter(Phase::DeviceEval);
        let _e = profiler.enter(Phase::Symbolic);
        let _f = profiler.enter(Phase::Factor);
        let _g = profiler.enter(Phase::Refactor);
        let _h = profiler.enter(Phase::Rank1Update);
        let _i = profiler.enter(Phase::BackSubstitute);
        let _j = profiler.enter(Phase::Residual);
        spin();
    }
    let wall_ns = started.elapsed().as_nanos() as u64;
    let snapshot = profiler.snapshot();
    assert!(snapshot.total_ns() <= wall_ns);
    for phase in Phase::ALL {
        assert_eq!(snapshot.calls(phase), 1, "{}", phase.label());
    }
}
