//! Property tests for the live-telemetry layer: campaign-status
//! snapshots survive a JSON round trip field for field, atomic writes
//! always leave a readable file behind, and the windowed time-series
//! derivations respect their rate/EWMA invariants under arbitrary
//! monotone observation streams.

use obs::status::{parse_status, read_status, write_atomic, CampaignStatus, WorkerLane};
use obs::timeseries::{Ewma, WindowedCounter};
use proptest::prelude::*;

/// A structurally valid snapshot: outcome counts partition `done`,
/// `done` never exceeds `total`, and the optional fields flip on and
/// off with the inputs.
#[allow(clippy::too_many_arguments)]
fn status_of(
    label: String,
    total: u64,
    done_frac: (u64, u64, u64),
    rates: (f64, f64),
    eta: Option<f64>,
    journal: Option<String>,
    stall: Option<f64>,
    lanes: Vec<(u64, Option<u64>, bool)>,
) -> CampaignStatus {
    let (detected, undetected, failed) = done_frac;
    let done = detected + undetected + failed;
    let total = total.max(done);
    CampaignStatus {
        label,
        state: if done == total { "complete" } else { "running" }.to_owned(),
        total,
        done,
        replayed: detected.min(done),
        detected,
        undetected,
        failed,
        elapsed_ms: rates.0 * 100.0,
        faults_per_sec: rates.0,
        ewma_faults_per_sec: rates.1,
        eta_ms: eta,
        counters: vec![
            ("newton_iterations".to_owned(), detected * 13 + 1),
            ("heartbeat_drops".to_owned(), failed),
        ],
        phases: vec![("lu_factor".to_owned(), detected * 1000, detected)],
        workers: lanes
            .into_iter()
            .enumerate()
            .map(|(i, (completed, fault, stalled))| WorkerLane {
                lane: i as u64,
                fault,
                fault_name: fault.map(|f| format!("fault-{f}")),
                busy_ms: completed as f64 * 7.5,
                heartbeat_age_ms: if stalled { 9_000.0 } else { 10.0 },
                completed,
                stalled,
                hot_phase: stalled.then(|| "newton".to_owned()),
            })
            .collect(),
        journal,
        stall_after_ms: stall,
        updated_at_ms: rates.0 * 1e3,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn snapshots_round_trip_through_json(
        label in "[a-z0-9._-]{1,24}",
        total in 0u64..10_000,
        done_frac in (0u64..1_000, 0u64..1_000, 0u64..1_000),
        rates in (0.0f64..1e4, 0.0f64..1e4),
        eta in (any::<bool>(), 0.0f64..1e7).prop_map(|(s, v)| s.then_some(v)),
        journal in (any::<bool>(), "[ -~]{0,32}").prop_map(|(s, v)| s.then_some(v)),
        stall in (any::<bool>(), 1.0f64..1e5).prop_map(|(s, v)| s.then_some(v)),
        lanes in collection::vec(
            (
                0u64..500,
                (any::<bool>(), 0u64..500).prop_map(|(s, v)| s.then_some(v)),
                any::<bool>(),
            ),
            0..6,
        ),
    ) {
        let status = status_of(label, total, done_frac, rates, eta, journal, stall, lanes);
        let text = status.to_json().to_json_pretty();
        let back = parse_status(&text).map_err(TestCaseError::Fail)?;
        // Every field — including worker lanes and optional members —
        // comes back exactly; the derived views agree with it.
        prop_assert_eq!(&back, &status);
        prop_assert_eq!(back.remaining(), status.total - status.done);
        prop_assert_eq!(back.is_terminal(), status.state != "running");
        // Compact rendering parses to the same snapshot too.
        prop_assert_eq!(parse_status(&status.to_json().to_json()).map_err(TestCaseError::Fail)?, status);
    }

    #[test]
    fn atomic_writes_always_read_back(
        total in 1u64..100,
        done in 0u64..100,
        case in 0usize..1_000_000,
    ) {
        let done = done.min(total);
        let status = status_of(
            format!("atomic-{case}"),
            total,
            (done, 0, 0),
            (1.0, 1.0),
            None,
            None,
            None,
            vec![(done, None, false)],
        );
        let dir = std::env::temp_dir().join("obs-status-props");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("status-{case}.json"));
        write_atomic(&path, &status).map_err(|e| TestCaseError::Fail(e.to_string()))?;
        let back = read_status(&path)
            .map_err(|e| TestCaseError::Fail(e.to_string()))?
            .expect("written snapshot reads back");
        prop_assert_eq!(back, status);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn windowed_counters_respect_monotone_totals(
        increments in collection::vec((1.0f64..1e3, 0.0f64..50.0), 1..64),
    ) {
        let mut counter = WindowedCounter::with_capacity(16, 0.3);
        let mut t = 0.0f64;
        let mut total = 0.0f64;
        for &(dt, dv) in &increments {
            t += dt;
            total += dv;
            counter.observe(t, total);
        }
        // The reported total is exactly the last observation.
        prop_assert_eq!(counter.total(), Some(total));
        // A monotone counter over advancing timestamps can never show a
        // negative rate, windowed or smoothed.
        if let Some(rate) = counter.rate_per_sec() {
            prop_assert!(rate >= 0.0, "windowed rate {rate}");
        }
        if increments.len() >= 2 {
            let ewma = counter.ewma_per_sec().expect("two advancing samples smooth");
            prop_assert!(ewma >= 0.0, "ewma rate {ewma}");
        }
        // The window never exceeds its capacity.
        prop_assert!(counter.series().len() <= 16);
        prop_assert_eq!(counter.series().total_pushed(), increments.len() as u64);
    }

    #[test]
    fn ewma_stays_within_the_observed_range(
        alpha in 0.01f64..1.0,
        values in collection::vec(-1e6f64..1e6, 1..64),
    ) {
        let mut e = Ewma::new(alpha);
        for &v in &values {
            e.update(v);
        }
        let (min, max) = values
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| (lo.min(v), hi.max(v)));
        let got = e.value().expect("seeded by the first observation");
        // A convex combination of observations can never escape their
        // range (tiny slack for accumulated rounding).
        let slack = 1e-9 * max.abs().max(min.abs()).max(1.0);
        prop_assert!(got >= min - slack && got <= max + slack, "{got} outside [{min}, {max}]");
    }
}
