//! Property tests for the journal append loop under injected I/O
//! faults.
//!
//! The sink here is an in-memory file with an explicit *synced* prefix:
//! `sync` advances a watermark, and the crash view — what a reader
//! would find after power loss — is exactly the bytes below it. The
//! chaos layer (`obs::chaos::FaultySink`) injects seeded write, sync
//! and reopen failures plus short writes, and the properties assert the
//! storage invariants the campaign engine relies on:
//!
//! 1. **Acked never lost**: every record `append` returned `Ok` for
//!    parses back out of the crash view, in order, with no torn tail.
//! 2. **Interior never corrupted**: the full (unsynced) buffer parses
//!    as the acked records plus at most one trailing unacked record or
//!    torn fragment — never a mid-file parse error.
//! 3. **Determinism**: the same plan against the same record sequence
//!    produces byte-identical storage and identical ack results.

use std::io;
use std::path::Path;
use std::sync::{Arc, Mutex};

use obs::chaos::{FaultPlan, FaultySink};
use obs::journal::{parse_journal, JournalSink, JournalWriter, RetryPolicy};
use obs::json::JsonValue;
use proptest::prelude::*;

/// Shared in-memory file state: the byte buffer plus the fsync
/// watermark. The crash view is `buf[..synced]`.
#[derive(Debug, Default)]
struct MemState {
    buf: Vec<u8>,
    synced: usize,
}

/// An in-memory [`JournalSink`] whose state outlives the writer, so
/// tests can inspect the crash view after the writer is dropped.
#[derive(Debug)]
struct MemSink(Arc<Mutex<MemState>>);

impl JournalSink for MemSink {
    fn write(&mut self, buf: &[u8]) -> io::Result<()> {
        self.0.lock().unwrap().buf.extend_from_slice(buf);
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        let mut state = self.0.lock().unwrap();
        state.synced = state.buf.len();
        Ok(())
    }

    fn reopen(&mut self, truncate_to: u64) -> io::Result<()> {
        let mut state = self.0.lock().unwrap();
        state.buf.truncate(truncate_to as usize);
        state.synced = state.synced.min(state.buf.len());
        Ok(())
    }
}

fn record(n: u64) -> JsonValue {
    let mut obj = JsonValue::object();
    obj.push("record", JsonValue::Str("chaos".into()));
    obj.push("n", JsonValue::Num(n as f64));
    obj
}

/// Drives `count` appends through a chaotic writer built from `plan`.
/// Returns the final state and which record indices were acked.
fn drive(plan: FaultPlan, count: u64, attempts: u32) -> (Arc<Mutex<MemState>>, Vec<u64>) {
    let state = Arc::new(Mutex::new(MemState::default()));
    let sink = FaultySink::new(Box::new(MemSink(Arc::clone(&state))), plan);
    let retry = RetryPolicy::attempts(attempts).with_sleep(|_| {});
    let mut writer = JournalWriter::with_sink(Box::new(sink), Path::new("mem.jsonl"), 0, retry);
    let mut acked = Vec::new();
    for n in 0..count {
        if writer.append(&record(n)).is_ok() {
            acked.push(n);
        }
    }
    (state, acked)
}

/// A varied plan: seeded write/sync noise, one scripted persistent-ish
/// sync window, and a couple of short writes.
fn plan_for(seed: u64, p_write: f64, p_sync: f64, with_short: bool) -> FaultPlan {
    let mut plan = FaultPlan::seeded(seed, p_write, p_sync);
    if with_short {
        plan.short_writes.push((seed % 7, (seed % 11) as usize));
        plan.short_writes.push((seed % 13 + 4, 1));
    }
    plan
}

fn parsed_ns(text: &str) -> Result<Vec<u64>, String> {
    let contents = parse_journal(text)?;
    Ok(contents
        .records
        .iter()
        .map(|r| r.get("n").and_then(|v| v.as_f64()).expect("n field") as u64)
        .collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn acked_records_survive_in_the_crash_view(
        (seed, pw, ps, attempts) in (0u64..10_000, 0u32..45, 0u32..45, 1u32..5),
    ) {
        let plan = plan_for(seed, pw as f64 / 100.0, ps as f64 / 100.0, true);
        let (state, acked) = drive(plan, 24, attempts);
        let state = state.lock().unwrap();
        let crash_view = String::from_utf8(state.buf[..state.synced].to_vec()).unwrap();
        let ns = parsed_ns(&crash_view)
            .map_err(|e| TestCaseError::Fail(format!("crash view corrupt: {e}")))?;
        // Invariant 1: exactly the acked records, in order. The synced
        // watermark only ever advances at a committed record boundary,
        // so the crash view cannot even have a torn tail.
        prop_assert_eq!(&ns, &acked);
    }

    #[test]
    fn full_buffer_is_acked_plus_at_most_one_unacked_suffix(
        (seed, pw, ps, attempts) in (0u64..10_000, 0u32..45, 0u32..45, 1u32..5),
    ) {
        let plan = plan_for(seed, pw as f64 / 100.0, ps as f64 / 100.0, true);
        let (state, acked) = drive(plan, 24, attempts);
        let state = state.lock().unwrap();
        let full = String::from_utf8(state.buf.clone()).unwrap();
        // Invariant 2: parsing the whole buffer never hits interior
        // corruption — at worst a torn fragment or one trailing record
        // whose fsync failed after the bytes landed.
        let ns = parsed_ns(&full)
            .map_err(|e| TestCaseError::Fail(format!("interior corruption: {e}")))?;
        prop_assert!(
            ns.len() >= acked.len() && ns.len() <= acked.len() + 1,
            "unsynced buffer has {} records, {} acked",
            ns.len(),
            acked.len()
        );
        prop_assert_eq!(&ns[..acked.len()], &acked);
    }

    #[test]
    fn same_plan_same_sequence_is_byte_identical(
        (seed, pw, ps) in (0u64..10_000, 0u32..45, 0u32..45),
    ) {
        let plan = plan_for(seed, pw as f64 / 100.0, ps as f64 / 100.0, false);
        let (state_a, acked_a) = drive(plan.clone(), 16, 3);
        let (state_b, acked_b) = drive(plan, 16, 3);
        // Invariant 3: chaos is reproducible — identical storage bytes
        // and identical ack outcomes on every run.
        prop_assert_eq!(&acked_a, &acked_b);
        prop_assert_eq!(&state_a.lock().unwrap().buf, &state_b.lock().unwrap().buf);
    }
}

/// A scripted (non-random) end-to-end check kept outside `proptest!`
/// for a readable failure: persistent write failure in a window, then
/// recovery once the window passes.
#[test]
fn bounded_write_outage_degrades_then_recovers() {
    let plan = FaultPlan::parse("write@2..8").unwrap();
    let (state, acked) = drive(plan, 10, 2);
    // Each failed append burns write indices, so the exact set of
    // dropped records depends on the retry schedule; assert the
    // invariants instead: some middle records were dropped, the tail
    // recovered once the window passed, and the file holds exactly the
    // acked set.
    assert!(acked.len() < 10, "the outage must drop something");
    assert!(acked.contains(&0) && acked.contains(&1), "pre-outage records acked");
    assert!(acked.contains(&9), "post-outage records acked");
    let state = state.lock().unwrap();
    let crash_view = String::from_utf8(state.buf[..state.synced].to_vec()).unwrap();
    assert_eq!(parsed_ns(&crash_view).unwrap(), acked);
}
