//! Append-only JSONL journals: a durable line-record writer and a
//! truncation-tolerant reader.
//!
//! A journal is the crash-safety primitive of the workspace: one JSON
//! object per line, appended and fsync'd record by record, so whatever
//! survives a hard kill (power loss, `kill -9`, OOM) is a prefix of the
//! logical record stream plus at most one torn trailing line. The
//! reader accepts exactly that shape — every complete line must parse
//! as a JSON object, while a final line that is unterminated or fails
//! to parse is silently dropped as torn. Corruption anywhere *before*
//! the last line is an error, not something to paper over: it means the
//! file was edited or the filesystem lied, and resuming from it would
//! silently lose records.
//!
//! Record semantics (schemas, replay, merging) belong to the caller;
//! this module only guarantees durability and torn-tail tolerance.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::json::{self, JsonValue};

/// A durable append-only JSONL writer.
///
/// Every [`JournalWriter::append`] writes one compact JSON line and
/// fsyncs (`sync_data`) before returning, so a record that `append`
/// reported as written survives any subsequent crash. This is the
/// expensive end of the trade: a campaign journal appends once per
/// completed fault, where an fsync is noise next to the seconds of
/// solver work it checkpoints.
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
    path: PathBuf,
}

impl JournalWriter {
    /// Opens `path` for appending, creating it if missing. Existing
    /// records are preserved — resume depends on that.
    ///
    /// If the file ends in a torn (unterminated) line — the signature
    /// of a hard kill mid-append — the torn bytes are truncated away
    /// first. Appending after them verbatim would fuse the fragment
    /// with the next record into one corrupt *interior* line, which
    /// readers rightly reject; trimming back to the last newline
    /// restores the every-line-terminated invariant instead.
    ///
    /// # Errors
    ///
    /// Any I/O error opening, scanning or truncating the file.
    pub fn append_to(path: &Path) -> std::io::Result<Self> {
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(path)?;
        let keep = last_terminated_offset(&mut file)?;
        file.set_len(keep)?;
        file.seek(SeekFrom::Start(keep))?;
        Ok(JournalWriter {
            file,
            path: path.to_owned(),
        })
    }

    /// Truncates `path` (discarding any previous journal) and opens it
    /// for appending — the fresh-run counterpart of
    /// [`JournalWriter::append_to`].
    ///
    /// # Errors
    ///
    /// Any I/O error opening the file.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        Ok(JournalWriter {
            file,
            path: path.to_owned(),
        })
    }

    /// Appends one record as a compact JSON line and fsyncs it to disk.
    ///
    /// # Errors
    ///
    /// Any I/O error writing or syncing. After an error the journal
    /// may end in a torn line; readers tolerate that.
    pub fn append(&mut self, record: &JsonValue) -> std::io::Result<()> {
        let mut line = record.to_json();
        line.push('\n');
        self.file.write_all(line.as_bytes())?;
        self.file.sync_data()
    }

    /// The path this journal writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Byte offset just past the last `\n` in `file` (0 when it has none):
/// the length the file must be truncated to so that every surviving
/// line is newline-terminated.
fn last_terminated_offset(file: &mut File) -> std::io::Result<u64> {
    file.seek(SeekFrom::Start(0))?;
    let mut pos: u64 = 0;
    let mut keep: u64 = 0;
    let mut buf = [0u8; 8192];
    loop {
        let n = file.read(&mut buf)?;
        if n == 0 {
            return Ok(keep);
        }
        for (i, &b) in buf[..n].iter().enumerate() {
            if b == b'\n' {
                keep = pos + i as u64 + 1;
            }
        }
        pos += n as u64;
    }
}

/// A non-durable JSONL writer for tests and low-stakes streams: same
/// format as [`JournalWriter`], buffered, no fsync. Records are flushed
/// on [`BufferedJournalWriter::flush`] and drop.
#[derive(Debug)]
pub struct BufferedJournalWriter {
    out: BufWriter<File>,
}

impl BufferedJournalWriter {
    /// Creates (truncating) `path` for buffered JSONL writing.
    ///
    /// # Errors
    ///
    /// Any I/O error opening the file.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(BufferedJournalWriter {
            out: BufWriter::new(file),
        })
    }

    /// Appends one record as a compact JSON line (buffered).
    ///
    /// # Errors
    ///
    /// Any I/O error writing.
    pub fn append(&mut self, record: &JsonValue) -> std::io::Result<()> {
        let mut line = record.to_json();
        line.push('\n');
        self.out.write_all(line.as_bytes())
    }

    /// Flushes buffered records to the OS.
    ///
    /// # Errors
    ///
    /// Any I/O error flushing.
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.out.flush()
    }
}

/// What [`read_journal`] found on disk.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalContents {
    /// Every complete, parsed record, in file order.
    pub records: Vec<JsonValue>,
    /// True when the file ended in a torn line (unterminated or
    /// unparseable) that was dropped — the signature of a hard kill
    /// mid-append.
    pub torn_tail: bool,
}

/// Reads a JSONL journal, tolerating a torn trailing line.
///
/// Every line but the last must parse as JSON; the final line may be
/// incomplete (no trailing newline, or garbage from a partial write)
/// and is then dropped with [`JournalContents::torn_tail`] set. Empty
/// and whitespace-only lines are skipped.
///
/// # Errors
///
/// I/O errors reading the file, invalid UTF-8, or a malformed record
/// anywhere before the final line (that is corruption, not a crash
/// artifact — the error message names the offending line number).
pub fn read_journal(path: &Path) -> Result<JournalContents, String> {
    let mut text = String::new();
    File::open(path)
        .and_then(|mut f| f.read_to_string(&mut text))
        .map_err(|e| format!("{}: {e}", path.display()))?;
    parse_journal(&text)
}

/// [`read_journal`] on in-memory text — the testable core.
///
/// # Errors
///
/// A malformed record before the final line, with its line number.
pub fn parse_journal(text: &str) -> Result<JournalContents, String> {
    let mut records = Vec::new();
    let mut torn_tail = false;
    // split('\n') yields a trailing "" for a newline-terminated file, so
    // a non-empty final fragment means the last append was torn.
    let lines: Vec<&str> = text.split('\n').collect();
    let last = lines.len().saturating_sub(1);
    for (idx, line) in lines.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match json::parse(line) {
            Ok(record) => {
                if idx == last {
                    // Parseable but unterminated: the newline (and the
                    // fsync that covered it) never hit the disk, so the
                    // record cannot be trusted as complete.
                    torn_tail = true;
                } else {
                    records.push(record);
                }
            }
            Err(err) if idx == last => {
                torn_tail = true;
                let _ = err;
            }
            Err(err) => {
                return Err(format!("journal line {}: {err}", idx + 1));
            }
        }
    }
    Ok(JournalContents { records, torn_tail })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(n: f64) -> JsonValue {
        let mut obj = JsonValue::object();
        obj.push("record", JsonValue::Str("test".into()));
        obj.push("n", JsonValue::Num(n));
        obj
    }

    #[test]
    fn writer_reader_round_trip() {
        let dir = std::env::temp_dir().join("obs-journal-roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("j.jsonl");
        let mut w = JournalWriter::create(&path).unwrap();
        for n in 0..5 {
            w.append(&record(n as f64)).unwrap();
        }
        drop(w);
        let contents = read_journal(&path).unwrap();
        assert_eq!(contents.records.len(), 5);
        assert!(!contents.torn_tail);
        assert_eq!(contents.records[3].get("n").unwrap().as_f64(), Some(3.0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn append_to_preserves_existing_records() {
        let dir = std::env::temp_dir().join("obs-journal-append");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("j.jsonl");
        JournalWriter::create(&path).unwrap().append(&record(1.0)).unwrap();
        JournalWriter::append_to(&path)
            .unwrap()
            .append(&record(2.0))
            .unwrap();
        let contents = read_journal(&path).unwrap();
        assert_eq!(contents.records.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn append_to_truncates_a_torn_tail_before_appending() {
        let dir = std::env::temp_dir().join("obs-journal-torn-append");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("j.jsonl");
        // A hard kill left the second record torn mid-line.
        std::fs::write(&path, "{\"n\":1}\n{\"n\":2,\"ha").unwrap();
        JournalWriter::append_to(&path)
            .unwrap()
            .append(&record(3.0))
            .unwrap();
        // The torn fragment is gone; the new record is a clean line,
        // not fused onto the fragment as interior corruption.
        let contents = read_journal(&path).unwrap();
        assert!(!contents.torn_tail);
        assert_eq!(contents.records.len(), 2);
        assert_eq!(contents.records[1].get("n").unwrap().as_f64(), Some(3.0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn append_to_a_file_with_no_newline_starts_clean() {
        let dir = std::env::temp_dir().join("obs-journal-no-newline");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("j.jsonl");
        // The very first append was torn: no newline anywhere.
        std::fs::write(&path, "{\"n\":1").unwrap();
        JournalWriter::append_to(&path)
            .unwrap()
            .append(&record(2.0))
            .unwrap();
        let contents = read_journal(&path).unwrap();
        assert!(!contents.torn_tail);
        assert_eq!(contents.records.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_trailing_line_is_dropped() {
        let text = "{\"n\":1}\n{\"n\":2}\n{\"n\":3,\"half";
        let contents = parse_journal(text).unwrap();
        assert_eq!(contents.records.len(), 2);
        assert!(contents.torn_tail);
    }

    #[test]
    fn unterminated_but_parseable_tail_is_still_torn() {
        // The line parses, but without its newline the fsync covering
        // it cannot have completed — treat as torn.
        let text = "{\"n\":1}\n{\"n\":2}";
        let contents = parse_journal(text).unwrap();
        assert_eq!(contents.records.len(), 1);
        assert!(contents.torn_tail);
    }

    #[test]
    fn corruption_before_the_tail_is_an_error() {
        let text = "{\"n\":1}\nnot json at all\n{\"n\":3}\n";
        let err = parse_journal(text).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn empty_and_blank_lines_are_skipped() {
        let text = "\n{\"n\":1}\n\n{\"n\":2}\n";
        let contents = parse_journal(text).unwrap();
        assert_eq!(contents.records.len(), 2);
        assert!(!contents.torn_tail);
    }

    #[test]
    fn empty_file_is_a_valid_empty_journal() {
        let contents = parse_journal("").unwrap();
        assert!(contents.records.is_empty());
        assert!(!contents.torn_tail);
    }
}
