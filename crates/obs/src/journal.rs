//! Append-only JSONL journals: a durable line-record writer and a
//! truncation-tolerant reader.
//!
//! A journal is the crash-safety primitive of the workspace: one JSON
//! object per line, appended and fsync'd record by record, so whatever
//! survives a hard kill (power loss, `kill -9`, OOM) is a prefix of the
//! logical record stream plus at most one torn trailing line. The
//! reader accepts exactly that shape — every complete line must parse
//! as a JSON object, while a final line that is unterminated or fails
//! to parse is silently dropped as torn. Corruption anywhere *before*
//! the last line is an error, not something to paper over: it means the
//! file was edited or the filesystem lied, and resuming from it would
//! silently lose records.
//!
//! The writer talks to storage through the [`JournalSink`] trait
//! (write / sync / reopen) rather than a bare [`File`], so the same
//! append path runs against the real filesystem ([`FileSink`]) or a
//! deterministic fault injector ([`crate::chaos::FaultySink`]). On any
//! write or sync failure the writer marks itself dirty and, before the
//! next attempt, reopens the sink truncated back to the last *committed*
//! offset — the byte just past the last acked record — so a retried
//! append can never duplicate a record or fuse onto a half-written one.
//!
//! Record semantics (schemas, replay, merging) belong to the caller;
//! this module only guarantees durability, torn-tail tolerance, and
//! exactly-once append under retry.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use crate::json::{self, JsonValue};

/// The raw storage operations a [`JournalWriter`] needs, abstracted so
/// tests and chaos suites can interpose deterministic faults.
///
/// Contract: `write` has full-buffer semantics — it either persists the
/// whole buffer to the sink's current end or returns an error (possibly
/// after a partial write; the writer recovers via [`JournalSink::reopen`]).
/// `sync` makes previously written bytes durable. `reopen(truncate_to)`
/// discards any possibly-partial suffix by re-acquiring the underlying
/// resource, truncating it to exactly `truncate_to` bytes, and
/// positioning the next write there.
pub trait JournalSink: Send + fmt::Debug {
    /// Writes the whole buffer at the current end of the sink.
    ///
    /// # Errors
    ///
    /// Any I/O error; the sink may have persisted a prefix of `buf`.
    fn write(&mut self, buf: &[u8]) -> io::Result<()>;

    /// Makes previously written bytes durable (fsync).
    ///
    /// # Errors
    ///
    /// Any I/O error syncing.
    fn sync(&mut self) -> io::Result<()>;

    /// Re-acquires the underlying resource, truncates it to
    /// `truncate_to` bytes, and positions the next write there.
    ///
    /// # Errors
    ///
    /// Any I/O error reopening or truncating.
    fn reopen(&mut self, truncate_to: u64) -> io::Result<()>;
}

/// The real-filesystem [`JournalSink`]: a [`File`] plus its path so the
/// sink can reopen itself after a failed write.
#[derive(Debug)]
pub struct FileSink {
    file: File,
    path: PathBuf,
}

impl FileSink {
    fn new(file: File, path: PathBuf) -> Self {
        FileSink { file, path }
    }
}

impl JournalSink for FileSink {
    fn write(&mut self, buf: &[u8]) -> io::Result<()> {
        self.file.write_all(buf)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }

    fn reopen(&mut self, truncate_to: u64) -> io::Result<()> {
        let file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(&self.path)?;
        file.set_len(truncate_to)?;
        let mut file = file;
        file.seek(SeekFrom::Start(truncate_to))?;
        self.file = file;
        Ok(())
    }
}

/// A journal I/O failure with enough context to act on: which file,
/// which operation (`open` / `append` / `sync` / `reopen`), and how
/// many attempts were made before giving up.
#[derive(Debug)]
pub struct JournalError {
    /// The operation that failed.
    pub op: &'static str,
    /// The journal file involved.
    pub path: PathBuf,
    /// Total attempts made (1 when no retry policy was in play).
    pub attempts: u32,
    /// The underlying I/O error from the final attempt.
    pub source: io::Error,
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.attempts > 1 {
            write!(
                f,
                "journal {} failed for {} after {} attempts: {}",
                self.op,
                self.path.display(),
                self.attempts,
                self.source
            )
        } else {
            write!(
                f,
                "journal {} failed for {}: {}",
                self.op,
                self.path.display(),
                self.source
            )
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Wraps an I/O error as an [`io::Error`] whose payload is a
/// [`JournalError`] carrying operation + path + attempt context.
fn journal_error(op: &'static str, path: &Path, attempts: u32, source: io::Error) -> io::Error {
    let kind = source.kind();
    io::Error::new(
        kind,
        JournalError {
            op,
            path: path.to_owned(),
            attempts,
            source,
        },
    )
}

/// How a [`JournalWriter`] responds to transient I/O failures: bounded
/// attempts with deterministic exponential backoff.
///
/// The default policy makes 3 attempts with a 1 ms base delay growing
/// 4× per retry; [`RetryPolicy::none`] makes exactly one attempt, which
/// reproduces the historical fail-fast behaviour. Tests inject a no-op
/// sleep via [`RetryPolicy::with_sleep`] so retries cost no wall clock.
#[derive(Clone)]
pub struct RetryPolicy {
    /// Maximum attempts per append (minimum 1).
    pub max_attempts: u32,
    /// Delay before the first retry.
    pub base_delay: Duration,
    /// Backoff multiplier applied per subsequent retry.
    pub multiplier: u32,
    sleep: Option<Arc<dyn Fn(Duration) + Send + Sync>>,
}

impl fmt::Debug for RetryPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RetryPolicy")
            .field("max_attempts", &self.max_attempts)
            .field("base_delay", &self.base_delay)
            .field("multiplier", &self.multiplier)
            .field("sleep", &self.sleep.as_ref().map(|_| "<injected>"))
            .finish()
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(1),
            multiplier: 4,
            sleep: None,
        }
    }
}

impl RetryPolicy {
    /// A single attempt, no retries — the historical fail-fast journal
    /// behaviour.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// `attempts` tries with the default backoff shape.
    pub fn attempts(attempts: u32) -> Self {
        RetryPolicy {
            max_attempts: attempts.max(1),
            ..RetryPolicy::default()
        }
    }

    /// Replaces the sleep function (tests pass `|_| {}` to make backoff
    /// free; schedulers could hook a virtual clock).
    #[must_use]
    pub fn with_sleep(mut self, sleep: impl Fn(Duration) + Send + Sync + 'static) -> Self {
        self.sleep = Some(Arc::new(sleep));
        self
    }

    /// Sleeps for the backoff delay before retry number `retry`
    /// (1-based): `base_delay * multiplier^(retry-1)`.
    fn pause(&self, retry: u32) {
        let factor = self.multiplier.max(1).saturating_pow(retry.saturating_sub(1));
        let delay = self.base_delay.saturating_mul(factor);
        match &self.sleep {
            Some(sleep) => sleep(delay),
            None => std::thread::sleep(delay),
        }
    }
}

/// Construction options for [`JournalWriter`]: retry behaviour and an
/// optional deterministic fault-injection plan wrapped around the file.
#[derive(Debug, Clone, Default)]
pub struct JournalOptions {
    /// Retry policy for appends (`Default`: 3 attempts with backoff).
    pub retry: RetryPolicy,
    /// When set, the [`FileSink`] is wrapped in a
    /// [`crate::chaos::FaultySink`] driven by this plan.
    pub chaos: Option<crate::chaos::FaultPlan>,
}

/// A durable append-only JSONL writer.
///
/// Every [`JournalWriter::append`] writes one compact JSON line and
/// fsyncs (`sync_data`) before returning, so a record that `append`
/// reported as written survives any subsequent crash. This is the
/// expensive end of the trade: a campaign journal appends once per
/// completed fault, where an fsync is noise next to the seconds of
/// solver work it checkpoints.
///
/// Appends are exactly-once under retry: the writer tracks the
/// *committed* offset (the byte just past the last acked record) and on
/// any failure truncates the sink back to it before rewriting, so a
/// record is never duplicated and a half-written line can never fuse
/// with the next record into interior corruption. One caveat is
/// inherent to fsync semantics: when a `sync` fails *after* the bytes
/// reached the OS, the record may still survive a crash as a single
/// trailing unacked line — readers and replay tolerate exactly one such
/// record.
#[derive(Debug)]
pub struct JournalWriter {
    sink: Box<dyn JournalSink>,
    path: PathBuf,
    /// Byte offset just past the last acked record.
    committed: u64,
    /// True after a failed write/sync: the sink must be reopened and
    /// truncated to `committed` before the next write.
    dirty: bool,
    retry: RetryPolicy,
    appends: u64,
    retries: u64,
    last_error: Option<String>,
}

impl JournalWriter {
    /// Opens `path` for appending, creating it if missing. Existing
    /// records are preserved — resume depends on that.
    ///
    /// If the file ends in a torn (unterminated) line — the signature
    /// of a hard kill mid-append — the torn bytes are truncated away
    /// first. Appending after them verbatim would fuse the fragment
    /// with the next record into one corrupt *interior* line, which
    /// readers rightly reject; trimming back to the last newline
    /// restores the every-line-terminated invariant instead.
    ///
    /// Uses [`RetryPolicy::none`] — the historical fail-fast behaviour.
    ///
    /// # Errors
    ///
    /// Any I/O error opening, scanning or truncating the file, wrapped
    /// with path + operation context.
    pub fn append_to(path: &Path) -> io::Result<Self> {
        Self::append_to_with(
            path,
            JournalOptions {
                retry: RetryPolicy::none(),
                chaos: None,
            },
        )
    }

    /// [`JournalWriter::append_to`] with explicit [`JournalOptions`].
    ///
    /// # Errors
    ///
    /// Any I/O error opening, scanning or truncating the file, wrapped
    /// with path + operation context.
    pub fn append_to_with(path: &Path, options: JournalOptions) -> io::Result<Self> {
        let open = || -> io::Result<(Box<dyn JournalSink>, u64)> {
            let mut file = OpenOptions::new()
                .create(true)
                .truncate(false)
                .read(true)
                .write(true)
                .open(path)?;
            let keep = last_terminated_offset(&mut file)?;
            file.set_len(keep)?;
            file.seek(SeekFrom::Start(keep))?;
            Ok((Box::new(FileSink::new(file, path.to_owned())), keep))
        };
        let (sink, keep) = open().map_err(|e| journal_error("open", path, 1, e))?;
        Ok(Self::assemble(sink, path, keep, options))
    }

    /// Truncates `path` (discarding any previous journal) and opens it
    /// for appending — the fresh-run counterpart of
    /// [`JournalWriter::append_to`]. Uses [`RetryPolicy::none`].
    ///
    /// # Errors
    ///
    /// Any I/O error opening the file, wrapped with path + operation
    /// context.
    pub fn create(path: &Path) -> io::Result<Self> {
        Self::create_with(
            path,
            JournalOptions {
                retry: RetryPolicy::none(),
                chaos: None,
            },
        )
    }

    /// [`JournalWriter::create`] with explicit [`JournalOptions`].
    ///
    /// # Errors
    ///
    /// Any I/O error opening the file, wrapped with path + operation
    /// context.
    pub fn create_with(path: &Path, options: JournalOptions) -> io::Result<Self> {
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .read(true)
            .truncate(true)
            .open(path)
            .map_err(|e| journal_error("open", path, 1, e))?;
        let sink: Box<dyn JournalSink> = Box::new(FileSink::new(file, path.to_owned()));
        Ok(Self::assemble(sink, path, 0, options))
    }

    /// Builds a writer over an arbitrary sink — the seam chaos tests
    /// use to drive the append loop against in-memory or faulty sinks.
    /// `committed` is the byte offset just past the last acked record
    /// already present in the sink.
    pub fn with_sink(
        sink: Box<dyn JournalSink>,
        path: &Path,
        committed: u64,
        retry: RetryPolicy,
    ) -> Self {
        JournalWriter {
            sink,
            path: path.to_owned(),
            committed,
            dirty: false,
            retry,
            appends: 0,
            retries: 0,
            last_error: None,
        }
    }

    fn assemble(sink: Box<dyn JournalSink>, path: &Path, committed: u64, options: JournalOptions) -> Self {
        let sink: Box<dyn JournalSink> = match options.chaos {
            Some(plan) => Box::new(crate::chaos::FaultySink::new(sink, plan)),
            None => sink,
        };
        Self::with_sink(sink, path, committed, options.retry)
    }

    /// Appends one record as a compact JSON line and fsyncs it to disk.
    ///
    /// Retries per the writer's [`RetryPolicy`]; on any failed attempt
    /// the sink is reopened truncated to the committed offset before
    /// the rewrite, so the record lands exactly once or not at all (see
    /// the type-level fsync caveat).
    ///
    /// # Errors
    ///
    /// The final attempt's I/O error once the retry budget is
    /// exhausted, wrapped with path + operation + attempt context.
    pub fn append(&mut self, record: &JsonValue) -> io::Result<()> {
        let mut line = record.to_json();
        line.push('\n');
        let bytes = line.as_bytes();
        let max = self.retry.max_attempts.max(1);
        let mut last: Option<(&'static str, io::Error)> = None;
        for attempt in 1..=max {
            if attempt > 1 {
                self.retries += 1;
                self.retry.pause(attempt - 1);
            }
            if self.dirty {
                match self.sink.reopen(self.committed) {
                    Ok(()) => self.dirty = false,
                    Err(e) => {
                        last = Some(("reopen", e));
                        continue;
                    }
                }
            }
            if let Err(e) = self.sink.write(bytes) {
                // A prefix of the line may have landed; force a
                // truncating reopen before the next write.
                self.dirty = true;
                last = Some(("append", e));
                continue;
            }
            if let Err(e) = self.sink.sync() {
                // The bytes are in the OS but not provably durable.
                // Rewind to the committed offset and rewrite rather
                // than risk acking an unsynced record.
                self.dirty = true;
                last = Some(("sync", e));
                continue;
            }
            self.committed += bytes.len() as u64;
            self.appends += 1;
            return Ok(());
        }
        let (op, source) = last.expect("append made at least one attempt");
        self.last_error = Some(source.to_string());
        Err(journal_error(op, &self.path, max, source))
    }

    /// The path this journal writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records successfully appended by this writer.
    pub fn appends(&self) -> u64 {
        self.appends
    }

    /// Failed attempts that were absorbed by the retry policy (counts
    /// every retry, including ones that ultimately exhausted the
    /// budget).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// The most recent terminal append error, if any.
    pub fn last_error(&self) -> Option<&str> {
        self.last_error.as_deref()
    }
}

/// Byte offset just past the last `\n` in `file` (0 when it has none):
/// the length the file must be truncated to so that every surviving
/// line is newline-terminated.
fn last_terminated_offset(file: &mut File) -> io::Result<u64> {
    file.seek(SeekFrom::Start(0))?;
    let mut pos: u64 = 0;
    let mut keep: u64 = 0;
    let mut buf = [0u8; 8192];
    loop {
        let n = file.read(&mut buf)?;
        if n == 0 {
            return Ok(keep);
        }
        for (i, &b) in buf[..n].iter().enumerate() {
            if b == b'\n' {
                keep = pos + i as u64 + 1;
            }
        }
        pos += n as u64;
    }
}

/// A non-durable JSONL writer for tests and low-stakes streams: same
/// format as [`JournalWriter`], buffered, no fsync.
///
/// Contract: call [`BufferedJournalWriter::flush`] (or
/// [`BufferedJournalWriter::finish`]) before dropping and check the
/// result — `Drop` flushes as a courtesy but *cannot* report failure.
/// Any append or flush error poisons the writer;
/// [`BufferedJournalWriter::poisoned`] and
/// [`BufferedJournalWriter::last_error`] expose what went wrong.
#[derive(Debug)]
pub struct BufferedJournalWriter {
    out: BufWriter<File>,
    path: PathBuf,
    poisoned: bool,
    last_error: Option<String>,
}

impl BufferedJournalWriter {
    /// Creates (truncating) `path` for buffered JSONL writing.
    ///
    /// # Errors
    ///
    /// Any I/O error opening the file, wrapped with path context.
    pub fn create(path: &Path) -> io::Result<Self> {
        let file = File::create(path).map_err(|e| journal_error("open", path, 1, e))?;
        Ok(BufferedJournalWriter {
            out: BufWriter::new(file),
            path: path.to_owned(),
            poisoned: false,
            last_error: None,
        })
    }

    /// Appends one record as a compact JSON line (buffered).
    ///
    /// # Errors
    ///
    /// Any I/O error writing; the writer is poisoned afterwards.
    pub fn append(&mut self, record: &JsonValue) -> io::Result<()> {
        let mut line = record.to_json();
        line.push('\n');
        self.out.write_all(line.as_bytes()).map_err(|e| {
            self.poisoned = true;
            self.last_error = Some(e.to_string());
            journal_error("append", &self.path, 1, e)
        })
    }

    /// Flushes buffered records to the OS.
    ///
    /// # Errors
    ///
    /// Any I/O error flushing; the writer is poisoned afterwards.
    pub fn flush(&mut self) -> io::Result<()> {
        self.out.flush().map_err(|e| {
            self.poisoned = true;
            self.last_error = Some(e.to_string());
            journal_error("sync", &self.path, 1, e)
        })
    }

    /// Flushes and consumes the writer — the checked alternative to
    /// relying on `Drop`.
    ///
    /// # Errors
    ///
    /// Any I/O error flushing.
    pub fn finish(mut self) -> io::Result<()> {
        self.flush()
    }

    /// True once any append or flush has failed; buffered records may
    /// have been lost and the file should not be trusted as complete.
    pub fn poisoned(&self) -> bool {
        self.poisoned
    }

    /// The first I/O failure observed, if any.
    pub fn last_error(&self) -> Option<&str> {
        self.last_error.as_deref()
    }
}

/// What [`read_journal`] found on disk.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalContents {
    /// Every complete, parsed record, in file order.
    pub records: Vec<JsonValue>,
    /// True when the file ended in a torn line (unterminated or
    /// unparseable) that was dropped — the signature of a hard kill
    /// mid-append.
    pub torn_tail: bool,
}

/// Reads a JSONL journal, tolerating a torn trailing line.
///
/// Every line but the last must parse as JSON; the final line may be
/// incomplete (no trailing newline, or garbage from a partial write)
/// and is then dropped with [`JournalContents::torn_tail`] set. Empty
/// and whitespace-only lines are skipped.
///
/// # Errors
///
/// I/O errors reading the file, invalid UTF-8, or a malformed record
/// anywhere before the final line (that is corruption, not a crash
/// artifact — the error message names the file and offending line
/// number).
pub fn read_journal(path: &Path) -> Result<JournalContents, String> {
    let mut text = String::new();
    File::open(path)
        .and_then(|mut f| f.read_to_string(&mut text))
        .map_err(|e| format!("journal replay failed for {}: {e}", path.display()))?;
    parse_journal(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// [`read_journal`] on in-memory text — the testable core.
///
/// # Errors
///
/// A malformed record before the final line, with its line number.
pub fn parse_journal(text: &str) -> Result<JournalContents, String> {
    let mut records = Vec::new();
    let mut torn_tail = false;
    // split('\n') yields a trailing "" for a newline-terminated file, so
    // a non-empty final fragment means the last append was torn.
    let lines: Vec<&str> = text.split('\n').collect();
    let last = lines.len().saturating_sub(1);
    for (idx, line) in lines.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match json::parse(line) {
            Ok(record) => {
                if idx == last {
                    // Parseable but unterminated: the newline (and the
                    // fsync that covered it) never hit the disk, so the
                    // record cannot be trusted as complete.
                    torn_tail = true;
                } else {
                    records.push(record);
                }
            }
            Err(err) if idx == last => {
                torn_tail = true;
                let _ = err;
            }
            Err(err) => {
                return Err(format!("journal line {}: {err}", idx + 1));
            }
        }
    }
    Ok(JournalContents { records, torn_tail })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(n: f64) -> JsonValue {
        let mut obj = JsonValue::object();
        obj.push("record", JsonValue::Str("test".into()));
        obj.push("n", JsonValue::Num(n));
        obj
    }

    #[test]
    fn writer_reader_round_trip() {
        let dir = std::env::temp_dir().join("obs-journal-roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("j.jsonl");
        let mut w = JournalWriter::create(&path).unwrap();
        for n in 0..5 {
            w.append(&record(n as f64)).unwrap();
        }
        assert_eq!(w.appends(), 5);
        assert_eq!(w.retries(), 0);
        drop(w);
        let contents = read_journal(&path).unwrap();
        assert_eq!(contents.records.len(), 5);
        assert!(!contents.torn_tail);
        assert_eq!(contents.records[3].get("n").unwrap().as_f64(), Some(3.0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn append_to_preserves_existing_records() {
        let dir = std::env::temp_dir().join("obs-journal-append");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("j.jsonl");
        JournalWriter::create(&path).unwrap().append(&record(1.0)).unwrap();
        JournalWriter::append_to(&path)
            .unwrap()
            .append(&record(2.0))
            .unwrap();
        let contents = read_journal(&path).unwrap();
        assert_eq!(contents.records.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn append_to_truncates_a_torn_tail_before_appending() {
        let dir = std::env::temp_dir().join("obs-journal-torn-append");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("j.jsonl");
        // A hard kill left the second record torn mid-line.
        std::fs::write(&path, "{\"n\":1}\n{\"n\":2,\"ha").unwrap();
        JournalWriter::append_to(&path)
            .unwrap()
            .append(&record(3.0))
            .unwrap();
        // The torn fragment is gone; the new record is a clean line,
        // not fused onto the fragment as interior corruption.
        let contents = read_journal(&path).unwrap();
        assert!(!contents.torn_tail);
        assert_eq!(contents.records.len(), 2);
        assert_eq!(contents.records[1].get("n").unwrap().as_f64(), Some(3.0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn append_to_a_file_with_no_newline_starts_clean() {
        let dir = std::env::temp_dir().join("obs-journal-no-newline");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("j.jsonl");
        // The very first append was torn: no newline anywhere.
        std::fs::write(&path, "{\"n\":1").unwrap();
        JournalWriter::append_to(&path)
            .unwrap()
            .append(&record(2.0))
            .unwrap();
        let contents = read_journal(&path).unwrap();
        assert!(!contents.torn_tail);
        assert_eq!(contents.records.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_trailing_line_is_dropped() {
        let text = "{\"n\":1}\n{\"n\":2}\n{\"n\":3,\"half";
        let contents = parse_journal(text).unwrap();
        assert_eq!(contents.records.len(), 2);
        assert!(contents.torn_tail);
    }

    #[test]
    fn unterminated_but_parseable_tail_is_still_torn() {
        // The line parses, but without its newline the fsync covering
        // it cannot have completed — treat as torn.
        let text = "{\"n\":1}\n{\"n\":2}";
        let contents = parse_journal(text).unwrap();
        assert_eq!(contents.records.len(), 1);
        assert!(contents.torn_tail);
    }

    #[test]
    fn corruption_before_the_tail_is_an_error() {
        let text = "{\"n\":1}\nnot json at all\n{\"n\":3}\n";
        let err = parse_journal(text).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn empty_and_blank_lines_are_skipped() {
        let text = "\n{\"n\":1}\n\n{\"n\":2}\n";
        let contents = parse_journal(text).unwrap();
        assert_eq!(contents.records.len(), 2);
        assert!(!contents.torn_tail);
    }

    #[test]
    fn empty_file_is_a_valid_empty_journal() {
        let contents = parse_journal("").unwrap();
        assert!(contents.records.is_empty());
        assert!(!contents.torn_tail);
    }

    #[test]
    fn open_errors_carry_path_and_operation_context() {
        let path = Path::new("/nonexistent-dir-for-journal-test/j.jsonl");
        let err = JournalWriter::create(path).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("journal open failed"), "{msg}");
        assert!(msg.contains("nonexistent-dir-for-journal-test"), "{msg}");
    }

    /// A sink that fails a scripted set of operations, for exercising
    /// the retry loop without the chaos module.
    #[derive(Debug)]
    struct ScriptedSink {
        buf: Vec<u8>,
        synced: usize,
        fail_writes: Vec<u64>,
        fail_syncs: Vec<u64>,
        writes: u64,
        syncs: u64,
        reopens: u64,
    }

    impl ScriptedSink {
        fn new(fail_writes: Vec<u64>, fail_syncs: Vec<u64>) -> Self {
            ScriptedSink {
                buf: Vec::new(),
                synced: 0,
                fail_writes,
                fail_syncs,
                writes: 0,
                syncs: 0,
                reopens: 0,
            }
        }
    }

    impl JournalSink for ScriptedSink {
        fn write(&mut self, buf: &[u8]) -> io::Result<()> {
            let op = self.writes;
            self.writes += 1;
            if self.fail_writes.contains(&op) {
                // Model a partial write: half the buffer lands.
                self.buf.extend_from_slice(&buf[..buf.len() / 2]);
                return Err(io::Error::new(io::ErrorKind::StorageFull, "injected"));
            }
            self.buf.extend_from_slice(buf);
            Ok(())
        }

        fn sync(&mut self) -> io::Result<()> {
            let op = self.syncs;
            self.syncs += 1;
            if self.fail_syncs.contains(&op) {
                return Err(io::Error::other("injected fsync failure"));
            }
            self.synced = self.buf.len();
            Ok(())
        }

        fn reopen(&mut self, truncate_to: u64) -> io::Result<()> {
            self.reopens += 1;
            self.buf.truncate(truncate_to as usize);
            self.synced = self.synced.min(self.buf.len());
            Ok(())
        }
    }

    fn quiet_retry(attempts: u32) -> RetryPolicy {
        RetryPolicy::attempts(attempts).with_sleep(|_| {})
    }

    #[test]
    fn retry_absorbs_a_transient_partial_write() {
        let sink = ScriptedSink::new(vec![1], vec![]);
        let mut w = JournalWriter::with_sink(
            Box::new(sink),
            Path::new("mem.jsonl"),
            0,
            quiet_retry(3),
        );
        w.append(&record(1.0)).unwrap();
        w.append(&record(2.0)).unwrap();
        assert_eq!(w.appends(), 2);
        assert_eq!(w.retries(), 1);
        // Downcast back to inspect the bytes: the partial first attempt
        // of record 2 was truncated away, leaving exactly two records.
        let text = {
            let sink = &w.sink;
            format!("{sink:?}")
        };
        assert!(text.contains("reopens: 1"), "{text}");
    }

    #[test]
    fn sync_failure_retries_without_duplicating_the_record() {
        let sink = ScriptedSink::new(vec![], vec![1]);
        let mut w = JournalWriter::with_sink(
            Box::new(sink),
            Path::new("mem.jsonl"),
            0,
            quiet_retry(3),
        );
        w.append(&record(1.0)).unwrap();
        w.append(&record(2.0)).unwrap();
        assert_eq!(w.retries(), 1);
        let dbg = format!("{:?}", w.sink);
        // The failed-sync copy of record 2 was truncated before the
        // rewrite: 3 writes happened, but only 2 records' bytes remain.
        assert!(dbg.contains("writes: 3"), "{dbg}");
        assert!(dbg.contains("reopens: 1"), "{dbg}");
    }

    #[test]
    fn exhausted_retries_surface_the_final_error_with_context() {
        let sink = ScriptedSink::new(vec![0, 1, 2], vec![]);
        let mut w = JournalWriter::with_sink(
            Box::new(sink),
            Path::new("mem.jsonl"),
            0,
            quiet_retry(3),
        );
        let err = w.append(&record(1.0)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        let msg = err.to_string();
        assert!(msg.contains("after 3 attempts"), "{msg}");
        assert!(msg.contains("mem.jsonl"), "{msg}");
        assert!(w.last_error().is_some());
        // A later append recovers if the fault cleared: dirty forces a
        // truncating reopen first, so no partial bytes remain.
        w.append(&record(2.0)).unwrap();
        assert_eq!(w.appends(), 1);
    }

    #[test]
    fn buffered_writer_surfaces_flush_errors_and_poisons() {
        let dir = std::env::temp_dir().join("obs-journal-buffered-poison");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("b.jsonl");
        let mut w = BufferedJournalWriter::create(&path).unwrap();
        w.append(&record(1.0)).unwrap();
        assert!(!w.poisoned());
        w.finish().unwrap();
        let contents = read_journal(&path).unwrap();
        assert_eq!(contents.records.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
