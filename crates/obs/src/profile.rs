//! Phase-level cost attribution for solver hot paths.
//!
//! A [`PhaseProfiler`] splits a solve's wall time across a fixed
//! [`Phase`] taxonomy (stamping, device evaluation, LU factorisation,
//! back-substitution, residual/update, timestep control, DC homotopy
//! control, symbolic analysis, numeric refactorisation, rank-1
//! updates) with monotonic-clock accounting. Like
//! `anasim::FlightRecorder`, arming is explicit and the disarmed path
//! is an `Option` branch — no clock reads, no atomics.
//!
//! Attribution is **self-time**: a [`PhaseGuard`] subtracts the time
//! spent in phases entered while it was open, so nesting never
//! double-counts and the per-phase nanoseconds always sum to at most
//! the outermost span's elapsed time. The bookkeeping is a single
//! thread-local accumulator; the per-phase totals are relaxed atomics,
//! so one profiler can be shared across campaign worker threads.
//!
//! Two granularities share that accounting:
//!
//! * [`PhaseGuard`] (RAII, via [`PhaseProfiler::enter`]) for coarse
//!   spans — a whole transient march, a DC solve;
//! * [`LapTimer`] for hot loops, where even one guard per iteration is
//!   too expensive: a single clock read per phase *boundary*, local
//!   (non-atomic) accumulation, and one [`LapTimer::flush`] per loop
//!   that credits the enclosing guard's child accumulator so nesting
//!   stays exact.
//!
//! Both read the cheapest monotonic clock available: the invariant TSC
//! on x86_64 (one `rdtsc`, calibrated once per process against the OS
//! monotonic clock), the OS clock elsewhere.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
#[cfg(test)]
use std::time::Instant;

/// Fast monotonic tick source for span timing. Ticks are an opaque
/// unit; [`clock::ticks_to_ns`] converts at publication time.
mod clock {
    #[allow(unused_imports)]
    use std::sync::OnceLock;
    #[allow(unused_imports)]
    use std::time::Instant;

    /// Current tick count. On x86_64 this is the invariant TSC (a
    /// ~6 ns unprivileged register read); elsewhere it is monotonic
    /// nanoseconds from the first call.
    #[cfg(target_arch = "x86_64")]
    #[inline]
    pub fn now_ticks() -> u64 {
        // SAFETY: RDTSC is unprivileged and has no side effects.
        unsafe { core::arch::x86_64::_rdtsc() }
    }

    #[cfg(not(target_arch = "x86_64"))]
    #[inline]
    pub fn now_ticks() -> u64 {
        static EPOCH: OnceLock<Instant> = OnceLock::new();
        let epoch = EPOCH.get_or_init(Instant::now);
        u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Converts a tick interval to nanoseconds.
    #[cfg(target_arch = "x86_64")]
    pub fn ticks_to_ns(ticks: u64) -> u64 {
        static NS_PER_TICK: OnceLock<f64> = OnceLock::new();
        let ratio = *NS_PER_TICK.get_or_init(calibrate);
        (ticks as f64 * ratio) as u64
    }

    #[cfg(not(target_arch = "x86_64"))]
    pub fn ticks_to_ns(ticks: u64) -> u64 {
        ticks
    }

    /// Measures the TSC rate against the OS monotonic clock over a
    /// ~1 ms spin. Modern x86_64 TSCs are invariant (constant rate,
    /// never stop), so one short calibration holds for the process
    /// lifetime; the window bounds the ratio error well under 0.1 %.
    /// Runs once, on the first armed span's publication — disarmed
    /// runs never pay it.
    #[cfg(target_arch = "x86_64")]
    fn calibrate() -> f64 {
        let started = Instant::now();
        let c0 = now_ticks();
        loop {
            let elapsed = started.elapsed();
            if elapsed.as_micros() >= 1_000 {
                let dc = now_ticks().saturating_sub(c0);
                if dc == 0 {
                    // A TSC that did not advance in a millisecond is
                    // not usable as a clock; fall back to 1 tick = 1 ns.
                    return 1.0;
                }
                return elapsed.as_nanos() as f64 / dc as f64;
            }
            std::hint::spin_loop();
        }
    }
}

/// The fixed phase taxonomy. Every nanosecond a profiler attributes
/// lands in exactly one of these buckets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Phase {
    /// Assembling the MNA matrix and right-hand side (excluding
    /// nonlinear device model evaluation, which is [`Phase::DeviceEval`]).
    Stamp,
    /// Nonlinear device model evaluation (MOSFET / diode / switch)
    /// inside stamping.
    DeviceEval,
    /// LU factorisation of the stamped matrix.
    Factor,
    /// Forward/backward substitution against the factors.
    BackSubstitute,
    /// Damped Newton update and convergence testing.
    Residual,
    /// Transient time-march control: step selection, history updates,
    /// dt halving, result storage (self-time around the Newton solves).
    StepControl,
    /// DC operating-point control: homotopy scheduling around the
    /// Newton solves (self-time).
    DcSolve,
    /// Symbolic analysis of the system structure: sparsity pattern and
    /// assembly slot-map construction, done once per (netlist, fault)
    /// structure and reused across all iterations and timesteps.
    Symbolic,
    /// Numeric-only refactorisation of an already-analysed system (the
    /// factor cache held a factorisation for this structure already;
    /// [`Phase::Factor`] counts only first factorisations).
    Refactor,
    /// Sherman–Morrison rank-1 update solves against a cached golden
    /// factorisation (low-rank fault deltas in campaigns).
    Rank1Update,
}

impl Phase {
    /// Number of phases; the length of [`Phase::ALL`].
    pub const COUNT: usize = 10;

    /// Phases that existed in the `mixsig.solver-bench/2` sidecar
    /// schema; `/2` documents carry exactly this prefix of the
    /// taxonomy.
    pub const LEGACY_COUNT: usize = 7;

    /// Every phase, in serialisation order.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::Stamp,
        Phase::DeviceEval,
        Phase::Factor,
        Phase::BackSubstitute,
        Phase::Residual,
        Phase::StepControl,
        Phase::DcSolve,
        Phase::Symbolic,
        Phase::Refactor,
        Phase::Rank1Update,
    ];

    /// Stable snake_case label used in reports, the bench sidecar and
    /// trace exports.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Stamp => "stamp",
            Phase::DeviceEval => "device_eval",
            Phase::Factor => "lu_factor",
            Phase::BackSubstitute => "back_substitute",
            Phase::Residual => "residual",
            Phase::StepControl => "step_control",
            Phase::DcSolve => "dc_solve",
            Phase::Symbolic => "symbolic",
            Phase::Refactor => "refactor",
            Phase::Rank1Update => "rank1_update",
        }
    }
}

thread_local! {
    /// Clock ticks consumed by phase spans closed while the innermost
    /// open guard on this thread was running. Swapped out on `enter`
    /// and restored (plus the finished guard's elapsed ticks) on drop —
    /// this is what makes attribution self-time. [`LapTimer::flush`]
    /// adds its attributed ticks here too, so lap-timed loops subtract
    /// from their enclosing guard exactly like nested guards do.
    static CHILD_TICKS: Cell<u64> = const { Cell::new(0) };
}

/// Shared, thread-safe per-phase nanosecond and call accounting.
///
/// Arm by passing `Some(&profiler)` (or an `Arc`) down the solve path;
/// a disarmed (`None`) path performs no clock reads at all.
#[derive(Debug, Default)]
pub struct PhaseProfiler {
    ns: [AtomicU64; Phase::COUNT],
    calls: [AtomicU64; Phase::COUNT],
}

impl PhaseProfiler {
    /// A profiler with all counters at zero.
    pub fn new() -> Self {
        PhaseProfiler::default()
    }

    /// Opens a phase span. Time elapsed until the returned guard drops
    /// is attributed to `phase`, minus any nested phase spans opened
    /// underneath it on the same thread.
    pub fn enter(&self, phase: Phase) -> PhaseGuard<'_> {
        let parent_child_ticks = CHILD_TICKS.with(|c| c.replace(0));
        PhaseGuard {
            profiler: self,
            phase,
            parent_child_ticks,
            started: clock::now_ticks(),
        }
    }

    /// Adds raw, pre-measured self-time to a phase. Unlike
    /// [`PhaseProfiler::enter`] this does not participate in nesting
    /// subtraction; use it only for time measured outside any open
    /// guard (e.g. folding another profiler's totals in).
    pub fn add_ns(&self, phase: Phase, ns: u64, calls: u64) {
        self.ns[phase as usize].fetch_add(ns, Ordering::Relaxed);
        self.calls[phase as usize].fetch_add(calls, Ordering::Relaxed);
    }

    /// Folds a snapshot's totals into this profiler (used to aggregate
    /// per-fault profilers into a campaign- or experiment-level total).
    pub fn add_snapshot(&self, snap: &PhaseSnapshot) {
        for phase in Phase::ALL {
            let i = phase as usize;
            self.add_ns(phase, snap.ns[i], snap.calls[i]);
        }
    }

    /// A consistent-enough copy of the totals (relaxed loads; exact
    /// once all guards on all threads have dropped).
    pub fn snapshot(&self) -> PhaseSnapshot {
        let mut snap = PhaseSnapshot::default();
        for i in 0..Phase::COUNT {
            snap.ns[i] = self.ns[i].load(Ordering::Relaxed);
            snap.calls[i] = self.calls[i].load(Ordering::Relaxed);
        }
        snap
    }
}

/// RAII span for one phase; see [`PhaseProfiler::enter`].
#[derive(Debug)]
pub struct PhaseGuard<'a> {
    profiler: &'a PhaseProfiler,
    phase: Phase,
    parent_child_ticks: u64,
    started: u64,
}

impl Drop for PhaseGuard<'_> {
    fn drop(&mut self) {
        let elapsed = clock::now_ticks().saturating_sub(self.started);
        let child = CHILD_TICKS.with(|c| c.get());
        let self_ns = clock::ticks_to_ns(elapsed.saturating_sub(child));
        self.profiler.ns[self.phase as usize].fetch_add(self_ns, Ordering::Relaxed);
        self.profiler.calls[self.phase as usize].fetch_add(1, Ordering::Relaxed);
        CHILD_TICKS.with(|c| c.set(self.parent_child_ticks.saturating_add(elapsed)));
    }
}

/// Boundary-based phase accounting for hot loops.
///
/// A Newton iteration runs in about a microsecond on small circuits;
/// wrapping each of its phases in a [`PhaseGuard`] (two clock reads
/// plus thread-local and atomic traffic per phase) costs tens of
/// percent of the loop itself. A `LapTimer` instead keeps one running
/// boundary: [`LapTimer::lap`] reads the clock once and attributes
/// everything since the previous boundary to the given phase, into
/// plain local arrays. One [`LapTimer::flush`] at the end of the loop
/// converts to nanoseconds, publishes to the shared profiler, and
/// credits the thread-local child accumulator with the attributed
/// total — so an enclosing [`PhaseGuard`] (say [`Phase::StepControl`])
/// still sees the lap-timed work subtracted from its self-time, and
/// the "phases sum to at most the wall" invariant holds.
///
/// Time between a `flush`/[`LapTimer::skip`] and the next `lap` stays
/// with the enclosing guard; time between two `lap`s always lands in
/// the second one's phase.
#[derive(Debug)]
pub struct LapTimer {
    last: u64,
    ticks: [u64; Phase::COUNT],
    calls: [u64; Phase::COUNT],
}

impl LapTimer {
    /// A lap timer whose first boundary is "now".
    pub fn start() -> Self {
        LapTimer {
            last: clock::now_ticks(),
            ticks: [0; Phase::COUNT],
            calls: [0; Phase::COUNT],
        }
    }

    /// Attributes everything since the previous boundary to `phase`
    /// and starts the next segment. One clock read.
    #[inline]
    pub fn lap(&mut self, phase: Phase) {
        let now = clock::now_ticks();
        self.ticks[phase as usize] =
            self.ticks[phase as usize].saturating_add(now.saturating_sub(self.last));
        self.calls[phase as usize] += 1;
        self.last = now;
    }

    /// Advances the boundary without attributing the elapsed segment —
    /// for bookkeeping the caller wants left to the enclosing guard.
    #[inline]
    pub fn skip(&mut self) {
        self.last = clock::now_ticks();
    }

    /// Publishes the accumulated segments to `profiler` and credits
    /// the attributed total to the enclosing guard's child accumulator.
    pub fn flush(self, profiler: &PhaseProfiler) {
        let mut attributed_ticks = 0u64;
        for i in 0..Phase::COUNT {
            if self.calls[i] == 0 {
                continue;
            }
            attributed_ticks = attributed_ticks.saturating_add(self.ticks[i]);
            profiler.ns[i].fetch_add(clock::ticks_to_ns(self.ticks[i]), Ordering::Relaxed);
            profiler.calls[i].fetch_add(self.calls[i], Ordering::Relaxed);
        }
        if attributed_ticks > 0 {
            CHILD_TICKS.with(|c| c.set(c.get().saturating_add(attributed_ticks)));
        }
    }
}

/// A point-in-time copy of a profiler's per-phase totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseSnapshot {
    /// Self-time nanoseconds per phase, indexed by `Phase as usize`.
    pub ns: [u64; Phase::COUNT],
    /// Completed spans per phase, indexed by `Phase as usize`.
    pub calls: [u64; Phase::COUNT],
}

impl PhaseSnapshot {
    /// Self-time nanoseconds attributed to `phase`.
    pub fn ns(&self, phase: Phase) -> u64 {
        self.ns[phase as usize]
    }

    /// Completed spans of `phase`.
    pub fn calls(&self, phase: Phase) -> u64 {
        self.calls[phase as usize]
    }

    /// Total attributed nanoseconds across all phases.
    pub fn total_ns(&self) -> u64 {
        self.ns.iter().sum()
    }

    /// True if nothing was ever attributed (the disarmed case).
    pub fn is_empty(&self) -> bool {
        self.ns.iter().all(|&n| n == 0) && self.calls.iter().all(|&c| c == 0)
    }

    /// Per-field saturating difference `self - rhs`: the share of a
    /// monotonically growing profiler accumulated between two snapshots
    /// (e.g. one experiment's slice of an invocation-wide profiler).
    pub fn saturating_sub(&self, rhs: &PhaseSnapshot) -> PhaseSnapshot {
        let mut out = PhaseSnapshot::default();
        for i in 0..Phase::COUNT {
            out.ns[i] = self.ns[i].saturating_sub(rhs.ns[i]);
            out.calls[i] = self.calls[i].saturating_sub(rhs.calls[i]);
        }
        out
    }
}

impl std::ops::Add for PhaseSnapshot {
    type Output = PhaseSnapshot;

    fn add(mut self, rhs: PhaseSnapshot) -> PhaseSnapshot {
        self += rhs;
        self
    }
}

impl std::ops::AddAssign for PhaseSnapshot {
    fn add_assign(&mut self, rhs: PhaseSnapshot) {
        for i in 0..Phase::COUNT {
            self.ns[i] = self.ns[i].saturating_add(rhs.ns[i]);
            self.calls[i] = self.calls[i].saturating_add(rhs.calls[i]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn spin(d: Duration) {
        let start = Instant::now();
        while start.elapsed() < d {
            std::hint::black_box(0u64);
        }
    }

    #[test]
    fn labels_are_unique_and_cover_all_phases() {
        let mut labels: Vec<&str> = Phase::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(labels.len(), Phase::COUNT);
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), Phase::COUNT, "duplicate phase label");
    }

    #[test]
    fn flat_spans_attribute_to_their_phase() {
        let p = PhaseProfiler::new();
        {
            let _g = p.enter(Phase::Stamp);
            spin(Duration::from_micros(200));
        }
        let snap = p.snapshot();
        assert!(snap.ns(Phase::Stamp) >= 100_000, "{snap:?}");
        assert_eq!(snap.calls(Phase::Stamp), 1);
        assert_eq!(snap.ns(Phase::Factor), 0);
    }

    #[test]
    fn nested_spans_do_not_double_count() {
        let p = PhaseProfiler::new();
        let outer = Instant::now();
        {
            let _step = p.enter(Phase::StepControl);
            spin(Duration::from_micros(100));
            {
                let _stamp = p.enter(Phase::Stamp);
                spin(Duration::from_micros(300));
            }
            spin(Duration::from_micros(100));
        }
        let wall = outer.elapsed().as_nanos() as u64;
        let snap = p.snapshot();
        // The nested stamp time is subtracted from step control.
        assert!(snap.ns(Phase::Stamp) >= 150_000, "{snap:?}");
        assert!(
            snap.ns(Phase::StepControl) < snap.ns(Phase::Stamp),
            "{snap:?}"
        );
        // And the grand total never exceeds the enclosing wall time.
        assert!(snap.total_ns() <= wall, "{snap:?} vs wall {wall}");
    }

    #[test]
    fn sibling_spans_restore_the_parent_accumulator() {
        let p = PhaseProfiler::new();
        let outer = Instant::now();
        {
            let _step = p.enter(Phase::StepControl);
            for _ in 0..3 {
                let _g = p.enter(Phase::Factor);
                spin(Duration::from_micros(50));
            }
        }
        let wall = outer.elapsed().as_nanos() as u64;
        let snap = p.snapshot();
        assert_eq!(snap.calls(Phase::Factor), 3);
        assert!(snap.total_ns() <= wall, "{snap:?} vs wall {wall}");
    }

    #[test]
    fn snapshot_arithmetic_sums_fields() {
        let a = PhaseProfiler::new();
        a.add_ns(Phase::Stamp, 5, 2);
        let b = PhaseProfiler::new();
        b.add_ns(Phase::Stamp, 7, 1);
        b.add_ns(Phase::Factor, 3, 1);
        let sum = a.snapshot() + b.snapshot();
        assert_eq!(sum.ns(Phase::Stamp), 12);
        assert_eq!(sum.calls(Phase::Stamp), 3);
        assert_eq!(sum.ns(Phase::Factor), 3);
        assert_eq!(sum.total_ns(), 15);
        assert!(!sum.is_empty());
        assert!(PhaseSnapshot::default().is_empty());
    }

    #[test]
    fn add_snapshot_folds_totals() {
        let per_fault = PhaseProfiler::new();
        per_fault.add_ns(Phase::Factor, 100, 4);
        let total = PhaseProfiler::new();
        total.add_snapshot(&per_fault.snapshot());
        total.add_snapshot(&per_fault.snapshot());
        assert_eq!(total.snapshot().ns(Phase::Factor), 200);
        assert_eq!(total.snapshot().calls(Phase::Factor), 8);
    }

    #[test]
    fn lap_timer_attributes_segments_to_their_phase() {
        let p = PhaseProfiler::new();
        let mut lap = LapTimer::start();
        spin(Duration::from_micros(200));
        lap.lap(Phase::Stamp);
        spin(Duration::from_micros(200));
        lap.lap(Phase::Factor);
        lap.flush(&p);
        let snap = p.snapshot();
        assert!(snap.ns(Phase::Stamp) >= 100_000, "{snap:?}");
        assert!(snap.ns(Phase::Factor) >= 100_000, "{snap:?}");
        assert_eq!(snap.calls(Phase::Stamp), 1);
        assert_eq!(snap.calls(Phase::Factor), 1);
        assert_eq!(snap.ns(Phase::Residual), 0);
    }

    #[test]
    fn lap_timer_skip_leaves_time_unattributed() {
        let p = PhaseProfiler::new();
        let mut lap = LapTimer::start();
        spin(Duration::from_micros(300));
        lap.skip();
        spin(Duration::from_micros(50));
        lap.lap(Phase::Residual);
        lap.flush(&p);
        let snap = p.snapshot();
        // The skipped 300µs never lands anywhere; the residual lap only
        // covers the 50µs after the skip.
        assert!(snap.ns(Phase::Residual) < 250_000, "{snap:?}");
        assert_eq!(snap.calls(Phase::Residual), 1);
    }

    #[test]
    fn lap_timer_credits_the_enclosing_guard() {
        let p = PhaseProfiler::new();
        let outer = Instant::now();
        {
            let _step = p.enter(Phase::StepControl);
            spin(Duration::from_micros(100));
            let mut lap = LapTimer::start();
            spin(Duration::from_micros(400));
            lap.lap(Phase::Factor);
            lap.flush(&p);
            spin(Duration::from_micros(100));
        }
        let wall = outer.elapsed().as_nanos() as u64;
        let snap = p.snapshot();
        // The lap-timed factor work is subtracted from step control's
        // self-time, exactly like a nested guard would be.
        assert!(snap.ns(Phase::Factor) >= 200_000, "{snap:?}");
        assert!(
            snap.ns(Phase::StepControl) < snap.ns(Phase::Factor),
            "{snap:?}"
        );
        assert!(snap.total_ns() <= wall, "{snap:?} vs wall {wall}");
    }

    #[test]
    fn profiler_is_shareable_across_threads() {
        use std::sync::Arc;
        let p = Arc::new(PhaseProfiler::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let p = Arc::clone(&p);
                std::thread::spawn(move || {
                    let _g = p.enter(Phase::Residual);
                    spin(Duration::from_micros(50));
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(p.snapshot().calls(Phase::Residual), 4);
    }
}
