//! Minimal hand-rolled JSON: a value tree, a deterministic writer and a
//! strict parser.
//!
//! The workspace builds offline — no serde — so run reports and the
//! JSONL event sink serialise through this module. Object members keep
//! insertion order, numbers print through Rust's shortest-roundtrip
//! float formatting, and non-finite numbers serialise as `null`, so the
//! same value tree always produces the same bytes.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number. Non-finite values serialise as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; members keep insertion order for deterministic bytes.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// An empty object.
    pub fn object() -> Self {
        JsonValue::Obj(Vec::new())
    }

    /// Appends a member to an object. Panics on non-objects (construction
    /// bug, not data).
    pub fn push(&mut self, key: &str, value: JsonValue) {
        match self {
            JsonValue::Obj(members) => members.push((key.to_owned(), value)),
            other => panic!("push on non-object {other:?}"),
        }
    }

    /// Member lookup on objects; `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members
                .iter()
                .find_map(|(k, v)| (k == key).then_some(v)),
            _ => None,
        }
    }

    /// The number inside `Num`, if that's what this is.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The boolean inside `Bool`, if that's what this is.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string inside `Str`, if that's what this is.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements of `Arr`, if that's what this is.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialises to a compact JSON string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serialises with two-space indentation, for humans and diffs.
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(v) => write_number(out, *v),
            JsonValue::Str(s) => write_string(out, s),
            JsonValue::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, depth + 1);
                });
            }
            JsonValue::Obj(members) => {
                write_seq(out, indent, depth, '{', '}', members.len(), |out, i| {
                    let (k, v) = &members[i];
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * (depth + 1)));
        }
        item(out, i);
    }
    if len > 0 {
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * depth));
        }
    }
    out.push(close);
}

fn write_number(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 9.0e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a human-readable message with the byte offset of the first
/// syntax error, or on trailing garbage after the top-level value.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}",
                byte as char, self.pos
            ))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, text: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(JsonValue::Num)
            .ok_or_else(|| format!("invalid number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| {
                                    format!("invalid \\u escape at byte {}", self.pos)
                                })?;
                            // Surrogate pairs are not produced by our
                            // writer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &JsonValue) -> JsonValue {
        parse(&v.to_json()).expect("writer output parses")
    }

    #[test]
    fn scalar_round_trips() {
        for v in [
            JsonValue::Null,
            JsonValue::Bool(true),
            JsonValue::Bool(false),
            JsonValue::Num(0.0),
            JsonValue::Num(-17.0),
            JsonValue::Num(3.125),
            JsonValue::Num(1.0e-9),
            JsonValue::Str("hi \"there\"\n\tok \\ λ".into()),
        ] {
            assert_eq!(round_trip(&v), v, "{v:?}");
        }
    }

    #[test]
    fn integral_floats_print_without_fraction() {
        assert_eq!(JsonValue::Num(5.0).to_json(), "5");
        assert_eq!(JsonValue::Num(-2.0).to_json(), "-2");
        assert_eq!(JsonValue::Num(2.5).to_json(), "2.5");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(JsonValue::Num(f64::NAN).to_json(), "null");
        assert_eq!(JsonValue::Num(f64::INFINITY).to_json(), "null");
    }

    #[test]
    fn nested_structure_round_trips() {
        let mut obj = JsonValue::object();
        obj.push("name", JsonValue::Str("e6".into()));
        obj.push(
            "hist",
            JsonValue::Arr(vec![JsonValue::Num(1.0), JsonValue::Num(0.0)]),
        );
        let mut inner = JsonValue::object();
        inner.push("p50", JsonValue::Num(1.5));
        inner.push("note", JsonValue::Null);
        obj.push("wall", inner);
        assert_eq!(round_trip(&obj), obj);
    }

    #[test]
    fn object_member_order_is_preserved() {
        let mut obj = JsonValue::object();
        obj.push("z", JsonValue::Num(1.0));
        obj.push("a", JsonValue::Num(2.0));
        assert_eq!(obj.to_json(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn accessors_navigate_the_tree() {
        let v = parse(r#"{"a": {"b": [1, 2, 3]}, "s": "x"}"#).unwrap();
        assert_eq!(v.get("s").and_then(|s| s.as_str()), Some("x"));
        let arr = v.get("a").and_then(|a| a.get("b")).and_then(|b| b.as_array());
        assert_eq!(arr.map(<[JsonValue]>::len), Some(3));
        assert_eq!(arr.unwrap()[2].as_f64(), Some(3.0));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("null x").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn pretty_output_parses_back() {
        let mut obj = JsonValue::object();
        obj.push("a", JsonValue::Arr(vec![JsonValue::Num(1.0)]));
        obj.push("b", JsonValue::object());
        let pretty = obj.to_json_pretty();
        assert!(pretty.contains('\n'));
        assert_eq!(parse(&pretty).unwrap(), obj);
    }
}
