//! Structured solver failure postmortems.
//!
//! When a solve fails terminally, the flight recorder (in the solver
//! crate) freezes its ring of per-iteration records into one of these:
//! the last-K iterations, the residual trajectory, a worst-node
//! histogram, the escalation-ladder path and the budget state at the
//! moment of death. Postmortems ride inside [`crate::report::Section`]s
//! of a `mixsig.run-report/1` document, and everything in them is
//! deterministic (simulated time, residuals, iteration counts, node
//! names — never wall-clock), so the canonical serialisation is
//! byte-stable across worker counts.

use crate::json::JsonValue;

/// One retained solver iteration, oldest first in
/// [`Postmortem::trace`].
#[derive(Debug, Clone, PartialEq)]
pub struct PostmortemIteration {
    /// Solve phase, e.g. `dc.gmin` or `transient`.
    pub phase: String,
    /// Simulated time in seconds (0 for DC phases).
    pub time: f64,
    /// Step size being attempted (0 for DC phases).
    pub dt: f64,
    /// Newton iteration number within the current solve, from 1.
    pub iteration: u64,
    /// Worst per-unknown update magnitude at this iteration.
    pub residual: f64,
    /// Index of the worst unknown in the MNA layout.
    pub worst_index: u64,
    /// The worst unknown resolved to a netlist node (or branch) name.
    pub worst_node: String,
}

/// One rung of the escalation ladder as the campaign walked it.
#[derive(Debug, Clone, PartialEq)]
pub struct LadderStep {
    /// Rung index, 0 = nominal settings.
    pub rung: u64,
    /// Human-readable rung label, e.g. `dt*0.5+BE+gmin=1e-9`.
    pub label: String,
    /// What the rung produced: `ok`, `no-convergence`, `budget`, ...
    pub outcome: String,
}

/// One numerical hazard detected during the solve, with the recovery
/// action the solver took in response.
#[derive(Debug, Clone, PartialEq)]
pub struct HazardStep {
    /// Hazard label, e.g. `rank1-breakdown` or `non-finite`.
    pub hazard: String,
    /// What the solver did about it: `demote:refactor`,
    /// `demote:dense`, `refined`, `advisory`, `terminal`, ...
    pub action: String,
    /// Simulated time in seconds at detection (0 for DC).
    pub time: f64,
}

/// A frozen record of one terminally failed solve.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Postmortem {
    /// What was being solved, e.g. the fault name.
    pub label: String,
    /// Display form of the terminal error.
    pub error: String,
    /// Simulated time at failure (seconds).
    pub time: f64,
    /// Final residual at failure.
    pub residual: f64,
    /// Total Newton iterations recorded, including ones the bounded
    /// trace has already overwritten.
    pub total_iterations: u64,
    /// Last-K iterations, oldest first.
    pub trace: Vec<PostmortemIteration>,
    /// Worst-offender histogram over the retained trace: node name ->
    /// number of iterations it dominated, sorted by descending count
    /// then name.
    pub worst_nodes: Vec<(String, u64)>,
    /// Escalation path: every rung tried, in order.
    pub ladder: Vec<LadderStep>,
    /// Numerical hazards detected during the solve with the recovery
    /// action taken for each, in detection order (bounded by the
    /// recorder). Empty for solves that died without numerical
    /// trouble — and for postmortems decoded from journals written
    /// before hazard tracking existed.
    pub hazards: Vec<HazardStep>,
    /// Budget steps charged at the moment of death, when a budget was
    /// armed.
    pub budget_steps: Option<u64>,
}

/// Non-finite residuals (a diverged Newton update) serialise as JSON
/// `null` and parse back as `+inf`.
fn residual_json(v: f64) -> JsonValue {
    JsonValue::Num(v)
}

fn residual_from(v: Option<&JsonValue>) -> f64 {
    match v {
        Some(JsonValue::Num(n)) => *n,
        _ => f64::INFINITY,
    }
}

fn str_field(v: &JsonValue, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(JsonValue::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("postmortem: missing string `{key}`"))
}

fn num_field(v: &JsonValue, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| format!("postmortem: missing number `{key}`"))
}

impl Postmortem {
    /// Serialises to a JSON object. Every field is deterministic, so
    /// canonical and full report forms carry identical bytes.
    pub fn to_json(&self) -> JsonValue {
        let mut obj = JsonValue::object();
        obj.push("label", JsonValue::Str(self.label.clone()));
        obj.push("error", JsonValue::Str(self.error.clone()));
        obj.push("time", JsonValue::Num(self.time));
        obj.push("residual", residual_json(self.residual));
        obj.push(
            "total_iterations",
            JsonValue::Num(self.total_iterations as f64),
        );
        let trace = self
            .trace
            .iter()
            .map(|it| {
                let mut rec = JsonValue::object();
                rec.push("phase", JsonValue::Str(it.phase.clone()));
                rec.push("time", JsonValue::Num(it.time));
                rec.push("dt", JsonValue::Num(it.dt));
                rec.push("iteration", JsonValue::Num(it.iteration as f64));
                rec.push("residual", residual_json(it.residual));
                rec.push("worst_index", JsonValue::Num(it.worst_index as f64));
                rec.push("worst_node", JsonValue::Str(it.worst_node.clone()));
                rec
            })
            .collect();
        obj.push("trace", JsonValue::Arr(trace));
        let nodes = self
            .worst_nodes
            .iter()
            .map(|(name, count)| {
                let mut rec = JsonValue::object();
                rec.push("node", JsonValue::Str(name.clone()));
                rec.push("count", JsonValue::Num(*count as f64));
                rec
            })
            .collect();
        obj.push("worst_nodes", JsonValue::Arr(nodes));
        let ladder = self
            .ladder
            .iter()
            .map(|step| {
                let mut rec = JsonValue::object();
                rec.push("rung", JsonValue::Num(step.rung as f64));
                rec.push("label", JsonValue::Str(step.label.clone()));
                rec.push("outcome", JsonValue::Str(step.outcome.clone()));
                rec
            })
            .collect();
        obj.push("ladder", JsonValue::Arr(ladder));
        let hazards = self
            .hazards
            .iter()
            .map(|h| {
                let mut rec = JsonValue::object();
                rec.push("hazard", JsonValue::Str(h.hazard.clone()));
                rec.push("action", JsonValue::Str(h.action.clone()));
                rec.push("time", JsonValue::Num(h.time));
                rec
            })
            .collect();
        obj.push("hazards", JsonValue::Arr(hazards));
        obj.push(
            "budget_steps",
            self.budget_steps
                .map_or(JsonValue::Null, |s| JsonValue::Num(s as f64)),
        );
        obj
    }

    /// Parses a postmortem back out of its [`Postmortem::to_json`]
    /// form.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first missing or mistyped field.
    pub fn from_json(v: &JsonValue) -> Result<Postmortem, String> {
        let mut trace = Vec::new();
        for it in v
            .get("trace")
            .and_then(JsonValue::as_array)
            .ok_or("postmortem: missing array `trace`")?
        {
            trace.push(PostmortemIteration {
                phase: str_field(it, "phase")?,
                time: num_field(it, "time")?,
                dt: num_field(it, "dt")?,
                iteration: num_field(it, "iteration")? as u64,
                residual: residual_from(it.get("residual")),
                worst_index: num_field(it, "worst_index")? as u64,
                worst_node: str_field(it, "worst_node")?,
            });
        }
        let mut worst_nodes = Vec::new();
        for rec in v
            .get("worst_nodes")
            .and_then(JsonValue::as_array)
            .ok_or("postmortem: missing array `worst_nodes`")?
        {
            worst_nodes.push((str_field(rec, "node")?, num_field(rec, "count")? as u64));
        }
        let mut ladder = Vec::new();
        for rec in v
            .get("ladder")
            .and_then(JsonValue::as_array)
            .ok_or("postmortem: missing array `ladder`")?
        {
            ladder.push(LadderStep {
                rung: num_field(rec, "rung")? as u64,
                label: str_field(rec, "label")?,
                outcome: str_field(rec, "outcome")?,
            });
        }
        // Absent in journals written before hazard tracking: decode as
        // empty rather than failing old archives.
        let mut hazards = Vec::new();
        if let Some(arr) = v.get("hazards").and_then(JsonValue::as_array) {
            for rec in arr {
                hazards.push(HazardStep {
                    hazard: str_field(rec, "hazard")?,
                    action: str_field(rec, "action")?,
                    time: num_field(rec, "time")?,
                });
            }
        }
        Ok(Postmortem {
            label: str_field(v, "label")?,
            error: str_field(v, "error")?,
            time: num_field(v, "time")?,
            residual: residual_from(v.get("residual")),
            total_iterations: num_field(v, "total_iterations")? as u64,
            trace,
            worst_nodes,
            ladder,
            hazards,
            budget_steps: v.get("budget_steps").and_then(JsonValue::as_f64).map(|s| s as u64),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn sample() -> Postmortem {
        Postmortem {
            label: "bridge:out-iso".into(),
            error: "no convergence at t = 3.2e-6 s (residual 4.1e-1 after 6 iterations)".into(),
            time: 3.2e-6,
            residual: 0.41,
            total_iterations: 120,
            trace: vec![
                PostmortemIteration {
                    phase: "transient".into(),
                    time: 3.2e-6,
                    dt: 1.0e-6,
                    iteration: 5,
                    residual: 0.52,
                    worst_index: 1,
                    worst_node: "out".into(),
                },
                PostmortemIteration {
                    phase: "transient".into(),
                    time: 3.2e-6,
                    dt: 1.0e-6,
                    iteration: 6,
                    residual: 0.41,
                    worst_index: 1,
                    worst_node: "out".into(),
                },
            ],
            worst_nodes: vec![("out".into(), 2)],
            ladder: vec![
                LadderStep {
                    rung: 0,
                    label: "nominal".into(),
                    outcome: "no-convergence".into(),
                },
                LadderStep {
                    rung: 1,
                    label: "dt*0.5".into(),
                    outcome: "no-convergence".into(),
                },
            ],
            hazards: vec![HazardStep {
                hazard: "rank1-breakdown".into(),
                action: "demote:refactor".into(),
                time: 3.1e-6,
            }],
            budget_steps: Some(42),
        }
    }

    #[test]
    fn hazardless_legacy_json_decodes_with_empty_hazards() {
        // Journals written before hazard tracking carry no `hazards`
        // array; they must keep decoding.
        let mut pm = sample();
        pm.hazards.clear();
        let text = pm.to_json().to_json().replace(",\"hazards\":[]", "");
        assert!(!text.contains("hazards"));
        let parsed = json::parse(&text).unwrap();
        assert_eq!(Postmortem::from_json(&parsed).unwrap(), pm);
    }

    #[test]
    fn round_trips_through_json() {
        let pm = sample();
        let parsed = json::parse(&pm.to_json().to_json()).expect("serialised form parses");
        assert_eq!(Postmortem::from_json(&parsed).unwrap(), pm);
    }

    #[test]
    fn default_round_trips_with_null_budget() {
        let pm = Postmortem::default();
        let text = pm.to_json().to_json();
        assert!(text.contains("\"budget_steps\":null"));
        let parsed = json::parse(&text).unwrap();
        assert_eq!(Postmortem::from_json(&parsed).unwrap(), pm);
    }

    #[test]
    fn infinite_residual_survives_as_null() {
        let mut pm = sample();
        pm.residual = f64::INFINITY;
        pm.trace[1].residual = f64::INFINITY;
        let parsed = json::parse(&pm.to_json().to_json()).unwrap();
        let back = Postmortem::from_json(&parsed).unwrap();
        assert_eq!(back, pm);
    }

    #[test]
    fn missing_fields_are_reported_by_name() {
        let err = Postmortem::from_json(&JsonValue::object()).unwrap_err();
        assert!(err.contains("trace"), "{err}");
    }

    #[test]
    fn serialisation_is_deterministic() {
        let a = sample().to_json().to_json();
        let b = sample().to_json().to_json();
        assert_eq!(a, b);
    }
}
