//! Sample histograms with nearest-rank percentiles.
//!
//! The workloads instrumented here are small enough (hundreds of faults,
//! thousands of spans) that keeping the raw samples is cheaper and more
//! faithful than bucketing: percentiles are exact, and merging shards
//! is concatenation.

/// A collection of scalar samples supporting exact percentiles.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Histogram {
    samples: Vec<f64>,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample. Non-finite samples are dropped: a NaN would
    /// poison every percentile downstream.
    pub fn record(&mut self, sample: f64) {
        if sample.is_finite() {
            self.samples.push(sample);
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The raw samples in recording order.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.samples.iter().sum()
    }

    /// Arithmetic mean, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.sum() / self.samples.len() as f64)
        }
    }

    /// Smallest sample, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        self.samples.iter().copied().min_by(f64::total_cmp)
    }

    /// Largest sample, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        self.samples.iter().copied().max_by(f64::total_cmp)
    }

    /// The `q`-th percentile (0–100) by the nearest-rank method, or
    /// `None` when empty. A single-sample histogram returns that sample
    /// for every `q`.
    pub fn percentile(&self, q: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(f64::total_cmp);
        let q = q.clamp(0.0, 100.0);
        // Nearest rank: the smallest rank whose cumulative share >= q.
        let rank = ((q / 100.0) * sorted.len() as f64).ceil() as usize;
        Some(sorted[rank.clamp(1, sorted.len()) - 1])
    }

    /// Appends every sample of `other` (shard merging).
    pub fn merge(&mut self, other: &Histogram) {
        self.samples.extend_from_slice(&other.samples);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_has_no_statistics() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.percentile(50.0), None);
        assert_eq!(h.percentile(0.0), None);
        assert_eq!(h.percentile(100.0), None);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let mut h = Histogram::new();
        h.record(42.5);
        for q in [0.0, 1.0, 50.0, 99.0, 100.0] {
            assert_eq!(h.percentile(q), Some(42.5), "q = {q}");
        }
        assert_eq!(h.mean(), Some(42.5));
        assert_eq!(h.min(), Some(42.5));
        assert_eq!(h.max(), Some(42.5));
    }

    #[test]
    fn nearest_rank_percentiles() {
        let mut h = Histogram::new();
        for v in [15.0, 20.0, 35.0, 40.0, 50.0] {
            h.record(v);
        }
        // Classic nearest-rank reference values.
        assert_eq!(h.percentile(30.0), Some(20.0));
        assert_eq!(h.percentile(40.0), Some(20.0));
        assert_eq!(h.percentile(50.0), Some(35.0));
        assert_eq!(h.percentile(100.0), Some(50.0));
        assert_eq!(h.percentile(0.0), Some(15.0));
    }

    #[test]
    fn percentiles_ignore_recording_order() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [3.0, 1.0, 2.0] {
            a.record(v);
        }
        for v in [1.0, 2.0, 3.0] {
            b.record(v);
        }
        assert_eq!(a.percentile(50.0), b.percentile(50.0));
        assert_eq!(a.percentile(50.0), Some(2.0));
    }

    #[test]
    fn non_finite_samples_are_dropped() {
        let mut h = Histogram::new();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(1.0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), Some(1.0));
    }

    #[test]
    fn merge_concatenates_samples() {
        let mut a = Histogram::new();
        a.record(1.0);
        let mut b = Histogram::new();
        b.record(2.0);
        b.record(3.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 6.0);
        assert_eq!(a.percentile(100.0), Some(3.0));
    }
}
