//! A bounded ring buffer keeping the most recent `capacity` items.
//!
//! The convergence flight recorder stores per-iteration solver records
//! in one of these: pushes never allocate after construction (the
//! backing storage is reserved up front), and once full, each push
//! overwrites the oldest record, so a diverging solve that runs for
//! thousands of iterations still freezes into a bounded postmortem.

/// A fixed-capacity ring keeping the last `capacity` pushed items.
#[derive(Debug, Clone)]
pub struct RingBuffer<T> {
    items: Vec<T>,
    capacity: usize,
    /// Index of the oldest item once the ring has wrapped.
    head: usize,
    /// Total number of items ever pushed (monotonic).
    pushed: u64,
}

impl<T> RingBuffer<T> {
    /// A ring holding at most `capacity` items. The backing storage is
    /// reserved immediately so later pushes never allocate.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (a ring that can hold nothing is a
    /// construction bug, not data).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        RingBuffer {
            items: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            pushed: 0,
        }
    }

    /// Maximum number of retained items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of items currently retained (≤ capacity).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Total number of items ever pushed, including overwritten ones.
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Pushes an item, overwriting the oldest once the ring is full.
    pub fn push(&mut self, item: T) {
        self.pushed += 1;
        if self.items.len() < self.capacity {
            self.items.push(item);
        } else {
            self.items[self.head] = item;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Iterates the retained items oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        let (wrapped, start) = self.items.split_at(self.head);
        start.iter().chain(wrapped.iter())
    }

    /// Discards every retained item (capacity is kept).
    pub fn clear(&mut self) {
        self.items.clear();
        self.head = 0;
        self.pushed = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_everything_below_capacity() {
        let mut ring = RingBuffer::new(4);
        ring.push(1);
        ring.push(2);
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.total_pushed(), 2);
        assert_eq!(ring.iter().copied().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn overwrites_oldest_when_full() {
        let mut ring = RingBuffer::new(3);
        for v in 1..=7 {
            ring.push(v);
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.total_pushed(), 7);
        // Oldest first: 5, 6, 7 survive.
        assert_eq!(ring.iter().copied().collect::<Vec<_>>(), vec![5, 6, 7]);
    }

    #[test]
    fn wrap_point_iterates_in_push_order() {
        let mut ring = RingBuffer::new(2);
        ring.push("a");
        ring.push("b");
        ring.push("c");
        assert_eq!(ring.iter().copied().collect::<Vec<_>>(), vec!["b", "c"]);
    }

    #[test]
    fn pushes_never_reallocate() {
        let mut ring = RingBuffer::new(8);
        let cap_before = ring.items.capacity();
        for v in 0..1000 {
            ring.push(v);
        }
        assert_eq!(ring.items.capacity(), cap_before);
    }

    #[test]
    fn clear_resets_contents_but_not_capacity() {
        let mut ring = RingBuffer::new(2);
        ring.push(1);
        ring.push(2);
        ring.push(3);
        ring.clear();
        assert!(ring.is_empty());
        assert_eq!(ring.total_pushed(), 0);
        ring.push(9);
        assert_eq!(ring.iter().copied().collect::<Vec<_>>(), vec![9]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = RingBuffer::<u8>::new(0);
    }
}
