//! Streaming campaign-status snapshots: the `mixsig.campaign-status/1`
//! document a live campaign rewrites while it runs.
//!
//! The snapshot is the push half of live telemetry: the campaign engine
//! periodically folds its progress, per-worker lane state and solver
//! counters into a [`CampaignStatus`] and [`write_atomic`]s it to
//! `status.json` in the telemetry directory. Watchers (`experiments
//! watch`, the future HTTP service) read the same file with
//! [`read_status`].
//!
//! Two rules make this safe next to the byte-stable reporting path:
//!
//! * **Atomic replacement.** [`write_atomic`] writes to a temporary
//!   file in the same directory and renames it over the target, so a
//!   concurrent reader sees either the previous snapshot or the new
//!   one, never a torn hybrid. [`read_status`] additionally tolerates a
//!   missing or unparseable file (the moments before the first write,
//!   or a foreign file) by returning `None` instead of erroring —
//!   readers poll, so the next snapshot supersedes whatever was
//!   unreadable.
//! * **Wall-clock quarantine.** Everything here is wall-clock derived
//!   (ages, rates, ETAs) and therefore *never* feeds back into
//!   canonical reports or journals. The status file is advisory
//!   telemetry: deleting it mid-run changes nothing about the
//!   campaign's outcome.

use std::fs;
use std::io;
use std::path::Path;

use crate::json::{self, JsonValue};

/// Schema tag of every status snapshot.
pub const SCHEMA: &str = "mixsig.campaign-status/1";

/// File name of the snapshot inside a telemetry directory.
pub const STATUS_FILE: &str = "status.json";

/// File name of the heartbeat sidecar journal inside a telemetry
/// directory.
pub const HEARTBEAT_FILE: &str = "heartbeats.jsonl";

/// One worker lane's live state.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WorkerLane {
    /// Lane (worker thread) index.
    pub lane: u64,
    /// Universe index of the fault currently simulating, if any.
    pub fault: Option<u64>,
    /// Name of the fault currently simulating, if any.
    pub fault_name: Option<String>,
    /// Milliseconds the lane has spent on its current fault.
    pub busy_ms: f64,
    /// Milliseconds since the lane's last heartbeat.
    pub heartbeat_age_ms: f64,
    /// Faults this lane has completed.
    pub completed: u64,
    /// True when the lane's heartbeat age exceeded the stall threshold
    /// while a fault was in flight.
    pub stalled: bool,
    /// The lane's hottest solver phase so far (profiling armed only).
    pub hot_phase: Option<String>,
}

/// A full status snapshot, serialised as `mixsig.campaign-status/1`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CampaignStatus {
    /// Campaign label (the journal label when journaling).
    pub label: String,
    /// `running`, `complete`, `cancelled` or `aborted`.
    pub state: String,
    /// Faults in the universe.
    pub total: u64,
    /// Faults with an outcome (simulated this run plus replayed).
    pub done: u64,
    /// Of `done`, how many were replayed from a resume journal.
    pub replayed: u64,
    /// Outcome rollup so far.
    pub detected: u64,
    /// Faults whose deviation stayed under the detection criterion.
    pub undetected: u64,
    /// Faults that ended in a non-detection status (failed, panicked,
    /// out of budget, mismatched).
    pub failed: u64,
    /// Milliseconds since the campaign started simulating.
    pub elapsed_ms: f64,
    /// Faults per second over the recent sample window.
    pub faults_per_sec: f64,
    /// EWMA-smoothed faults per second.
    pub ewma_faults_per_sec: f64,
    /// Estimated milliseconds to completion, when a rate exists.
    pub eta_ms: Option<f64>,
    /// Deterministic solver counters accumulated so far (insertion
    /// order preserved).
    pub counters: Vec<(String, u64)>,
    /// Per-phase `(label, ns, calls)` rollup (profiling armed only).
    pub phases: Vec<(String, u64, u64)>,
    /// Per-worker lane states.
    pub workers: Vec<WorkerLane>,
    /// Path of the campaign journal, when the campaign journals.
    pub journal: Option<String>,
    /// Heartbeat age (ms) past which an in-flight lane is flagged
    /// stalled.
    pub stall_after_ms: Option<f64>,
    /// Unix timestamp of this snapshot in milliseconds (readers add
    /// their own clock delta to judge freshness).
    pub updated_at_ms: f64,
}

impl CampaignStatus {
    /// Faults not yet done.
    pub fn remaining(&self) -> u64 {
        self.total.saturating_sub(self.done)
    }

    /// True for `complete`, `cancelled` and `aborted` states.
    pub fn is_terminal(&self) -> bool {
        self.state != "running"
    }

    /// Serialises the snapshot.
    pub fn to_json(&self) -> JsonValue {
        let mut obj = JsonValue::object();
        obj.push("schema", JsonValue::Str(SCHEMA.into()));
        obj.push("label", JsonValue::Str(self.label.clone()));
        obj.push("state", JsonValue::Str(self.state.clone()));
        obj.push("total", JsonValue::Num(self.total as f64));
        obj.push("done", JsonValue::Num(self.done as f64));
        obj.push("replayed", JsonValue::Num(self.replayed as f64));
        obj.push("detected", JsonValue::Num(self.detected as f64));
        obj.push("undetected", JsonValue::Num(self.undetected as f64));
        obj.push("failed", JsonValue::Num(self.failed as f64));
        obj.push("elapsed_ms", JsonValue::Num(self.elapsed_ms));
        obj.push("faults_per_sec", JsonValue::Num(self.faults_per_sec));
        obj.push(
            "ewma_faults_per_sec",
            JsonValue::Num(self.ewma_faults_per_sec),
        );
        obj.push(
            "eta_ms",
            self.eta_ms.map_or(JsonValue::Null, JsonValue::Num),
        );
        let mut counters = JsonValue::object();
        for (name, value) in &self.counters {
            counters.push(name, JsonValue::Num(*value as f64));
        }
        obj.push("counters", counters);
        let mut phases = JsonValue::object();
        for (name, ns, calls) in &self.phases {
            let mut p = JsonValue::object();
            p.push("ns", JsonValue::Num(*ns as f64));
            p.push("calls", JsonValue::Num(*calls as f64));
            phases.push(name, p);
        }
        obj.push("phases", phases);
        obj.push(
            "workers",
            JsonValue::Arr(self.workers.iter().map(lane_to_json).collect()),
        );
        obj.push(
            "journal",
            self.journal
                .as_ref()
                .map_or(JsonValue::Null, |p| JsonValue::Str(p.clone())),
        );
        obj.push(
            "stall_after_ms",
            self.stall_after_ms.map_or(JsonValue::Null, JsonValue::Num),
        );
        obj.push("updated_at_ms", JsonValue::Num(self.updated_at_ms));
        obj
    }

    /// Decodes a snapshot, validating the schema tag and the structural
    /// invariants a watcher depends on.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first structural problem.
    pub fn from_json(v: &JsonValue) -> Result<Self, String> {
        match v.get("schema").and_then(JsonValue::as_str) {
            Some(s) if s == SCHEMA => {}
            other => return Err(format!("schema is {other:?}, expected {SCHEMA:?}")),
        }
        let str_of = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(JsonValue::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("{key} missing or not a string"))
        };
        let count_of = |key: &str| -> Result<u64, String> {
            match v.get(key).and_then(JsonValue::as_f64) {
                Some(n) if n.is_finite() && n >= 0.0 => Ok(n as u64),
                _ => Err(format!("{key} missing or not a non-negative number")),
            }
        };
        let ms_of = |key: &str| -> Result<f64, String> {
            match v.get(key).and_then(JsonValue::as_f64) {
                Some(n) if n.is_finite() && n >= 0.0 => Ok(n),
                _ => Err(format!("{key} missing or not a non-negative number")),
            }
        };
        let opt_ms_of = |key: &str| -> Result<Option<f64>, String> {
            match v.get(key) {
                None | Some(JsonValue::Null) => Ok(None),
                Some(n) => match n.as_f64() {
                    Some(ms) if ms.is_finite() && ms >= 0.0 => Ok(Some(ms)),
                    _ => Err(format!("{key} is not a non-negative number")),
                },
            }
        };
        let counters = match v.get("counters") {
            Some(JsonValue::Obj(entries)) => entries
                .iter()
                .map(|(name, value)| match value.as_f64() {
                    Some(n) if n.is_finite() && n >= 0.0 => Ok((name.clone(), n as u64)),
                    _ => Err(format!("counter {name} is not a non-negative number")),
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("counters missing or not an object".into()),
        };
        let phases = match v.get("phases") {
            Some(JsonValue::Obj(entries)) => entries
                .iter()
                .map(|(name, value)| {
                    let field = |key: &str| match value.get(key).and_then(JsonValue::as_f64) {
                        Some(n) if n.is_finite() && n >= 0.0 => Ok(n as u64),
                        _ => Err(format!("phases.{name}.{key} invalid")),
                    };
                    Ok((name.clone(), field("ns")?, field("calls")?))
                })
                .collect::<Result<Vec<_>, String>>()?,
            _ => return Err("phases missing or not an object".into()),
        };
        let workers = v
            .get("workers")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| "workers missing or not an array".to_owned())?
            .iter()
            .enumerate()
            .map(|(i, w)| lane_from_json(w).map_err(|e| format!("workers[{i}]: {e}")))
            .collect::<Result<Vec<_>, _>>()?;
        let status = CampaignStatus {
            label: str_of("label")?,
            state: str_of("state")?,
            total: count_of("total")?,
            done: count_of("done")?,
            replayed: count_of("replayed")?,
            detected: count_of("detected")?,
            undetected: count_of("undetected")?,
            failed: count_of("failed")?,
            elapsed_ms: ms_of("elapsed_ms")?,
            faults_per_sec: ms_of("faults_per_sec")?,
            ewma_faults_per_sec: ms_of("ewma_faults_per_sec")?,
            eta_ms: opt_ms_of("eta_ms")?,
            counters,
            phases,
            workers,
            journal: match v.get("journal") {
                None | Some(JsonValue::Null) => None,
                Some(p) => Some(
                    p.as_str()
                        .ok_or_else(|| "journal is not a string".to_owned())?
                        .to_owned(),
                ),
            },
            stall_after_ms: opt_ms_of("stall_after_ms")?,
            updated_at_ms: ms_of("updated_at_ms")?,
        };
        if status.done > status.total {
            return Err(format!(
                "done {} exceeds total {}",
                status.done, status.total
            ));
        }
        if status.detected + status.undetected + status.failed != status.done {
            return Err(format!(
                "outcome rollup {}+{}+{} does not sum to done {}",
                status.detected, status.undetected, status.failed, status.done
            ));
        }
        Ok(status)
    }
}

fn lane_to_json(lane: &WorkerLane) -> JsonValue {
    let mut obj = JsonValue::object();
    obj.push("lane", JsonValue::Num(lane.lane as f64));
    obj.push(
        "fault",
        lane.fault.map_or(JsonValue::Null, |i| JsonValue::Num(i as f64)),
    );
    obj.push(
        "fault_name",
        lane.fault_name
            .as_ref()
            .map_or(JsonValue::Null, |n| JsonValue::Str(n.clone())),
    );
    obj.push("busy_ms", JsonValue::Num(lane.busy_ms));
    obj.push("heartbeat_age_ms", JsonValue::Num(lane.heartbeat_age_ms));
    obj.push("completed", JsonValue::Num(lane.completed as f64));
    obj.push("stalled", JsonValue::Bool(lane.stalled));
    obj.push(
        "hot_phase",
        lane.hot_phase
            .as_ref()
            .map_or(JsonValue::Null, |p| JsonValue::Str(p.clone())),
    );
    obj
}

fn lane_from_json(v: &JsonValue) -> Result<WorkerLane, String> {
    let num = |key: &str| match v.get(key).and_then(JsonValue::as_f64) {
        Some(n) if n.is_finite() && n >= 0.0 => Ok(n),
        _ => Err(format!("{key} missing or invalid")),
    };
    Ok(WorkerLane {
        lane: num("lane")? as u64,
        fault: match v.get("fault") {
            None | Some(JsonValue::Null) => None,
            Some(n) => Some(
                n.as_f64()
                    .filter(|f| f.is_finite() && *f >= 0.0)
                    .ok_or_else(|| "fault is not a non-negative number".to_owned())?
                    as u64,
            ),
        },
        fault_name: match v.get("fault_name") {
            None | Some(JsonValue::Null) => None,
            Some(n) => Some(
                n.as_str()
                    .ok_or_else(|| "fault_name is not a string".to_owned())?
                    .to_owned(),
            ),
        },
        busy_ms: num("busy_ms")?,
        heartbeat_age_ms: num("heartbeat_age_ms")?,
        completed: num("completed")? as u64,
        stalled: v
            .get("stalled")
            .and_then(JsonValue::as_bool)
            .ok_or_else(|| "stalled missing or not a bool".to_owned())?,
        hot_phase: match v.get("hot_phase") {
            None | Some(JsonValue::Null) => None,
            Some(p) => Some(
                p.as_str()
                    .ok_or_else(|| "hot_phase is not a string".to_owned())?
                    .to_owned(),
            ),
        },
    })
}

/// Parses and validates a snapshot document.
///
/// # Errors
///
/// Invalid JSON or a structurally invalid snapshot.
pub fn parse_status(text: &str) -> Result<CampaignStatus, String> {
    let parsed = json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    CampaignStatus::from_json(&parsed)
}

/// Writes the snapshot atomically: the document lands in a temporary
/// file in the target's directory, is flushed, and is renamed over the
/// target. Readers polling the target therefore always see a complete
/// snapshot — the previous one until the rename, this one after.
///
/// # Errors
///
/// Any I/O error from the write or rename; callers treating status as
/// advisory telemetry should count and ignore these.
pub fn write_atomic(path: &Path, status: &CampaignStatus) -> io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "status path has no file name"))?
        .to_string_lossy()
        .into_owned();
    // Unique-enough per process: two emitters racing the same target
    // would be a configuration bug, but even then each rename is atomic
    // and the target stays a complete snapshot.
    let tmp_name = format!(".{file_name}.tmp.{}", std::process::id());
    let tmp = match dir {
        Some(dir) => dir.join(&tmp_name),
        None => std::path::PathBuf::from(&tmp_name),
    };
    let text = status.to_json().to_json_pretty();
    let result = fs::write(&tmp, text).and_then(|()| fs::rename(&tmp, path));
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// Reads the snapshot at `path`, tolerating every state a concurrent
/// writer can leave behind: a missing file (not yet written) and
/// unparseable or foreign content both yield `Ok(None)` — the reader
/// polls, so the next write supersedes them. Only a real I/O error
/// (permissions, hardware) is reported.
///
/// # Errors
///
/// I/O errors other than "file not found".
pub fn read_status(path: &Path) -> io::Result<Option<CampaignStatus>> {
    let text = match fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    Ok(parse_status(&text).ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CampaignStatus {
        CampaignStatus {
            label: "e6.c1.correlation".into(),
            state: "running".into(),
            total: 16,
            done: 9,
            replayed: 2,
            detected: 7,
            undetected: 1,
            failed: 1,
            elapsed_ms: 1234.5,
            faults_per_sec: 3.25,
            ewma_faults_per_sec: 3.0,
            eta_ms: Some(2153.8),
            counters: vec![
                ("newton_iterations".into(), 420),
                ("factor_reuse_hits".into(), 400),
            ],
            phases: vec![("lu_factor".into(), 123456, 78)],
            workers: vec![
                WorkerLane {
                    lane: 0,
                    fault: Some(11),
                    fault_name: Some("m1-g-sa0".into()),
                    busy_ms: 87.5,
                    heartbeat_age_ms: 87.5,
                    completed: 5,
                    stalled: false,
                    hot_phase: Some("device_eval".into()),
                },
                WorkerLane {
                    lane: 1,
                    fault: None,
                    fault_name: None,
                    busy_ms: 0.0,
                    heartbeat_age_ms: 12.0,
                    completed: 4,
                    stalled: false,
                    hot_phase: None,
                },
            ],
            journal: Some("tele/campaign.jsonl".into()),
            stall_after_ms: Some(4000.0),
            updated_at_ms: 1.7e12,
        }
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let status = sample();
        let text = status.to_json().to_json_pretty();
        let back = parse_status(&text).unwrap();
        assert_eq!(back, status);
    }

    #[test]
    fn schema_and_rollup_are_validated() {
        let mut wrong = sample().to_json();
        wrong.push("schema", JsonValue::Str("mixsig.run-report/1".into()));
        // Duplicate key: `get` returns the first, so rebuild instead.
        let mut status = sample();
        status.detected = 9; // 9+1+1 != 9 done
        let err = parse_status(&status.to_json().to_json()).unwrap_err();
        assert!(err.contains("rollup"), "{err}");
        assert!(parse_status("{\"schema\": \"nope\"}").is_err());
        assert!(parse_status("{not json").is_err());
    }

    #[test]
    fn atomic_write_then_read_round_trips() {
        let dir = std::env::temp_dir().join("obs-status-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join(STATUS_FILE);
        let _ = fs::remove_file(&path);
        assert_eq!(read_status(&path).unwrap(), None, "missing file is None");
        let status = sample();
        write_atomic(&path, &status).unwrap();
        assert_eq!(read_status(&path).unwrap(), Some(status.clone()));
        // No temp files left behind.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        // A second write replaces the first completely.
        let mut next = status;
        next.done = 16;
        next.detected = 14;
        next.undetected = 1;
        next.state = "complete".into();
        write_atomic(&path, &next).unwrap();
        assert_eq!(read_status(&path).unwrap(), Some(next));
    }

    #[test]
    fn unparseable_content_reads_as_none() {
        let dir = std::env::temp_dir().join("obs-status-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.json");
        fs::write(&path, "{\"schema\": \"mixsig.campaign-st").unwrap();
        assert_eq!(read_status(&path).unwrap(), None);
        fs::write(&path, "not json at all").unwrap();
        assert_eq!(read_status(&path).unwrap(), None);
    }

    #[test]
    fn terminal_states_and_remaining() {
        let mut status = sample();
        assert!(!status.is_terminal());
        assert_eq!(status.remaining(), 7);
        status.state = "complete".into();
        assert!(status.is_terminal());
    }
}
