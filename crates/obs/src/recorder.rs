//! Pluggable event recorders.
//!
//! Instrumented code talks to a [`Recorder`] through three calls:
//! [`Recorder::add`] for counters, [`Recorder::value`] for sampled
//! scalars and [`Recorder::span`] for named durations. What happens to
//! the events depends on the implementation behind the handle:
//!
//! * [`NoopRecorder`] — discards everything; the default, so
//!   uninstrumented callers pay only a virtual call.
//! * [`AggregatingRecorder`] — thread-safe in-memory aggregate; the
//!   backing store for [`crate::report::RunReport`]s.
//! * [`JsonlSink`] — streams each event as one JSON line to a writer,
//!   with a monotonic sequence number for external ordering.
//! * [`Fanout`] — duplicates events to several recorders (e.g.
//!   aggregate *and* stream).

use std::collections::BTreeMap;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use crate::histogram::Histogram;
use crate::json::JsonValue;

/// Sink for instrumentation events. Implementations must be cheap and
/// thread-safe: campaign workers share one recorder across
/// `std::thread::scope` threads.
pub trait Recorder: Send + Sync {
    /// Increments the counter `name` by `delta`.
    fn add(&self, name: &str, delta: u64);

    /// Records one scalar observation for `name`.
    fn value(&self, name: &str, sample: f64);

    /// Records one completed span named `name` that took `elapsed`.
    fn span(&self, name: &str, elapsed: Duration);
}

impl<R: Recorder + ?Sized> Recorder for std::sync::Arc<R> {
    fn add(&self, name: &str, delta: u64) {
        (**self).add(name, delta);
    }
    fn value(&self, name: &str, sample: f64) {
        (**self).value(name, sample);
    }
    fn span(&self, name: &str, elapsed: Duration) {
        (**self).span(name, elapsed);
    }
}

/// Discards every event.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn add(&self, _name: &str, _delta: u64) {}
    fn value(&self, _name: &str, _sample: f64) {}
    fn span(&self, _name: &str, _elapsed: Duration) {}
}

/// Aggregated state of one recorder: counters, value histograms and
/// span histograms, all keyed by name. `BTreeMap` keeps iteration order
/// deterministic for serialisation.
#[derive(Debug, Clone, Default)]
pub struct Aggregate {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Scalar observations by name.
    pub values: BTreeMap<String, Histogram>,
    /// Span durations (milliseconds) by name.
    pub spans: BTreeMap<String, Histogram>,
}

impl Aggregate {
    /// Merges `other` into `self`. Counters add; histograms
    /// concatenate. Merging shards in a fixed order keeps the combined
    /// aggregate deterministic.
    pub fn merge(&mut self, other: &Aggregate) {
        for (name, delta) in &other.counters {
            *self.counters.entry(name.clone()).or_default() += delta;
        }
        for (name, hist) in &other.values {
            self.values.entry(name.clone()).or_default().merge(hist);
        }
        for (name, hist) in &other.spans {
            self.spans.entry(name.clone()).or_default().merge(hist);
        }
    }
}

/// Thread-safe aggregating recorder.
///
/// One mutex guards the whole aggregate: the instrumented operations
/// (a Newton solve, a fault simulation) are orders of magnitude more
/// expensive than the critical section, so contention is not a
/// concern at this workload's scale.
#[derive(Debug, Default)]
pub struct AggregatingRecorder {
    state: Mutex<Aggregate>,
}

impl AggregatingRecorder {
    /// A fresh, empty recorder.
    pub fn new() -> Self {
        AggregatingRecorder::default()
    }

    /// A copy of the current aggregate state.
    pub fn snapshot(&self) -> Aggregate {
        self.state.lock().expect("recorder poisoned").clone()
    }
}

impl Recorder for AggregatingRecorder {
    fn add(&self, name: &str, delta: u64) {
        let mut state = self.state.lock().expect("recorder poisoned");
        *state.counters.entry(name.to_owned()).or_default() += delta;
    }

    fn value(&self, name: &str, sample: f64) {
        let mut state = self.state.lock().expect("recorder poisoned");
        state.values.entry(name.to_owned()).or_default().record(sample);
    }

    fn span(&self, name: &str, elapsed: Duration) {
        let mut state = self.state.lock().expect("recorder poisoned");
        state
            .spans
            .entry(name.to_owned())
            .or_default()
            .record(elapsed.as_secs_f64() * 1e3);
    }
}

/// Streams every event as one JSON object per line.
///
/// Each line carries a process-wide monotonic `seq` so consumers can
/// re-establish a total order even when lines from several threads
/// interleave in the underlying writer.
pub struct JsonlSink<W: Write + Send> {
    writer: Mutex<W>,
    seq: AtomicU64,
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps `writer` as an event sink.
    pub fn new(writer: W) -> Self {
        JsonlSink {
            writer: Mutex::new(writer),
            seq: AtomicU64::new(0),
        }
    }

    /// Consumes the sink and returns the writer (e.g. to inspect an
    /// in-memory buffer in tests).
    pub fn into_inner(self) -> W {
        self.writer.into_inner().expect("sink poisoned")
    }

    fn emit(&self, kind: &str, name: &str, field: &str, value: JsonValue) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut obj = JsonValue::object();
        obj.push("seq", JsonValue::Num(seq as f64));
        obj.push("kind", JsonValue::Str(kind.to_owned()));
        obj.push("name", JsonValue::Str(name.to_owned()));
        obj.push(field, value);
        let mut writer = self.writer.lock().expect("sink poisoned");
        // An unwritable sink shouldn't take the simulation down.
        let _ = writeln!(writer, "{}", obj.to_json());
    }
}

impl<W: Write + Send> Recorder for JsonlSink<W> {
    fn add(&self, name: &str, delta: u64) {
        self.emit("counter", name, "delta", JsonValue::Num(delta as f64));
    }

    fn value(&self, name: &str, sample: f64) {
        self.emit("value", name, "sample", JsonValue::Num(sample));
    }

    fn span(&self, name: &str, elapsed: Duration) {
        self.emit(
            "span",
            name,
            "ms",
            JsonValue::Num(elapsed.as_secs_f64() * 1e3),
        );
    }
}

/// Duplicates every event to each wrapped recorder.
#[derive(Default)]
pub struct Fanout {
    sinks: Vec<Box<dyn Recorder>>,
}

impl Fanout {
    /// An empty fanout (behaves like [`NoopRecorder`]).
    pub fn new() -> Self {
        Fanout::default()
    }

    /// Adds a recorder to the fanout.
    pub fn with(mut self, sink: Box<dyn Recorder>) -> Self {
        self.sinks.push(sink);
        self
    }
}

impl Recorder for Fanout {
    fn add(&self, name: &str, delta: u64) {
        for sink in &self.sinks {
            sink.add(name, delta);
        }
    }

    fn value(&self, name: &str, sample: f64) {
        for sink in &self.sinks {
            sink.value(name, sample);
        }
    }

    fn span(&self, name: &str, elapsed: Duration) {
        for sink in &self.sinks {
            sink.span(name, elapsed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn aggregating_recorder_accumulates_all_kinds() {
        let rec = AggregatingRecorder::new();
        rec.add("newton", 3);
        rec.add("newton", 4);
        rec.value("coverage", 81.25);
        rec.span("dc", Duration::from_millis(2));
        let agg = rec.snapshot();
        assert_eq!(agg.counters["newton"], 7);
        assert_eq!(agg.values["coverage"].samples(), &[81.25]);
        assert_eq!(agg.spans["dc"].count(), 1);
    }

    #[test]
    fn concurrent_scoped_increments_are_not_lost() {
        let rec = AggregatingRecorder::new();
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 250;
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let rec = &rec;
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        rec.add("iters", 1);
                        rec.value("sample", (t * PER_THREAD + i) as f64);
                        rec.span("work", Duration::from_micros(i));
                    }
                });
            }
        });
        let agg = rec.snapshot();
        assert_eq!(agg.counters["iters"], THREADS * PER_THREAD);
        assert_eq!(agg.values["sample"].count(), (THREADS * PER_THREAD) as usize);
        assert_eq!(agg.spans["work"].count(), (THREADS * PER_THREAD) as usize);
        // Every distinct sample survived, regardless of interleaving.
        assert_eq!(
            agg.values["sample"].sum(),
            (0..THREADS * PER_THREAD).map(|v| v as f64).sum::<f64>()
        );
    }

    #[test]
    fn merge_adds_counters_and_concatenates_histograms() {
        let mut a = Aggregate::default();
        a.counters.insert("n".into(), 2);
        a.values.entry("v".into()).or_default().record(1.0);
        let mut b = Aggregate::default();
        b.counters.insert("n".into(), 3);
        b.counters.insert("m".into(), 1);
        b.values.entry("v".into()).or_default().record(2.0);
        b.spans.entry("s".into()).or_default().record(5.0);
        a.merge(&b);
        assert_eq!(a.counters["n"], 5);
        assert_eq!(a.counters["m"], 1);
        assert_eq!(a.values["v"].count(), 2);
        assert_eq!(a.spans["s"].count(), 1);
    }

    #[test]
    fn jsonl_sink_writes_parseable_numbered_lines() {
        let sink = JsonlSink::new(Vec::<u8>::new());
        sink.add("newton", 12);
        sink.span("dc", Duration::from_millis(1));
        sink.value("coverage", 93.75);
        let buf = sink.into_inner();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for (i, line) in lines.iter().enumerate() {
            let v = json::parse(line).expect("line parses");
            assert_eq!(v.get("seq").and_then(JsonValue::as_f64), Some(i as f64));
        }
        let first = json::parse(lines[0]).unwrap();
        assert_eq!(first.get("kind").and_then(JsonValue::as_str), Some("counter"));
        assert_eq!(first.get("name").and_then(JsonValue::as_str), Some("newton"));
        assert_eq!(first.get("delta").and_then(JsonValue::as_f64), Some(12.0));
    }

    #[test]
    fn fanout_duplicates_events() {
        use std::sync::Arc;
        let a = Arc::new(AggregatingRecorder::new());
        let b = Arc::new(AggregatingRecorder::new());
        let fan = Fanout::new()
            .with(Box::new(Arc::clone(&a)))
            .with(Box::new(Arc::clone(&b)));
        fan.add("n", 2);
        fan.value("v", 1.5);
        fan.span("s", Duration::from_millis(3));
        for rec in [&a, &b] {
            let agg = rec.snapshot();
            assert_eq!(agg.counters["n"], 2);
            assert_eq!(agg.values["v"].samples(), &[1.5]);
            assert_eq!(agg.spans["s"].count(), 1);
        }
    }
}
