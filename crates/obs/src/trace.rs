//! Chrome Trace Event export — timelines loadable by `chrome://tracing`
//! and Perfetto.
//!
//! Hand-rolled like the rest of the [`crate::json`] pipeline: a
//! [`TraceEvent`] list renders to the Trace Event Format's "JSON object
//! format" (`{"traceEvents": [...]}`), using complete (`"ph": "X"`)
//! events with microsecond timestamps plus `"M"` metadata events to
//! name process/thread lanes. [`validate_trace`] is the strict
//! re-reader used by `experiments check-report`: every event must
//! carry the mandatory fields, durations must be non-negative and
//! finite, and any `B`/`E` duration events must balance per lane.

use crate::json::{parse, JsonValue};

/// One trace event. Timestamps and durations are microseconds, per the
/// Trace Event Format.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event name (the label rendered on the span).
    pub name: String,
    /// Comma-separated categories; used by trace viewers for filtering.
    pub cat: String,
    /// Event type: `X` (complete), `B`/`E` (duration begin/end) or `M`
    /// (metadata).
    pub ph: char,
    /// Timestamp, microseconds from the trace epoch.
    pub ts_us: f64,
    /// Duration, microseconds. Only rendered for `X` events.
    pub dur_us: f64,
    /// Process lane.
    pub pid: u64,
    /// Thread lane within the process.
    pub tid: u64,
    /// Extra `args` members shown in the viewer's detail pane.
    pub args: Vec<(String, JsonValue)>,
}

impl TraceEvent {
    /// A complete (`X`) event spanning `[ts_us, ts_us + dur_us]` on
    /// thread lane `tid` of process 0.
    pub fn complete(name: impl Into<String>, ts_us: f64, dur_us: f64, tid: u64) -> Self {
        TraceEvent {
            name: name.into(),
            cat: String::new(),
            ph: 'X',
            ts_us,
            dur_us,
            pid: 0,
            tid,
            args: Vec::new(),
        }
    }

    /// A `thread_name` metadata event labelling lane `tid`.
    pub fn thread_name(tid: u64, name: impl Into<String>) -> Self {
        TraceEvent {
            name: "thread_name".into(),
            cat: String::new(),
            ph: 'M',
            ts_us: 0.0,
            dur_us: 0.0,
            pid: 0,
            tid,
            args: vec![("name".into(), JsonValue::Str(name.into()))],
        }
    }

    /// A `process_name` metadata event labelling process lane `pid`.
    pub fn process_name(pid: u64, name: impl Into<String>) -> Self {
        TraceEvent {
            name: "process_name".into(),
            cat: String::new(),
            ph: 'M',
            ts_us: 0.0,
            dur_us: 0.0,
            pid,
            tid: 0,
            args: vec![("name".into(), JsonValue::Str(name.into()))],
        }
    }

    /// Sets the category list (builder style).
    pub fn cat(mut self, cat: impl Into<String>) -> Self {
        self.cat = cat.into();
        self
    }

    /// Sets the process lane (builder style).
    pub fn pid(mut self, pid: u64) -> Self {
        self.pid = pid;
        self
    }

    /// Appends an `args` member (builder style).
    pub fn arg(mut self, key: impl Into<String>, value: JsonValue) -> Self {
        self.args.push((key.into(), value));
        self
    }

    fn to_json(&self) -> JsonValue {
        let mut obj = JsonValue::object();
        obj.push("name", JsonValue::Str(self.name.clone()));
        if !self.cat.is_empty() {
            obj.push("cat", JsonValue::Str(self.cat.clone()));
        }
        obj.push("ph", JsonValue::Str(self.ph.to_string()));
        obj.push("ts", JsonValue::Num(self.ts_us));
        if self.ph == 'X' {
            obj.push("dur", JsonValue::Num(self.dur_us));
        }
        obj.push("pid", JsonValue::Num(self.pid as f64));
        obj.push("tid", JsonValue::Num(self.tid as f64));
        if !self.args.is_empty() {
            obj.push("args", JsonValue::Obj(self.args.clone()));
        }
        obj
    }
}

/// Renders events to the Trace Event Format's JSON object form.
pub fn render_trace(events: &[TraceEvent]) -> String {
    let mut doc = JsonValue::object();
    doc.push(
        "traceEvents",
        JsonValue::Arr(events.iter().map(TraceEvent::to_json).collect()),
    );
    doc.push("displayTimeUnit", JsonValue::Str("ms".into()));
    doc.to_json_pretty()
}

/// True if a parsed JSON document looks like a Chrome trace (either the
/// object form with a `traceEvents` array, or a bare event array).
pub fn looks_like_trace(doc: &JsonValue) -> bool {
    match doc {
        JsonValue::Obj(_) => doc.get("traceEvents").and_then(JsonValue::as_array).is_some(),
        JsonValue::Arr(items) => items
            .first()
            .is_some_and(|e| e.get("ph").is_some()),
        _ => false,
    }
}

/// Validates a rendered trace document: parses, checks every event's
/// mandatory fields, rejects negative or non-finite timestamps and
/// durations, and requires `B`/`E` duration events to balance per
/// `(pid, tid)` lane.
///
/// Returns the number of events.
///
/// # Errors
///
/// A human-readable message naming the first offending event.
pub fn validate_trace(text: &str) -> Result<usize, String> {
    let doc = parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let events = match &doc {
        JsonValue::Obj(_) => doc
            .get("traceEvents")
            .and_then(JsonValue::as_array)
            .ok_or("missing traceEvents array")?,
        JsonValue::Arr(items) => items.as_slice(),
        _ => return Err("trace must be an object or array".into()),
    };
    if events.is_empty() {
        return Err("trace has no events".into());
    }
    // Open B events per (pid, tid) lane, for balance checking.
    let mut open: Vec<((u64, u64), usize)> = Vec::new();
    for (i, event) in events.iter().enumerate() {
        let ph = event
            .get("ph")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        event
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("event {i}: missing name"))?;
        let lane = |key: &str| -> Result<u64, String> {
            let v = event
                .get(key)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("event {i}: missing {key}"))?;
            if !v.is_finite() || v < 0.0 || v.fract() != 0.0 {
                return Err(format!("event {i}: {key} {v} is not a non-negative integer"));
            }
            Ok(v as u64)
        };
        let pid = lane("pid")?;
        let tid = lane("tid")?;
        match ph {
            "M" => continue,
            "X" | "B" | "E" | "I" => {}
            other => return Err(format!("event {i}: unsupported ph {other:?}")),
        }
        let ts = event
            .get("ts")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("event {i}: missing ts"))?;
        if !ts.is_finite() || ts < 0.0 {
            return Err(format!("event {i}: ts {ts} is not finite and non-negative"));
        }
        match ph {
            "X" => {
                let dur = event
                    .get("dur")
                    .and_then(JsonValue::as_f64)
                    .ok_or_else(|| format!("event {i}: X event missing dur"))?;
                if !dur.is_finite() || dur < 0.0 {
                    return Err(format!("event {i}: dur {dur} is negative or non-finite"));
                }
            }
            "B" => open.push(((pid, tid), i)),
            "E" => {
                let lane_key = (pid, tid);
                match open.iter().rposition(|(k, _)| *k == lane_key) {
                    Some(pos) => {
                        open.remove(pos);
                    }
                    None => {
                        return Err(format!(
                            "event {i}: E without matching B on pid {pid} tid {tid}"
                        ))
                    }
                }
            }
            _ => {}
        }
    }
    if let Some(((pid, tid), i)) = open.first() {
        return Err(format!(
            "unbalanced B event {i} on pid {pid} tid {tid} never closed"
        ));
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendered_trace_validates_and_round_trips() {
        let events = vec![
            TraceEvent::thread_name(0, "worker 0"),
            TraceEvent::complete("fault \"n1-sa0\"", 0.0, 120.5, 0)
                .cat("campaign")
                .arg("newton_iterations", JsonValue::Num(42.0)),
            TraceEvent::complete("lu_factor", 10.0, 30.25, 0).cat("phase"),
        ];
        let text = render_trace(&events);
        assert_eq!(validate_trace(&text).unwrap(), 3);
        let doc = parse(&text).unwrap();
        assert!(looks_like_trace(&doc));
        let rendered = doc.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(
            rendered[1].get("name").unwrap().as_str(),
            Some("fault \"n1-sa0\"")
        );
        assert_eq!(rendered[2].get("dur").unwrap().as_f64(), Some(30.25));
    }

    #[test]
    fn negative_duration_is_rejected() {
        let text = r#"{"traceEvents": [
            {"name": "x", "ph": "X", "ts": 0, "dur": -1, "pid": 0, "tid": 0}
        ]}"#;
        let err = validate_trace(text).unwrap_err();
        assert!(err.contains("dur"), "{err}");
    }

    #[test]
    fn unbalanced_duration_events_are_rejected() {
        let text = r#"{"traceEvents": [
            {"name": "a", "ph": "B", "ts": 0, "pid": 0, "tid": 1}
        ]}"#;
        let err = validate_trace(text).unwrap_err();
        assert!(err.contains("unbalanced"), "{err}");

        let text = r#"{"traceEvents": [
            {"name": "a", "ph": "E", "ts": 0, "pid": 0, "tid": 1}
        ]}"#;
        let err = validate_trace(text).unwrap_err();
        assert!(err.contains("without matching B"), "{err}");

        let balanced = r#"{"traceEvents": [
            {"name": "a", "ph": "B", "ts": 0, "pid": 0, "tid": 1},
            {"name": "a", "ph": "E", "ts": 5, "pid": 0, "tid": 1}
        ]}"#;
        assert_eq!(validate_trace(balanced).unwrap(), 2);
    }

    #[test]
    fn missing_fields_are_named() {
        let text = r#"{"traceEvents": [{"ph": "X", "ts": 0, "dur": 1, "pid": 0, "tid": 0}]}"#;
        assert!(validate_trace(text).unwrap_err().contains("name"));
        let text = r#"{"traceEvents": [{"name": "x", "ph": "X", "ts": 0, "pid": 0, "tid": 0}]}"#;
        assert!(validate_trace(text).unwrap_err().contains("dur"));
        assert!(validate_trace("{}").is_err());
        assert!(validate_trace(r#"{"traceEvents": []}"#).is_err());
        assert!(validate_trace("not json").is_err());
    }

    #[test]
    fn bare_event_arrays_are_recognised() {
        let text = r#"[{"name": "x", "ph": "X", "ts": 0, "dur": 1, "pid": 0, "tid": 0}]"#;
        assert_eq!(validate_trace(text).unwrap(), 1);
        assert!(looks_like_trace(&parse(text).unwrap()));
        assert!(!looks_like_trace(&parse("[1]").unwrap()));
        assert!(!looks_like_trace(&parse(r#"{"schema": "other"}"#).unwrap()));
    }
}
